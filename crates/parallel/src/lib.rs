//! Zero-dependency parallel substrate for the iHTL workspace.
//!
//! The paper's execution model needs exactly two scheduling shapes:
//!
//! * **chunked parallel-for with dynamic load balancing** — the flipped-block
//!   push phase walks (block × source-chunk) tasks whose cost is wildly
//!   skewed (hubs!), so workers must self-schedule rather than take static
//!   slices (paper §4.1 uses "work stealing over partitioned graphs");
//! * **map-reduce over index ranges** — degree counting and triangle
//!   counting privatise per-worker accumulators and merge them, the same
//!   privatise-and-merge idiom iHTL applies to its hub buffers (§3.4).
//!
//! Both are provided here on plain `std`, executed by a **persistent worker
//! pool**: `num_threads() - 1` workers are spawned lazily on the first
//! multi-chunk region and then parked on a condvar between regions. Each
//! region bumps a generation counter and publishes a type-erased job
//! pointer; workers run the job exactly once per generation and an atomic
//! chunk counter acts as the shared work queue — workers grab the next chunk
//! when they finish their last, which is self-scheduling with the same
//! load-balancing effect as stealing for contiguous ranges. A per-region
//! wake costs a condvar broadcast (~µs) instead of the per-call
//! `thread::scope` spawn/join the first version of this crate paid (~tens
//! of µs per worker), which matters because the iHTL engine enters a region
//! per phase per iteration.
//!
//! Guarantees relied on by the rest of the workspace (notably the
//! privatised hub buffers in `ihtl-core`):
//!
//! * inside a parallel region every concurrent worker observes a distinct
//!   [`current_thread_index`] in `0..num_threads()` — pool worker *k* owns
//!   index `k + 1` for the life of the process, the driving caller is
//!   always index 0, and regions are serialised by a pool-wide lock, so an
//!   index can never be observed by two live threads even across
//!   overlapping top-level calls;
//! * outside any region (and on the sequential fallback path)
//!   `current_thread_index()` is `None`;
//! * nested parallel calls from inside a worker run sequentially *on that
//!   worker*, so the worker's index stays stable;
//! * with `num_threads() == 1` no thread is ever spawned — single-core
//!   containers pay nothing but a function call;
//! * a panic in any worker (or the caller's own share of the work) is
//!   re-raised on the calling thread after the region completes; the pool
//!   survives and later regions run normally.

pub mod shuffle;

use std::cell::{Cell, UnsafeCell};
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};

static NUM_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel regions use, decided once per process:
/// the `IHTL_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], otherwise 1.
pub fn num_threads() -> usize {
    *NUM_THREADS.get_or_init(|| {
        std::env::var("IHTL_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// The calling thread's worker index inside a parallel region
/// (`Some(0..num_threads())`), or `None` outside one. Stable for the whole
/// region, so it can key per-thread privatised state.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|c| c.get())
}

// ---------------------------------------------------------------------------
// Cache-hierarchy detection.
// ---------------------------------------------------------------------------

static CACHE_SIZES: OnceLock<(usize, usize)> = OnceLock::new();

/// Fallback when the cache hierarchy is unreadable (non-Linux, sandboxes):
/// a 1 MiB private cache and a 32 MiB last-level cache — ordinary numbers
/// for current server parts, conservative enough that neither the flipped
/// blocks nor the thrashing threshold are sized absurdly.
pub const FALLBACK_BUFFER_BYTES: usize = 1 << 20;
/// See [`FALLBACK_BUFFER_BYTES`].
pub const FALLBACK_LLC_BYTES: usize = 32 << 20;

/// Parses a Linux sysfs cache size string like `"48K"`, `"2048K"` or
/// `"1M"` into bytes.
fn parse_cache_size(s: &str) -> Option<usize> {
    let s = s.trim();
    let (digits, mult) = match s.as_bytes().last()? {
        b'K' | b'k' => (&s[..s.len() - 1], 1usize << 10),
        b'M' | b'm' => (&s[..s.len() - 1], 1 << 20),
        b'G' | b'g' => (&s[..s.len() - 1], 1 << 30),
        _ => (s, 1),
    };
    digits.trim().parse::<usize>().ok().map(|n| n * mult)
}

/// Reads cpu0's cache levels from sysfs: `(level, bytes)` for every data or
/// unified cache.
fn sysfs_cache_levels() -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    for index in 0..16 {
        let dir = format!("/sys/devices/system/cpu/cpu0/cache/index{index}");
        let read = |f: &str| std::fs::read_to_string(format!("{dir}/{f}")).ok();
        let Some(ty) = read("type") else { break };
        if ty.trim() == "Instruction" {
            continue;
        }
        let (Some(level), Some(size)) = (read("level"), read("size")) else { continue };
        if let (Ok(level), Some(bytes)) = (level.trim().parse(), parse_cache_size(&size)) {
            out.push((level, bytes));
        }
    }
    out
}

/// `(buffer_bytes, llc_bytes)`, detected once per process from Linux sysfs
/// (`/sys/devices/system/cpu/cpu0/cache/index*/`): the private per-core
/// working-set cache (largest data/unified level ≤ 2 — the L2 on common
/// parts) and the last-level cache capacity (largest level present). The
/// two answer different questions — how big a cache-resident scratch buffer
/// may be, and how much vertex data random reads can touch before they
/// start missing — and on big-LLC parts they differ by orders of
/// magnitude. Falls back to ([`FALLBACK_BUFFER_BYTES`],
/// [`FALLBACK_LLC_BYTES`]) when the hierarchy is unreadable.
pub fn cache_sizes() -> (usize, usize) {
    *CACHE_SIZES.get_or_init(|| {
        let levels = sysfs_cache_levels();
        let buffer = levels
            .iter()
            .filter(|&&(level, _)| level <= 2)
            .map(|&(_, bytes)| bytes)
            .max()
            .unwrap_or(FALLBACK_BUFFER_BYTES);
        let llc = levels.iter().map(|&(_, bytes)| bytes).max().unwrap_or(FALLBACK_LLC_BYTES);
        (buffer, llc.max(buffer))
    })
}

// ---------------------------------------------------------------------------
// The persistent pool.
// ---------------------------------------------------------------------------

/// Type-erased pointer to a region closure (`&F` where `F: Fn(usize) + Sync`;
/// the argument is the executing worker's index). Valid for the duration of
/// the region because the publishing caller blocks until every worker has
/// reported completion.
#[derive(Clone, Copy)]
struct Job {
    data: *const (),
    run: unsafe fn(*const (), usize),
}

// SAFETY: the pointee is `Sync` (bound enforced at the only construction
// site, in `run_region`) and outlives the region.
unsafe impl Send for Job {}

/// Shared pool state, guarded by [`Shared::state`].
struct RegionState {
    /// Bumped once per region; a worker runs the published job exactly once
    /// per generation it observes.
    generation: u64,
    job: Option<Job>,
    /// Pool workers that have not yet finished the current region.
    remaining: usize,
    /// First panic payload captured from a pool worker this region.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    /// Serialises regions: one caller drives the pool at a time; other
    /// top-level callers block here until the pool is free.
    region_lock: Mutex<()>,
    state: Mutex<RegionState>,
    /// Workers park here between regions.
    start: Condvar,
    /// The driving caller parks here until `remaining == 0`.
    done: Condvar,
    n_workers: usize,
}

/// Locks tolerating poison: the guarded data is plain counters/flags that
/// remain consistent across an unwinding holder. Named `lock_ok` so the R6
/// lock-order lint identifies the lock from the call-site argument.
fn lock_ok<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

static POOL: OnceLock<&'static Shared> = OnceLock::new();

/// The process-wide pool, spawning its `num_threads() - 1` workers on first
/// use. Never called when `num_threads() == 1`.
fn pool() -> &'static Shared {
    POOL.get_or_init(|| {
        let n_workers = num_threads() - 1;
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            region_lock: Mutex::new(()),
            state: Mutex::new(RegionState { generation: 0, job: None, remaining: 0, panic: None }),
            start: Condvar::new(),
            done: Condvar::new(),
            n_workers,
        }));
        for k in 0..n_workers {
            std::thread::Builder::new()
                .name(format!("ihtl-worker-{}", k + 1))
                .spawn(move || worker_main(shared, k + 1))
                .expect("spawning ihtl-parallel pool worker");
        }
        shared
    })
}

/// Pool worker loop: park until a new generation is published, run the job
/// under this worker's fixed index, report completion, park again. Never
/// returns; workers die with the process.
fn worker_main(shared: &'static Shared, idx: usize) {
    let mut last_gen = 0u64;
    let mut st = lock_ok(&shared.state);
    loop {
        {
            // Spans the park time between regions; recorded only when a
            // wake actually ends a wait (and tracing is on at entry).
            let _idle = ihtl_trace::span("worker_idle").with_arg(idx as u64);
            while st.generation == last_gen {
                st = shared.start.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
        last_gen = st.generation;
        let job = st.job.expect("region published without a job");
        drop(st);

        WORKER_INDEX.with(|c| c.set(Some(idx)));
        let busy = ihtl_trace::span("worker_busy").with_arg(idx as u64);
        // SAFETY: `job.data` points at the region closure published by
        // `run_region`, which blocks until `remaining == 0`; this worker
        // decrements only after the call returns or unwinds, so the
        // closure is live for the whole call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.run)(job.data, idx) }));
        drop(busy);
        WORKER_INDEX.with(|c| c.set(None));

        st = lock_ok(&shared.state);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// Runs `f(worker_index)` on the caller (index 0) and every pool worker
/// (their fixed indices `1..num_threads()`), returning when all are done.
/// Panics from any participant are re-raised here after the region ends.
fn run_region<F>(f: &F)
where
    F: Fn(usize) + Sync,
{
    // SAFETY: `data` must be the `&F` published for the current region.
    // Upheld by construction: this generic instantiation is only ever
    // paired with `f as *const F` in the `Job` built below.
    unsafe fn call<F: Fn(usize)>(data: *const (), idx: usize) {
        (*(data as *const F))(idx);
    }
    let shared = pool();
    let region_guard = lock_ok(&shared.region_lock);
    {
        let mut st = lock_ok(&shared.state);
        st.generation += 1;
        st.job = Some(Job { data: f as *const F as *const (), run: call::<F> });
        st.remaining = shared.n_workers;
        shared.start.notify_all();
    }
    // The caller participates as worker 0. Its panic must not unwind past
    // this frame while workers still borrow `f`, so it is caught and
    // re-raised after the join below.
    WORKER_INDEX.with(|c| c.set(Some(0)));
    let caller_result = catch_unwind(AssertUnwindSafe(|| f(0)));
    WORKER_INDEX.with(|c| c.set(None));

    let mut st = lock_ok(&shared.state);
    while st.remaining > 0 {
        // region_lock is held across this wait by design: it serialises
        // whole regions, and the workers being waited on never touch
        // region_lock, so the region driver cannot deadlock here.
        // lint:allow(R6): region serialisation holds region_lock over waits
        st = shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
    }
    st.job = None;
    let worker_panic = st.panic.take();
    drop(st);
    drop(region_guard);
    if let Err(payload) = caller_result {
        resume_unwind(payload);
    }
    if let Some(payload) = worker_panic {
        resume_unwind(payload);
    }
}

/// Whether a region with `n_chunks` chunks should use the pool. `false`
/// forces the sequential path (single-thread config, nested call, or
/// nothing to share).
fn use_pool(n_chunks: usize) -> bool {
    n_chunks > 1 && num_threads() > 1 && current_thread_index().is_none()
}

// ---------------------------------------------------------------------------
// Public scheduling shapes.
// ---------------------------------------------------------------------------

/// Runs `f` over `range` split into chunks of at most `grain` elements.
/// Chunks are claimed dynamically from an atomic counter, so skewed chunk
/// costs balance across workers. Falls back to a plain sequential loop when
/// only one thread is configured, when called from inside another parallel
/// region, or when the range fits in a single chunk.
pub fn par_for_chunks<F>(range: Range<usize>, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(grain);
    if !use_pool(n_chunks) {
        let mut start = range.start;
        while start < range.end {
            let end = (start + grain).min(range.end);
            f(start..end);
            start = end;
        }
        return;
    }
    let next = AtomicUsize::new(0);
    run_region(&|_idx: usize| loop {
        // ORDERING: Relaxed — the counter only hands out distinct chunk
        // indices; the chunk data itself is published by the region
        // start/join (mutex + condvar), not by this fetch_add.
        let chunk = next.fetch_add(1, Ordering::Relaxed);
        if chunk >= n_chunks {
            break;
        }
        let start = range.start + chunk * grain;
        let end = (start + grain).min(range.end);
        f(start..end);
    });
}

/// Per-worker accumulator slots for [`par_map_reduce`], keyed by the
/// distinct worker index — same safety argument as every privatised buffer
/// in the workspace.
struct SlotArray<'a, T>(&'a [UnsafeCell<Option<T>>]);
// SAFETY: each cell is written only through `slot(i)` with the caller's
// distinct worker index, so no two threads ever touch the same cell; `T:
// Send` makes moving each value to the reducing thread sound.
unsafe impl<T: Send> Sync for SlotArray<'_, T> {}

impl<T> SlotArray<'_, T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Sync` wrapper, not the non-`Sync` slice field (edition-2021
    /// closures capture disjoint fields).
    #[inline]
    fn slot(&self, i: usize) -> *mut Option<T> {
        self.0[i].get()
    }
}

/// Maps chunks of `range` through `map` into per-worker accumulators
/// (seeded by `identity`) folded with `fold`, then reduces the worker
/// accumulators with `reduce`. `fold` sees chunks in self-scheduled order,
/// so the operation must be commutative-associative for a deterministic
/// result — true of every use in this workspace (integer counts, sums,
/// min/max).
pub fn par_map_reduce<T, I, M, FO, R>(
    range: Range<usize>,
    grain: usize,
    identity: I,
    map: M,
    fold: FO,
    reduce: R,
) -> T
where
    T: Send,
    I: Fn() -> T + Sync,
    M: Fn(Range<usize>) -> T + Sync,
    FO: Fn(T, T) -> T + Sync,
    R: Fn(T, T) -> T,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return identity();
    }
    let n_chunks = len.div_ceil(grain);
    if !use_pool(n_chunks) {
        let mut acc = identity();
        let mut start = range.start;
        while start < range.end {
            let end = (start + grain).min(range.end);
            acc = fold(acc, map(start..end));
            start = end;
        }
        return acc;
    }
    let slots: Vec<UnsafeCell<Option<T>>> =
        (0..num_threads()).map(|_| UnsafeCell::new(None)).collect();
    let shared = SlotArray(&slots);
    let next = AtomicUsize::new(0);
    run_region(&|idx: usize| {
        let mut acc: Option<T> = None;
        loop {
            // ORDERING: Relaxed — same as par_for_chunks: the counter only
            // partitions work; results are published via the region join.
            let chunk = next.fetch_add(1, Ordering::Relaxed);
            if chunk >= n_chunks {
                break;
            }
            let start = range.start + chunk * grain;
            let end = (start + grain).min(range.end);
            let part = map(start..end);
            acc = Some(match acc.take() {
                Some(a) => fold(a, part),
                None => fold(identity(), part),
            });
        }
        if acc.is_some() {
            // SAFETY: worker indices are distinct within the region, so
            // slot `idx` is written by exactly one thread.
            unsafe { *shared.slot(idx) = acc };
        }
    });
    // Reduce in fixed worker-index order for run-to-run stability given the
    // same chunk→worker assignment.
    let mut acc = identity();
    for cell in slots {
        if let Some(local) = cell.into_inner() {
            acc = reduce(acc, local);
        }
    }
    acc
}

/// Shared-pointer wrapper letting disjoint-index writers run in parallel.
struct SharedMut<T>(*mut T);
// SAFETY: callers only dereference disjoint indices (each participant owns
// a distinct chunk of `0..len`), so the shared raw pointer never aliases a
// concurrently-written element.
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Sync` wrapper, not the raw pointer field (edition-2021
    /// closures capture disjoint fields).
    #[inline]
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Calls `f(i, &mut items[i])` for every index, in parallel, `grain` items
/// per task. Each index is visited exactly once, so the per-item `&mut`
/// borrows are disjoint.
pub fn par_for_each_mut<T, F>(items: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let base = SharedMut(items.as_mut_ptr());
    let len = items.len();
    par_for_chunks(0..len, grain, move |r| {
        for i in r {
            // SAFETY: chunks partition 0..len, so index i is claimed by
            // exactly one worker and the &mut cannot alias.
            let item = unsafe { &mut *base.ptr().add(i) };
            f(i, item);
        }
    });
}

/// Calls `f(i, &items[i])` for every index, in parallel.
pub fn par_for_each<T, F>(items: &[T], grain: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    par_for_chunks(0..items.len(), grain, |r| {
        for i in r {
            f(i, &items[i]);
        }
    });
}

/// Splits `data` into contiguous chunks of at most `chunk` elements and
/// calls `f(chunk_index, chunk)` in parallel — the enumerated
/// chunks-of-a-mutable-slice shape.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let len = data.len();
    let base = SharedMut(data.as_mut_ptr());
    let n_chunks = len.div_ceil(chunk);
    par_for_chunks(0..n_chunks, 1, move |r| {
        for ci in r {
            let start = ci * chunk;
            let end = (start + chunk).min(len);
            // SAFETY: chunk index ci is claimed by exactly one worker and
            // chunks tile 0..len disjointly.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
            f(ci, slice);
        }
    });
}

/// Maps every element through `f` in parallel, preserving order. Results
/// are written directly into the output vector's storage — no intermediate
/// `Vec<Option<U>>`, no re-collection pass.
pub fn par_map<T, U, F>(items: &[T], grain: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let len = items.len();
    let mut out: Vec<U> = Vec::with_capacity(len);
    let base = SharedMut(out.as_mut_ptr());
    par_for_chunks(0..len, grain, |r| {
        for i in r {
            // SAFETY: chunks partition 0..len, so slot i is written exactly
            // once, into capacity reserved above. On panic the region
            // unwinds before `set_len`, so no uninitialised element is ever
            // dropped (written ones leak, which is safe).
            unsafe { base.ptr().add(i).write(f(&items[i])) };
        }
    });
    // SAFETY: the region completed, so all `len` slots are initialised.
    unsafe { out.set_len(len) };
    out
}

/// Overwrites every element with `value`, in parallel — the bulk
/// reset-to-identity used before push phases.
pub fn par_fill<T>(data: &mut [T], value: T)
where
    T: Copy + Send + Sync,
{
    par_for_each_mut(data, 4096, |_, slot| *slot = value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Barrier, Mutex};

    #[test]
    fn num_threads_is_positive_and_stable() {
        let a = num_threads();
        let b = num_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parses_sysfs_cache_sizes() {
        assert_eq!(parse_cache_size("48K"), Some(48 << 10));
        assert_eq!(parse_cache_size("2048K\n"), Some(2 << 20));
        assert_eq!(parse_cache_size("1M"), Some(1 << 20));
        assert_eq!(parse_cache_size("266240K"), Some(266_240 << 10));
        assert_eq!(parse_cache_size("65536"), Some(65_536));
        assert_eq!(parse_cache_size(""), None);
        assert_eq!(parse_cache_size("big"), None);
    }

    #[test]
    fn cache_sizes_are_sane_and_stable() {
        let (buffer, llc) = cache_sizes();
        // Whatever the machine reports, the buffer cache is a real size and
        // the LLC is never smaller than it (enforced by the detector).
        assert!(buffer >= 1 << 12, "buffer {buffer}");
        assert!(llc >= buffer, "llc {llc} < buffer {buffer}");
        assert_eq!(cache_sizes(), (buffer, llc));
    }

    #[test]
    fn honours_ihtl_threads_env() {
        // The worker count is decided once per process, so this asserts
        // against whatever environment the test runs under (the verify
        // script exercises IHTL_THREADS=1 and IHTL_THREADS=4 explicitly).
        if let Ok(v) = std::env::var("IHTL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    assert_eq!(num_threads(), n);
                }
            }
        }
    }

    #[test]
    fn single_thread_config_never_sets_an_index() {
        // With IHTL_THREADS=1 the sequential fallback runs everything on
        // the caller with no worker identity (exercised by verify.sh).
        if num_threads() == 1 {
            par_for_chunks(0..128, 8, |_| {
                assert_eq!(current_thread_index(), None);
            });
        }
    }

    #[test]
    fn no_index_outside_regions() {
        assert_eq!(current_thread_index(), None);
        par_for_chunks(0..1, 1, |_| {});
        assert_eq!(current_thread_index(), None);
    }

    #[test]
    fn par_for_chunks_matches_sequential_sum() {
        let n = 10_000usize;
        let total = AtomicUsize::new(0);
        par_for_chunks(0..n, 64, |r| {
            let local: usize = r.sum();
            total.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 4097usize; // deliberately not a multiple of the grain
        let mut hits = vec![0u8; n];
        par_for_each_mut(&mut hits, 17, |_, h| *h += 1);
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn empty_and_single_element_ranges() {
        let ran = AtomicUsize::new(0);
        par_for_chunks(5..5, 8, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        let seen = Mutex::new(Vec::new());
        par_for_chunks(7..8, 8, |r| seen.lock().unwrap().push(r));
        assert_eq!(*seen.lock().unwrap(), vec![7..8]);
    }

    #[test]
    fn worker_indices_are_distinct_and_in_range() {
        // A barrier sized to the full worker complement (pool + caller)
        // releases only once every worker is simultaneously inside the
        // region — each must therefore hold a distinct index, and none may
        // process two chunks (a blocked worker cannot claim another). With
        // one configured thread the region runs inline with no identity.
        let nt = num_threads();
        if nt == 1 {
            par_for_chunks(0..4, 1, |_| assert_eq!(current_thread_index(), None));
            return;
        }
        let barrier = Barrier::new(nt);
        let seen = Mutex::new(HashSet::new());
        par_for_chunks(0..nt, 1, |r| {
            let idx = current_thread_index().expect("no index inside region");
            assert!(idx < nt, "index {idx} out of 0..{nt}");
            assert!(seen.lock().unwrap().insert(idx), "index {idx} observed twice");
            barrier.wait();
            let _ = r;
        });
        assert_eq!(seen.lock().unwrap().len(), nt);
    }

    #[test]
    fn nested_calls_run_sequentially_with_stable_index() {
        par_for_chunks(0..4, 1, |_| {
            // `Some(idx)` on a pooled worker, `None` on the inline
            // single-thread path; either way a nested region must not
            // change this thread's identity.
            let outer = current_thread_index();
            let inner_hits = AtomicUsize::new(0);
            par_for_chunks(0..16, 4, |r| {
                inner_hits.fetch_add(r.len(), Ordering::Relaxed);
                assert_eq!(current_thread_index(), outer);
            });
            assert_eq!(inner_hits.load(Ordering::Relaxed), 16);
            assert_eq!(current_thread_index(), outer);
        });
    }

    #[test]
    fn pool_survives_many_regions() {
        // Thousands of back-to-back regions reuse the same parked workers;
        // every region must still cover its range exactly.
        for round in 0..2000usize {
            let total = AtomicUsize::new(0);
            par_for_chunks(0..64, 8, |r| {
                total.fetch_add(r.len(), Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 64, "round {round}");
        }
    }

    #[test]
    fn concurrent_top_level_callers_serialise_safely() {
        // Multiple non-pool threads driving regions at once must not
        // deadlock or mix worker indices (regions are serialised by the
        // pool's region lock).
        let handles: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let total = AtomicUsize::new(0);
                        par_for_chunks(0..256, 16, |r| {
                            total.fetch_add(r.sum::<usize>(), Ordering::Relaxed);
                        });
                        assert_eq!(total.load(Ordering::Relaxed), 256 * 255 / 2, "caller {t}");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn panics_propagate_and_pool_survives() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            par_for_chunks(0..64, 1, |r| {
                if r.start == 13 {
                    panic!("deliberate test panic");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the caller");
        // The pool must keep working after a panicked region.
        let total = AtomicUsize::new(0);
        par_for_chunks(0..100, 7, |r| {
            total.fetch_add(r.len(), Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn map_reduce_sums_correctly() {
        let n = 100_000usize;
        let total = par_map_reduce(
            0..n,
            1024,
            || 0u64,
            |r| r.map(|i| i as u64).sum(),
            |a, b| a + b,
            |a, b| a + b,
        );
        assert_eq!(total, (n as u64) * (n as u64 - 1) / 2);
    }

    #[test]
    fn map_reduce_empty_range_is_identity() {
        let v = par_map_reduce(3..3, 8, || 42u64, |_| 0, |a, b| a + b, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn map_reduce_non_commutative_visibility() {
        // Every chunk's contribution must be reduced exactly once even when
        // some workers never claim a chunk (more workers than chunks).
        let total = par_map_reduce(
            0..3,
            1,
            Vec::new,
            |r| r.collect::<Vec<usize>>(),
            |mut a, b| {
                a.extend(b);
                a
            },
            |mut a, b| {
                a.extend(b);
                a
            },
        );
        let mut sorted = total;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2]);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..5000).collect();
        let mapped = par_map(&items, 7, |&x| x * 2);
        assert!(mapped.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn par_map_with_non_copy_values() {
        // Direct writes into uninitialised storage must handle Drop types.
        let items: Vec<usize> = (0..1000).collect();
        let mapped = par_map(&items, 13, |&x| format!("v{x}"));
        assert_eq!(mapped.len(), 1000);
        assert_eq!(mapped[0], "v0");
        assert_eq!(mapped[999], "v999");
    }

    #[test]
    fn par_chunks_mut_tiles_disjointly() {
        let mut data = vec![0usize; 1000];
        par_chunks_mut(&mut data, 33, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 33 + 1);
        }
    }

    #[test]
    fn par_fill_overwrites_everything() {
        let mut data = vec![0.0f64; 12345];
        par_fill(&mut data, 2.5);
        assert!(data.iter().all(|&v| v == 2.5));
    }

    #[test]
    fn parallel_results_match_sequential_path() {
        // The same computation through the parallel region and a plain loop.
        let n = 65_536usize;
        let mut par = vec![0u64; n];
        par_for_each_mut(&mut par, 113, |i, v| *v = (i as u64).wrapping_mul(2654435761));
        let seq: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(2654435761)).collect();
        assert_eq!(par, seq);
    }
}
