//! Zero-dependency parallel substrate for the iHTL workspace.
//!
//! The paper's execution model needs exactly two scheduling shapes:
//!
//! * **chunked parallel-for with dynamic load balancing** — the flipped-block
//!   push phase walks (block × source-chunk) tasks whose cost is wildly
//!   skewed (hubs!), so workers must self-schedule rather than take static
//!   slices (paper §4.1 uses "work stealing over partitioned graphs");
//! * **map-reduce over index ranges** — degree counting and triangle
//!   counting privatise per-worker accumulators and merge them, the same
//!   privatise-and-merge idiom iHTL applies to its hub buffers (§3.4).
//!
//! Both are provided here on plain `std`: a lazily-sized worker count
//! (`IHTL_THREADS` env var, else `available_parallelism`), per-call
//! `std::thread::scope` workers, and an atomic chunk counter acting as the
//! shared work queue — workers grab the next chunk when they finish their
//! last, which is self-scheduling with the same load-balancing effect as
//! stealing for contiguous ranges.
//!
//! Guarantees relied on by the rest of the workspace (notably the
//! privatised hub buffers in `ihtl-core`):
//!
//! * inside a parallel region every concurrent worker observes a distinct
//!   [`current_thread_index`] in `0..num_threads()`;
//! * outside any region (and on the sequential fallback path)
//!   `current_thread_index()` is `None`;
//! * nested parallel calls from inside a worker run sequentially *on that
//!   worker*, so an index can never be observed by two live threads;
//! * with `num_threads() == 1` no thread is ever spawned — single-core
//!   containers pay nothing but a function call.

use std::cell::Cell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

static NUM_THREADS: OnceLock<usize> = OnceLock::new();

thread_local! {
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel regions use, decided once per process:
/// the `IHTL_THREADS` environment variable if set to a positive integer,
/// otherwise [`std::thread::available_parallelism`], otherwise 1.
pub fn num_threads() -> usize {
    *NUM_THREADS.get_or_init(|| {
        std::env::var("IHTL_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
    })
}

/// The calling thread's worker index inside a parallel region
/// (`Some(0..num_threads())`), or `None` outside one. Stable for the whole
/// region, so it can key per-thread privatised state.
pub fn current_thread_index() -> Option<usize> {
    WORKER_INDEX.with(|c| c.get())
}

/// Runs `f` over `range` split into chunks of at most `grain` elements.
/// Chunks are claimed dynamically from an atomic counter, so skewed chunk
/// costs balance across workers. Falls back to a plain sequential loop when
/// only one thread is configured, when called from inside another parallel
/// region, or when the range fits in a single chunk.
pub fn par_for_chunks<F>(range: Range<usize>, grain: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return;
    }
    let n_chunks = len.div_ceil(grain);
    let workers = worker_count(n_chunks);
    if workers == 1 {
        let mut start = range.start;
        while start < range.end {
            let end = (start + grain).min(range.end);
            f(start..end);
            start = end;
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for idx in 1..workers {
            let f = &f;
            let next = &next;
            let range = range.clone();
            s.spawn(move || chunk_loop(idx, range, grain, n_chunks, next, f));
        }
        chunk_loop(0, range.clone(), grain, n_chunks, &next, &f);
    });
}

/// How many workers a region with `n_chunks` chunks should use: 1 forces
/// the sequential path (single-thread config, nested call, or nothing to
/// share).
fn worker_count(n_chunks: usize) -> usize {
    let nt = num_threads();
    if nt == 1 || current_thread_index().is_some() || n_chunks <= 1 {
        1
    } else {
        nt.min(n_chunks)
    }
}

fn chunk_loop<F>(
    idx: usize,
    range: Range<usize>,
    grain: usize,
    n_chunks: usize,
    next: &AtomicUsize,
    f: &F,
) where
    F: Fn(Range<usize>) + Sync,
{
    WORKER_INDEX.with(|c| c.set(Some(idx)));
    loop {
        let chunk = next.fetch_add(1, Ordering::Relaxed);
        if chunk >= n_chunks {
            break;
        }
        let start = range.start + chunk * grain;
        let end = (start + grain).min(range.end);
        f(start..end);
    }
    WORKER_INDEX.with(|c| c.set(None));
}

/// Maps chunks of `range` through `map` into per-worker accumulators
/// (seeded by `identity`) folded with `fold`, then reduces the worker
/// accumulators with `reduce`. `fold` sees chunks in self-scheduled order,
/// so the operation must be commutative-associative for a deterministic
/// result — true of every use in this workspace (integer counts, sums,
/// min/max).
pub fn par_map_reduce<T, I, M, FO, R>(
    range: Range<usize>,
    grain: usize,
    identity: I,
    map: M,
    fold: FO,
    reduce: R,
) -> T
where
    T: Send,
    I: Fn() -> T + Sync,
    M: Fn(Range<usize>) -> T + Sync,
    FO: Fn(T, T) -> T + Sync,
    R: Fn(T, T) -> T,
{
    let grain = grain.max(1);
    let len = range.end.saturating_sub(range.start);
    if len == 0 {
        return identity();
    }
    let n_chunks = len.div_ceil(grain);
    let workers = worker_count(n_chunks);
    if workers == 1 {
        let mut acc = identity();
        let mut start = range.start;
        while start < range.end {
            let end = (start + grain).min(range.end);
            acc = fold(acc, map(start..end));
            start = end;
        }
        return acc;
    }
    let next = AtomicUsize::new(0);
    let locals: Vec<T> = std::thread::scope(|s| {
        let handles: Vec<_> = (1..workers)
            .map(|idx| {
                let map = &map;
                let fold = &fold;
                let identity = &identity;
                let next = &next;
                let range = range.clone();
                s.spawn(move || {
                    map_reduce_loop(idx, range, grain, n_chunks, next, identity, map, fold)
                })
            })
            .collect();
        let mine =
            map_reduce_loop(0, range.clone(), grain, n_chunks, &next, &identity, &map, &fold);
        let mut locals = vec![mine];
        for h in handles {
            locals.push(h.join().expect("ihtl-parallel worker panicked"));
        }
        locals
    });
    let mut acc = identity();
    for local in locals {
        acc = reduce(acc, local);
    }
    acc
}

#[allow(clippy::too_many_arguments)]
fn map_reduce_loop<T, I, M, FO>(
    idx: usize,
    range: Range<usize>,
    grain: usize,
    n_chunks: usize,
    next: &AtomicUsize,
    identity: &I,
    map: &M,
    fold: &FO,
) -> T
where
    I: Fn() -> T,
    M: Fn(Range<usize>) -> T,
    FO: Fn(T, T) -> T,
{
    WORKER_INDEX.with(|c| c.set(Some(idx)));
    let mut acc = identity();
    loop {
        let chunk = next.fetch_add(1, Ordering::Relaxed);
        if chunk >= n_chunks {
            break;
        }
        let start = range.start + chunk * grain;
        let end = (start + grain).min(range.end);
        acc = fold(acc, map(start..end));
    }
    WORKER_INDEX.with(|c| c.set(None));
    acc
}

/// Shared-pointer wrapper letting disjoint-index writers run in parallel.
struct SharedMut<T>(*mut T);
unsafe impl<T: Send> Sync for SharedMut<T> {}

impl<T> SharedMut<T> {
    /// Accessor (rather than direct field use) so closures capture the
    /// whole `Sync` wrapper, not the raw pointer field (edition-2021
    /// closures capture disjoint fields).
    #[inline]
    fn ptr(&self) -> *mut T {
        self.0
    }
}

/// Calls `f(i, &mut items[i])` for every index, in parallel, `grain` items
/// per task. Each index is visited exactly once, so the per-item `&mut`
/// borrows are disjoint.
pub fn par_for_each_mut<T, F>(items: &mut [T], grain: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let base = SharedMut(items.as_mut_ptr());
    let len = items.len();
    par_for_chunks(0..len, grain, move |r| {
        for i in r {
            // SAFETY: chunks partition 0..len, so index i is claimed by
            // exactly one worker and the &mut cannot alias.
            let item = unsafe { &mut *base.ptr().add(i) };
            f(i, item);
        }
    });
}

/// Calls `f(i, &items[i])` for every index, in parallel.
pub fn par_for_each<T, F>(items: &[T], grain: usize, f: F)
where
    T: Sync,
    F: Fn(usize, &T) + Sync,
{
    par_for_chunks(0..items.len(), grain, |r| {
        for i in r {
            f(i, &items[i]);
        }
    });
}

/// Splits `data` into contiguous chunks of at most `chunk` elements and
/// calls `f(chunk_index, chunk)` in parallel — the enumerated
/// chunks-of-a-mutable-slice shape.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    let len = data.len();
    let base = SharedMut(data.as_mut_ptr());
    let n_chunks = len.div_ceil(chunk);
    par_for_chunks(0..n_chunks, 1, move |r| {
        for ci in r {
            let start = ci * chunk;
            let end = (start + chunk).min(len);
            // SAFETY: chunk index ci is claimed by exactly one worker and
            // chunks tile 0..len disjointly.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.ptr().add(start), end - start) };
            f(ci, slice);
        }
    });
}

/// Maps every element through `f` in parallel, preserving order.
pub fn par_map<T, U, F>(items: &[T], grain: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
    par_for_each_mut(&mut out, grain, |i, slot| *slot = Some(f(&items[i])));
    out.into_iter().map(|o| o.expect("par_map slot unfilled")).collect()
}

/// Overwrites every element with `value`, in parallel — the bulk
/// reset-to-identity used before push phases.
pub fn par_fill<T>(data: &mut [T], value: T)
where
    T: Copy + Send + Sync,
{
    par_for_each_mut(data, 4096, |_, slot| *slot = value);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn num_threads_is_positive_and_stable() {
        let a = num_threads();
        let b = num_threads();
        assert!(a >= 1);
        assert_eq!(a, b);
    }

    #[test]
    fn honours_ihtl_threads_env() {
        // The worker count is decided once per process, so this asserts
        // against whatever environment the test runs under (the verify
        // script exercises IHTL_THREADS=1 and IHTL_THREADS=4 explicitly).
        if let Ok(v) = std::env::var("IHTL_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    assert_eq!(num_threads(), n);
                }
            }
        }
    }

    #[test]
    fn single_thread_config_never_sets_an_index() {
        // With IHTL_THREADS=1 the sequential fallback runs everything on
        // the caller with no worker identity (exercised by verify.sh).
        if num_threads() == 1 {
            par_for_chunks(0..128, 8, |_| {
                assert_eq!(current_thread_index(), None);
            });
        }
    }

    #[test]
    fn no_index_outside_regions() {
        assert_eq!(current_thread_index(), None);
        par_for_chunks(0..1, 1, |_| {});
        assert_eq!(current_thread_index(), None);
    }

    #[test]
    fn par_for_chunks_matches_sequential_sum() {
        let n = 10_000usize;
        let total = AtomicUsize::new(0);
        par_for_chunks(0..n, 64, |r| {
            let local: usize = r.sum();
            total.fetch_add(local, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), n * (n - 1) / 2);
    }

    #[test]
    fn covers_every_index_exactly_once() {
        let n = 4097usize; // deliberately not a multiple of the grain
        let mut hits = vec![0u8; n];
        par_for_each_mut(&mut hits, 17, |_, h| *h += 1);
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn empty_and_single_element_ranges() {
        let ran = AtomicUsize::new(0);
        par_for_chunks(5..5, 8, |_| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        let seen = Mutex::new(Vec::new());
        par_for_chunks(7..8, 8, |r| seen.lock().unwrap().push(r));
        assert_eq!(*seen.lock().unwrap(), vec![7..8]);
    }

    #[test]
    fn worker_indices_are_distinct_and_in_range() {
        // With one configured thread the region runs inline on the caller
        // and no worker identity exists; with more, every index reported
        // inside the region must fall in 0..num_threads().
        let nt = num_threads();
        let seen = Mutex::new(HashSet::new());
        let hits = AtomicUsize::new(0);
        par_for_chunks(0..nt * 8, 1, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
            if nt == 1 {
                assert_eq!(current_thread_index(), None);
            } else {
                let idx = current_thread_index().expect("no index inside region");
                assert!(idx < nt, "index {idx} out of 0..{nt}");
                seen.lock().unwrap().insert(idx);
                // Hold the worker briefly so concurrent workers overlap and
                // report their (distinct, thread-local) indices.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
        });
        assert_eq!(hits.load(Ordering::Relaxed), nt * 8);
        if nt > 1 {
            assert!(!seen.lock().unwrap().is_empty());
        }
    }

    #[test]
    fn nested_calls_run_sequentially_with_stable_index() {
        par_for_chunks(0..4, 1, |_| {
            // `Some(idx)` on a pooled worker, `None` on the inline
            // single-thread path; either way a nested region must not
            // change this thread's identity.
            let outer = current_thread_index();
            let inner_hits = AtomicUsize::new(0);
            par_for_chunks(0..16, 4, |r| {
                inner_hits.fetch_add(r.len(), Ordering::Relaxed);
                assert_eq!(current_thread_index(), outer);
            });
            assert_eq!(inner_hits.load(Ordering::Relaxed), 16);
            assert_eq!(current_thread_index(), outer);
        });
    }

    #[test]
    fn map_reduce_sums_correctly() {
        let n = 100_000usize;
        let total = par_map_reduce(
            0..n,
            1024,
            || 0u64,
            |r| r.map(|i| i as u64).sum(),
            |a, b| a + b,
            |a, b| a + b,
        );
        assert_eq!(total, (n as u64) * (n as u64 - 1) / 2);
    }

    #[test]
    fn map_reduce_empty_range_is_identity() {
        let v = par_map_reduce(3..3, 8, || 42u64, |_| 0, |a, b| a + b, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<usize> = (0..5000).collect();
        let mapped = par_map(&items, 7, |&x| x * 2);
        assert!(mapped.iter().enumerate().all(|(i, &v)| v == i * 2));
    }

    #[test]
    fn par_chunks_mut_tiles_disjointly() {
        let mut data = vec![0usize; 1000];
        par_chunks_mut(&mut data, 33, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v = ci + 1;
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v, i / 33 + 1);
        }
    }

    #[test]
    fn par_fill_overwrites_everything() {
        let mut data = vec![0.0f64; 12345];
        par_fill(&mut data, 2.5);
        assert!(data.iter().all(|&v| v == 2.5));
    }

    #[test]
    fn parallel_results_match_sequential_path() {
        // The same computation through the parallel region and a plain loop.
        let n = 65_536usize;
        let mut par = vec![0u64; n];
        par_for_each_mut(&mut par, 113, |i, v| *v = (i as u64).wrapping_mul(2654435761));
        let seq: Vec<u64> = (0..n as u64).map(|i| i.wrapping_mul(2654435761)).collect();
        assert_eq!(par, seq);
    }
}
