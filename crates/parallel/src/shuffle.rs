//! Deterministic schedule-permutation harness for concurrency tests.
//!
//! Real races are timing-dependent: the registry evicting an engine while a
//! checkout is mid-flight, a batch leader abandoning a slot just as a
//! follower's deadline expires, a scheduler draining its queue during
//! shutdown. Running such tests under the OS scheduler explores one
//! interleaving per run — usually the same one. This module explores *many*
//! interleavings, reproducibly:
//!
//! * every participant runs on its own thread, but the harness serialises
//!   them with a **turn token** — exactly one participant executes at a
//!   time, everyone else is parked on a condvar;
//! * participants mark *yield points* with [`Yield::point`]. At each point a
//!   seeded PRNG decides whether to preempt the runner and which ready
//!   participant proceeds instead (bounded by a preemption budget, the
//!   classic bounded-preemption result: most schedule-sensitive bugs need
//!   only a handful of forced switches);
//! * a fixed seed replays the exact same interleaving, so a failing seed is
//!   a reproducer, not a flake.
//!
//! The model is sound only if the code *between* two yield points never
//! blocks on another participant: each step must run to completion on its
//! own (acquire-and-release a lock, complete a timed wait, finish an I/O).
//! Under that contract the harness is deadlock-free by construction — the
//! turn token always moves, because the runner always reaches its next
//! `point()` or its end. Placing a `point()` *inside* a critical section
//! another participant can enter is fine (the suspended thread holds the
//! lock, the scheduled one blocks on it — but the suspended thread is not
//! runnable until scheduled, and the harness only schedules participants
//! parked *at* a yield point or not yet started); placing one before a wait
//! that only another participant can satisfy is not.
//!
//! The embedded PCG-XSL-RR generator duplicates `ihtl_gen::Pcg64` because
//! depending on `ihtl-gen` here would cycle the crate graph
//! (gen → parallel). Keeping the harness std-only also lets any crate's
//! integration tests use it.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

use crate::lock_ok;

/// Minimal PCG-XSL-RR 128/64 — same construction as `ihtl_gen::Pcg64`,
/// embedded to keep this crate at the bottom of the dependency graph.
struct Pcg64 {
    state: u128,
    inc: u128,
}

impl Pcg64 {
    const MUL: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

    fn new(seed: u64) -> Self {
        let mut rng = Pcg64 { state: 0, inc: ((seed as u128) << 1) | 1 };
        rng.next_u64();
        rng.state = rng.state.wrapping_add(0x9e37_79b9_7f4a_7c15 ^ (seed as u128));
        rng.next_u64();
        rng
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_mul(Self::MUL).wrapping_add(self.inc);
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        let rot = (self.state >> 122) as u32;
        xored.rotate_right(rot)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Scheduler state, guarded by `Inner::turn`. All PRNG draws happen under
/// this lock and only on the thread holding the turn, which is what makes a
/// run a pure function of the seed.
struct State {
    /// Index of the participant allowed to run.
    current: usize,
    done: Vec<bool>,
    rng: Pcg64,
    preemptions_left: u32,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Inner {
    turn: Mutex<State>,
    cv: Condvar,
}

impl Inner {
    /// Hands the turn to a PRNG-chosen unfinished participant (used when the
    /// runner finishes; does not consume preemption budget).
    fn pass_turn(&self, st: &mut State) {
        let ready: Vec<usize> = (0..st.done.len()).filter(|&j| !st.done[j]).collect();
        if !ready.is_empty() {
            st.current = ready[st.rng.below(ready.len())];
        }
        self.cv.notify_all();
    }
}

/// One participant: a closure run on its own thread, yielding at the
/// points whose interleavings the test wants explored.
pub type Participant = Box<dyn FnOnce(&Yield) + Send>;

/// Per-participant handle: call [`Yield::point`] between the steps whose
/// interleavings the test wants explored.
pub struct Yield {
    inner: Arc<Inner>,
    id: usize,
}

impl Yield {
    /// A yield point. With probability ½ (and while the preemption budget
    /// lasts) the harness suspends this participant here and schedules
    /// another ready one; the call returns when the turn comes back.
    pub fn point(&self) {
        let mut st = lock_ok(&self.inner.turn);
        debug_assert_eq!(st.current, self.id, "point() called off-turn");
        // Once a sibling has panicked, stop permuting: let every participant
        // run straight to its end so `run` can join and re-raise.
        if st.panic.is_some() || st.preemptions_left == 0 {
            return;
        }
        let others: Vec<usize> =
            (0..st.done.len()).filter(|&j| j != self.id && !st.done[j]).collect();
        if others.is_empty() || st.rng.next_u64().is_multiple_of(2) {
            return;
        }
        st.preemptions_left -= 1;
        st.current = others[st.rng.below(others.len())];
        self.inner.cv.notify_all();
        while st.current != self.id {
            st = self.inner.cv.wait(st).unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Runs `participants` under the schedule permutation selected by `seed`,
/// with at most `preemption_budget` forced context switches. Returns when
/// every participant has finished; re-raises the first participant panic on
/// the caller (like `ihtl-parallel` regions do).
pub fn run(seed: u64, preemption_budget: u32, participants: Vec<Participant>) {
    let n = participants.len();
    if n == 0 {
        return;
    }
    let inner = Arc::new(Inner {
        turn: Mutex::new(State {
            current: 0,
            done: vec![false; n],
            rng: Pcg64::new(seed),
            preemptions_left: preemption_budget,
            panic: None,
        }),
        cv: Condvar::new(),
    });
    {
        let mut st = lock_ok(&inner.turn);
        st.current = st.rng.below(n);
    }
    let handles: Vec<_> = participants
        .into_iter()
        .enumerate()
        .map(|(id, f)| {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || {
                {
                    let mut st = lock_ok(&inner.turn);
                    while st.current != id {
                        st = inner.cv.wait(st).unwrap_or_else(|poisoned| poisoned.into_inner());
                    }
                }
                let handle = Yield { inner: Arc::clone(&inner), id };
                let result = catch_unwind(AssertUnwindSafe(|| f(&handle)));
                let mut st = lock_ok(&inner.turn);
                st.done[id] = true;
                if let Err(payload) = result {
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                }
                inner.pass_turn(&mut st);
            })
        })
        .collect();
    for h in handles {
        // Participant panics are captured in `State::panic`; the join itself
        // cannot fail for any other reason.
        let _ = h.join();
    }
    let payload = lock_ok(&inner.turn).panic.take();
    if let Some(p) = payload {
        resume_unwind(p);
    }
}

/// Number of seeds a shuffle test should sweep: `IHTL_SHUFFLE_SEEDS` when
/// set to a positive integer (verify.sh sets 64), else `default`.
pub fn seed_count(default: u64) -> u64 {
    std::env::var("IHTL_SHUFFLE_SEEDS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs two participants that each append their (id, step) pairs to a
    /// shared trace, yielding between appends; returns the trace.
    fn trace_run(seed: u64, budget: u32) -> Vec<(usize, usize)> {
        let trace = Arc::new(Mutex::new(Vec::new()));
        let mk = |id: usize, trace: Arc<Mutex<Vec<(usize, usize)>>>| {
            Box::new(move |y: &Yield| {
                for step in 0..4 {
                    y.point();
                    lock_ok(&trace).push((id, step));
                }
            }) as Box<dyn FnOnce(&Yield) + Send>
        };
        run(seed, budget, vec![mk(0, Arc::clone(&trace)), mk(1, Arc::clone(&trace))]);
        let out = lock_ok(&trace).clone();
        out
    }

    #[test]
    fn same_seed_replays_the_same_interleaving() {
        for seed in 0..16 {
            assert_eq!(trace_run(seed, 8), trace_run(seed, 8), "seed {seed}");
        }
    }

    #[test]
    fn different_seeds_explore_different_interleavings() {
        let mut distinct = std::collections::BTreeSet::new();
        for seed in 0..32 {
            distinct.insert(trace_run(seed, 8));
        }
        assert!(distinct.len() > 1, "32 seeds produced a single interleaving");
    }

    #[test]
    fn zero_budget_runs_participants_back_to_back() {
        // Without preemptions the only switches happen at participant exit,
        // so each participant's steps are contiguous in the trace.
        let trace = trace_run(7, 0);
        let ids: Vec<usize> = trace.iter().map(|&(id, _)| id).collect();
        let switches = ids.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 1, "zero-budget run interleaved: {ids:?}");
    }

    #[test]
    fn every_step_runs_exactly_once_under_any_schedule() {
        for seed in 0..64 {
            let trace = trace_run(seed, 16);
            assert_eq!(trace.len(), 8, "seed {seed}: {trace:?}");
            for id in 0..2 {
                let steps: Vec<usize> =
                    trace.iter().filter(|&&(i, _)| i == id).map(|&(_, s)| s).collect();
                assert_eq!(steps, vec![0, 1, 2, 3], "seed {seed} participant {id}");
            }
        }
    }

    #[test]
    fn participant_panic_propagates_and_siblings_finish() {
        let finished = Arc::new(Mutex::new(false));
        let fin = Arc::clone(&finished);
        let res = std::panic::catch_unwind(AssertUnwindSafe(|| {
            run(
                3,
                8,
                vec![
                    Box::new(|y: &Yield| {
                        y.point();
                        panic!("boom");
                    }),
                    Box::new(move |y: &Yield| {
                        y.point();
                        *lock_ok(&fin) = true;
                    }),
                ],
            );
        }));
        assert!(res.is_err(), "panic was swallowed");
        assert!(*lock_ok(&finished), "sibling did not run to completion");
    }

    #[test]
    fn seed_count_respects_environment() {
        // The env var is process-global and tests run concurrently, so read
        // it rather than mutate it.
        let expect = std::env::var("IHTL_SHUFFLE_SEEDS")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .filter(|&n: &u64| n > 0)
            .unwrap_or(8);
        assert_eq!(seed_count(8), expect);
    }
}
