//! Access-stream replays of the traversals.
//!
//! Each replay walks the traversal in program order, issuing the data
//! accesses a single worker would issue, and routes them through the
//! [`Hierarchy`]. Accounting per access class (instruction-level loads and
//! stores):
//!
//! **Pull SpMV** (Algorithm 1): per destination — 1 offset load and 1 result
//! store; per edge — 1 neighbour-ID load and 1 source-data load (the random
//! one).
//!
//! **iHTL SpMV** (Algorithm 3): buffer reset — 1 store per hub slot; per
//! compacted flipped-block row — 1 offset load, 1 source-map (`srcs`) load
//! and 1 source-data load (the latter ascending but gapped; re-fetched per
//! block, which is exactly the §3.3 cost of extra blocks); per
//! flipped-block edge — 1 neighbour-ID load plus a
//! buffer read-modify-write (1 load + 1 store, the random-but-small
//! access); merge — 1 buffer load + 1 result store per hub; then the
//! sparse block is replayed like pull.
//!
//! LLC (here: L3) misses among the *random* accesses are attributed to the
//! destination vertex being processed and bucketed by its original
//! in-degree — reproducing Figure 1.

use ihtl_core::IhtlGraph;
use ihtl_graph::{Graph, VertexId};

use crate::hierarchy::{CacheConfig, Counters, Hierarchy, Level};

/// Which accesses the replay routes through the cache hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// Every data access is simulated: vertex data, buffers, result writes,
    /// and the streamed topology (offsets + neighbour IDs). The Table 3
    /// model.
    Full,
    /// Only the *random* stream is simulated — source reads in pull, buffer
    /// updates in push — matching the paper's Figure 2 worked-example model
    /// ("cache contains data of source (S) vertices in pull direction, or
    /// destination (D) vertices in push direction").
    RandomOnly,
}

/// Disjoint address regions (byte addresses).
const X_BASE: u64 = 0; // input vertex data, 8 B per vertex
const Y_BASE: u64 = 1 << 40; // output vertex data
const OFFS_BASE: u64 = 2 << 40; // CSR/CSC offsets, 8 B
const TOPO_BASE: u64 = 3 << 40; // neighbour IDs, 4 B
const BUF_BASE: u64 = 4 << 40; // iHTL per-thread hub buffer
const SRCS_BASE: u64 = 5 << 40; // iHTL compacted-row source maps, 4 B
const BINS_BASE: u64 = 6 << 40; // PB binned destination IDs, 4 B

/// Aggregated LLC miss rate per power-of-two in-degree bucket (Figure 1).
#[derive(Clone, Debug, Default)]
pub struct DegreeMissProfile {
    /// bucket index `b` covers degrees `[2^b, 2^(b+1))`.
    buckets: Vec<BucketAgg>,
}

#[derive(Clone, Copy, Debug, Default)]
struct BucketAgg {
    n_vertices: u64,
    random_accesses: u64,
    llc_misses: u64,
}

/// One reported row of the profile.
#[derive(Clone, Copy, Debug)]
pub struct ProfileRow {
    /// Inclusive lower degree bound of the bucket (a power of two).
    pub degree_lo: usize,
    /// Exclusive upper bound.
    pub degree_hi: usize,
    pub n_vertices: u64,
    pub random_accesses: u64,
    pub llc_misses: u64,
}

impl ProfileRow {
    /// Fraction of this bucket's random accesses that missed the LLC.
    pub fn miss_rate(&self) -> f64 {
        if self.random_accesses == 0 {
            0.0
        } else {
            self.llc_misses as f64 / self.random_accesses as f64
        }
    }
}

impl DegreeMissProfile {
    fn record(&mut self, degree: usize, accesses: u64, misses: u64) {
        if degree == 0 {
            return;
        }
        let b = (usize::BITS - 1 - degree.leading_zeros()) as usize;
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, BucketAgg::default());
        }
        let agg = &mut self.buckets[b];
        agg.n_vertices += 1;
        agg.random_accesses += accesses;
        agg.llc_misses += misses;
    }

    /// Non-empty buckets, ascending by degree.
    pub fn rows(&self) -> Vec<ProfileRow> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, a)| a.n_vertices > 0)
            .map(|(b, a)| ProfileRow {
                degree_lo: 1 << b,
                degree_hi: 1 << (b + 1),
                n_vertices: a.n_vertices,
                random_accesses: a.random_accesses,
                llc_misses: a.llc_misses,
            })
            .collect()
    }

    /// Overall miss rate across all buckets.
    pub fn overall_miss_rate(&self) -> f64 {
        let (acc, miss) = self
            .buckets
            .iter()
            .fold((0u64, 0u64), |(a, m), b| (a + b.random_accesses, m + b.llc_misses));
        if acc == 0 {
            0.0
        } else {
            miss as f64 / acc as f64
        }
    }
}

/// Outcome of one replay.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Hierarchy counters over the whole traversal (Table 3 columns).
    pub counters: Counters,
    /// Per-degree LLC miss profile of the random accesses (Figure 1).
    pub profile: DegreeMissProfile,
}

/// Replays one pull-SpMV iteration over `g` (Algorithm 1).
pub fn replay_pull(g: &Graph, cfg: &CacheConfig, mode: ReplayMode) -> ReplayReport {
    let full = mode == ReplayMode::Full;
    let mut h = Hierarchy::new(cfg);
    let mut profile = DegreeMissProfile::default();
    let mut topo_ptr = TOPO_BASE;
    for (v, ins) in g.csc().iter_rows() {
        if full {
            h.access(OFFS_BASE + 8 * v as u64);
        }
        let mut misses = 0u64;
        for &u in ins {
            if full {
                h.access(topo_ptr);
                topo_ptr += 4;
            }
            if h.access(X_BASE + 8 * u as u64) == Level::Memory {
                misses += 1;
            }
        }
        profile.record(ins.len(), ins.len() as u64, misses);
        if full {
            h.access(Y_BASE + 8 * v as u64);
        }
    }
    ReplayReport { counters: h.counters(), profile }
}

/// Replays one iHTL SpMV iteration (Algorithm 3) over the blocked graph.
/// `g` is the original graph, used to attribute hub misses to original
/// in-degrees. Random buffer accesses during flipped blocks and random
/// source reads during the sparse block feed the degree profile.
pub fn replay_ihtl(ih: &IhtlGraph, g: &Graph, cfg: &CacheConfig, mode: ReplayMode) -> ReplayReport {
    let full = mode == ReplayMode::Full;
    let mut h = Hierarchy::new(cfg);
    let mut profile = DegreeMissProfile::default();
    let n_hubs = ih.n_hubs();
    let new_to_old = ih.new_to_old();

    // Per-hub accumulation for the degree profile.
    let mut hub_accesses = vec![0u64; n_hubs];
    let mut hub_misses = vec![0u64; n_hubs];

    // --- Buffer reset (sequential stores). ---
    if full {
        for slot in 0..n_hubs as u64 {
            h.access(BUF_BASE + 8 * slot);
        }
    }

    // --- Flipped blocks: push with buffered random writes. ---
    // Rows are compacted to feeding sources: the kernel streams the
    // per-block offset and `srcs` arrays and touches `x` only at listed
    // sources — no access is issued for sources absent from the block.
    let mut topo_ptr = TOPO_BASE;
    for blk in ih.blocks() {
        let base = blk.hub_start as u64;
        for (row, hubs) in blk.edges.iter_rows() {
            let u = blk.srcs[row as usize];
            if full {
                h.access(OFFS_BASE + 8 * row as u64);
                h.access(SRCS_BASE + 4 * row as u64);
                // Source-data read, ascending within the block, once per
                // compacted row per block.
                h.access(X_BASE + 8 * u as u64);
            }
            for &local in hubs {
                if full {
                    h.access(topo_ptr);
                    topo_ptr += 4;
                }
                let hub_global = base + local as u64;
                let addr = BUF_BASE + 8 * hub_global;
                // Read-modify-write of the buffer slot.
                let lvl = h.access(addr);
                if full {
                    h.access(addr);
                }
                hub_accesses[hub_global as usize] += 1;
                if lvl == Level::Memory {
                    hub_misses[hub_global as usize] += 1;
                }
            }
        }
    }
    for hub in 0..n_hubs {
        let old = new_to_old[hub] as VertexId;
        profile.record(g.in_degree(old), hub_accesses[hub], hub_misses[hub]);
    }

    // --- Merge: one buffer load + one result store per hub. ---
    if full {
        for hub in 0..n_hubs as u64 {
            h.access(BUF_BASE + 8 * hub);
            h.access(Y_BASE + 8 * hub);
        }
    }

    // --- Sparse block: pull over non-hub destinations. ---
    let sparse = ih.sparse();
    for (row, ins) in sparse.iter_rows() {
        let dst_new = n_hubs as u64 + row as u64;
        if full {
            h.access(OFFS_BASE + 8 * dst_new);
        }
        let mut misses = 0u64;
        for &u in ins {
            if full {
                h.access(topo_ptr);
                topo_ptr += 4;
            }
            if h.access(X_BASE + 8 * u as u64) == Level::Memory {
                misses += 1;
            }
        }
        let old = new_to_old[dst_new as usize];
        profile.record(g.in_degree(old), ins.len() as u64, misses);
        if full {
            h.access(Y_BASE + 8 * dst_new);
        }
    }

    ReplayReport { counters: h.counters(), profile }
}

/// Replays one propagation-blocking SpMV iteration over `g` with merge
/// segments of `seg_vertices` destinations (matching
/// `PbGraph::segment_len` — any positive value is accepted here).
///
/// **Bin phase** (sources ascending): per source — 1 offset load and 1
/// source-data load, both sequential; per edge — 1 destination-ID load and
/// 1 slot-index load (streamed), then the binned-value *store*. The store
/// is the push-side random access: it lands on one of `n / seg_vertices`
/// per-segment cursors, each advancing sequentially, so it stays resident
/// as long as one open cache line per segment fits. Stores are attributed
/// to the destination's original in-degree, mirroring the buffer
/// attribution of [`replay_ihtl`], so the Figure-1 profile covers every
/// edge exactly once.
///
/// **Merge phase** (segments ascending): per binned edge — 1 value load
/// and 1 destination-ID load (sequential), then the `y` read-modify-write:
/// random, but confined to one segment of `seg_vertices` destinations and
/// therefore resident by construction. In [`ReplayMode::RandomOnly`] both
/// the bin store and the merge RMW are simulated (they *are* the
/// algorithm's random stream — PB pays two cheap random accesses per edge
/// instead of pull's one expensive one); only the merge RMW's second
/// access and all streamed traffic are gated on [`ReplayMode::Full`].
pub fn replay_pb(
    g: &Graph,
    seg_vertices: usize,
    cfg: &CacheConfig,
    mode: ReplayMode,
) -> ReplayReport {
    let full = mode == ReplayMode::Full;
    let seg = seg_vertices.max(1);
    let n = g.n_vertices();
    let n_segments = n.div_ceil(seg);
    let mut h = Hierarchy::new(cfg);
    let mut profile = DegreeMissProfile::default();

    // Counting sort of edges (in CSR source order) by destination segment —
    // the same slot layout `PbGraph` precomputes as `edge_pos`.
    let mut bin_starts = vec![0u64; n_segments + 1];
    for (_, outs) in g.csr().iter_rows() {
        for &d in outs {
            bin_starts[d as usize / seg + 1] += 1;
        }
    }
    for s in 0..n_segments {
        bin_starts[s + 1] += bin_starts[s];
    }
    let mut cursor = bin_starts.clone();
    let mut slot_dst: Vec<VertexId> = vec![0; g.n_edges()];

    // --- Bin phase. ---
    let mut dst_accesses = vec![0u64; n];
    let mut dst_misses = vec![0u64; n];
    let mut topo_ptr = TOPO_BASE;
    let mut pos_ptr = SRCS_BASE;
    for (u, outs) in g.csr().iter_rows() {
        if full {
            h.access(OFFS_BASE + 8 * u as u64);
            h.access(X_BASE + 8 * u as u64);
        }
        for &d in outs {
            if full {
                h.access(topo_ptr); // destination ID
                topo_ptr += 4;
                h.access(pos_ptr); // precomputed slot index
                pos_ptr += 4;
            }
            let s = d as usize / seg;
            let slot = cursor[s];
            cursor[s] += 1;
            slot_dst[slot as usize] = d;
            dst_accesses[d as usize] += 1;
            if h.access(BUF_BASE + 8 * slot) == Level::Memory {
                dst_misses[d as usize] += 1;
            }
        }
    }
    for v in 0..n {
        profile.record(g.in_degree(v as VertexId), dst_accesses[v], dst_misses[v]);
    }

    // --- Merge phase: replay each segment's bin, RMW into `y`. ---
    for s in 0..n_segments {
        for slot in bin_starts[s]..bin_starts[s + 1] {
            if full {
                h.access(BUF_BASE + 8 * slot); // binned value
                h.access(BINS_BASE + 4 * slot); // binned destination ID
            }
            let d = slot_dst[slot as usize] as u64;
            h.access(Y_BASE + 8 * d);
            if full {
                h.access(Y_BASE + 8 * d); // write half of the RMW
            }
        }
    }

    ReplayReport { counters: h.counters(), profile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_core::IhtlConfig;
    use ihtl_graph::graph::paper_example_graph;

    /// "Effective cache size: 2" — one 8-byte vertex per line, 2 lines,
    /// fully associative at every level (so L3 behaves as the 2-entry
    /// cache of the worked example).
    fn figure2_cfg() -> CacheConfig {
        CacheConfig {
            line_bytes: 8,
            l1_bytes: 16,
            l1_ways: 0,
            l2_bytes: 16,
            l2_ways: 0,
            l3_bytes: 16,
            l3_ways: 0,
        }
    }

    #[test]
    fn figure2_pull_hubs_have_no_reuse() {
        // §2.3: pulling hub 3 (old ID 2) reads 5 sources, all misses; hub 7
        // (old ID 6) reads 4 sources, all misses.
        let g = paper_example_graph();
        let rep = replay_pull(&g, &figure2_cfg(), ReplayMode::RandomOnly);
        let rows = rep.profile.rows();
        // The two hubs live in the degree-4..8 bucket: 9 accesses, 9 misses.
        let hub_row = rows.last().unwrap();
        assert_eq!(hub_row.degree_lo, 4);
        assert_eq!(hub_row.n_vertices, 2);
        assert_eq!(hub_row.random_accesses, 9);
        assert_eq!(hub_row.llc_misses, 9);
        assert_eq!(hub_row.miss_rate(), 1.0);
    }

    #[test]
    fn figure2_ihtl_achieves_reuse_on_hubs() {
        // §2.4: iHTL's push traversal of the flipped block achieves reuse —
        // the 2-hub buffer stays resident, so of the 9 buffered updates at
        // most 2 (compulsory) miss.
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let ih = IhtlGraph::build(&g, &cfg);
        let rep = replay_ihtl(&ih, &g, &figure2_cfg(), ReplayMode::RandomOnly);
        let rows = rep.profile.rows();
        let hub_row = rows.iter().find(|r| r.degree_lo == 4).unwrap();
        assert_eq!(hub_row.random_accesses, 9);
        assert!(hub_row.llc_misses <= 2, "hub misses {} — buffer not captured", hub_row.llc_misses);
    }

    #[test]
    fn ihtl_has_more_accesses_than_pull() {
        // Table 3: "iHTL incurs additional memory accesses".
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let ih = IhtlGraph::build(&g, &cfg);
        let pull = replay_pull(&g, &CacheConfig::default(), ReplayMode::Full);
        let ihtl = replay_ihtl(&ih, &g, &CacheConfig::default(), ReplayMode::Full);
        assert!(ihtl.counters.accesses > pull.counters.accesses);
    }

    #[test]
    fn profile_records_every_destination_once() {
        let g = paper_example_graph();
        let rep = replay_pull(&g, &CacheConfig::default(), ReplayMode::Full);
        let total: u64 = rep.profile.rows().iter().map(|r| r.n_vertices).sum();
        let with_in = (0..8u32).filter(|&v| g.in_degree(v) > 0).count() as u64;
        assert_eq!(total, with_in);
        // Random accesses = |E|.
        let acc: u64 = rep.profile.rows().iter().map(|r| r.random_accesses).sum();
        assert_eq!(acc, g.n_edges() as u64);
    }

    #[test]
    fn ihtl_profile_covers_all_edges_too() {
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let ih = IhtlGraph::build(&g, &cfg);
        let rep = replay_ihtl(&ih, &g, &CacheConfig::default(), ReplayMode::Full);
        let acc: u64 = rep.profile.rows().iter().map(|r| r.random_accesses).sum();
        assert_eq!(acc, g.n_edges() as u64);
    }

    #[test]
    fn pb_profile_covers_all_edges() {
        let g = paper_example_graph();
        let rep = replay_pb(&g, 2, &CacheConfig::default(), ReplayMode::Full);
        let acc: u64 = rep.profile.rows().iter().map(|r| r.random_accesses).sum();
        assert_eq!(acc, g.n_edges() as u64);
        let total: u64 = rep.profile.rows().iter().map(|r| r.n_vertices).sum();
        let with_in = (0..8u32).filter(|&v| g.in_degree(v) > 0).count() as u64;
        assert_eq!(total, with_in);
    }

    #[test]
    fn pb_has_more_accesses_than_pull() {
        // PB streams every contribution out and back in — strictly more
        // traffic than pull, which is exactly what it trades for locality.
        let g = paper_example_graph();
        let pull = replay_pull(&g, &CacheConfig::default(), ReplayMode::Full);
        let pb = replay_pb(&g, 2, &CacheConfig::default(), ReplayMode::Full);
        assert!(pb.counters.accesses > pull.counters.accesses);
    }

    #[test]
    fn pb_keeps_random_stream_resident_on_thrashing_graph() {
        // A graph 64× the cache: pull's random source reads miss nearly
        // always, while PB's bin cursors and segment-resident merges stay
        // cached up to compulsory misses.
        let n = 1024usize;
        let edges: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|v| {
                [
                    (v, v.wrapping_mul(2654435761) % n as u32),
                    (v, v.wrapping_add(7).wrapping_mul(1327217885) % n as u32),
                ]
            })
            .collect();
        let g = Graph::from_edges(n, &edges);
        // 2 KiB of cache vs 8 KiB of vertex data; 64-vertex segments give
        // 16 bin cursors, comfortably under the 32 available lines.
        let cfg = CacheConfig {
            line_bytes: 64,
            l1_bytes: 256,
            l1_ways: 0,
            l2_bytes: 512,
            l2_ways: 0,
            l3_bytes: 2048,
            l3_ways: 0,
        };
        let pull = replay_pull(&g, &cfg, ReplayMode::RandomOnly);
        let pb = replay_pb(&g, 64, &cfg, ReplayMode::RandomOnly);
        assert!(pull.profile.overall_miss_rate() > 0.6);
        assert!(pb.profile.overall_miss_rate() < 0.3);
    }

    #[test]
    fn big_cache_eliminates_capacity_misses() {
        let g = paper_example_graph();
        let big = CacheConfig {
            line_bytes: 8,
            l1_bytes: 8 << 10,
            l1_ways: 0,
            l2_bytes: 16 << 10,
            l2_ways: 0,
            l3_bytes: 32 << 10,
            l3_ways: 0,
        };
        let rep = replay_pull(&g, &big, ReplayMode::RandomOnly);
        // 8 vertices, one line each: at most 8 compulsory misses.
        assert!(rep.counters.l3_misses <= 8 + 8 /* y writes */);
        assert!(rep.profile.overall_miss_rate() <= 1.0);
    }
}
