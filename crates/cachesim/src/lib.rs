//! Software cache-hierarchy simulation.
//!
//! The paper measures its locality claims with PAPI hardware counters
//! (Table 3) and an LLC miss-rate profile conditioned on vertex degree
//! (Figure 1). No hardware counters are available in this environment, so
//! this crate replays the *exact memory-access streams* of the traversals —
//! vertex data, per-thread buffers, and streamed topology — through a
//! set-associative LRU hierarchy and reports the same statistics:
//!
//! * [`lru`] — a single set-associative LRU cache;
//! * [`hierarchy`] — a three-level hierarchy with per-level hit/miss
//!   counters and load/store totals;
//! * [`replay`] — access-stream replays of pull SpMV (Algorithm 1), iHTL
//!   SpMV (Algorithm 3) and propagation-blocking SpMV with
//!   per-destination-degree miss attribution.
//!
//! The default geometry is scaled ~1:32 together with the synthetic
//! datasets (line 64 B; L1 4 KiB; L2 32 KiB — matching the default iHTL
//! buffer budget, as in the paper where buffers are sized to L2; L3
//! 256 KiB).

#![forbid(unsafe_code)]

pub mod hierarchy;
pub mod lru;
pub mod replay;

pub use hierarchy::{CacheConfig, Counters, Hierarchy, Level};
pub use lru::LruCache;
pub use replay::{
    replay_ihtl, replay_pb, replay_pull, DegreeMissProfile, ReplayMode, ReplayReport,
};
