//! Three-level cache hierarchy with counters.

use crate::lru::LruCache;

/// Which level serviced an access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    L1,
    L2,
    L3,
    Memory,
}

/// Geometry of the simulated hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    pub line_bytes: u64,
    pub l1_bytes: u64,
    pub l1_ways: usize,
    pub l2_bytes: u64,
    pub l2_ways: usize,
    pub l3_bytes: u64,
    pub l3_ways: usize,
}

impl Default for CacheConfig {
    /// The paper's Xeon Gold 6130 (32 KB L1 / 1 MB L2 / 22 MB L3) scaled
    /// ~1:32, consistent with the dataset scale-down: 4 KiB L1, 32 KiB L2
    /// (equal to the default iHTL buffer budget, as in the paper where
    /// buffers are sized to L2), 256 KiB L3.
    fn default() -> Self {
        Self {
            line_bytes: 64,
            l1_bytes: 4 << 10,
            l1_ways: 8,
            l2_bytes: 32 << 10,
            l2_ways: 8,
            l3_bytes: 256 << 10,
            l3_ways: 16,
        }
    }
}

/// Per-level access statistics plus instruction-level load/store totals —
/// the columns of the paper's Table 3.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counters {
    /// Data loads + stores issued (Table 3 "Memory Accesses").
    pub accesses: u64,
    pub l1_misses: u64,
    pub l2_misses: u64,
    pub l3_misses: u64,
}

impl Counters {
    /// Difference since `earlier` (all fields monotone).
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            accesses: self.accesses - earlier.accesses,
            l1_misses: self.l1_misses - earlier.l1_misses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            l3_misses: self.l3_misses - earlier.l3_misses,
        }
    }
}

/// An L1/L2/L3 hierarchy. Misses fill every level (inclusive fill — a
/// simplification of the paper machine's NINE L3, adequate for relative
/// comparisons).
pub struct Hierarchy {
    l1: LruCache,
    l2: LruCache,
    l3: LruCache,
    counters: Counters,
}

impl Hierarchy {
    /// Builds the hierarchy from a geometry description.
    pub fn new(cfg: &CacheConfig) -> Self {
        Self {
            l1: LruCache::new(cfg.l1_bytes, cfg.line_bytes, cfg.l1_ways),
            l2: LruCache::new(cfg.l2_bytes, cfg.line_bytes, cfg.l2_ways),
            l3: LruCache::new(cfg.l3_bytes, cfg.line_bytes, cfg.l3_ways),
            counters: Counters::default(),
        }
    }

    /// One data access (load or store — the hierarchy treats them alike,
    /// write-allocate). Returns the level that serviced it.
    #[inline]
    pub fn access(&mut self, addr: u64) -> Level {
        self.counters.accesses += 1;
        if self.l1.access(addr) {
            return Level::L1;
        }
        self.counters.l1_misses += 1;
        if self.l2.access(addr) {
            return Level::L2;
        }
        self.counters.l2_misses += 1;
        if self.l3.access(addr) {
            return Level::L3;
        }
        self.counters.l3_misses += 1;
        Level::Memory
    }

    /// Current counter snapshot.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// Resets counters (cache contents stay — useful for warm-up phases).
    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
    }

    /// Flushes cache contents and counters.
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.l3.clear();
        self.counters = Counters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(&CacheConfig {
            line_bytes: 64,
            l1_bytes: 128,
            l1_ways: 2,
            l2_bytes: 256,
            l2_ways: 2,
            l3_bytes: 512,
            l3_ways: 2,
        })
    }

    #[test]
    fn cold_miss_reaches_memory() {
        let mut h = tiny();
        assert_eq!(h.access(0), Level::Memory);
        assert_eq!(h.access(0), Level::L1);
        let c = h.counters();
        assert_eq!(c.accesses, 2);
        assert_eq!(c.l1_misses, 1);
        assert_eq!(c.l2_misses, 1);
        assert_eq!(c.l3_misses, 1);
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = tiny();
        // L1 holds 2 lines; touch 3 distinct lines mapping over 1 set
        // (128 B, 2 ways, 64 B lines → 1 set).
        h.access(0);
        h.access(64);
        h.access(128); // evicts line 0 from L1 (still in L2)
        assert_eq!(h.access(0), Level::L2);
    }

    #[test]
    fn counters_since() {
        let mut h = tiny();
        h.access(0);
        let snap = h.counters();
        h.access(0);
        h.access(4096);
        let d = h.counters().since(&snap);
        assert_eq!(d.accesses, 2);
        assert_eq!(d.l3_misses, 1);
    }

    #[test]
    fn default_geometry_is_consistent() {
        let cfg = CacheConfig::default();
        let h = Hierarchy::new(&cfg);
        // Construction would have panicked on inconsistent geometry.
        assert_eq!(h.counters(), Counters::default());
        assert!(cfg.l1_bytes < cfg.l2_bytes && cfg.l2_bytes < cfg.l3_bytes);
    }

    #[test]
    fn clear_resets_everything() {
        let mut h = tiny();
        h.access(0);
        h.clear();
        assert_eq!(h.counters(), Counters::default());
        assert_eq!(h.access(0), Level::Memory);
    }
}
