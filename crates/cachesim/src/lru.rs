//! Set-associative LRU cache.

/// A set-associative cache with true-LRU replacement.
///
/// Addresses are byte addresses; the cache maps them to lines of
/// `line_bytes` and distributes lines over `n_sets` sets of
/// `associativity` ways. `n_sets == 1` gives a fully associative cache
/// (used for the paper's Figure 2 worked example with "effective cache
/// size: 2").
#[derive(Clone, Debug)]
pub struct LruCache {
    line_bytes: u64,
    n_sets: u64,
    /// `sets[s]` holds line tags in LRU order, most recent first.
    sets: Vec<Vec<u64>>,
    associativity: usize,
}

impl LruCache {
    /// Builds a cache of `capacity_bytes` with the given line size and
    /// associativity. Capacity must be a multiple of `line_bytes ×
    /// associativity`; associativity 0 means fully associative.
    pub fn new(capacity_bytes: u64, line_bytes: u64, associativity: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        assert!(capacity_bytes >= line_bytes, "capacity below one line");
        let n_lines = capacity_bytes / line_bytes;
        let assoc = if associativity == 0 { n_lines as usize } else { associativity };
        let n_sets = (n_lines / assoc as u64).max(1);
        assert_eq!(
            n_sets * assoc as u64 * line_bytes,
            capacity_bytes,
            "capacity must equal sets × ways × line"
        );
        Self {
            line_bytes,
            n_sets,
            sets: vec![Vec::with_capacity(assoc); n_sets as usize],
            associativity: assoc,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.n_sets * self.associativity as u64 * self.line_bytes
    }

    /// Accesses `addr`; returns `true` on hit. On miss the line is filled
    /// (evicting LRU if the set is full).
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        let set = &mut self.sets[(line % self.n_sets) as usize];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            // Move to MRU position.
            let tag = set.remove(pos);
            set.insert(0, tag);
            true
        } else {
            if set.len() == self.associativity {
                set.pop();
            }
            set.insert(0, line);
            false
        }
    }

    /// Whether the line containing `addr` is currently resident (no state
    /// change).
    pub fn contains(&self, addr: u64) -> bool {
        let line = addr / self.line_bytes;
        self.sets[(line % self.n_sets) as usize].contains(&line)
    }

    /// Invalidates the whole cache.
    pub fn clear(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_fill() {
        let mut c = LruCache::new(128, 64, 2);
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
    }

    #[test]
    fn lru_eviction_order_fully_associative() {
        // Two lines of 8 bytes, fully associative — the paper's Figure 2
        // "effective cache size: 2" model.
        let mut c = LruCache::new(16, 8, 0);
        assert!(!c.access(0)); // [0]
        assert!(!c.access(8)); // [1,0]
        assert!(!c.access(16)); // evicts 0 → [2,1]
        assert!(c.access(8)); // hit → [1,2]
        assert!(!c.access(0)); // evicts 2 → [0,1]
        assert!(!c.access(16));
    }

    #[test]
    fn set_mapping_conflicts() {
        // 2 sets × 1 way × 64 B: addresses 0 and 128 share set 0.
        let mut c = LruCache::new(128, 64, 1);
        assert!(!c.access(0));
        assert!(!c.access(128)); // conflict, evicts 0
        assert!(!c.access(0));
        // 64 maps to set 1, unaffected.
        assert!(!c.access(64));
        assert!(c.access(64));
    }

    #[test]
    fn contains_is_side_effect_free() {
        let mut c = LruCache::new(128, 64, 2);
        c.access(0);
        assert!(c.contains(0));
        assert!(!c.contains(64));
        assert!(c.contains(32)); // same line as 0
    }

    #[test]
    fn clear_invalidates() {
        let mut c = LruCache::new(128, 64, 2);
        c.access(0);
        c.clear();
        assert!(!c.access(0));
    }

    #[test]
    fn working_set_within_capacity_always_hits() {
        let mut c = LruCache::new(64 * 16, 64, 4);
        let addrs: Vec<u64> = (0..16).map(|i| i * 64).collect();
        for &a in &addrs {
            c.access(a);
        }
        // Second sweep: everything resident (16 lines, 16-line capacity,
        // uniform set distribution).
        for &a in &addrs {
            assert!(c.access(a), "address {a} missed on second sweep");
        }
    }

    #[test]
    #[should_panic(expected = "capacity must equal")]
    fn rejects_inconsistent_geometry() {
        LruCache::new(100, 64, 1);
    }
}
