//! Offline validation of the `auto` engine's scoring rule (DESIGN.md §11).
//!
//! The scoring rule in `ihtl_graph::stats` predicts the cheapest engine
//! from structural features alone. The cache simulator replays the exact
//! access stream of each engine, so every *term* of the cost model is
//! anchored here to a replayed phenomenon:
//!
//! * the pull term (`miss = 1 - resident`) — pull's random source reads
//!   miss when the data outgrows the cache and hit when it fits;
//! * the iHTL term (`(1-h)·miss + h·…`) — the flipped blocks really do
//!   keep hub updates cache-resident on skewed graphs;
//! * the PB term (flat `PB_STREAM_COST`) — the binned sweep's random
//!   stream stays resident even with no skew at all, where pull thrashes.
//!
//! Full cross-engine cost rankings are graded only between pull and PB,
//! summarising a replay as
//!
//! `random_misses + STREAM_MISS_COST × stream_misses + ACCESS_COST × accesses`
//!
//! (streamed, prefetchable misses cost about a third of a random miss; a
//! cache hit ~1/50th). The simulator is deliberately *not* trusted to rank
//! the blocked engines against PB: it has no prefetcher or bandwidth
//! model, so re-reading the whole source array once per flipped block is
//! nearly free in replay — on uniform graphs the §3.3 acceptance rule
//! degenerates into blocking ~80% of all vertices across a dozen blocks,
//! which the replay scores as a win while real hardware pays one full
//! memory sweep per block. The scoring rule's skew gate exists precisely
//! to refuse that configuration; the authoritative cross-engine ranking
//! is the measured `results/BENCH_engines.json` matrix (scripts/verify.sh
//! gates `auto` within 10% of the best fixed engine there).

use ihtl_cachesim::{replay_ihtl, replay_pb, replay_pull, CacheConfig, ReplayMode, ReplayReport};
use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_gen::{er, weblike};
use ihtl_graph::stats::{engine_costs, engine_features, pick_engine, EnginePick, SKEW_MIN};
use ihtl_graph::Graph;

/// Relative cost of one access vs one random L3 miss.
const ACCESS_COST: f64 = 0.02;
/// Relative cost of one sequential (prefetchable) L3 miss.
const STREAM_MISS_COST: f64 = 1.0 / 3.0;

/// Vertex-data bytes (IhtlConfig default) and the default simulated LLC.
const VDB: usize = 8;

fn replay_cost(full: &ReplayReport, random: &ReplayReport) -> f64 {
    let stream_misses = full.counters.l3_misses.saturating_sub(random.counters.l3_misses);
    random.counters.l3_misses as f64
        + STREAM_MISS_COST * stream_misses as f64
        + ACCESS_COST * full.counters.accesses as f64
}

/// A flat er graph twice the simulated LLC (512 KiB of vertex data vs
/// 256 KiB of L3) and 16× the engine budget.
fn flat_thrashing() -> (Graph, usize) {
    let n = 1 << 16;
    let edges = er::er_edges(n, 8 * n, 0xA0704);
    (Graph::from_edges(n, &edges), n * VDB / 16)
}

/// A hub-concentrated web graph of the same thrashing size.
fn skewed_thrashing() -> (Graph, usize) {
    let n = 1 << 16;
    let edges = weblike::web_edges(n, 6 * n, &weblike::WebParams::concentrated(), 0xA0703);
    (Graph::from_edges(n, &edges), 8 << 10)
}

#[test]
fn pull_term_matches_replay_on_resident_graph() {
    // 16 KiB of vertex data in a 256 KiB LLC: the rule scores pull at ~0
    // misses and picks it; the replay sees compulsory misses only.
    let edges = er::er_edges(2_000, 12_000, 0xA0701);
    let g = Graph::from_edges(2_000, &edges);
    let f = engine_features(&g, 1 << 20, VDB);
    assert!(f.data_cache_ratio <= 1.0);
    assert_eq!(pick_engine(&f, 1), EnginePick::Pull);
    let rep = replay_pull(&g, &CacheConfig::default(), ReplayMode::RandomOnly);
    assert!(rep.profile.overall_miss_rate() < 0.05);
}

#[test]
fn pull_term_matches_replay_on_thrashing_graph() {
    // Data past the LLC: the rule's miss term goes high and the replayed
    // pull miss rate follows.
    let (g, budget) = flat_thrashing();
    let f = engine_features(&g, budget, VDB);
    let [(_, pull_cost), ..] = engine_costs(&f, 1);
    assert!(pull_cost > 0.5);
    let rep = replay_pull(&g, &CacheConfig::default(), ReplayMode::RandomOnly);
    assert!(rep.profile.overall_miss_rate() > 0.4);
}

#[test]
fn hub_term_matches_replay_on_skewed_graph() {
    // On a hub-concentrated graph the rule scores iHTL under pull, and the
    // replay confirms why: the flipped blocks soak up the hub updates, so
    // iHTL's random miss rate collapses versus pull's.
    let (g, budget) = skewed_thrashing();
    let f = engine_features(&g, budget, VDB);
    assert!(f.degree_skew >= SKEW_MIN);
    let [(_, pull_cost), (_, ihtl_cost), ..] = engine_costs(&f, 1);
    assert!(ihtl_cost < pull_cost);
    assert_ne!(pick_engine(&f, 1), EnginePick::Pull);

    let cfg = CacheConfig::default();
    let icfg = IhtlConfig { cache_budget_bytes: budget, ..IhtlConfig::default() };
    let ih = IhtlGraph::build(&g, &icfg);
    let pull = replay_pull(&g, &cfg, ReplayMode::RandomOnly);
    let ihtl = replay_ihtl(&ih, &g, &cfg, ReplayMode::RandomOnly);
    assert!(ihtl.profile.overall_miss_rate() < pull.profile.overall_miss_rate() / 3.0);
}

#[test]
fn pb_term_matches_replay_on_flat_graph() {
    // No skew for a hub engine to exploit, yet PB's binned stream still
    // stays resident — the flat PB_STREAM_COST needs no structural help.
    let (g, budget) = flat_thrashing();
    let f = engine_features(&g, budget, VDB);
    assert!(f.degree_skew < SKEW_MIN, "er graph must stay below the skew gate");
    let [(_, pull_cost), _, (_, pb_cost), _] = engine_costs(&f, 1);
    assert!(pb_cost < pull_cost);

    let cfg = CacheConfig::default();
    let pull = replay_pull(&g, &cfg, ReplayMode::RandomOnly);
    let pb = replay_pb(&g, budget / VDB, &cfg, ReplayMode::RandomOnly);
    assert!(pb.profile.overall_miss_rate() < pull.profile.overall_miss_rate() / 3.0);
}

#[test]
fn pull_vs_pb_ranking_agrees_with_replay() {
    // The two ends the simulator *is* trusted on: pull wins outright when
    // the data is resident (PB only adds traffic), PB wins outright when a
    // flat graph thrashes. The rule must land on the replay's side of both.
    let cfg = CacheConfig::default();

    let edges = er::er_edges(2_000, 12_000, 0xA0701);
    let small = Graph::from_edges(2_000, &edges);
    let pull_cost = replay_cost(
        &replay_pull(&small, &cfg, ReplayMode::Full),
        &replay_pull(&small, &cfg, ReplayMode::RandomOnly),
    );
    let pb_cost = replay_cost(
        &replay_pb(&small, 1 << 17, &cfg, ReplayMode::Full),
        &replay_pb(&small, 1 << 17, &cfg, ReplayMode::RandomOnly),
    );
    assert!(pull_cost < pb_cost, "resident: replay must favour pull ({pull_cost} vs {pb_cost})");
    assert_eq!(pick_engine(&engine_features(&small, 1 << 20, VDB), 1), EnginePick::Pull);

    let (big, budget) = flat_thrashing();
    let pull_cost = replay_cost(
        &replay_pull(&big, &cfg, ReplayMode::Full),
        &replay_pull(&big, &cfg, ReplayMode::RandomOnly),
    );
    let pb_cost = replay_cost(
        &replay_pb(&big, budget / VDB, &cfg, ReplayMode::Full),
        &replay_pb(&big, budget / VDB, &cfg, ReplayMode::RandomOnly),
    );
    assert!(
        pb_cost * 1.25 < pull_cost,
        "thrashing: replay must favour pb decisively ({pb_cost} vs {pull_cost})"
    );
    assert_eq!(pick_engine(&engine_features(&big, budget, VDB), 1), EnginePick::Pb);
}
