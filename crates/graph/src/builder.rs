//! Construction of compressed representations from edge lists.
//!
//! The hot path is a two-pass counting sort: one pass to size each adjacency
//! list, a prefix sum, and one placement pass. Degree counting is
//! parallelised over edge chunks into privatised count arrays — the same
//! privatise-and-merge idiom iHTL itself uses for flipped-block buffers.

use crate::csr::Csr;
use crate::{EdgeIndex, VertexId};

/// Minimum number of edges before the parallel counting path is used;
/// below this the sequential path is faster (thread setup dominates).
const PAR_THRESHOLD: usize = 1 << 16;

/// Builds a CSR over `n_rows` rows from `(row, col)` pairs.
///
/// Within each row, edges keep the order in which they appear in `edges`
/// (stable placement), which matters for reproducibility of traversal-order-
/// sensitive measurements such as the cache simulations.
pub fn csr_from_pairs(n_rows: usize, n_cols: usize, edges: &[(VertexId, VertexId)]) -> Csr {
    let mut counts = count_degrees(n_rows, edges);
    // Exclusive prefix sum: counts[v] becomes the start offset of row v.
    let mut sum: EdgeIndex = 0;
    for c in counts.iter_mut() {
        let d = *c;
        *c = sum;
        sum += d;
    }
    counts.push(sum);
    let offsets = counts;
    let mut cursor = offsets.clone();
    let mut targets = vec![0 as VertexId; edges.len()];
    for &(r, c) in edges {
        let slot = cursor[r as usize];
        targets[slot as usize] = c;
        cursor[r as usize] += 1;
    }
    Csr::from_parts(offsets, targets, n_cols)
}

/// Counts the out-degree of each row, in parallel for large inputs.
fn count_degrees(n_rows: usize, edges: &[(VertexId, VertexId)]) -> Vec<EdgeIndex> {
    if edges.len() < PAR_THRESHOLD {
        let mut counts = vec![0 as EdgeIndex; n_rows];
        for &(r, _) in edges {
            counts[r as usize] += 1;
        }
        return counts;
    }
    let n_chunks = ihtl_parallel::num_threads().max(1);
    let chunk = edges.len().div_ceil(n_chunks);
    let merge = |mut a: Vec<EdgeIndex>, b: Vec<EdgeIndex>| {
        for (x, y) in a.iter_mut().zip(b) {
            *x += y;
        }
        a
    };
    ihtl_parallel::par_map_reduce(
        0..edges.len(),
        chunk,
        || vec![0 as EdgeIndex; n_rows],
        |r| {
            let mut local = vec![0 as EdgeIndex; n_rows];
            for &(row, _) in &edges[r] {
                local[row as usize] += 1;
            }
            local
        },
        merge,
        merge,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_expected_adjacency() {
        let edges = vec![(0u32, 1u32), (2, 0), (0, 3), (1, 1)];
        let c = csr_from_pairs(3, 4, &edges);
        assert_eq!(c.neighbours(0), &[1, 3]);
        assert_eq!(c.neighbours(1), &[1]);
        assert_eq!(c.neighbours(2), &[0]);
        assert_eq!(c.n_cols(), 4);
    }

    #[test]
    fn stable_within_row() {
        let edges = vec![(0u32, 5u32), (0, 2), (0, 9), (0, 2)];
        let c = csr_from_pairs(1, 10, &edges);
        assert_eq!(c.neighbours(0), &[5, 2, 9, 2]);
    }

    #[test]
    fn parallel_path_matches_sequential() {
        // Force the parallel path with > PAR_THRESHOLD edges.
        let n = 1000usize;
        let m = super::PAR_THRESHOLD + 17;
        let edges: Vec<(u32, u32)> =
            (0..m).map(|i| (((i * 7919) % n) as u32, ((i * 104729) % n) as u32)).collect();
        let c = csr_from_pairs(n, n, &edges);
        let mut expect = vec![0u64; n];
        for &(r, _) in &edges {
            expect[r as usize] += 1;
        }
        for (v, &e) in expect.iter().enumerate() {
            assert_eq!(c.degree(v as u32) as u64, e);
        }
        assert_eq!(c.n_edges(), m);
    }

    #[test]
    fn empty_rows_are_fine() {
        let c = csr_from_pairs(4, 4, &[]);
        assert_eq!(c.n_edges(), 0);
        assert_eq!(c.degree(3), 0);
    }
}
