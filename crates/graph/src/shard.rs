//! Destination-range sharding for multi-node serving.
//!
//! A shard is the subgraph keeping exactly the edges whose *destination*
//! falls in a contiguous vertex range, with vertex IDs left global and the
//! vertex count unchanged. Under that cut a pull sweep over the shard's CSC
//! computes, for every owned row, the *same fold in the same order* as the
//! full graph would — the shard's CSC row for an owned vertex is the full
//! graph's row verbatim (edge filtering preserves the stable within-row
//! order of [`crate::builder::csr_from_pairs`], and `transpose` orders each
//! CSC row by ascending source). Non-owned rows have no in-edges, so a
//! monoid sweep leaves them at the identity (0 for +, +∞ for min) and a
//! router can merge per-shard partial vectors element-wise into a result
//! bitwise-equal to single-node execution.
//!
//! Ranges are *edge-balanced over in-edges* (each worker pulls ≈ |E|/S
//! edges per sweep), mirroring the GraphGrind-style partitioning the paper
//! uses intra-node (§4.1) at the inter-node level. The in-hub locality
//! structure survives per-shard: flipped-block preprocessing is applied
//! shard-locally by whatever engine the worker builds.

use crate::csr::Csr;
use crate::graph::Graph;
use crate::partition::{edge_balanced_ranges, VertexRange};
use crate::VertexId;

/// Placement metadata for one shard, reported by workers at registration
/// and kept in the router's placement table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Owned destination range `[start, end)` (global vertex IDs).
    pub range: VertexRange,
    /// Edges kept by this shard (in-edges of the owned range).
    pub n_edges: usize,
    /// Distinct source vertices *outside* the owned range with at least one
    /// edge into it — the x-values that must be shipped to this shard on
    /// every sweep if transfers were made sparse (today full vectors
    /// travel; this quantifies the headroom).
    pub boundary_sources: usize,
}

/// Splits the destination space of `g` into exactly `count` contiguous
/// ranges with approximately equal *in-edge* counts. Unlike
/// [`edge_balanced_ranges`], the result is padded with empty trailing
/// ranges so shard index `k < count` is always defined — a router
/// addressing worker `k` must never find its range missing just because
/// the graph is small.
pub fn shard_ranges(g: &Graph, count: usize) -> Vec<VertexRange> {
    assert!(count > 0, "need at least one shard");
    let mut ranges = edge_balanced_ranges(g.csc(), count);
    let n = g.n_vertices() as VertexId;
    while ranges.len() < count {
        ranges.push(VertexRange { start: n, end: n });
    }
    ranges
}

/// Extracts the destination-range shard of `g` owning `range`: every edge
/// `(u, v)` with `v ∈ range`, global IDs, full vertex count. Edges are
/// collected in CSR iteration order so both shard views preserve the full
/// graph's stable within-row order (the bitwise-merge invariant above).
pub fn extract_shard(g: &Graph, range: VertexRange) -> Graph {
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for (u, ns) in g.csr().iter_rows() {
        for &v in ns {
            if v >= range.start && v < range.end {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(g.n_vertices(), &edges)
}

/// Computes the placement metadata of the shard of `g` owning `range`
/// without materialising the shard graph (one CSC scan of the range).
pub fn shard_info(g: &Graph, range: VertexRange) -> ShardInfo {
    let csc: &Csr = g.csc();
    let mut n_edges = 0usize;
    let mut external = vec![false; g.n_vertices()];
    for v in range.iter() {
        for &u in csc.neighbours(v) {
            n_edges += 1;
            if u < range.start || u >= range.end {
                external[u as usize] = true;
            }
        }
    }
    let boundary_sources = external.iter().filter(|&&b| b).count();
    ShardInfo { range, n_edges, boundary_sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_graph;

    #[test]
    fn ranges_are_padded_to_count() {
        let g = paper_example_graph(); // n = 8
        let rs = shard_ranges(&g, 6);
        assert_eq!(rs.len(), 6);
        // Coverage: consecutive, starting at 0, ending at n.
        let mut next = 0u32;
        for r in &rs {
            if !r.is_empty() {
                assert_eq!(r.start, next);
                next = r.end;
            }
        }
        assert_eq!(rs.iter().map(VertexRange::len).sum::<usize>(), 8);
    }

    #[test]
    fn shards_partition_the_edges() {
        let g = paper_example_graph();
        for count in [1usize, 2, 3, 5] {
            let rs = shard_ranges(&g, count);
            let shards: Vec<Graph> = rs.iter().map(|&r| extract_shard(&g, r)).collect();
            let total: usize = shards.iter().map(Graph::n_edges).sum();
            assert_eq!(total, g.n_edges(), "{count} shards must partition |E|");
            for s in &shards {
                assert_eq!(s.n_vertices(), g.n_vertices(), "vertex space stays global");
            }
        }
    }

    #[test]
    fn owned_csc_rows_match_the_full_graph_verbatim() {
        let g = paper_example_graph();
        let rs = shard_ranges(&g, 3);
        for &r in &rs {
            let s = extract_shard(&g, r);
            for v in 0..g.n_vertices() as u32 {
                if v >= r.start && v < r.end {
                    assert_eq!(
                        s.csc().neighbours(v),
                        g.csc().neighbours(v),
                        "owned row {v} must keep full-graph order"
                    );
                } else {
                    assert!(s.csc().neighbours(v).is_empty(), "non-owned row {v} must be empty");
                }
            }
        }
    }

    #[test]
    fn out_degrees_sum_across_shards() {
        // Each edge lives in exactly one shard, so summing per-shard
        // out-degrees recovers the global out-degree vector — what a
        // router needs for PageRank's normalisation.
        let g = paper_example_graph();
        let rs = shard_ranges(&g, 3);
        let shards: Vec<Graph> = rs.iter().map(|&r| extract_shard(&g, r)).collect();
        for v in 0..g.n_vertices() as u32 {
            let sum: usize = shards.iter().map(|s| s.out_degree(v)).sum();
            assert_eq!(sum, g.out_degree(v));
        }
    }

    #[test]
    fn shard_info_counts_boundary_sources() {
        let g = paper_example_graph();
        let r = VertexRange { start: 2, end: 4 }; // owns vertices 2,3
        let info = shard_info(&g, r);
        let s = extract_shard(&g, r);
        assert_eq!(info.n_edges, s.n_edges());
        // In-neighbours of {2,3}: N⁻(2) = {1,4,5,6,7}, N⁻(3) = {5}; all
        // outside the range → 5 distinct boundary sources.
        assert_eq!(info.boundary_sources, 5);
        assert_eq!(info.range, r);
    }

    #[test]
    fn single_shard_is_the_whole_graph() {
        let g = paper_example_graph();
        let rs = shard_ranges(&g, 1);
        assert_eq!(rs.len(), 1);
        let s = extract_shard(&g, rs[0]);
        assert_eq!(s.csr(), g.csr());
        assert_eq!(s.csc(), g.csc());
    }
}
