//! Structural statistics: degree distributions, hub measures, and the
//! *asymmetricity* metric of the paper's Figure 9.

use crate::graph::Graph;
use crate::VertexId;

/// Summary degree statistics of a graph (the columns of the paper's
/// Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub n_vertices: usize,
    pub n_edges: usize,
    pub max_in_degree: usize,
    pub max_out_degree: usize,
    pub mean_degree: f64,
}

/// Computes [`DegreeStats`] for `g`.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.n_vertices();
    let max_in = (0..n).map(|v| g.in_degree(v as VertexId)).max().unwrap_or(0);
    let max_out = (0..n).map(|v| g.out_degree(v as VertexId)).max().unwrap_or(0);
    DegreeStats {
        n_vertices: n,
        n_edges: g.n_edges(),
        max_in_degree: max_in,
        max_out_degree: max_out,
        mean_degree: if n == 0 { 0.0 } else { g.n_edges() as f64 / n as f64 },
    }
}

/// Vertices sorted by in-degree, descending; ties broken by ascending
/// original ID so hub selection is deterministic. This is the ordering iHTL
/// uses to pick in-hubs ("in-hubs are selected as a number of vertices with
/// the highest degree", §3.2).
pub fn vertices_by_in_degree_desc(g: &Graph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..g.n_vertices() as u32).collect();
    // The comparator is a total order (ties broken by id), so an unstable
    // sort is deterministic.
    order.sort_unstable_by(|&a, &b| g.in_degree(b).cmp(&g.in_degree(a)).then_with(|| a.cmp(&b)));
    order
}

/// Asymmetricity of vertex `v` (paper §5.4, Figure 9):
///
/// `|{(u,v) ∈ E | (v,u) ∉ E}| / |{(u,v) ∈ E}|`
///
/// i.e. the fraction of in-neighbours that are *not* also out-neighbours.
/// Returns `None` for vertices with no in-edges. Requires sorted adjacency
/// for efficiency, so it takes a scratch-sorted copy of the out-list.
pub fn asymmetricity(g: &Graph, v: VertexId) -> Option<f64> {
    let ins = g.csc().neighbours(v);
    if ins.is_empty() {
        return None;
    }
    let mut outs: Vec<VertexId> = g.csr().neighbours(v).to_vec();
    outs.sort_unstable();
    let non_reciprocal = ins.iter().filter(|u| outs.binary_search(u).is_err()).count();
    Some(non_reciprocal as f64 / ins.len() as f64)
}

/// One bucket of a degree-conditioned profile: vertices whose in-degree
/// falls in `[lo, hi)`, with the mean of some per-vertex metric over them.
#[derive(Clone, Copy, Debug)]
pub struct DegreeBucket {
    pub lo: usize,
    pub hi: usize,
    pub n_vertices: usize,
    pub mean: f64,
}

/// Buckets vertices by in-degree into power-of-two bins `[2^k, 2^(k+1))`
/// and averages `metric(v)` within each non-empty bucket, skipping vertices
/// where the metric is undefined. This is the x-axis treatment of the
/// paper's Figures 1 and 9 (log-scale degree on x).
pub fn degree_profile<F>(g: &Graph, metric: F) -> Vec<DegreeBucket>
where
    F: Fn(VertexId) -> Option<f64>,
{
    let max_deg = (0..g.n_vertices()).map(|v| g.in_degree(v as VertexId)).max().unwrap_or(0);
    let n_buckets = (usize::BITS - max_deg.leading_zeros()) as usize + 1;
    let mut sums = vec![0.0f64; n_buckets];
    let mut counts = vec![0usize; n_buckets];
    for v in 0..g.n_vertices() as u32 {
        let d = g.in_degree(v);
        if d == 0 {
            continue;
        }
        if let Some(m) = metric(v) {
            let b = (usize::BITS - 1 - d.leading_zeros()) as usize;
            sums[b] += m;
            counts[b] += 1;
        }
    }
    (0..n_buckets)
        .filter(|&b| counts[b] > 0)
        .map(|b| DegreeBucket {
            lo: 1 << b,
            hi: 1 << (b + 1),
            n_vertices: counts[b],
            mean: sums[b] / counts[b] as f64,
        })
        .collect()
}

/// Fraction of all edges whose destination lies in the `k` highest
/// in-degree vertices. Quantifies the paper's premise that "a very small
/// fraction of vertices … are connected to a disproportionately large
/// fraction of edges" (§1).
pub fn edge_fraction_to_top_k(g: &Graph, k: usize) -> f64 {
    if g.n_edges() == 0 {
        return 0.0;
    }
    let order = vertices_by_in_degree_desc(g);
    let covered: usize = order.iter().take(k).map(|&v| g.in_degree(v)).sum();
    covered as f64 / g.n_edges() as f64
}

/// Structural features of one dataset that drive adaptive engine
/// selection (the `auto` engine). All of them are cheap: one degree sort
/// plus O(n) scans, computed once per (dataset, direction) and memoized by
/// the serve registry.
#[derive(Clone, Copy, Debug)]
pub struct EngineFeatures {
    pub n_vertices: usize,
    pub n_edges: usize,
    /// `max_in_degree / mean_degree` — how hub-dominated the in-degree
    /// distribution is. Hub-based engines (iHTL, hybrid) need skew to have
    /// anything to exploit.
    pub degree_skew: f64,
    /// Number of vertex-data slots the cache budget holds
    /// (`cache_budget_bytes / vertex_data_bytes`), i.e. how many in-hubs a
    /// flipped-block buffer or merge segment can keep resident.
    pub hub_slots: usize,
    /// Fraction of all edges destined for the `hub_slots` highest
    /// in-degree vertices — the edge mass an in-hub buffer can absorb.
    pub hub_edge_fraction: f64,
    /// Mean in-degree over those top `hub_slots` vertices. Shallow hubs
    /// make iHTL's per-worker merge (O(workers × hubs)) expensive relative
    /// to the edges it saves.
    pub avg_hub_in_degree: f64,
    /// `n_vertices × vertex_data_bytes / llc_bytes`; ≤ 1 means the whole
    /// vertex-data array is resident in the last-level cache and pull
    /// cannot thrash. Uses the LLC capacity, not the buffer budget — see
    /// [`engine_features_llc`].
    pub data_cache_ratio: f64,
}

/// Computes [`EngineFeatures`] for `g` under the given cache budget. The
/// budget plays both cache roles: see [`engine_features_llc`] for machines
/// where the buffer-sizing cache and the last-level cache differ.
pub fn engine_features(
    g: &Graph,
    cache_budget_bytes: usize,
    vertex_data_bytes: usize,
) -> EngineFeatures {
    engine_features_llc(g, cache_budget_bytes, cache_budget_bytes, vertex_data_bytes)
}

/// [`engine_features`] with the two cache roles split. `cache_budget_bytes`
/// sizes the private working buffers (flipped-block hub slots, PB merge
/// segments — the L2 on a real machine), while `llc_bytes` is the capacity
/// that decides whether pull's random source reads stay resident (the
/// shared last-level cache). On machines with a large LLC the two differ by
/// orders of magnitude, and conflating them makes the rule predict pull
/// misses that never happen.
pub fn engine_features_llc(
    g: &Graph,
    cache_budget_bytes: usize,
    llc_bytes: usize,
    vertex_data_bytes: usize,
) -> EngineFeatures {
    let s = degree_stats(g);
    let vdb = vertex_data_bytes.max(1);
    let hub_slots = (cache_budget_bytes / vdb).max(1);
    let hub_edge_fraction = edge_fraction_to_top_k(g, hub_slots);
    let hubs_used = hub_slots.min(s.n_vertices);
    EngineFeatures {
        n_vertices: s.n_vertices,
        n_edges: s.n_edges,
        degree_skew: if s.mean_degree > 0.0 { s.max_in_degree as f64 / s.mean_degree } else { 0.0 },
        hub_slots,
        hub_edge_fraction,
        avg_hub_in_degree: if hubs_used > 0 {
            hub_edge_fraction * s.n_edges as f64 / hubs_used as f64
        } else {
            0.0
        },
        data_cache_ratio: if llc_bytes > 0 {
            (s.n_vertices * vdb) as f64 / llc_bytes as f64
        } else {
            f64::INFINITY
        },
    }
}

/// The engines the scoring rule chooses among. This crate cannot see the
/// app-level `EngineKind` (the dependency points the other way), so the
/// pick is expressed here and mapped upward by callers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EnginePick {
    /// Plain pull SpMV over the CSC.
    Pull,
    /// iHTL: flipped-block buffered push for hubs + sparse pull.
    Ihtl,
    /// Propagation blocking: binned push over all destinations.
    Pb,
    /// iHTL blocking with the buffered hub push replaced by a binned sweep.
    Hybrid,
}

impl EnginePick {
    /// Fixed evaluation order; earlier entries win cost ties.
    pub const ALL: [EnginePick; 4] =
        [EnginePick::Pull, EnginePick::Ihtl, EnginePick::Pb, EnginePick::Hybrid];

    /// The engine's wire-protocol name.
    pub fn wire_name(self) -> &'static str {
        match self {
            EnginePick::Pull => "pull",
            EnginePick::Ihtl => "ihtl",
            EnginePick::Pb => "pb",
            EnginePick::Hybrid => "hybrid",
        }
    }
}

/// Cost-model constants, all in units of *one LLC miss per edge*. They
/// come from the steady-state traffic each strategy adds per edge,
/// sanity-checked against `ihtl-cachesim` replays (see
/// `crates/cachesim/tests/auto_validation.rs` and DESIGN.md §11):
///
/// * a pull edge whose source is not resident costs one full random miss
///   (the unit);
/// * a PB edge streams its contribution out and back in
///   (8 B write + 8 B read + 4 B destination ID, all sequential) instead —
///   roughly a third of a 64 B random miss, so [`PB_STREAM_COST`] = 0.35;
/// * the hybrid bins only into the compacted hub range (dense segments,
///   block-local cursors), discounting the stream to
///   [`HYBRID_STREAM_COST`] = 0.25;
/// * iHTL's extra per-block source re-reads cost [`IHTL_BLOCK_COST`] =
///   0.05 per hub edge, and its merge re-reads every worker's buffer for
///   every hub — [`MERGE_RMW_COST`] × threads / avg-hub-degree per hub
///   edge.
pub const PB_STREAM_COST: f64 = 0.35;
/// See [`PB_STREAM_COST`].
pub const HYBRID_STREAM_COST: f64 = 0.25;
/// See [`PB_STREAM_COST`].
pub const IHTL_BLOCK_COST: f64 = 0.05;
/// See [`PB_STREAM_COST`].
pub const MERGE_RMW_COST: f64 = 1.0;
/// Minimum `degree_skew` for hub-based engines to be considered: below
/// this the "hubs" are ordinary vertices and blocking buys nothing.
pub const SKEW_MIN: f64 = 8.0;

/// Scores every engine on `f`: estimated random-miss-equivalents per edge,
/// lower is better. Returned in [`EnginePick::ALL`] order. The rule:
///
/// ```text
/// resident   = min(1, 1 / data_cache_ratio)
/// miss       = 1 - resident                      // pull miss probability
/// h          = hub_edge_fraction
/// merge      = MERGE_RMW_COST × threads / avg_hub_in_degree
/// pull       = miss
/// pb         = PB_STREAM_COST
/// ihtl       = (1-h)·miss + h·(IHTL_BLOCK_COST + merge)   [skew ≥ SKEW_MIN]
/// hybrid     = (1-h)·miss + h·HYBRID_STREAM_COST          [skew ≥ SKEW_MIN]
/// ```
///
/// Hub engines score infinity when skew is below [`SKEW_MIN`] or no edge
/// reaches the top slots.
pub fn engine_costs(f: &EngineFeatures, n_threads: usize) -> [(EnginePick, f64); 4] {
    let resident = if f.data_cache_ratio <= 1.0 { 1.0 } else { 1.0 / f.data_cache_ratio };
    let miss = 1.0 - resident;
    let h = f.hub_edge_fraction;
    let hubs_usable = f.degree_skew >= SKEW_MIN && h > 0.0;
    let merge = if f.avg_hub_in_degree > 0.0 {
        MERGE_RMW_COST * n_threads.max(1) as f64 / f.avg_hub_in_degree
    } else {
        0.0
    };
    let (ihtl, hybrid) = if hubs_usable {
        (
            (1.0 - h) * miss + h * (IHTL_BLOCK_COST + merge),
            (1.0 - h) * miss + h * HYBRID_STREAM_COST,
        )
    } else {
        (f64::INFINITY, f64::INFINITY)
    };
    [
        (EnginePick::Pull, miss),
        (EnginePick::Ihtl, ihtl),
        (EnginePick::Pb, PB_STREAM_COST),
        (EnginePick::Hybrid, hybrid),
    ]
}

/// Picks the cheapest engine under [`engine_costs`]; ties go to the
/// earlier entry in [`EnginePick::ALL`] (pull is simplest, so it wins
/// exact ties). An edgeless graph always picks pull.
pub fn pick_engine(f: &EngineFeatures, n_threads: usize) -> EnginePick {
    if f.n_edges == 0 {
        return EnginePick::Pull;
    }
    let costs = engine_costs(f, n_threads);
    let mut best = costs[0];
    for &c in &costs[1..] {
        if c.1 < best.1 {
            best = c;
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_graph;

    #[test]
    fn stats_of_paper_example() {
        let g = paper_example_graph();
        let s = degree_stats(&g);
        assert_eq!(s.n_vertices, 8);
        assert_eq!(s.n_edges, 14);
        assert_eq!(s.max_in_degree, 5);
        assert_eq!(s.max_out_degree, 4);
        assert!((s.mean_degree - 14.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn in_degree_order_puts_hubs_first() {
        let g = paper_example_graph();
        let order = vertices_by_in_degree_desc(&g);
        // Hubs: vertex 2 (deg 5) then 6 (deg 4).
        assert_eq!(order[0], 2);
        assert_eq!(order[1], 6);
    }

    #[test]
    fn in_degree_order_breaks_ties_by_id() {
        // Two vertices with equal in-degree.
        let g = Graph::from_edges(4, &[(0, 2), (1, 3)]);
        let order = vertices_by_in_degree_desc(&g);
        assert_eq!(&order[..2], &[2, 3]);
    }

    #[test]
    fn asymmetricity_extremes() {
        // 0<->1 reciprocal, 2->1 one-way.
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        assert_eq!(asymmetricity(&g, 0), Some(0.0)); // only in-neighbour 1 is reciprocated
        assert_eq!(asymmetricity(&g, 1), Some(0.5)); // in {0,2}, out {0}
        assert_eq!(asymmetricity(&g, 2), None); // no in-edges
    }

    #[test]
    fn degree_profile_buckets() {
        let g = paper_example_graph();
        let prof = degree_profile(&g, |_| Some(1.0));
        // Every bucket mean is 1.0 and the counts sum to #vertices with in-deg > 0.
        let with_in = (0..8).filter(|&v| g.in_degree(v) > 0).count();
        assert_eq!(prof.iter().map(|b| b.n_vertices).sum::<usize>(), with_in);
        assert!(prof.iter().all(|b| (b.mean - 1.0).abs() < 1e-12));
        // Buckets are powers of two and disjoint.
        for w in prof.windows(2) {
            assert!(w[0].hi <= w[1].lo);
        }
    }

    #[test]
    fn features_of_paper_example() {
        let g = paper_example_graph();
        let f = engine_features(&g, 16, 8);
        assert_eq!(f.hub_slots, 2);
        assert!((f.hub_edge_fraction - 9.0 / 14.0).abs() < 1e-12);
        assert!((f.degree_skew - 5.0 / (14.0 / 8.0)).abs() < 1e-12);
        assert!((f.avg_hub_in_degree - 4.5).abs() < 1e-12);
        assert!((f.data_cache_ratio - 4.0).abs() < 1e-12);
    }

    #[test]
    fn split_cache_roles_separate_hub_slots_from_residency() {
        // A small buffer budget with a huge LLC: hub_slots follows the
        // budget, residency follows the LLC — pull stays the pick because
        // its source reads never leave the LLC, even though the buffers
        // could only hold two hubs.
        let g = paper_example_graph();
        let f = engine_features_llc(&g, 16, 1 << 20, 8);
        assert_eq!(f.hub_slots, 2);
        assert!(f.data_cache_ratio <= 1.0);
        assert_eq!(pick_engine(&f, 1), EnginePick::Pull);
        // Conflated (both roles = 16 B), the same graph looks thrashing.
        let conflated = engine_features(&g, 16, 8);
        assert!(conflated.data_cache_ratio > 1.0);
        assert_ne!(pick_engine(&conflated, 1), EnginePick::Pull);
    }

    #[test]
    fn resident_data_picks_pull() {
        // Budget holds every vertex: pull cannot miss, nothing to fix.
        let g = paper_example_graph();
        let f = engine_features(&g, 1 << 20, 8);
        assert!(f.data_cache_ratio <= 1.0);
        for t in [1, 4, 16] {
            assert_eq!(pick_engine(&f, t), EnginePick::Pull);
        }
    }

    #[test]
    fn flat_thrashing_graph_picks_pb() {
        // Ring-of-skips graph: every vertex has in-degree exactly 2, so no
        // skew — but the data is 64× the budget, so pull thrashes. Only
        // propagation blocking helps.
        let n = 4096u32;
        let edges: Vec<(u32, u32)> =
            (0..n).flat_map(|v| [(v, (v + 1) % n), (v, (v + 7) % n)]).collect();
        let g = Graph::from_edges(n as usize, &edges);
        let f = engine_features(&g, (n as usize) * 8 / 64, 8);
        assert!(f.degree_skew < SKEW_MIN);
        assert_eq!(pick_engine(&f, 1), EnginePick::Pb);
    }

    #[test]
    fn skewed_thrashing_graph_picks_ihtl() {
        // A few deep hubs absorb almost every edge; single-threaded merge
        // is cheap, so the classic iHTL layout wins.
        let n = 4096u32;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push((v, v % 4)); // 4 hubs of in-degree ~3·1024
            edges.push((v, (v + 1) % 4));
            edges.push((v, (v + 2) % 4));
            edges.push((v, (v * 17 + 5) % n)); // plus a flat background
        }
        let g = Graph::from_edges(n as usize, &edges);
        let f = engine_features(&g, 64, 8); // 8 hub slots
        assert!(f.degree_skew >= SKEW_MIN);
        assert!(f.hub_edge_fraction > 0.7);
        assert_eq!(pick_engine(&f, 1), EnginePick::Ihtl);
    }

    #[test]
    fn shallow_hubs_many_threads_pick_hybrid() {
        // Hub mass is high but spread across many shallow hubs, and the
        // worker count makes iHTL's per-worker merge the bottleneck: the
        // binned hybrid sweep wins.
        let f = EngineFeatures {
            n_vertices: 1 << 20,
            n_edges: 8 << 20,
            degree_skew: 32.0,
            hub_slots: 1 << 16,
            hub_edge_fraction: 0.9,
            avg_hub_in_degree: 8.0,
            data_cache_ratio: 16.0,
        };
        assert_eq!(pick_engine(&f, 8), EnginePick::Hybrid);
        // The same graph single-threaded keeps the buffered push.
        assert_eq!(pick_engine(&f, 1), EnginePick::Ihtl);
    }

    #[test]
    fn edgeless_graph_picks_pull() {
        let g = Graph::from_edges(16, &[]);
        let f = engine_features(&g, 8, 8);
        assert_eq!(pick_engine(&f, 4), EnginePick::Pull);
    }

    #[test]
    fn wire_names_are_distinct() {
        let names: Vec<&str> = EnginePick::ALL.iter().map(|p| p.wire_name()).collect();
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn top_k_edge_coverage() {
        let g = paper_example_graph();
        // Top-2 in-degree vertices (2 and 6) cover 9 of 14 edges.
        let f = edge_fraction_to_top_k(&g, 2);
        assert!((f - 9.0 / 14.0).abs() < 1e-12);
        assert_eq!(edge_fraction_to_top_k(&g, 0), 0.0);
        assert!((edge_fraction_to_top_k(&g, 8) - 1.0).abs() < 1e-12);
    }
}
