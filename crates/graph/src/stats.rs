//! Structural statistics: degree distributions, hub measures, and the
//! *asymmetricity* metric of the paper's Figure 9.

use crate::graph::Graph;
use crate::VertexId;

/// Summary degree statistics of a graph (the columns of the paper's
/// Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegreeStats {
    pub n_vertices: usize,
    pub n_edges: usize,
    pub max_in_degree: usize,
    pub max_out_degree: usize,
    pub mean_degree: f64,
}

/// Computes [`DegreeStats`] for `g`.
pub fn degree_stats(g: &Graph) -> DegreeStats {
    let n = g.n_vertices();
    let max_in = (0..n).map(|v| g.in_degree(v as VertexId)).max().unwrap_or(0);
    let max_out = (0..n).map(|v| g.out_degree(v as VertexId)).max().unwrap_or(0);
    DegreeStats {
        n_vertices: n,
        n_edges: g.n_edges(),
        max_in_degree: max_in,
        max_out_degree: max_out,
        mean_degree: if n == 0 { 0.0 } else { g.n_edges() as f64 / n as f64 },
    }
}

/// Vertices sorted by in-degree, descending; ties broken by ascending
/// original ID so hub selection is deterministic. This is the ordering iHTL
/// uses to pick in-hubs ("in-hubs are selected as a number of vertices with
/// the highest degree", §3.2).
pub fn vertices_by_in_degree_desc(g: &Graph) -> Vec<VertexId> {
    let mut order: Vec<VertexId> = (0..g.n_vertices() as u32).collect();
    // The comparator is a total order (ties broken by id), so an unstable
    // sort is deterministic.
    order.sort_unstable_by(|&a, &b| g.in_degree(b).cmp(&g.in_degree(a)).then_with(|| a.cmp(&b)));
    order
}

/// Asymmetricity of vertex `v` (paper §5.4, Figure 9):
///
/// `|{(u,v) ∈ E | (v,u) ∉ E}| / |{(u,v) ∈ E}|`
///
/// i.e. the fraction of in-neighbours that are *not* also out-neighbours.
/// Returns `None` for vertices with no in-edges. Requires sorted adjacency
/// for efficiency, so it takes a scratch-sorted copy of the out-list.
pub fn asymmetricity(g: &Graph, v: VertexId) -> Option<f64> {
    let ins = g.csc().neighbours(v);
    if ins.is_empty() {
        return None;
    }
    let mut outs: Vec<VertexId> = g.csr().neighbours(v).to_vec();
    outs.sort_unstable();
    let non_reciprocal = ins.iter().filter(|u| outs.binary_search(u).is_err()).count();
    Some(non_reciprocal as f64 / ins.len() as f64)
}

/// One bucket of a degree-conditioned profile: vertices whose in-degree
/// falls in `[lo, hi)`, with the mean of some per-vertex metric over them.
#[derive(Clone, Copy, Debug)]
pub struct DegreeBucket {
    pub lo: usize,
    pub hi: usize,
    pub n_vertices: usize,
    pub mean: f64,
}

/// Buckets vertices by in-degree into power-of-two bins `[2^k, 2^(k+1))`
/// and averages `metric(v)` within each non-empty bucket, skipping vertices
/// where the metric is undefined. This is the x-axis treatment of the
/// paper's Figures 1 and 9 (log-scale degree on x).
pub fn degree_profile<F>(g: &Graph, metric: F) -> Vec<DegreeBucket>
where
    F: Fn(VertexId) -> Option<f64>,
{
    let max_deg = (0..g.n_vertices()).map(|v| g.in_degree(v as VertexId)).max().unwrap_or(0);
    let n_buckets = (usize::BITS - max_deg.leading_zeros()) as usize + 1;
    let mut sums = vec![0.0f64; n_buckets];
    let mut counts = vec![0usize; n_buckets];
    for v in 0..g.n_vertices() as u32 {
        let d = g.in_degree(v);
        if d == 0 {
            continue;
        }
        if let Some(m) = metric(v) {
            let b = (usize::BITS - 1 - d.leading_zeros()) as usize;
            sums[b] += m;
            counts[b] += 1;
        }
    }
    (0..n_buckets)
        .filter(|&b| counts[b] > 0)
        .map(|b| DegreeBucket {
            lo: 1 << b,
            hi: 1 << (b + 1),
            n_vertices: counts[b],
            mean: sums[b] / counts[b] as f64,
        })
        .collect()
}

/// Fraction of all edges whose destination lies in the `k` highest
/// in-degree vertices. Quantifies the paper's premise that "a very small
/// fraction of vertices … are connected to a disproportionately large
/// fraction of edges" (§1).
pub fn edge_fraction_to_top_k(g: &Graph, k: usize) -> f64 {
    if g.n_edges() == 0 {
        return 0.0;
    }
    let order = vertices_by_in_degree_desc(g);
    let covered: usize = order.iter().take(k).map(|&v| g.in_degree(v)).sum();
    covered as f64 / g.n_edges() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_graph;

    #[test]
    fn stats_of_paper_example() {
        let g = paper_example_graph();
        let s = degree_stats(&g);
        assert_eq!(s.n_vertices, 8);
        assert_eq!(s.n_edges, 14);
        assert_eq!(s.max_in_degree, 5);
        assert_eq!(s.max_out_degree, 4);
        assert!((s.mean_degree - 14.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn in_degree_order_puts_hubs_first() {
        let g = paper_example_graph();
        let order = vertices_by_in_degree_desc(&g);
        // Hubs: vertex 2 (deg 5) then 6 (deg 4).
        assert_eq!(order[0], 2);
        assert_eq!(order[1], 6);
    }

    #[test]
    fn in_degree_order_breaks_ties_by_id() {
        // Two vertices with equal in-degree.
        let g = Graph::from_edges(4, &[(0, 2), (1, 3)]);
        let order = vertices_by_in_degree_desc(&g);
        assert_eq!(&order[..2], &[2, 3]);
    }

    #[test]
    fn asymmetricity_extremes() {
        // 0<->1 reciprocal, 2->1 one-way.
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1)]);
        assert_eq!(asymmetricity(&g, 0), Some(0.0)); // only in-neighbour 1 is reciprocated
        assert_eq!(asymmetricity(&g, 1), Some(0.5)); // in {0,2}, out {0}
        assert_eq!(asymmetricity(&g, 2), None); // no in-edges
    }

    #[test]
    fn degree_profile_buckets() {
        let g = paper_example_graph();
        let prof = degree_profile(&g, |_| Some(1.0));
        // Every bucket mean is 1.0 and the counts sum to #vertices with in-deg > 0.
        let with_in = (0..8).filter(|&v| g.in_degree(v) > 0).count();
        assert_eq!(prof.iter().map(|b| b.n_vertices).sum::<usize>(), with_in);
        assert!(prof.iter().all(|b| (b.mean - 1.0).abs() < 1e-12));
        // Buckets are powers of two and disjoint.
        for w in prof.windows(2) {
            assert!(w[0].hi <= w[1].lo);
        }
    }

    #[test]
    fn top_k_edge_coverage() {
        let g = paper_example_graph();
        // Top-2 in-degree vertices (2 and 6) cover 9 of 14 edges.
        let f = edge_fraction_to_top_k(&g, 2);
        assert!((f - 9.0 / 14.0).abs() < 1e-12);
        assert_eq!(edge_fraction_to_top_k(&g, 0), 0.0);
        assert!((edge_fraction_to_top_k(&g, 8) - 1.0).abs() < 1e-12);
    }
}
