//! Compact binary graph format.
//!
//! The paper amortises iHTL preprocessing by storing the transformed graph
//! "in its binary format (similar to the special file formats that each
//! framework uses) on disk" (§4.2). This module provides that capability for
//! plain graphs; the `ihtl-core` crate reuses it for its blocked structure.
//!
//! Layout (little-endian): magic `IHTLGRPH`, version u32, n_vertices u64,
//! n_edges u64, then the CSR offsets (u64 each) and targets (u32 each).
//! The CSC is rebuilt on load (cheaper than storing both).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Csr;
use crate::graph::Graph;
use crate::{EdgeIndex, VertexId};

const MAGIC: &[u8; 8] = b"IHTLGRPH";
const VERSION: u32 = 1;

/// Writes `g` to `path` in the binary format.
pub fn save_graph(g: &Graph, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(g.n_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.n_edges() as u64).to_le_bytes())?;
    for &o in g.csr().offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in g.csr().targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a graph previously written by [`save_graph`].
pub fn load_graph(path: &Path) -> io::Result<Graph> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as EdgeIndex);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(read_u32(&mut r)? as VertexId);
    }
    let csr = Csr::from_parts(offsets, targets, n);
    let csc = csr.transpose();
    Ok(Graph::from_views(csr, csc))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_graph;

    #[test]
    fn roundtrip() {
        let g = paper_example_graph();
        let dir = std::env::temp_dir().join("ihtl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper_example.bin");
        save_graph(&g, &path).unwrap();
        let h = load_graph(&path).unwrap();
        assert_eq!(h.csr(), g.csr());
        assert_eq!(h.csc(), g.csc());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("ihtl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"not a graph").unwrap();
        assert!(load_graph(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
