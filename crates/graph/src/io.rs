//! Compact binary graph format.
//!
//! The paper amortises iHTL preprocessing by storing the transformed graph
//! "in its binary format (similar to the special file formats that each
//! framework uses) on disk" (§4.2). This module provides that capability for
//! plain graphs; the `ihtl-core` crate reuses it for its blocked structure.
//!
//! Layout (little-endian): magic `IHTLGRPH`, version u32, n_vertices u64,
//! n_edges u64, then the CSR offsets (u64 each) and targets (u32 each).
//! The CSC is rebuilt on load (cheaper than storing both).
//!
//! This module also hosts the low-level persistence doctrine every binary
//! format in the workspace shares (`IHTLGRPH` here, `IHTLBLK2` in
//! `ihtl-core`, `IHTLPBG1` in `ihtl-traversal`, and the `ihtl-store` block
//! store built on all three):
//!
//! * **Atomic writes** ([`save_atomic`]): the payload goes to a uniquely
//!   named sibling temp file which is `rename`d into place, so a crash
//!   mid-write can never leave a truncated image at the final path.
//! * **Checksum trailer** ([`ChecksumWriter`], [`verify_trailer`]): every
//!   saved image ends with `IHTLSUM1` + the FNV-1a-64 of the payload.
//!   Loaders verify and strip the trailer *before* structural validation;
//!   trailer-less legacy images pass through unchanged (the structural
//!   validators remain the backstop for them).

use std::fs::File;
use std::io::{self, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::csr::Csr;
use crate::graph::Graph;
use crate::{EdgeIndex, VertexId};

const MAGIC: &[u8; 8] = b"IHTLGRPH";
const VERSION: u32 = 1;

/// Magic that opens the checksum trailer appended to every saved image.
pub const TRAILER_MAGIC: &[u8; 8] = b"IHTLSUM1";

/// Total trailer size: magic + u64 checksum.
pub const TRAILER_LEN: usize = 16;

/// Incremental FNV-1a-64 hasher — the same function the serve tier uses for
/// wire checksums ([`fnv1a_checksum` in `ihtl-serve`] delegates here), reused
/// for image trailers so one implementation covers both.
#[derive(Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// The FNV-1a-64 offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a-64 over a byte slice.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// A writer that hashes everything written through it, so the checksum
/// trailer can be computed while streaming the payload (no second pass).
pub struct ChecksumWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> ChecksumWriter<W> {
    pub fn new(inner: W) -> ChecksumWriter<W> {
        ChecksumWriter { inner, hash: Fnv1a::new() }
    }

    /// The hash of everything written so far.
    pub fn checksum(&self) -> u64 {
        self.hash.finish()
    }

    /// Unwraps the inner writer (e.g. to append the trailer unhashed).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for ChecksumWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.write(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// Disambiguates concurrent writers within one process; the pid handles
/// concurrent processes.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_sibling(path: &Path) -> PathBuf {
    // ORDERING: Relaxed — only uniqueness of the sequence number matters.
    let seq = TEMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("image");
    path.with_file_name(format!(".{name}.tmp.{}.{seq}", std::process::id()))
}

/// Writes an image atomically: streams `write_payload` through a
/// [`ChecksumWriter`] into a uniquely named sibling temp file, appends the
/// `IHTLSUM1` checksum trailer, and `rename`s into place. A crash at any
/// point leaves either the old file or nothing at `path` — never a torn
/// image (rename within one directory is atomic on POSIX).
pub fn save_atomic(
    path: &Path,
    write_payload: impl FnOnce(&mut dyn Write) -> io::Result<()>,
) -> io::Result<()> {
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut cw = ChecksumWriter::new(BufWriter::new(File::create(&tmp)?));
        write_payload(&mut cw)?;
        let sum = cw.checksum();
        let mut w = cw.into_inner();
        w.write_all(TRAILER_MAGIC)?;
        w.write_all(&sum.to_le_bytes())?;
        w.flush()?;
        w.into_inner().map_err(|e| e.into_error())?.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Checks a loaded image for the checksum trailer. With a trailer present,
/// verifies the FNV-1a-64 of the payload and returns the payload slice
/// (trailer stripped); a mismatch is `InvalidData`. Without one, returns
/// `data` unchanged — trailer-less legacy images stay loadable, backstopped
/// by the formats' structural validation.
pub fn verify_trailer(data: &[u8]) -> io::Result<&[u8]> {
    if data.len() < TRAILER_LEN || &data[data.len() - TRAILER_LEN..data.len() - 8] != TRAILER_MAGIC
    {
        return Ok(data);
    }
    let payload = &data[..data.len() - TRAILER_LEN];
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&data[data.len() - 8..]);
    if fnv1a_64(payload) != u64::from_le_bytes(stored) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "checksum trailer does not match payload (image corrupted)",
        ));
    }
    Ok(payload)
}

/// Writes `g` to `path` in the binary format (atomic, checksum-trailered).
pub fn save_graph(g: &Graph, path: &Path) -> io::Result<()> {
    save_atomic(path, |w| {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(g.n_vertices() as u64).to_le_bytes())?;
        w.write_all(&(g.n_edges() as u64).to_le_bytes())?;
        for &o in g.csr().offsets() {
            w.write_all(&o.to_le_bytes())?;
        }
        for &t in g.csr().targets() {
            w.write_all(&t.to_le_bytes())?;
        }
        Ok(())
    })
}

/// Reads a graph previously written by [`save_graph`].
pub fn load_graph(path: &Path) -> io::Result<Graph> {
    let data = std::fs::read(path)?;
    load_graph_bytes(&data)
}

/// Parses an in-memory image written by [`save_graph`] (trailer verified).
/// The artifact store reads files itself so a missing file is a miss and a
/// failed parse is a quarantine — it needs the parse separated from the I/O.
pub fn load_graph_bytes(data: &[u8]) -> io::Result<Graph> {
    let payload = verify_trailer(data)?;
    let mut r: &[u8] = payload;
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported version {version}"),
        ));
    }
    let n = read_u64(&mut r)? as usize;
    let m = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as EdgeIndex);
    }
    let mut targets = Vec::with_capacity(m);
    for _ in 0..m {
        targets.push(read_u32(&mut r)? as VertexId);
    }
    let csr = Csr::from_parts(offsets, targets, n);
    let csc = csr.transpose();
    Ok(Graph::from_views(csr, csc))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::paper_example_graph;

    #[test]
    fn roundtrip() {
        let g = paper_example_graph();
        let dir = std::env::temp_dir().join("ihtl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("paper_example.bin");
        save_graph(&g, &path).unwrap();
        let h = load_graph(&path).unwrap();
        assert_eq!(h.csr(), g.csr());
        assert_eq!(h.csc(), g.csc());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("ihtl_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.bin");
        std::fs::write(&path, b"not a graph").unwrap();
        assert!(load_graph(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
