//! Compressed sparse row (and, by symmetry, column) storage.
//!
//! A [`Csr`] is a rectangular sparse binary matrix: `n_rows` adjacency lists
//! over a column universe of `n_cols` vertices. Interpreted over out-edges it
//! is the classic CSR; built over in-edges it serves as the CSC view. The
//! paper's traversal conventions (§3.1): a *pull* traversal walks the CSC
//! column-major (each destination reads its sources), a *push* traversal
//! walks the CSR row-major (each source updates its destinations).

use crate::{EdgeIndex, VertexId, NEIGHBOUR_BYTES, OFFSET_BYTES};

/// Compressed sparse row storage with 8-byte offsets and 4-byte neighbour
/// IDs (the layout whose size Table 4 of the paper accounts for).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    /// `n_rows + 1` monotonically non-decreasing offsets into `targets`.
    offsets: Vec<EdgeIndex>,
    /// Concatenated adjacency lists.
    targets: Vec<VertexId>,
    /// Size of the column universe; every target is `< n_cols`.
    n_cols: usize,
}

impl Csr {
    /// Builds a CSR from raw parts, validating the structural invariants.
    ///
    /// # Panics
    /// Panics if `offsets` is empty, not monotone, does not end at
    /// `targets.len()`, or if any target is out of range.
    pub fn from_parts(offsets: Vec<EdgeIndex>, targets: Vec<VertexId>, n_cols: usize) -> Self {
        assert!(!offsets.is_empty(), "offsets must have at least one entry");
        assert_eq!(
            *offsets.last().unwrap(),
            targets.len() as EdgeIndex,
            "last offset must equal the number of stored edges"
        );
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be monotonically non-decreasing"
        );
        assert!(targets.iter().all(|&t| (t as usize) < n_cols), "every target must be < n_cols");
        Self { offsets, targets, n_cols }
    }

    /// An empty matrix with `n_rows` rows and `n_cols` columns.
    pub fn empty(n_rows: usize, n_cols: usize) -> Self {
        Self { offsets: vec![0; n_rows + 1], targets: Vec::new(), n_cols }
    }

    /// Number of rows (adjacency lists).
    #[inline]
    pub fn n_rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Size of the column universe.
    #[inline]
    pub fn n_cols(&self) -> usize {
        self.n_cols
    }

    /// Total number of stored edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.targets.len()
    }

    /// The raw offset array (`n_rows + 1` entries).
    #[inline]
    pub fn offsets(&self) -> &[EdgeIndex] {
        &self.offsets
    }

    /// The concatenated adjacency lists.
    #[inline]
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Degree (adjacency-list length) of row `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The adjacency list of row `v`.
    #[inline]
    pub fn neighbours(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// The adjacency list of row `v` without bounds checks — the hot-loop
    /// variant of [`Csr::neighbours`] (debug builds still assert).
    ///
    /// # Safety
    /// `v` must be a valid row index (`v < n_rows()`). The structural
    /// invariants validated at construction (monotone offsets ending at
    /// `targets.len()`) make the resulting slice range valid for any valid
    /// row.
    #[inline]
    pub unsafe fn neighbours_unchecked(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        debug_assert!(v < self.n_rows(), "row {v} out of 0..{}", self.n_rows());
        let start = *self.offsets.get_unchecked(v) as usize;
        let end = *self.offsets.get_unchecked(v + 1) as usize;
        self.targets.get_unchecked(start..end)
    }

    /// Iterates `(row, &[targets])` over all rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> + '_ {
        (0..self.n_rows()).map(move |v| (v as VertexId, self.neighbours(v as VertexId)))
    }

    /// Iterates every stored edge as `(row, col)`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.iter_rows().flat_map(|(v, ns)| ns.iter().map(move |&u| (v, u)))
    }

    /// Byte size of the topology data in the paper's accounting
    /// (8 B per offset entry, 4 B per neighbour ID). Used for Table 4.
    pub fn topology_bytes(&self) -> u64 {
        (self.offsets.len() * OFFSET_BYTES + self.targets.len() * NEIGHBOUR_BYTES) as u64
    }

    /// Transposes the matrix: row/column roles swap. An out-edge CSR becomes
    /// the in-edge CSC and vice versa. Runs in `O(|V| + |E|)` with a counting
    /// sort, preserving row order within each output list (stable).
    pub fn transpose(&self) -> Csr {
        let n_out_rows = self.n_cols;
        let mut counts = vec![0 as EdgeIndex; n_out_rows + 1];
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 0..n_out_rows {
            counts[i + 1] += counts[i];
        }
        let offsets = counts.clone();
        let mut cursor = counts;
        let mut targets = vec![0 as VertexId; self.targets.len()];
        for (src, ns) in self.iter_rows() {
            for &dst in ns {
                let slot = cursor[dst as usize];
                targets[slot as usize] = src;
                cursor[dst as usize] += 1;
            }
        }
        Csr { offsets, targets, n_cols: self.n_rows() }
    }

    /// Sorts each adjacency list in place (useful for canonical comparisons
    /// and binary search membership tests).
    pub fn sort_rows(&mut self) {
        for v in 0..self.n_rows() {
            let (s, e) = (self.offsets[v] as usize, self.offsets[v + 1] as usize);
            self.targets[s..e].sort_unstable();
        }
    }

    /// Whether the edge `(row, col)` is stored. Requires `sort_rows` to have
    /// been called for `O(log d)` behaviour; falls back to linear scan
    /// correctness either way.
    pub fn has_edge(&self, row: VertexId, col: VertexId) -> bool {
        let ns = self.neighbours(row);
        if ns.len() > 16 && ns.windows(2).all(|w| w[0] <= w[1]) {
            ns.binary_search(&col).is_ok()
        } else {
            ns.contains(&col)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // 0 -> 1,2 ; 1 -> 2 ; 2 -> (none) ; 3 -> 0
        Csr::from_parts(vec![0, 2, 3, 3, 4], vec![1, 2, 2, 0], 4)
    }

    #[test]
    fn basic_accessors() {
        let c = sample();
        assert_eq!(c.n_rows(), 4);
        assert_eq!(c.n_cols(), 4);
        assert_eq!(c.n_edges(), 4);
        assert_eq!(c.degree(0), 2);
        assert_eq!(c.degree(2), 0);
        assert_eq!(c.neighbours(0), &[1, 2]);
        assert_eq!(c.neighbours(3), &[0]);
    }

    #[test]
    fn edge_iteration_order() {
        let c = sample();
        let edges: Vec<_> = c.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (3, 0)]);
    }

    #[test]
    fn transpose_roundtrip() {
        let c = sample();
        let t = c.transpose();
        assert_eq!(t.n_rows(), 4);
        assert_eq!(t.n_edges(), 4);
        // In-edges of 2 are from 0 and 1.
        assert_eq!(t.neighbours(2), &[0, 1]);
        assert_eq!(t.neighbours(0), &[3]);
        let back = t.transpose();
        assert_eq!(back, c);
    }

    #[test]
    fn topology_bytes_accounting() {
        let c = sample();
        // 5 offsets * 8 + 4 targets * 4 = 40 + 16.
        assert_eq!(c.topology_bytes(), 56);
    }

    #[test]
    fn empty_matrix() {
        let c = Csr::empty(3, 5);
        assert_eq!(c.n_rows(), 3);
        assert_eq!(c.n_cols(), 5);
        assert_eq!(c.n_edges(), 0);
        assert_eq!(c.degree(2), 0);
        assert_eq!(c.transpose().n_rows(), 5);
    }

    #[test]
    fn has_edge_small_and_sorted() {
        let mut c = sample();
        assert!(c.has_edge(0, 1));
        assert!(!c.has_edge(0, 3));
        c.sort_rows();
        assert!(c.has_edge(3, 0));
        assert!(!c.has_edge(2, 0));
    }

    #[test]
    #[should_panic(expected = "last offset")]
    fn from_parts_rejects_bad_last_offset() {
        Csr::from_parts(vec![0, 1], vec![0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "monotonically")]
    fn from_parts_rejects_nonmonotone() {
        Csr::from_parts(vec![0, 2, 1, 3], vec![0, 0, 0], 2);
    }

    #[test]
    #[should_panic(expected = "n_cols")]
    fn from_parts_rejects_out_of_range_target() {
        Csr::from_parts(vec![0, 1], vec![5], 2);
    }
}
