//! The directed graph type holding both traversal views.

use crate::builder::csr_from_pairs;
use crate::csr::Csr;
use crate::edgelist::EdgeList;
use crate::VertexId;

/// A directed graph with both the out-edge (CSR) and in-edge (CSC) views,
/// as used throughout the paper ("Graphs are represented in Compressed
/// Sparse Rows and Columns", §2.1).
///
/// * `csr().neighbours(v)` = out-neighbours `N⁺(v)` — walked by **push**.
/// * `csc().neighbours(v)` = in-neighbours `N⁻(v)` — walked by **pull**.
#[derive(Clone, Debug)]
pub struct Graph {
    csr: Csr,
    csc: Csr,
}

impl Graph {
    /// Builds both views from an edge list. Cost: two counting sorts.
    pub fn from_edge_list(el: &EdgeList) -> Self {
        let n = el.n_vertices();
        let csr = csr_from_pairs(n, n, el.edges());
        let csc = csr.transpose();
        Self { csr, csc }
    }

    /// Builds from raw `(src, dst)` pairs over `n` vertices.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let csr = csr_from_pairs(n, n, edges);
        let csc = csr.transpose();
        Self { csr, csc }
    }

    /// Builds from pre-computed views. `csr` and `csc` must be transposes of
    /// one another; this is checked in debug builds only (it is `O(|E|)`).
    pub fn from_views(csr: Csr, csc: Csr) -> Self {
        assert_eq!(csr.n_rows(), csc.n_rows(), "views must agree on |V|");
        assert_eq!(csr.n_edges(), csc.n_edges(), "views must agree on |E|");
        debug_assert_eq!(csr.transpose(), csc, "csc must be the transpose of csr");
        Self { csr, csc }
    }

    /// Number of vertices.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.csr.n_rows()
    }

    /// Number of directed edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.csr.n_edges()
    }

    /// The out-edge view (push traversal).
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.csr
    }

    /// The in-edge view (pull traversal).
    #[inline]
    pub fn csc(&self) -> &Csr {
        &self.csc
    }

    /// Out-degree `|N⁺(v)|`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> usize {
        self.csr.degree(v)
    }

    /// In-degree `|N⁻(v)|`.
    #[inline]
    pub fn in_degree(&self, v: VertexId) -> usize {
        self.csc.degree(v)
    }

    /// Applies a vertex relabeling: `perm[old] = new`. Both endpoints of
    /// every edge are renamed; adjacency content is otherwise identical.
    /// Used to materialise the graphs produced by the reordering baselines
    /// (SlashBurn / GOrder / Rabbit-Order, §4.5).
    pub fn relabel(&self, perm: &[VertexId]) -> Graph {
        let n = self.n_vertices();
        assert_eq!(perm.len(), n, "permutation length must equal |V|");
        let mut edges = Vec::with_capacity(self.n_edges());
        for (src, ns) in self.csr.iter_rows() {
            let s = perm[src as usize];
            for &dst in ns {
                edges.push((s, perm[dst as usize]));
            }
        }
        Graph::from_edges(n, &edges)
    }

    /// The transpose graph (every edge reversed).
    pub fn reverse(&self) -> Graph {
        Graph { csr: self.csc.clone(), csc: self.csr.clone() }
    }
}

/// The worked example graph of the paper's Figure 2(a) / Figure 5,
/// reconstructed exactly from the constraints the paper states (0-indexed;
/// paper vertex *k* is `k-1` here):
///
/// * in-neighbours of hub 3 are {2,5,6,7,8} (§2.3 pull timeline);
/// * hub 7 has in-degree 4 with sources among {2,3,5,6};
/// * VWEH = {2,5,6,8} and FV = {1,4} (Figure 4);
/// * row out-degrees match Figure 6: deg⁺ = [1,2,1,1,2,4,2,1];
/// * the pull timeline's initial cache state `[1,7]` requires N⁻(2) read
///   order `7, 1` and vertex 1 having in-neighbour 4.
pub fn paper_example_graph() -> Graph {
    let edges: Vec<(VertexId, VertexId)> = vec![
        (0, 1), // 1→2
        (1, 2),
        (1, 6), // 2→3, 2→7
        (2, 6), // 3→7
        (3, 0), // 4→1
        (4, 2),
        (4, 6), // 5→3, 5→7
        (5, 2),
        (5, 6),
        (5, 3),
        (5, 4), // 6→3, 6→7, 6→4, 6→5
        (6, 2),
        (6, 1), // 7→3, 7→2
        (7, 2), // 8→3
    ];
    Graph::from_edges(8, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_matches_figure() {
        let g = paper_example_graph();
        assert_eq!(g.n_vertices(), 8);
        assert_eq!(g.n_edges(), 14);
        // Paper's in-hubs are vertices 3 and 7 (0-indexed 2 and 6).
        assert_eq!(g.in_degree(2), 5);
        assert_eq!(g.in_degree(6), 4);
        // §2.3: pull of hub 3 reads the data of vertices 2,5,6,7,8.
        let mut srcs: Vec<u32> = g.csc().neighbours(2).to_vec();
        srcs.sort_unstable();
        assert_eq!(srcs, vec![1, 4, 5, 6, 7]);
        // Figure 6 row out-degrees.
        let degs: Vec<usize> = (0..8).map(|v| g.out_degree(v)).collect();
        assert_eq!(degs, vec![1, 2, 1, 1, 2, 4, 2, 1]);
        // FV = {1,4} (0-indexed 0 and 3): no out-edges to either hub.
        for fv in [0u32, 3u32] {
            assert!(!g.csr().neighbours(fv).contains(&2));
            assert!(!g.csr().neighbours(fv).contains(&6));
        }
    }

    #[test]
    fn views_are_transposes() {
        let g = paper_example_graph();
        assert_eq!(&g.csr().transpose(), g.csc());
        // Transposing back canonicalises adjacency order (counting sort is
        // stable over ascending source IDs), so compare sorted.
        let mut back = g.csc().transpose();
        back.sort_rows();
        let mut csr = g.csr().clone();
        csr.sort_rows();
        assert_eq!(back, csr);
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = paper_example_graph();
        let n = g.n_vertices() as u32;
        let perm: Vec<u32> = (0..n).map(|v| n - 1 - v).collect();
        let h = g.relabel(&perm);
        assert_eq!(h.n_edges(), g.n_edges());
        for v in 0..n {
            assert_eq!(h.in_degree(perm[v as usize]), g.in_degree(v));
            assert_eq!(h.out_degree(perm[v as usize]), g.out_degree(v));
        }
        assert!(h.csr().has_edge(perm[0], perm[1]));
    }

    #[test]
    fn reverse_swaps_views() {
        let g = paper_example_graph();
        let r = g.reverse();
        assert_eq!(r.csr(), g.csc());
        assert_eq!(r.in_degree(0), g.out_degree(0));
    }

    #[test]
    fn from_edge_list_equals_from_edges() {
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0)];
        let el = EdgeList::from_edges(3, edges.clone());
        let a = Graph::from_edge_list(&el);
        let b = Graph::from_edges(3, &edges);
        assert_eq!(a.csr(), b.csr());
        assert_eq!(a.csc(), b.csc());
    }
}
