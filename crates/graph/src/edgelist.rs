//! Mutable edge-list construction form.

use crate::VertexId;

/// A directed edge list used while constructing or transforming graphs.
///
/// Edges are `(source, destination)` pairs. The list is the common currency
/// between the synthetic generators (`ihtl-gen`) and the compressed
/// representations ([`crate::Csr`] / [`crate::Graph`]).
#[derive(Clone, Debug, Default)]
pub struct EdgeList {
    /// Number of vertices in the universe; all endpoints are `< n_vertices`.
    n_vertices: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// An empty list over `n_vertices` vertices.
    pub fn new(n_vertices: usize) -> Self {
        assert!(n_vertices <= u32::MAX as usize, "vertex universe must fit u32");
        Self { n_vertices, edges: Vec::new() }
    }

    /// Builds from a vector of edges, validating endpoints.
    pub fn from_edges(n_vertices: usize, edges: Vec<(VertexId, VertexId)>) -> Self {
        assert!(n_vertices <= u32::MAX as usize, "vertex universe must fit u32");
        for &(s, d) in &edges {
            assert!(
                (s as usize) < n_vertices && (d as usize) < n_vertices,
                "edge endpoint out of range"
            );
        }
        Self { n_vertices, edges }
    }

    /// Number of vertices in the universe.
    pub fn n_vertices(&self) -> usize {
        self.n_vertices
    }

    /// Number of edges (including duplicates before [`Self::dedup`]).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Appends one edge.
    pub fn push(&mut self, src: VertexId, dst: VertexId) {
        debug_assert!((src as usize) < self.n_vertices && (dst as usize) < self.n_vertices);
        self.edges.push((src, dst));
    }

    /// Reserves capacity for `additional` more edges.
    pub fn reserve(&mut self, additional: usize) {
        self.edges.reserve(additional);
    }

    /// The raw edge slice.
    pub fn edges(&self) -> &[(VertexId, VertexId)] {
        &self.edges
    }

    /// Consumes the list and returns the raw edges.
    pub fn into_edges(self) -> Vec<(VertexId, VertexId)> {
        self.edges
    }

    /// Sorts edges by `(src, dst)` and removes exact duplicates. Real-world
    /// graph files commonly contain duplicate edges; the paper's binary graph
    /// representations are duplicate-free adjacency structures.
    pub fn sort_dedup(&mut self) {
        self.edges.sort_unstable();
        self.edges.dedup();
    }

    /// Removes self-loops `(v, v)`.
    pub fn remove_self_loops(&mut self) {
        self.edges.retain(|&(s, d)| s != d);
    }

    /// Drops zero-degree vertices (vertices with neither in- nor out-edges)
    /// by compacting IDs, returning the mapping `old_id -> new_id` (with
    /// `u32::MAX` marking removed vertices). The paper removes zero-degree
    /// vertices "because of their destructive effect" (§4.1, Table 1).
    pub fn compact_zero_degree(&mut self) -> Vec<VertexId> {
        let mut used = vec![false; self.n_vertices];
        for &(s, d) in &self.edges {
            used[s as usize] = true;
            used[d as usize] = true;
        }
        let mut map = vec![u32::MAX; self.n_vertices];
        let mut next = 0u32;
        for (v, &u) in used.iter().enumerate() {
            if u {
                map[v] = next;
                next += 1;
            }
        }
        for e in &mut self.edges {
            e.0 = map[e.0 as usize];
            e.1 = map[e.1 as usize];
        }
        self.n_vertices = next as usize;
        map
    }

    /// Reverses every edge in place (graph transpose at the edge-list level).
    pub fn reverse(&mut self) {
        for e in &mut self.edges {
            std::mem::swap(&mut e.0, &mut e.1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_count() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(1, 2);
        assert_eq!(el.n_edges(), 2);
        assert_eq!(el.n_vertices(), 4);
    }

    #[test]
    fn sort_dedup_removes_duplicates() {
        let mut el = EdgeList::from_edges(3, vec![(2, 1), (0, 1), (2, 1), (0, 1), (1, 0)]);
        el.sort_dedup();
        assert_eq!(el.edges(), &[(0, 1), (1, 0), (2, 1)]);
    }

    #[test]
    fn self_loop_removal() {
        let mut el = EdgeList::from_edges(3, vec![(0, 0), (0, 1), (2, 2)]);
        el.remove_self_loops();
        assert_eq!(el.edges(), &[(0, 1)]);
    }

    #[test]
    fn compact_drops_isolated_vertices() {
        // Vertex 1 and 3 unused out of 5.
        let mut el = EdgeList::from_edges(5, vec![(0, 2), (4, 0)]);
        let map = el.compact_zero_degree();
        assert_eq!(el.n_vertices(), 3);
        assert_eq!(map[0], 0);
        assert_eq!(map[1], u32::MAX);
        assert_eq!(map[2], 1);
        assert_eq!(map[4], 2);
        assert_eq!(el.edges(), &[(0, 1), (2, 0)]);
    }

    #[test]
    fn reverse_swaps_endpoints() {
        let mut el = EdgeList::from_edges(3, vec![(0, 1), (2, 0)]);
        el.reverse();
        assert_eq!(el.edges(), &[(1, 0), (0, 2)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_edges_validates() {
        EdgeList::from_edges(2, vec![(0, 3)]);
    }
}
