//! Graph substrate for the iHTL reproduction.
//!
//! This crate provides the representations and utilities every other crate in
//! the workspace builds on:
//!
//! * [`Csr`] — compressed sparse rows/columns with 8-byte offsets and 4-byte
//!   neighbour IDs, matching the layout the paper accounts for in its
//!   topology-size analysis (§4.4, Table 4);
//! * [`Graph`] — a directed graph holding both the out-edge ([`Graph::csr`])
//!   and in-edge ([`Graph::csc`]) views;
//! * [`EdgeList`] — the mutable construction form, with dedup/sort helpers;
//! * [`stats`] — degree distributions, hub statistics and the *asymmetricity*
//!   measure of the paper's Figure 9;
//! * [`partition`] — edge-balanced range partitioning used by the parallel
//!   traversals (the paper's GraphGrind-style partitioning, §4.1);
//! * [`shard`] — destination-range sharding for multi-node serving (the
//!   same partitioning applied across workers, with merge-exactness
//!   invariants documented on the module);
//! * [`io`] — a compact binary format so preprocessing can be amortised
//!   across runs (§4.2).
//!
//! Vertex IDs are `u32` and edge indices are `u64`, exactly as in the paper's
//! experimental setup ("|V|+1 index values of 8 bytes … and |E| neighbour IDs
//! of 4 bytes each as |V| < 2^32").

pub mod builder;
pub mod csr;
pub mod edgelist;
pub mod graph;
pub mod io;
pub mod partition;
pub mod shard;
pub mod stats;

pub use csr::Csr;
pub use edgelist::EdgeList;
pub use graph::Graph;

/// Vertex identifier. The paper stores neighbour IDs in 4 bytes.
pub type VertexId = u32;

/// Edge index / offset type. The paper stores CSR/CSC offsets in 8 bytes.
pub type EdgeIndex = u64;

/// Number of bytes of one CSR/CSC offset entry (paper §4.1).
pub const OFFSET_BYTES: usize = 8;

/// Number of bytes of one stored neighbour ID (paper §4.1).
pub const NEIGHBOUR_BYTES: usize = 4;

/// Number of bytes of one vertex-data element in the evaluation (paper §4.1:
/// "The vertex data size is 8 bytes").
pub const VERTEX_DATA_BYTES: usize = 8;
