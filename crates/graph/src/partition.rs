//! Edge-balanced range partitioning.
//!
//! The paper's implementation "applies work-stealing for parallel processing
//! of graph partitions created by vertex and edge partitioning" (§4.1,
//! GraphGrind-style). The equivalent here: split the vertex range `0..n`
//! into contiguous chunks whose *edge* counts are as equal as possible, then
//! hand the chunks to ihtl-parallel (whose self-scheduling chunk queue
//! provides the load balancing).

use crate::csr::Csr;
use crate::VertexId;

/// A contiguous vertex range `[start, end)` owning the edges of the rows it
/// spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexRange {
    pub start: VertexId,
    pub end: VertexId,
}

impl VertexRange {
    /// Number of vertices in the range.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Whether the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Iterate the vertex IDs of the range.
    pub fn iter(&self) -> impl Iterator<Item = VertexId> {
        self.start..self.end
    }
}

/// Splits the rows of `csr` into at most `n_parts` contiguous ranges with
/// approximately equal edge counts (each part gets ≈ `|E|/n_parts` edges,
/// off by at most one row's degree). Empty trailing parts are dropped, so
/// fewer than `n_parts` ranges may be returned for tiny graphs.
pub fn edge_balanced_ranges(csr: &Csr, n_parts: usize) -> Vec<VertexRange> {
    assert!(n_parts > 0, "need at least one part");
    let n = csr.n_rows();
    let m = csr.n_edges() as u64;
    let offsets = csr.offsets();
    let mut ranges = Vec::with_capacity(n_parts);
    let mut start = 0usize;
    for p in 1..=n_parts {
        if start >= n {
            break;
        }
        // Target cumulative edge count after part p.
        let target = m * p as u64 / n_parts as u64;
        // First row index whose offset reaches the target.
        let end = if p == n_parts {
            n
        } else {
            let mut e = offsets[start..=n].partition_point(|&o| o < target) + start;
            e = e.clamp(start + 1, n);
            e
        };
        ranges.push(VertexRange { start: start as VertexId, end: end as VertexId });
        start = end;
    }
    ranges
}

/// Splits `0..n` into `n_parts` vertex-balanced ranges (plain chunking),
/// used where edge balance is irrelevant (e.g. buffer merging over hubs).
pub fn vertex_balanced_ranges(n: usize, n_parts: usize) -> Vec<VertexRange> {
    assert!(n_parts > 0, "need at least one part");
    let chunk = n.div_ceil(n_parts).max(1);
    (0..n)
        .step_by(chunk)
        .map(|s| VertexRange { start: s as VertexId, end: (s + chunk).min(n) as VertexId })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::csr_from_pairs;

    fn skewed_csr() -> Csr {
        // Row 0 has 90 edges, rows 1..10 have 1 each.
        let mut edges = Vec::new();
        for i in 0..90u32 {
            edges.push((0u32, i % 10));
        }
        for r in 1..10u32 {
            edges.push((r, 0));
        }
        csr_from_pairs(10, 10, &edges)
    }

    #[test]
    fn ranges_cover_all_rows_exactly_once() {
        let c = skewed_csr();
        for parts in [1, 2, 3, 7, 100] {
            let rs = edge_balanced_ranges(&c, parts);
            let mut next = 0u32;
            for r in &rs {
                assert_eq!(r.start, next);
                assert!(r.end > r.start);
                next = r.end;
            }
            assert_eq!(next as usize, c.n_rows());
        }
    }

    #[test]
    fn heavy_row_isolated() {
        let c = skewed_csr();
        let rs = edge_balanced_ranges(&c, 4);
        // The 90-edge row dominates: the first range should contain only row 0.
        assert_eq!(rs[0], VertexRange { start: 0, end: 1 });
    }

    #[test]
    fn balanced_on_uniform_graph() {
        let edges: Vec<(u32, u32)> = (0..100u32).map(|v| (v, (v + 1) % 100)).collect();
        let c = csr_from_pairs(100, 100, &edges);
        let rs = edge_balanced_ranges(&c, 4);
        assert_eq!(rs.len(), 4);
        for r in &rs {
            assert_eq!(r.len(), 25);
        }
    }

    #[test]
    fn vertex_ranges_cover() {
        let rs = vertex_balanced_ranges(10, 3);
        let total: usize = rs.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(rs[0].start, 0);
        assert_eq!(rs.last().unwrap().end, 10);
    }

    #[test]
    fn empty_graph_single_part() {
        let c = Csr::empty(0, 0);
        let rs = edge_balanced_ranges(&c, 4);
        assert!(rs.is_empty());
        assert!(vertex_balanced_ranges(0, 2).is_empty());
    }
}
