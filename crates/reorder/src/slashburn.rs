//! SlashBurn (Lim, Kang, Faloutsos — TKDE 2014).
//!
//! Each round: *slash* the `k` highest-degree vertices (hubs) out of the
//! graph and place them at the next free positions at the **front** of the
//! ordering; the removal shatters the remainder into connected components;
//! every non-giant component's vertices (*spokes*) are placed at the
//! **back**; recursion continues on the giant connected component (GCC)
//! until it has at most `k` vertices. The result clusters hub-adjacent
//! structure at low IDs — the "caveman community" ordering the paper uses
//! as its first baseline.

use std::time::Instant;

use ihtl_graph::{Graph, VertexId};

use crate::Reordering;

/// Union-find over vertex IDs with union by size.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    fn find(&mut self, v: u32) -> u32 {
        let mut root = v;
        while self.parent[root as usize] != root {
            root = self.parent[root as usize];
        }
        // Path compression.
        let mut cur = v;
        while self.parent[cur as usize] != root {
            let next = self.parent[cur as usize];
            self.parent[cur as usize] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }
}

/// Runs SlashBurn with hub fraction `k_ratio` (the original paper suggests
/// 0.5 % of |V| per round). Degrees are taken over the undirected view.
pub fn slashburn(g: &Graph, k_ratio: f64) -> Reordering {
    // lint:allow(R4): reorder cost is reported alongside the ordering
    let t = Instant::now();
    let n = g.n_vertices();
    let k = ((n as f64 * k_ratio).ceil() as usize).max(1);

    let mut alive = vec![true; n];
    let mut front: Vec<VertexId> = Vec::with_capacity(n);
    let mut back: Vec<VertexId> = Vec::with_capacity(n);
    // Degree within the alive subgraph (undirected).
    let mut degree: Vec<u64> =
        (0..n as u32).map(|v| (g.in_degree(v) + g.out_degree(v)) as u64).collect();
    let mut n_alive = n;

    while n_alive > k {
        // --- Slash: remove the k highest-degree alive vertices. ---
        let mut order: Vec<u32> = (0..n as u32).filter(|&v| alive[v as usize]).collect();
        order.sort_unstable_by(|&a, &b| {
            degree[b as usize].cmp(&degree[a as usize]).then_with(|| a.cmp(&b))
        });
        let removed = k.min(order.len());
        for &hub in order.iter().take(removed) {
            alive[hub as usize] = false;
            front.push(hub);
        }
        n_alive -= removed;

        // Update alive degrees after hub removal.
        for &hub in order.iter().take(removed) {
            for &u in g.csr().neighbours(hub) {
                degree[u as usize] = degree[u as usize].saturating_sub(1);
            }
            for &u in g.csc().neighbours(hub) {
                degree[u as usize] = degree[u as usize].saturating_sub(1);
            }
        }

        // --- Burn: components of the remainder. ---
        let mut uf = UnionFind::new(n);
        for (u, outs) in g.csr().iter_rows() {
            if !alive[u as usize] {
                continue;
            }
            for &v in outs {
                if alive[v as usize] {
                    uf.union(u, v);
                }
            }
        }
        // Component sizes among alive vertices.
        let mut comp_size: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for v in 0..n as u32 {
            if alive[v as usize] {
                *comp_size.entry(uf.find(v)).or_insert(0) += 1;
            }
        }
        let gcc_root = match comp_size.iter().max_by_key(|&(&r, &s)| (s, std::cmp::Reverse(r))) {
            Some((&r, _)) => r,
            None => break,
        };

        // Spokes: every non-GCC alive vertex goes to the back, grouped by
        // component (larger components first), vertices in original order.
        let mut spokes: Vec<(u32, u32)> = Vec::new(); // (component root, vertex)
        for v in 0..n as u32 {
            if alive[v as usize] && uf.find(v) != gcc_root {
                spokes.push((uf.find(v), v));
            }
        }
        spokes.sort_unstable_by(|a, b| {
            comp_size[&b.0]
                .cmp(&comp_size[&a.0])
                .then_with(|| a.0.cmp(&b.0))
                .then_with(|| a.1.cmp(&b.1))
        });
        for &(_, v) in &spokes {
            alive[v as usize] = false;
            back.push(v);
            // Degrees of GCC vertices never reference spokes again (they
            // are in different components), so no degree updates needed.
        }
        n_alive -= spokes.len();
    }

    // Remaining GCC kernel: append by degree, descending.
    let mut rest: Vec<u32> = (0..n as u32).filter(|&v| alive[v as usize]).collect();
    rest.sort_unstable_by(|&a, &b| {
        degree[b as usize].cmp(&degree[a as usize]).then_with(|| a.cmp(&b))
    });
    front.extend(rest);

    // Final layout: front ++ reverse(back).
    let mut order = front;
    order.extend(back.into_iter().rev());
    debug_assert_eq!(order.len(), n);
    let mut perm = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    Reordering { name: "SlashBurn", perm, seconds: t.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_graph::graph::paper_example_graph;

    #[test]
    fn produces_valid_permutation() {
        let g = paper_example_graph();
        let r = slashburn(&g, 0.15);
        r.validate();
    }

    #[test]
    fn hubs_get_lowest_ids() {
        // Star graph: vertex 0 is the hub of 20 leaves.
        let edges: Vec<(u32, u32)> = (1..21u32).map(|v| (v, 0)).collect();
        let g = Graph::from_edges(21, &edges);
        let r = slashburn(&g, 0.05); // k = 2 hubs per round
        r.validate();
        assert_eq!(r.perm[0], 0, "hub must be slashed first");
    }

    #[test]
    fn spokes_go_to_the_back() {
        // Hub 0 links to everything; removing it leaves the cycle
        // {1,2,3,4} as the GCC and {5}, {6} as spokes.
        let mut edges: Vec<(u32, u32)> = (1..7u32).flat_map(|v| [(0, v), (v, 0)]).collect();
        edges.extend([(1u32, 2u32), (2, 3), (3, 4), (4, 1)]);
        let g = Graph::from_edges(7, &edges);
        let r = slashburn(&g, 0.1); // k = 1
        r.validate();
        assert_eq!(r.perm[0], 0, "hub 0 slashed first");
        // The spokes land in the final two positions.
        let mut spoke_pos = [r.perm[5], r.perm[6]];
        spoke_pos.sort_unstable();
        assert_eq!(spoke_pos, [5, 6]);
        // GCC members fill the middle.
        for v in 1..5 {
            assert!((1..5).contains(&r.perm[v as usize]), "perm[{v}] = {}", r.perm[v as usize]);
        }
    }

    #[test]
    fn works_on_edgeless_graph() {
        let g = Graph::from_edges(5, &[]);
        let r = slashburn(&g, 0.3);
        r.validate();
    }

    #[test]
    fn deterministic() {
        let g = paper_example_graph();
        assert_eq!(slashburn(&g, 0.15).perm, slashburn(&g, 0.15).perm);
    }
}
