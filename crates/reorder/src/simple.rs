//! Control orderings: identity, random, degree sort.

use std::time::Instant;

use ihtl_graph::stats::vertices_by_in_degree_desc;
use ihtl_graph::{Graph, VertexId};

use crate::Reordering;

/// The identity ordering (the "initial" curves of Figures 1 and 8).
pub fn identity(g: &Graph) -> Reordering {
    Reordering { name: "identity", perm: (0..g.n_vertices() as u32).collect(), seconds: 0.0 }
}

/// A seeded uniformly random ordering — the locality-destroying control.
pub fn random(g: &Graph, seed: u64) -> Reordering {
    // lint:allow(R4): reorder cost is reported alongside the ordering
    let t = Instant::now();
    let mut order: Vec<VertexId> = (0..g.n_vertices() as u32).collect();
    let mut rng = ihtl_gen::Pcg64::seed_from_u64(seed);
    rng.shuffle(&mut order);
    // `order[new] = old`; invert into perm[old] = new.
    let mut perm = vec![0 as VertexId; order.len()];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    Reordering { name: "random", perm, seconds: t.elapsed().as_secs_f64() }
}

/// Sort by descending in-degree — the degree-sort baseline several blocking
/// schemes apply throughout (the paper notes this "destroys locality
/// expressed in the initial assignment of vertex labels", §5.4).
pub fn degree_sort(g: &Graph) -> Reordering {
    // lint:allow(R4): reorder cost is reported alongside the ordering
    let t = Instant::now();
    let order = vertices_by_in_degree_desc(g);
    let mut perm = vec![0 as VertexId; order.len()];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    Reordering { name: "degree-sort", perm, seconds: t.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_graph::graph::paper_example_graph;

    #[test]
    fn identity_is_identity() {
        let g = paper_example_graph();
        let r = identity(&g);
        r.validate();
        assert!(r.perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
    }

    #[test]
    fn random_is_valid_and_seeded() {
        let g = paper_example_graph();
        let a = random(&g, 7);
        let b = random(&g, 7);
        let c = random(&g, 8);
        a.validate();
        assert_eq!(a.perm, b.perm);
        assert_ne!(a.perm, c.perm);
    }

    #[test]
    fn degree_sort_puts_hubs_first() {
        let g = paper_example_graph();
        let r = degree_sort(&g);
        r.validate();
        // The top in-degree vertex (2) maps to new ID 0.
        assert_eq!(r.perm[2], 0);
        assert_eq!(r.perm[6], 1);
    }
}
