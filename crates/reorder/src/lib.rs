//! Locality-optimizing relabeling baselines (paper §4.5, Figures 1 and 8).
//!
//! The paper compares iHTL against three published reordering algorithms;
//! this crate reimplements each one's core algorithm:
//!
//! * [`slashburn`] — SlashBurn (Lim, Kang, Faloutsos 2014): iterative hub
//!   removal and giant-component recursion;
//! * [`gorder`] — GOrder (Wei et al. 2016): sliding-window greedy
//!   maximisation of neighbour/sibling affinity (sequential and expensive,
//!   exactly as the paper reports — >2000× iHTL's preprocessing time);
//! * [`rabbit`] — Rabbit-Order (Arai et al. 2016): modularity-driven
//!   hierarchical community aggregation with dendrogram DFS numbering;
//! * [`simple`] — identity, random and degree-sort orderings as controls.
//!
//! All of them produce a [`Reordering`]: a permutation `perm[old] = new`
//! plus the preprocessing wall-clock the paper prices in Figure 8 (right).

#![forbid(unsafe_code)]

pub mod gorder;
pub mod rabbit;
pub mod simple;
pub mod slashburn;

use ihtl_graph::VertexId;

/// A vertex relabeling together with the time it took to compute.
#[derive(Clone, Debug)]
pub struct Reordering {
    /// Algorithm label for reports.
    pub name: &'static str,
    /// `perm[old] = new`.
    pub perm: Vec<VertexId>,
    /// Preprocessing wall-clock seconds.
    pub seconds: f64,
}

impl Reordering {
    /// Panics unless `perm` is a bijection on `0..n`.
    pub fn validate(&self) {
        let n = self.perm.len();
        let mut seen = vec![false; n];
        for &p in &self.perm {
            assert!((p as usize) < n, "target {p} out of range");
            assert!(!seen[p as usize], "duplicate target {p}");
            seen[p as usize] = true;
        }
    }

    /// The inverse mapping `inv[new] = old`.
    pub fn inverse(&self) -> Vec<VertexId> {
        let mut inv = vec![0 as VertexId; self.perm.len()];
        for (old, &new) in self.perm.iter().enumerate() {
            inv[new as usize] = old as VertexId;
        }
        inv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_accepts_permutation() {
        let r = Reordering { name: "t", perm: vec![2, 0, 1], seconds: 0.0 };
        r.validate();
        assert_eq!(r.inverse(), vec![1, 2, 0]);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn validate_rejects_duplicates() {
        Reordering { name: "t", perm: vec![0, 0, 1], seconds: 0.0 }.validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn validate_rejects_out_of_range() {
        Reordering { name: "t", perm: vec![0, 3], seconds: 0.0 }.validate();
    }
}
