//! GOrder (Wei, Yu, Lu, Lin — SIGMOD 2016).
//!
//! Greedy sequential ordering: vertices are emitted one at a time; the next
//! vertex is the one with the highest affinity to the sliding window of the
//! last `w` emitted vertices, where the affinity `s(u, v)` counts
//! sibling relationships (shared in-neighbours) and direct adjacency.
//!
//! When `v` enters the window, the scores of (a) `v`'s out-neighbours
//! (adjacency term) and (b) the out-neighbours of `v`'s in-neighbours
//! (sibling term) are incremented; when `v` leaves the window the same
//! scores are decremented. The per-step cost is `Σ_{w∈N⁻(v)} deg⁺(w)`,
//! which is what makes GOrder expensive on hub-heavy graphs — the paper
//! reports GOrder preprocessing >2000× slower than iHTL's (Figure 8), and
//! it "has a sequential implementation" (§4.5). This reimplementation is
//! deliberately sequential too.
//!
//! The max-priority structure is a bucket queue over integer scores with
//! O(1) increment/decrement (the "unit heap" of the original code).

use std::time::Instant;

use ihtl_graph::{Graph, VertexId};

use crate::Reordering;

/// Bucket priority queue over non-negative integer keys with O(1)
/// increment/decrement and amortized-O(1) extract-max (the role the "unit
/// heap" plays in the original GOrder code).
///
/// Live items sit in per-key buckets; a lazily maintained `max_key` pointer
/// only moves down when buckets drain, and every downward step is paid for
/// by a previous increment.
pub(crate) struct BucketQueue {
    key: Vec<i64>,
    /// `buckets[k]` holds the live items whose key is `k` (unordered).
    buckets: Vec<Vec<u32>>,
    /// Index of each live item inside its bucket, for O(1) removal.
    pos_in_bucket: Vec<usize>,
    extracted: Vec<bool>,
    n_live: usize,
    max_key: usize,
}

impl BucketQueue {
    pub(crate) fn new(n: usize) -> Self {
        Self {
            key: vec![0; n],
            buckets: vec![(0..n as u32).collect()],
            pos_in_bucket: (0..n).collect(),
            extracted: vec![false; n],
            n_live: n,
            max_key: 0,
        }
    }

    /// Swap-removes `v` from its current bucket.
    fn detach(&mut self, v: u32) {
        let k = self.key[v as usize] as usize;
        let p = self.pos_in_bucket[v as usize];
        let bucket = &mut self.buckets[k];
        let last = bucket.pop().expect("item not in its bucket");
        if last != v {
            bucket[p] = last;
            self.pos_in_bucket[last as usize] = p;
        }
    }

    fn attach(&mut self, v: u32, k: usize) {
        if self.buckets.len() <= k {
            self.buckets.resize_with(k + 1, Vec::new);
        }
        self.pos_in_bucket[v as usize] = self.buckets[k].len();
        self.buckets[k].push(v);
        self.key[v as usize] = k as i64;
        self.max_key = self.max_key.max(k);
    }

    /// Increments `v`'s key (ignored once extracted).
    pub(crate) fn increment(&mut self, v: u32) {
        if self.extracted[v as usize] {
            return;
        }
        let k = self.key[v as usize] as usize;
        self.detach(v);
        self.attach(v, k + 1);
    }

    /// Decrements `v`'s key (ignored once extracted; keys never go below 0).
    pub(crate) fn decrement(&mut self, v: u32) {
        if self.extracted[v as usize] || self.key[v as usize] == 0 {
            return;
        }
        let k = self.key[v as usize] as usize;
        self.detach(v);
        self.attach(v, k - 1);
    }

    /// Extracts a maximum-key live item, or `None` when empty.
    pub(crate) fn extract_max(&mut self) -> Option<u32> {
        if self.n_live == 0 {
            return None;
        }
        while self.buckets[self.max_key].is_empty() {
            self.max_key -= 1;
        }
        let v = *self.buckets[self.max_key].last().unwrap();
        self.detach(v);
        self.extracted[v as usize] = true;
        self.n_live -= 1;
        Some(v)
    }

    #[cfg(test)]
    fn key_of(&self, v: u32) -> i64 {
        self.key[v as usize]
    }
}

/// Runs GOrder with window width `w` (the original paper uses w = 5).
pub fn gorder(g: &Graph, w: usize) -> Reordering {
    // lint:allow(R4): reorder cost is reported alongside the ordering
    let t = Instant::now();
    let n = g.n_vertices();
    assert!(w >= 1);
    let mut q = BucketQueue::new(n);
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut window: std::collections::VecDeque<u32> = std::collections::VecDeque::new();

    // Seed: the highest in-degree vertex (the original seeds with the
    // max-degree vertex).
    while order.len() < n {
        let v = q.extract_max().expect("queue exhausted early");
        // Window update: v enters.
        apply_updates(g, &mut q, v, true);
        window.push_back(v);
        if window.len() > w {
            let out = window.pop_front().unwrap();
            apply_updates(g, &mut q, out, false);
        }
        order.push(v);
    }

    let mut perm = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    Reordering { name: "GOrder", perm, seconds: t.elapsed().as_secs_f64() }
}

/// Score increments (enter) or decrements (leave) for window member `v`:
/// adjacency term to/from `v`, and sibling term through `v`'s in-neighbours.
fn apply_updates(g: &Graph, q: &mut BucketQueue, v: u32, enter: bool) {
    let mut bump = |u: u32| {
        if enter {
            q.increment(u);
        } else {
            q.decrement(u);
        }
    };
    // S_n: u is adjacent to v (either direction).
    for &u in g.csr().neighbours(v) {
        bump(u);
    }
    for &u in g.csc().neighbours(v) {
        bump(u);
    }
    // S_s: u shares an in-neighbour with v.
    for &w in g.csc().neighbours(v) {
        for &u in g.csr().neighbours(w) {
            if u != v {
                bump(u);
            }
        }
    }
}

/// Estimated number of score updates one GOrder run would perform:
/// `2 · Σ_w deg⁺(w)²` plus the adjacency terms. Used by the harness to
/// skip GOrder on graphs where it would be prohibitively slow — mirroring
/// the paper, which could not run GOrder beyond |E| < 2³¹.
pub fn gorder_cost_estimate(g: &Graph) -> u64 {
    let sibling: u64 = (0..g.n_vertices() as u32)
        .map(|v| {
            let d = g.out_degree(v) as u64;
            d * d
        })
        .sum();
    2 * (sibling + 2 * g.n_edges() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_graph::graph::paper_example_graph;

    #[test]
    fn bucket_queue_orders_by_key() {
        let mut q = BucketQueue::new(4);
        q.increment(2);
        q.increment(2);
        q.increment(1);
        assert_eq!(q.extract_max(), Some(2));
        assert_eq!(q.extract_max(), Some(1));
        // Remaining two have key 0; both must come out exactly once.
        let rest = [q.extract_max().unwrap(), q.extract_max().unwrap()];
        let mut sorted = rest;
        sorted.sort_unstable();
        assert_eq!(sorted, [0, 3]);
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn bucket_queue_decrement() {
        let mut q = BucketQueue::new(3);
        q.increment(0);
        q.increment(0);
        q.increment(1);
        q.decrement(0);
        q.decrement(0); // 0 back to key 0
        assert_eq!(q.extract_max(), Some(1));
        assert_eq!(q.key_of(0), 0);
    }

    #[test]
    fn bucket_queue_updates_after_extraction_are_ignored() {
        let mut q = BucketQueue::new(3);
        q.increment(1);
        assert_eq!(q.extract_max(), Some(1));
        q.increment(1); // stale update, must not corrupt anything
        q.increment(2);
        assert_eq!(q.extract_max(), Some(2));
        assert_eq!(q.extract_max(), Some(0));
        assert_eq!(q.extract_max(), None);
    }

    #[test]
    fn bucket_queue_randomized_against_reference() {
        let mut rng = ihtl_gen::Pcg64::seed_from_u64(99);
        for _trial in 0..50 {
            let n = 12;
            let mut q = BucketQueue::new(n);
            let mut reference = vec![0i64; n];
            let mut alive = vec![true; n];
            for _ in 0..60 {
                let v = rng.gen_index(n) as u32;
                if rng.gen_bool(0.5) {
                    q.increment(v);
                    if alive[v as usize] {
                        reference[v as usize] += 1;
                    }
                } else {
                    q.decrement(v);
                    if alive[v as usize] && reference[v as usize] > 0 {
                        reference[v as usize] -= 1;
                    }
                }
                if rng.gen_bool(0.1) {
                    if let Some(m) = q.extract_max() {
                        let best = reference
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| alive[i])
                            .map(|(_, &k)| k)
                            .max()
                            .unwrap();
                        assert_eq!(
                            reference[m as usize], best,
                            "extracted {m} with key {} but max is {best}",
                            reference[m as usize]
                        );
                        alive[m as usize] = false;
                    }
                }
            }
        }
    }

    #[test]
    fn gorder_produces_valid_permutation() {
        let g = paper_example_graph();
        let r = gorder(&g, 3);
        r.validate();
    }

    #[test]
    fn gorder_groups_siblings() {
        // Vertices 1,2,3 all share in-neighbour 0; vertex 4 is unrelated
        // (only a back-edge to 0 keeps it connected).
        let g = Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (4, 0)]);
        let r = gorder(&g, 3);
        r.validate();
        let inv = r.inverse();
        // Find the positions of the siblings; they must be consecutive-ish
        // (span ≤ 3 positions), with 4 outside that span.
        let pos: Vec<usize> =
            [1u32, 2, 3].iter().map(|&v| inv.iter().position(|&o| o == v).unwrap()).collect();
        let span = pos.iter().max().unwrap() - pos.iter().min().unwrap();
        assert!(span <= 3, "siblings scattered: {pos:?}");
    }

    #[test]
    fn cost_estimate_counts_out_degree_squares() {
        let g = Graph::from_edges(3, &[(0, 1), (0, 2)]);
        // Σ deg⁺² = 4; edges = 2 → 2·(4 + 4) = 16.
        assert_eq!(gorder_cost_estimate(&g), 16);
    }
}
