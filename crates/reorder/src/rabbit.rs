//! Rabbit-Order (Arai, Shiokawa, Yamamuro, Onizuka, Iwamura — IPDPS 2016).
//!
//! Community-driven numbering: hierarchical modularity-based aggregation
//! builds a dendrogram (each vertex merges into the neighbour community
//! with the best modularity gain, then the contracted graph repeats), and a
//! DFS over the dendrogram assigns consecutive new IDs within communities —
//! "just-in-time parallel reordering" in the original; a faithful sequential
//! aggregation is sufficient here since the paper only consumes the
//! ordering and its (relative) preprocessing cost.

use std::collections::HashMap;
use std::time::Instant;

use ihtl_graph::{Graph, VertexId};

use crate::Reordering;

/// One dendrogram node: either a leaf (original vertex) or a merge.
enum Node {
    Leaf(VertexId),
    Merge(Vec<usize>),
}

/// Runs Rabbit-Order-style aggregation with at most `max_levels` rounds of
/// contraction.
pub fn rabbit_order(g: &Graph, max_levels: usize) -> Reordering {
    // lint:allow(R4): reorder cost is reported alongside the ordering
    let t = Instant::now();
    let n = g.n_vertices();
    // Undirected weighted multigraph as adjacency maps community → weight.
    // Start: every vertex its own community with its dendrogram leaf.
    let mut nodes: Vec<Node> = (0..n as u32).map(Node::Leaf).collect();
    // adj[c] maps neighbour community -> edge weight.
    let mut adj: Vec<HashMap<u32, u64>> = vec![HashMap::new(); n];
    for (u, outs) in g.csr().iter_rows() {
        for &v in outs {
            if u == v {
                continue;
            }
            *adj[u as usize].entry(v).or_insert(0) += 1;
            *adj[v as usize].entry(u).or_insert(0) += 1;
        }
    }
    let two_m = (2 * g.n_edges()).max(1) as f64;
    let mut weight: Vec<u64> = adj.iter().map(|a| a.values().sum::<u64>()).collect();
    // node_of[c] = dendrogram node index of live community c.
    let mut node_of: Vec<usize> = (0..n).collect();
    let mut live: Vec<u32> = (0..n as u32).collect();

    for _level in 0..max_levels {
        // Merge pass: ascending degree (the original merges small-degree
        // vertices first to keep communities balanced).
        let mut order = live.clone();
        order.sort_unstable_by(|&a, &b| {
            weight[a as usize].cmp(&weight[b as usize]).then_with(|| a.cmp(&b))
        });
        let mut merged_any = false;
        let mut alive: Vec<bool> = vec![false; n];
        for &c in &live {
            alive[c as usize] = true;
        }
        for &c in &order {
            if !alive[c as usize] {
                continue;
            }
            // Best neighbour by modularity gain ΔQ ∝ w(c,u)/2m − k_c·k_u/(2m)².
            // Ties break toward the smaller community ID so the result does
            // not depend on HashMap iteration order.
            let mut best: Option<(u32, f64)> = None;
            for (&u, &w) in &adj[c as usize] {
                if u == c || !alive[u as usize] {
                    continue;
                }
                let dq = w as f64 / two_m
                    - (weight[c as usize] as f64 * weight[u as usize] as f64) / (two_m * two_m);
                if dq > 0.0 && best.is_none_or(|(bu, b)| dq > b || (dq == b && u < bu)) {
                    best = Some((u, dq));
                }
            }
            let Some((target, _)) = best else { continue };
            // Merge c into target.
            merged_any = true;
            alive[c as usize] = false;
            let c_adj = std::mem::take(&mut adj[c as usize]);
            for (u, w) in c_adj {
                if u == target || u == c {
                    continue;
                }
                *adj[target as usize].entry(u).or_insert(0) += w;
                let a = &mut adj[u as usize];
                a.remove(&c);
                *a.entry(target).or_insert(0) += w;
            }
            adj[target as usize].remove(&c);
            weight[target as usize] += weight[c as usize];
            // Dendrogram: target's node becomes Merge([target_node, c_node])
            // (or extends an existing merge).
            let c_node = node_of[c as usize];
            let t_node = node_of[target as usize];
            match &mut nodes[t_node] {
                Node::Merge(children) => children.push(c_node),
                Node::Leaf(_) => {
                    let idx = nodes.len();
                    nodes.push(Node::Merge(vec![t_node, c_node]));
                    node_of[target as usize] = idx;
                }
            }
        }
        live.retain(|&c| alive[c as usize]);
        if !merged_any || live.len() <= 1 {
            break;
        }
    }

    // DFS over the dendrogram, assigning consecutive IDs. Top-level
    // communities in ascending original representative order keeps the
    // result deterministic.
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut stack: Vec<usize> = live.iter().rev().map(|&c| node_of[c as usize]).collect();
    while let Some(idx) = stack.pop() {
        match &nodes[idx] {
            Node::Leaf(v) => order.push(*v),
            Node::Merge(children) => stack.extend(children.iter().rev()),
        }
    }
    debug_assert_eq!(order.len(), n);
    let mut perm = vec![0 as VertexId; n];
    for (new, &old) in order.iter().enumerate() {
        perm[old as usize] = new as VertexId;
    }
    Reordering { name: "Rabbit-Order", perm, seconds: t.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_graph::graph::paper_example_graph;

    #[test]
    fn valid_permutation_on_paper_example() {
        let g = paper_example_graph();
        let r = rabbit_order(&g, 8);
        r.validate();
    }

    #[test]
    fn communities_get_consecutive_ids() {
        // Two triangles joined by one weak edge: each triangle is a
        // community, so its three vertices must receive consecutive IDs.
        let edges = vec![(0u32, 1u32), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)];
        let g = Graph::from_edges(6, &edges);
        let r = rabbit_order(&g, 8);
        r.validate();
        let mut a: Vec<u32> = (0..3).map(|v| r.perm[v]).collect();
        let mut b: Vec<u32> = (3..6).map(|v| r.perm[v]).collect();
        a.sort_unstable();
        b.sort_unstable();
        let contiguous = |xs: &[u32]| xs.windows(2).all(|w| w[1] == w[0] + 1);
        assert!(contiguous(&a), "triangle A scattered: {a:?}");
        assert!(contiguous(&b), "triangle B scattered: {b:?}");
    }

    #[test]
    fn deterministic() {
        let g = paper_example_graph();
        assert_eq!(rabbit_order(&g, 8).perm, rabbit_order(&g, 8).perm);
    }

    #[test]
    fn edgeless_graph_is_identity_like() {
        let g = Graph::from_edges(4, &[]);
        let r = rabbit_order(&g, 4);
        r.validate();
    }

    #[test]
    fn max_levels_zero_keeps_singletons() {
        let g = paper_example_graph();
        let r = rabbit_order(&g, 0);
        r.validate();
        // No merges → identity ordering.
        assert!(r.perm.iter().enumerate().all(|(i, &p)| i as u32 == p));
    }
}
