//! Host-block web graph generator.
//!
//! Models the structure the paper relies on for its web datasets
//! (SK-Domain, UK-*, ClueWeb09):
//!
//! * vertices belong to *hosts*; host sizes are Zipf-distributed;
//! * vertex IDs are contiguous per host (lexicographic URL numbering),
//!   giving the strong *initial locality* the paper notes for SK-Domain
//!   ("iHTL preserves the initial locality of graphs well", §4.2);
//! * most out-links stay inside the host, preferentially to the host's
//!   first pages (index/root pages);
//! * cross-host links go to the popular pages of large hosts, creating
//!   global in-hubs with enormous in-degree;
//! * out-degrees are tightly capped — so in-hubs are **asymmetric**
//!   (they are not out-hubs), reproducing Fig. 9's web-graph curve and the
//!   "SK-Domain has in-hubs and no out-hubs" observation (§5.4).

use crate::rng_from_seed;
use crate::zipf::Zipf;

/// Parameters of the host-block model.
#[derive(Clone, Debug)]
pub struct WebParams {
    /// Number of hosts the vertex universe is split into.
    pub n_hosts: usize,
    /// Zipf exponent of host sizes (larger → a few giant hosts).
    pub host_size_alpha: f64,
    /// Probability an out-link stays within its host.
    pub intra_prob: f64,
    /// Zipf exponent of within-host target rank (larger → links concentrate
    /// on the host's first pages).
    pub intra_alpha: f64,
    /// Zipf exponent of host choice for cross-host links.
    pub global_host_alpha: f64,
    /// How many leading pages of a host can receive cross-host links.
    pub global_page_window: usize,
    /// Zipf exponent of the page rank within that window.
    pub global_page_alpha: f64,
    /// Mean out-degree (geometric, capped).
    pub mean_out_degree: f64,
    /// Hard cap on out-degree (web graphs have no out-hubs).
    pub out_degree_cap: usize,
    /// Fraction of vertices that are *connectors* (directory/navigation
    /// pages in the HITS sense): their links are mostly cross-host, so
    /// hub-pointing edges concentrate into few sources — real web graphs
    /// have small VWEH sets with many hub edges per member (paper Table 5:
    /// ClueWeb09 has 9 % VWEH yet 13 % of edges in flipped blocks).
    pub connector_frac: f64,
}

impl WebParams {
    /// A heavily concentrated profile in the spirit of SK-Domain: one
    /// dominant block of in-hubs capturing most edges.
    pub fn concentrated() -> Self {
        Self {
            n_hosts: 1_200,
            host_size_alpha: 1.1,
            intra_prob: 0.7,
            intra_alpha: 1.3,
            global_host_alpha: 1.05,
            global_page_window: 16,
            global_page_alpha: 1.5,
            mean_out_degree: 15.0,
            out_degree_cap: 48,
            connector_frac: 0.3,
        }
    }

    /// A flatter profile in the spirit of ClueWeb09: low average degree and
    /// a small hub core capturing a minority of edges.
    pub fn diffuse() -> Self {
        Self {
            n_hosts: 4_000,
            host_size_alpha: 0.9,
            intra_prob: 0.6,
            intra_alpha: 0.8,
            global_host_alpha: 0.8,
            global_page_window: 32,
            global_page_alpha: 1.0,
            mean_out_degree: 8.0,
            out_degree_cap: 32,
            connector_frac: 0.2,
        }
    }
}

/// Generates a web-like graph over `n` vertices aiming at `target_edges`
/// unique edges (the realised count is within a few percent after dedup).
pub fn web_edges(n: usize, target_edges: usize, params: &WebParams, seed: u64) -> Vec<(u32, u32)> {
    assert!(n >= params.n_hosts, "need at least one vertex per host");
    let mut rng = rng_from_seed(seed);

    // --- Host layout: Zipf sizes, contiguous ID ranges. ---
    let host_zipf_weights: Vec<f64> =
        (0..params.n_hosts).map(|h| 1.0 / ((h + 1) as f64).powf(params.host_size_alpha)).collect();
    let weight_total: f64 = host_zipf_weights.iter().sum();
    // Every host gets at least one vertex; the remainder is split by weight.
    let spare = n - params.n_hosts;
    let mut host_sizes: Vec<usize> =
        host_zipf_weights.iter().map(|w| 1 + (w / weight_total * spare as f64) as usize).collect();
    let mut assigned: usize = host_sizes.iter().sum();
    // Rounding slack goes to the largest host.
    while assigned < n {
        host_sizes[0] += 1;
        assigned += 1;
    }
    while assigned > n {
        let h = host_sizes.iter().rposition(|&s| s > 1).unwrap();
        host_sizes[h] -= 1;
        assigned -= 1;
    }
    let mut host_start = Vec::with_capacity(params.n_hosts + 1);
    let mut acc = 0usize;
    for &s in &host_sizes {
        host_start.push(acc);
        acc += s;
    }
    host_start.push(acc);
    debug_assert_eq!(acc, n);

    // --- Samplers. ---
    let global_host = Zipf::new(params.n_hosts, params.global_host_alpha);
    // Per-host intra samplers would be costly; sample a fraction in (0,1]
    // via a shared rank table over the largest host and rescale by size.
    let max_host = host_sizes[0];
    let intra_rank = Zipf::new(max_host, params.intra_alpha);
    let global_page = Zipf::new(params.global_page_window, params.global_page_alpha);
    let geo_p = (1.0 / params.mean_out_degree).clamp(1e-6, 1.0);

    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target_edges + target_edges / 4);
    // Duplicate links are frequent under heavy concentration, so emit in
    // full passes over the vertex set and dedup between passes until the
    // unique count reaches the target. A handful of passes suffices; the
    // out-degree cap is therefore a per-pass cap (the realised maximum stays
    // tiny relative to in-hub degrees, which is the property that matters).
    // Connector pages link mostly cross-host; everyone else mostly stays
    // home. The two rates are chosen so the *mean* cross-host share still
    // matches `1 - intra_prob`.
    let connector_intra = 0.1f64;
    let regular_intra = if params.connector_frac < 1.0 {
        ((params.intra_prob - params.connector_frac * connector_intra)
            / (1.0 - params.connector_frac))
            .clamp(0.0, 1.0)
    } else {
        connector_intra
    };
    for _pass in 0..8 {
        for v in 0..n as u32 {
            let host = host_of(&host_start, v as usize);
            let hs = host_sizes[host];
            // Connector status is a stable per-vertex property (hash-based,
            // not re-rolled per pass) so concentration survives multi-pass
            // generation.
            let h32 = v.wrapping_mul(0x9E37_79B1).rotate_left(13) ^ seed as u32;
            let is_connector = (h32 % 10_000) as f64 / 10_000.0 < params.connector_frac;
            let intra_prob = if is_connector { connector_intra } else { regular_intra };
            // Geometric out-degree, capped. Connectors are directory-style
            // pages with several times the typical link count, so the
            // hub-pointing edge mass concentrates into few sources.
            let p = if is_connector { geo_p / 4.0 } else { geo_p };
            let mut d = 1usize;
            while d < params.out_degree_cap && rng.next_f64() > p {
                d += 1;
            }
            for _ in 0..d {
                let dst = if rng.next_f64() < intra_prob && hs > 1 {
                    // Within-host link, Zipf-ranked toward the host's first
                    // pages. Rescale a rank over the largest host into this
                    // host's size so one table serves all hosts.
                    let r = intra_rank.sample(&mut rng) * hs / max_host;
                    (host_start[host] + r.min(hs - 1)) as u32
                } else {
                    let h = global_host.sample(&mut rng);
                    let page = global_page.sample(&mut rng).min(host_sizes[h] - 1);
                    (host_start[h] + page) as u32
                };
                if dst != v {
                    edges.push((v, dst));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        if edges.len() >= target_edges {
            break;
        }
    }
    crate::rmat::thin_to(&mut edges, target_edges, &mut rng);
    edges
}

fn host_of(host_start: &[usize], v: usize) -> usize {
    host_start.partition_point(|&s| s <= v) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Vec<(u32, u32)> {
        web_edges(5_000, 60_000, &WebParams::concentrated(), 42)
    }

    #[test]
    fn deterministic_unique_valid() {
        let a = small();
        let b = small();
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len());
        for &(s, d) in &a {
            assert!(s < 5_000 && d < 5_000 && s != d);
        }
    }

    #[test]
    fn edge_count_near_target() {
        let e = small();
        assert!(e.len() >= 54_000, "only {} edges", e.len());
        assert!(e.len() <= 60_000);
    }

    #[test]
    fn in_hubs_without_out_hubs() {
        let n = 5_000usize;
        let e = small();
        let mut indeg = vec![0usize; n];
        let mut outdeg = vec![0usize; n];
        for &(s, d) in &e {
            outdeg[s as usize] += 1;
            indeg[d as usize] += 1;
        }
        let max_in = *indeg.iter().max().unwrap();
        let max_out = *outdeg.iter().max().unwrap();
        // Web profile: giant in-hubs, bounded out-degree (paper Table 1 for
        // SK-Domain: max in 8.5M vs max out 13K).
        assert!(max_in > 10 * max_out, "max_in {max_in} vs max_out {max_out}");
        // Cap is per generation pass; a few passes may stack, but the
        // realised out-degree must stay in the "no out-hubs" regime.
        assert!(max_out <= 8 * WebParams::concentrated().out_degree_cap);
    }

    #[test]
    fn in_hubs_are_asymmetric() {
        let n = 5_000usize;
        let e = small();
        let set: std::collections::HashSet<(u32, u32)> = e.iter().copied().collect();
        let mut indeg = vec![0usize; n];
        for &(_, d) in &e {
            indeg[d as usize] += 1;
        }
        let hub = indeg.iter().enumerate().max_by_key(|&(_, d)| d).unwrap().0 as u32;
        let reciprocated = e.iter().filter(|&&(s, d)| d == hub && set.contains(&(hub, s))).count();
        let total = indeg[hub as usize];
        assert!(
            (reciprocated as f64) < 0.1 * total as f64,
            "web hub unexpectedly symmetric: {reciprocated}/{total}"
        );
    }

    #[test]
    fn hub_edge_concentration() {
        // The top ~3% of destinations should capture a large share of edges
        // in the concentrated profile (paper: 68% in one block for SK).
        let n = 5_000usize;
        let e = small();
        let mut indeg = vec![0usize; n];
        for &(_, d) in &e {
            indeg[d as usize] += 1;
        }
        let mut sorted = indeg.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top: usize = sorted[..n * 3 / 100].iter().sum();
        assert!(top as f64 > 0.4 * e.len() as f64, "hub concentration too weak: {top}/{}", e.len());
    }

    #[test]
    fn host_of_boundaries() {
        let starts = vec![0usize, 5, 9, 20];
        assert_eq!(host_of(&starts, 0), 0);
        assert_eq!(host_of(&starts, 4), 0);
        assert_eq!(host_of(&starts, 5), 1);
        assert_eq!(host_of(&starts, 8), 1);
        assert_eq!(host_of(&starts, 9), 2);
        assert_eq!(host_of(&starts, 19), 2);
    }
}
