//! Seeded synthetic graph generators for the iHTL reproduction.
//!
//! The paper evaluates on 10 real-world graphs (Table 1) — social networks
//! (LiveJournal, two Twitter crawls, Friendster) and web graphs (SK-Domain,
//! Web-CC12, UK-Delis, UK-Union, UK-Domain, ClueWeb09) — none of which can
//! be downloaded in this environment. This crate substitutes *structurally
//! matched* synthetic graphs:
//!
//! * **Social** graphs come from an R-MAT / preferential-attachment mix with
//!   a configurable reciprocity rate. High reciprocity makes in-hubs also
//!   out-hubs ("in-hubs are almost symmetric in social networks", Fig. 9).
//!   Vertex IDs are shuffled, modelling the poor initial locality of crawl
//!   order.
//! * **Web** graphs come from a host-block model: vertices grouped into
//!   hosts with contiguous IDs (web graphs are traditionally numbered in
//!   lexicographic URL order, giving strong initial locality); most links
//!   stay within the host, preferentially to the host's first pages;
//!   cross-host links target popular pages of large hosts. Out-degrees are
//!   tightly bounded while in-degrees are heavy-tailed, producing the
//!   *asymmetric* in-hubs of Fig. 9 and the "in-hubs but no out-hubs"
//!   structure the paper highlights for SK-Domain (§5.4).
//!
//! Everything is deterministic given the seed (the in-repo PCG64,
//! [`prng::Pcg64`] — the workspace builds hermetically with no external
//! crates).

#![forbid(unsafe_code)]

pub mod ba;
pub mod er;
pub mod prng;
pub mod rmat;
pub mod suite;
pub mod weblike;
pub mod zipf;

pub use prng::Pcg64;
pub use suite::{suite, suite_small, DatasetKind, DatasetSpec};

/// The PRNG used by every generator in this crate.
pub type GenRng = Pcg64;

/// Builds the crate-wide PRNG from a seed.
pub fn rng_from_seed(seed: u64) -> GenRng {
    Pcg64::seed_from_u64(seed)
}

/// Shuffles vertex IDs of an edge set in place with a seeded permutation,
/// destroying any locality expressed by the generator's ID assignment.
/// Returns the permutation used (`perm[old] = new`).
pub fn shuffle_vertex_ids(n: usize, edges: &mut [(u32, u32)], seed: u64) -> Vec<u32> {
    let mut rng = rng_from_seed(seed);
    let mut perm: Vec<u32> = (0..n as u32).collect();
    rng.shuffle(&mut perm);
    for e in edges.iter_mut() {
        e.0 = perm[e.0 as usize];
        e.1 = perm[e.1 as usize];
    }
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut e1 = vec![(0u32, 1u32), (1, 2), (2, 3)];
        let mut e2 = e1.clone();
        let p1 = shuffle_vertex_ids(4, &mut e1, 42);
        let p2 = shuffle_vertex_ids(4, &mut e2, 42);
        assert_eq!(p1, p2);
        assert_eq!(e1, e2);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
