//! In-repo deterministic PRNG: PCG XSL RR 128/64 ("pcg64").
//!
//! The generators need a fast, seed-stable random stream with a tiny API —
//! uniform `u64`/`f64`, bounded indices, Bernoulli draws and Fisher–Yates
//! shuffles. This is O'Neill's PCG with 128-bit LCG state and the
//! XSL-RR output permutation, the same family the previous external
//! dependency provided. Seeding expands a single `u64` through SplitMix64,
//! so every generator keeps its `seed_from_u64` entry point; streams are
//! stable across platforms (only integer arithmetic).

/// Default multiplier of the 128-bit PCG LCG step.
const PCG_MULT: u128 = 0x2360_ed05_1fc6_5da4_4385_df64_9fcc_f645;

/// SplitMix64 step used to expand a 64-bit seed into 128-bit state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// PCG XSL RR 128/64: 2^128 period, 64-bit output, fully deterministic
/// for a given seed.
#[derive(Clone, Debug)]
pub struct Pcg64 {
    state: u128,
    /// Stream selector; always odd.
    increment: u128,
}

impl Pcg64 {
    /// Builds the generator from a 64-bit seed (SplitMix64-expanded into
    /// state and stream), mirroring the `seed_from_u64` entry point the
    /// generators have always exposed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s_lo = splitmix64(&mut sm);
        let s_hi = splitmix64(&mut sm);
        let i_lo = splitmix64(&mut sm);
        let i_hi = splitmix64(&mut sm);
        let state = (s_hi as u128) << 64 | s_lo as u128;
        let increment = ((i_hi as u128) << 64 | i_lo as u128) | 1;
        let mut rng = Self { state: 0, increment };
        // Standard PCG init: step, add seed state, step again.
        rng.step();
        rng.state = rng.state.wrapping_add(state);
        rng.step();
        rng
    }

    #[inline]
    fn step(&mut self) {
        self.state = self.state.wrapping_mul(PCG_MULT).wrapping_add(self.increment);
    }

    /// Next uniform `u64` (XSL-RR output of the stepped 128-bit state).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.step();
        let rot = (self.state >> 122) as u32;
        let xored = ((self.state >> 64) as u64) ^ (self.state as u64);
        xored.rotate_right(rot)
    }

    /// Next uniform `f64` in `[0, 1)` (53 mantissa bits).
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform index in `0..n`. Panics if `n == 0`. Uses the widening
    /// multiply reduction (bias ≤ 2⁻⁶⁴·n, irrelevant at these sizes and
    /// deterministic either way).
    #[inline]
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index over an empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Pcg64::seed_from_u64(42);
        let mut b = Pcg64::seed_from_u64(42);
        let mut c = Pcg64::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Pcg64::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = Pcg64::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_index_stays_in_range_and_covers() {
        let mut rng = Pcg64::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.gen_index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(rng.gen_index(1), 0);
    }

    #[test]
    fn shuffle_is_a_seeded_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b: Vec<u32> = (0..100).collect();
        Pcg64::seed_from_u64(5).shuffle(&mut a);
        Pcg64::seed_from_u64(5).shuffle(&mut b);
        assert_eq!(a, b);
        assert_ne!(a, (0..100).collect::<Vec<u32>>());
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Pcg64::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01, "{hits}");
    }
}
