//! A small table-based Zipf sampler.
//!
//! Samples ranks `0..k` with probability proportional to `1/(rank+1)^alpha`.
//! Uses a precomputed cumulative table and binary search — exact (no
//! rejection), deterministic given the RNG stream, and fast enough for the
//! few tens of millions of draws the suite needs.

use crate::prng::Pcg64;

/// Zipf distribution over ranks `0..k` with exponent `alpha`.
#[derive(Clone, Debug)]
pub struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler. `k` must be ≥ 1 and `alpha` finite and ≥ 0
    /// (`alpha = 0` degenerates to the uniform distribution).
    pub fn new(k: usize, alpha: f64) -> Self {
        assert!(k >= 1, "Zipf needs at least one rank");
        assert!(alpha.is_finite() && alpha >= 0.0, "alpha must be finite and non-negative");
        let mut cumulative = Vec::with_capacity(k);
        let mut total = 0.0f64;
        for r in 0..k {
            total += 1.0 / ((r + 1) as f64).powf(alpha);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Number of ranks.
    pub fn k(&self) -> usize {
        self.cumulative.len()
    }

    /// Draws one rank in `0..k`.
    #[inline]
    pub fn sample(&self, rng: &mut Pcg64) -> usize {
        let total = *self.cumulative.last().unwrap();
        let x = rng.next_f64() * total;
        self.cumulative.partition_point(|&c| c < x).min(self.k() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_from_seed;

    #[test]
    fn ranks_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = rng_from_seed(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn skew_orders_frequencies() {
        let z = Zipf::new(100, 1.2);
        let mut rng = rng_from_seed(2);
        let mut counts = [0usize; 100];
        for _ in 0..200_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 should dominate rank 10 which dominates rank 90.
        assert!(counts[0] > counts[10] * 5);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn alpha_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = rng_from_seed(3);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "counts {counts:?}");
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 2.0);
        let mut rng = rng_from_seed(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
