//! Erdős–Rényi `G(n, m)` generator.
//!
//! Uniform random graphs have no hubs, so iHTL should (and does) degenerate
//! gracefully on them — they serve as the negative control in tests and
//! ablations: with no skew, flipped blocks capture few edges and the
//! structural acceptance rule keeps the block count at its minimum.

use crate::rng_from_seed;

/// Generates `m` distinct directed edges (no self-loops) over `n` vertices,
/// uniformly at random. Panics if `m` exceeds the number of possible edges.
pub fn er_edges(n: usize, m: usize, seed: u64) -> Vec<(u32, u32)> {
    assert!(n >= 2, "need at least two vertices");
    let possible = n as u128 * (n as u128 - 1);
    assert!((m as u128) <= possible, "requested more edges than the graph can hold");
    assert!(
        (m as u128) * 2 <= possible,
        "rejection sampling needs m <= n(n-1)/2; use a denser generator"
    );
    let mut rng = rng_from_seed(seed);
    let mut set = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let s = rng.gen_index(n) as u32;
        let d = rng.gen_index(n) as u32;
        if s != d && set.insert((s, d)) {
            edges.push((s, d));
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_edge_count_unique() {
        let edges = er_edges(100, 500, 11);
        assert_eq!(edges.len(), 500);
        let set: std::collections::HashSet<_> = edges.iter().collect();
        assert_eq!(set.len(), 500);
        for &(s, d) in &edges {
            assert!(s < 100 && d < 100 && s != d);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(er_edges(50, 100, 3), er_edges(50, 100, 3));
        assert_ne!(er_edges(50, 100, 3), er_edges(50, 100, 4));
    }

    #[test]
    fn no_hubs() {
        let n = 2000;
        let edges = er_edges(n, 20_000, 5);
        let mut indeg = vec![0usize; n];
        for &(_, d) in &edges {
            indeg[d as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        // Poisson(10): max over 2000 draws stays small.
        assert!(max < 40, "unexpected hub in ER graph: {max}");
    }

    #[test]
    #[should_panic(expected = "more edges")]
    fn rejects_impossible_density() {
        er_edges(3, 10, 0);
    }
}
