//! The 10-dataset evaluation suite.
//!
//! One spec per row of the paper's Table 1, scaled ≈1:40–1:700 in vertex
//! count so the whole evaluation runs on a laptop-class machine, with the
//! structural knobs (skew, reciprocity, locality, density) matched per
//! dataset class. The sizes are chosen so the paper's two governing ratios
//! stay in regime against the scaled cache hierarchy (`ihtl-cachesim`,
//! L2 = 32 KiB) and the default iHTL hub budget (H = 4096):
//! vertex-data-bytes / L2 ≈ 100–600 (paper: 400), and H / |V| a fraction
//! of a percent (paper: 0.008–0.32 %).
//!
//! | key        | paper dataset | class  | paper |V|, |E|   | here |V|, |E|    |
//! |------------|---------------|--------|-------------------|-------------------|
//! | `lv_jrnl`  | LiveJournal   | social | 7 M, 0.22 B       | ~0.4 M, ~3.6 M    |
//! | `twtr10`   | Twitter 2010  | social | 21 M, 0.26 B      | ~0.4 M, ~4.2 M    |
//! | `twtr_mpi` | Twitter MPI   | social | 41 M, 1.5 B       | ~0.8 M, ~6.0 M    |
//! | `frndstr`  | Friendster    | social | 65 M, 1.8 B       | ~1.0 M, ~6.4 M    |
//! | `sk`       | SK-Domain     | web    | 50 M, 2 B         | ~0.8 M, ~7.6 M    |
//! | `wb_cc`    | Web-CC12      | web    | 89 M, 2 B         | ~1.0 M, ~7.6 M    |
//! | `uk_dls`   | UK-Delis      | web    | 110 M, 4 B        | ~1.3 M, ~9.6 M    |
//! | `uu`       | UK-Union      | web    | 133 M, 5.5 B      | ~1.5 M, ~11 M     |
//! | `uk_dmn`   | UK-Domain     | web    | 105 M, 6.6 B      | ~1.4 M, ~12 M     |
//! | `clwb9`    | ClueWeb09     | web    | 1.7 G, 7.9 B      | ~2.4 M, ~12.6 M   |
//!
//! Friendster uses preferential attachment (its paper profile is a huge
//! graph with an unusually *flat* maximum degree of 4 K); the other social
//! graphs use skewed R-MAT; ClueWeb09 uses the diffuse web profile (its
//! paper profile has only 9 % VWEH and 13 % of edges in flipped blocks).

use ihtl_graph::{EdgeList, Graph};

use crate::ba::ba_edges;
use crate::rmat::{rmat_edges, RmatParams};
use crate::shuffle_vertex_ids;
use crate::weblike::{web_edges, WebParams};

/// Which structural family a dataset belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DatasetKind {
    /// Skewed, reciprocal, shuffled IDs (poor initial locality).
    Social,
    /// Host-blocked, asymmetric in-hubs, contiguous IDs (good locality).
    Web,
}

/// Generator recipe for one dataset.
#[derive(Clone, Debug)]
enum Recipe {
    Rmat { scale: u32, params: RmatParams },
    Ba { m: usize, reciprocity: f64 },
    Web { params: WebParams },
}

/// A synthetic stand-in for one of the paper's datasets.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Short key used in harness output (matches the paper's abbreviations).
    pub key: &'static str,
    /// The paper dataset this stands in for.
    pub paper_name: &'static str,
    pub kind: DatasetKind,
    pub n_vertices: usize,
    pub target_edges: usize,
    pub seed: u64,
    recipe: Recipe,
}

impl DatasetSpec {
    /// Generates the graph: edges from the recipe, social-graph ID shuffle,
    /// zero-degree compaction (paper §4.1 removes zero-degree vertices).
    pub fn build(&self) -> Graph {
        let mut edges = match &self.recipe {
            Recipe::Rmat { scale, params } => {
                rmat_edges(*scale, self.target_edges, *params, self.seed)
            }
            Recipe::Ba { m, reciprocity } => ba_edges(self.n_vertices, *m, *reciprocity, self.seed),
            Recipe::Web { params } => {
                web_edges(self.n_vertices, self.target_edges, params, self.seed)
            }
        };
        let universe = match &self.recipe {
            Recipe::Rmat { scale, .. } => 1usize << scale,
            _ => self.n_vertices,
        };
        if self.kind == DatasetKind::Social {
            shuffle_vertex_ids(universe, &mut edges, self.seed ^ SHUFFLE_SEED_XOR);
        }
        let mut el = EdgeList::from_edges(universe, edges);
        el.compact_zero_degree();
        Graph::from_edge_list(&el)
    }
}

/// Fixed XOR constant deriving the shuffle sub-seed from the dataset seed.
const SHUFFLE_SEED_XOR: u64 = 0x9e37_79b9_7f4a_7c15;

/// The full 10-dataset suite in the paper's Table 1 order.
pub fn suite() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            key: "lv_jrnl",
            paper_name: "LiveJournal",
            kind: DatasetKind::Social,
            n_vertices: 1 << 19,
            target_edges: 3_600_000,
            seed: 101,
            recipe: Recipe::Rmat { scale: 19, params: RmatParams::mild() },
        },
        DatasetSpec {
            key: "twtr10",
            paper_name: "Twitter 2010",
            kind: DatasetKind::Social,
            n_vertices: 1 << 19,
            target_edges: 4_200_000,
            seed: 102,
            recipe: Recipe::Rmat { scale: 19, params: RmatParams::social() },
        },
        DatasetSpec {
            key: "twtr_mpi",
            paper_name: "Twitter MPI",
            kind: DatasetKind::Social,
            n_vertices: 1 << 20,
            target_edges: 6_000_000,
            seed: 103,
            recipe: Recipe::Rmat { scale: 20, params: RmatParams::social() },
        },
        DatasetSpec {
            key: "frndstr",
            paper_name: "Friendster",
            kind: DatasetKind::Social,
            n_vertices: 1 << 20,
            target_edges: 6_400_000,
            seed: 104,
            recipe: Recipe::Rmat { scale: 20, params: RmatParams::flat() },
        },
        DatasetSpec {
            key: "sk",
            paper_name: "SK-Domain",
            kind: DatasetKind::Web,
            n_vertices: 800_000,
            target_edges: 7_600_000,
            seed: 105,
            recipe: Recipe::Web {
                params: WebParams { n_hosts: 8_000, ..WebParams::concentrated() },
            },
        },
        DatasetSpec {
            key: "wb_cc",
            paper_name: "Web-CC12",
            kind: DatasetKind::Web,
            n_vertices: 1_050_000,
            target_edges: 7_600_000,
            seed: 106,
            recipe: Recipe::Web {
                params: WebParams {
                    n_hosts: 12_000,
                    intra_prob: 0.65,
                    ..WebParams::concentrated()
                },
            },
        },
        DatasetSpec {
            key: "uk_dls",
            paper_name: "UK-Delis",
            kind: DatasetKind::Web,
            n_vertices: 1_300_000,
            target_edges: 9_600_000,
            seed: 107,
            recipe: Recipe::Web {
                params: WebParams { n_hosts: 11_000, ..WebParams::concentrated() },
            },
        },
        DatasetSpec {
            key: "uu",
            paper_name: "UK-Union",
            kind: DatasetKind::Web,
            n_vertices: 1_500_000,
            target_edges: 11_000_000,
            seed: 108,
            recipe: Recipe::Web {
                params: WebParams { n_hosts: 13_000, ..WebParams::concentrated() },
            },
        },
        DatasetSpec {
            key: "uk_dmn",
            paper_name: "UK-Domain",
            kind: DatasetKind::Web,
            n_vertices: 1_400_000,
            target_edges: 12_000_000,
            seed: 109,
            recipe: Recipe::Web {
                params: WebParams {
                    n_hosts: 12_000,
                    intra_prob: 0.75,
                    ..WebParams::concentrated()
                },
            },
        },
        DatasetSpec {
            key: "clwb9",
            paper_name: "ClueWeb09",
            kind: DatasetKind::Web,
            n_vertices: 2_400_000,
            target_edges: 12_600_000,
            seed: 110,
            recipe: Recipe::Web {
                params: WebParams {
                    n_hosts: 30_000,
                    global_host_alpha: 0.4,
                    global_page_window: 32,
                    global_page_alpha: 1.0,
                    intra_alpha: 0.6,
                    intra_prob: 0.62,
                    mean_out_degree: 6.0,
                    connector_frac: 0.06,
                    ..WebParams::diffuse()
                },
            },
        },
    ]
}

/// A miniature suite for integration tests: one social, one web, one
/// uniform control, one preferential-attachment graph.
pub fn suite_small() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            key: "mini_social",
            paper_name: "mini social (R-MAT)",
            kind: DatasetKind::Social,
            n_vertices: 1 << 12,
            target_edges: 40_000,
            seed: 201,
            recipe: Recipe::Rmat { scale: 12, params: RmatParams::social() },
        },
        DatasetSpec {
            key: "mini_web",
            paper_name: "mini web (host blocks)",
            kind: DatasetKind::Web,
            n_vertices: 5_000,
            target_edges: 60_000,
            seed: 202,
            recipe: Recipe::Web { params: WebParams::concentrated() },
        },
        DatasetSpec {
            key: "mini_flat",
            paper_name: "mini uniform control",
            kind: DatasetKind::Web, // no shuffle; structure is uniform anyway
            n_vertices: 4_000,
            target_edges: 40_000,
            seed: 203,
            recipe: Recipe::Web {
                params: WebParams {
                    n_hosts: 400,
                    host_size_alpha: 0.0,
                    intra_prob: 0.3,
                    intra_alpha: 0.0,
                    global_host_alpha: 0.0,
                    global_page_window: 10,
                    global_page_alpha: 0.0,
                    mean_out_degree: 10.0,
                    out_degree_cap: 40,
                    connector_frac: 0.0,
                },
            },
        },
        DatasetSpec {
            key: "mini_ba",
            paper_name: "mini preferential attachment",
            kind: DatasetKind::Social,
            n_vertices: 4_000,
            target_edges: 30_000,
            seed: 204,
            recipe: Recipe::Ba { m: 5, reciprocity: 0.5 },
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_graph::stats::{asymmetricity, degree_stats};

    #[test]
    fn small_suite_builds_with_expected_shape() {
        for spec in suite_small() {
            let g = spec.build();
            let s = degree_stats(&g);
            assert!(s.n_vertices > 0, "{}", spec.key);
            assert!(
                s.n_edges as f64 >= 0.8 * spec.target_edges as f64,
                "{}: {} edges vs target {}",
                spec.key,
                s.n_edges,
                spec.target_edges
            );
            // No zero-degree vertices survive compaction.
            let isolated = (0..s.n_vertices)
                .filter(|&v| g.in_degree(v as u32) == 0 && g.out_degree(v as u32) == 0)
                .count();
            assert_eq!(isolated, 0, "{}", spec.key);
        }
    }

    #[test]
    fn social_vs_web_hub_symmetry() {
        let specs = suite_small();
        let social = specs[0].build();
        let web = specs[1].build();
        let hub = |g: &Graph| (0..g.n_vertices() as u32).max_by_key(|&v| g.in_degree(v)).unwrap();
        let s_hub = hub(&social);
        let w_hub = hub(&web);
        let s_asym = asymmetricity(&social, s_hub).unwrap();
        let w_asym = asymmetricity(&web, w_hub).unwrap();
        // Fig. 9: social hubs near-symmetric, web hubs asymmetric.
        assert!(s_asym < 0.6, "social hub asymmetricity {s_asym}");
        assert!(w_asym > 0.8, "web hub asymmetricity {w_asym}");
    }

    #[test]
    fn full_suite_specs_are_distinct() {
        let specs = suite();
        assert_eq!(specs.len(), 10);
        let keys: std::collections::HashSet<_> = specs.iter().map(|s| s.key).collect();
        assert_eq!(keys.len(), 10);
        let seeds: std::collections::HashSet<_> = specs.iter().map(|s| s.seed).collect();
        assert_eq!(seeds.len(), 10);
    }
}
