//! Barabási–Albert preferential attachment.
//!
//! Each arriving vertex links to `m` existing vertices chosen proportionally
//! to their current degree, yielding a power-law tail with exponent ≈ 3 —
//! flatter than skewed R-MAT, which matches the Friendster-like profile
//! (huge graph, comparatively modest maximum degree).
//!
//! Directed interpretation: the new vertex *points at* its chosen targets
//! (old, popular vertices accumulate in-degree and become in-hubs), and with
//! probability `reciprocity` the target links back (social "follow-back").

use crate::rng_from_seed;

/// Generates a BA graph over `n` vertices with `m` out-links per arriving
/// vertex and the given follow-back probability. Returns unique directed
/// edges.
pub fn ba_edges(n: usize, m: usize, reciprocity: f64, seed: u64) -> Vec<(u32, u32)> {
    assert!(m >= 1, "each vertex must attach at least one edge");
    assert!(n > m, "need more vertices than attachment edges");
    let mut rng = rng_from_seed(seed);
    // `targets` holds one entry per edge endpoint, so sampling a uniform
    // element is degree-proportional sampling (the classic trick).
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(2 * n * m);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * m);
    // Seed clique over the first m+1 vertices.
    for v in 0..=m as u32 {
        for u in 0..v {
            edges.push((v, u));
            endpoint_pool.push(v);
            endpoint_pool.push(u);
        }
    }
    for v in (m as u32 + 1)..n as u32 {
        // A small Vec keeps selection order deterministic (HashSet iteration
        // order would depend on the randomized hasher).
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        while chosen.len() < m {
            let idx = rng.gen_index(endpoint_pool.len());
            let t = endpoint_pool[idx];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            edges.push((v, t));
            endpoint_pool.push(v);
            endpoint_pool.push(t);
            if rng.next_f64() < reciprocity {
                edges.push((t, v));
                endpoint_pool.push(t);
                endpoint_pool.push(v);
            }
        }
    }
    edges.sort_unstable();
    edges.dedup();
    edges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_unique() {
        let a = ba_edges(500, 3, 0.5, 1);
        let b = ba_edges(500, 3, 0.5, 1);
        assert_eq!(a, b);
        let set: std::collections::HashSet<_> = a.iter().collect();
        assert_eq!(set.len(), a.len());
    }

    #[test]
    fn early_vertices_become_hubs() {
        let n = 3000;
        let edges = ba_edges(n, 4, 0.0, 2);
        let mut indeg = vec![0usize; n];
        for &(_, d) in &edges {
            indeg[d as usize] += 1;
        }
        let early_max = *indeg[..50].iter().max().unwrap();
        let late_max = *indeg[n - 500..].iter().max().unwrap();
        assert!(early_max > 5 * late_max.max(1), "early {early_max} vs late {late_max}");
    }

    #[test]
    fn no_self_loops_valid_range() {
        let edges = ba_edges(200, 2, 0.3, 3);
        for &(s, d) in &edges {
            assert_ne!(s, d);
            assert!(s < 200 && d < 200);
        }
    }
}
