//! R-MAT (recursive matrix) generator.
//!
//! The classic Graph500-style generator: each edge picks one of four
//! quadrants of the adjacency matrix recursively with probabilities
//! `(a, b, c, d)`, producing power-law in- and out-degree distributions.
//! Skew grows with `a`. We perturb the quadrant probabilities per level
//! (standard "noise" variant) to avoid pathological diagonal clumping.

use crate::{rng_from_seed, GenRng};

/// Parameters of the R-MAT recursion.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    /// Per-level multiplicative noise on the quadrant split (0 = none).
    pub noise: f64,
    /// Probability that each generated edge is also added reversed,
    /// controlling hub symmetry (Fig. 9: social in-hubs are near-symmetric).
    pub reciprocity: f64,
}

impl RmatParams {
    /// Graph500-like skewed parameters, moderately reciprocal — the profile
    /// used for the Twitter-like datasets.
    pub fn social() -> Self {
        Self { a: 0.57, b: 0.19, c: 0.19, noise: 0.1, reciprocity: 0.75 }
    }

    /// Milder skew — the LiveJournal-like profile.
    pub fn mild() -> Self {
        Self { a: 0.45, b: 0.25, c: 0.25, noise: 0.1, reciprocity: 0.8 }
    }

    /// Flattest profile — the Friendster stand-in (paper Table 1: max
    /// degree only ~4 K on 65 M vertices, yet 45 % of edges land in 16
    /// flipped blocks — a flat but broad hub plateau).
    pub fn flat() -> Self {
        Self { a: 0.42, b: 0.24, c: 0.24, noise: 0.1, reciprocity: 0.8 }
    }

    fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }
}

/// Generates a directed R-MAT graph with `n = 2^scale` vertices and
/// (approximately, after dedup and self-loop removal) `target_edges` unique
/// edges. Deterministic for a given seed.
///
/// Vertex IDs are *not* shuffled here; callers modelling crawl-order social
/// graphs should apply [`crate::shuffle_vertex_ids`].
pub fn rmat_edges(
    scale: u32,
    target_edges: usize,
    params: RmatParams,
    seed: u64,
) -> Vec<(u32, u32)> {
    assert!((1..31).contains(&scale), "scale out of range");
    let mut rng = rng_from_seed(seed);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target_edges + target_edges / 4);
    // Oversample in rounds until we have enough unique edges; duplicates are
    // frequent in skewed R-MAT so a couple of rounds are normal.
    let mut attempts = 0;
    while edges.len() < target_edges && attempts < 16 {
        let need = (target_edges - edges.len()).max(target_edges / 8);
        for _ in 0..need + need / 3 {
            let (s, d) = sample_edge(scale, &params, &mut rng);
            if s != d {
                edges.push((s, d));
                if rng.next_f64() < params.reciprocity {
                    edges.push((d, s));
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        attempts += 1;
    }
    thin_to(&mut edges, target_edges, &mut rng);
    edges
}

/// Uniformly subsamples `edges` down to `target` (deterministic given the
/// RNG stream). Truncating the *sorted* list instead would strip every
/// out-edge of the highest-ID sources — a silent structural bias that
/// destroys hub reciprocity.
pub(crate) fn thin_to(edges: &mut Vec<(u32, u32)>, target: usize, rng: &mut GenRng) {
    if edges.len() <= target {
        return;
    }
    rng.shuffle(edges);
    edges.truncate(target);
    edges.sort_unstable();
}

fn sample_edge(scale: u32, p: &RmatParams, rng: &mut GenRng) -> (u32, u32) {
    let (mut row, mut col) = (0u32, 0u32);
    for _ in 0..scale {
        // Per-level noisy split.
        let na = p.a * (1.0 + p.noise * (rng.next_f64() - 0.5));
        let nb = p.b * (1.0 + p.noise * (rng.next_f64() - 0.5));
        let nc = p.c * (1.0 + p.noise * (rng.next_f64() - 0.5));
        let nd = p.d() * (1.0 + p.noise * (rng.next_f64() - 0.5));
        let total = na + nb + nc + nd;
        let x = rng.next_f64() * total;
        let (r_bit, c_bit) = if x < na {
            (0, 0)
        } else if x < na + nb {
            (0, 1)
        } else if x < na + nb + nc {
            (1, 0)
        } else {
            (1, 1)
        };
        row = (row << 1) | r_bit;
        col = (col << 1) | c_bit;
    }
    (row, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = rmat_edges(10, 5_000, RmatParams::social(), 7);
        let b = rmat_edges(10, 5_000, RmatParams::social(), 7);
        assert_eq!(a, b);
        let c = rmat_edges(10, 5_000, RmatParams::social(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn respects_ranges_and_no_self_loops() {
        let edges = rmat_edges(8, 2_000, RmatParams::social(), 1);
        for &(s, d) in &edges {
            assert!(s < 256 && d < 256);
            assert_ne!(s, d);
        }
    }

    #[test]
    fn edges_unique() {
        let edges = rmat_edges(10, 8_000, RmatParams::social(), 3);
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), edges.len());
    }

    #[test]
    fn produces_skewed_in_degrees() {
        let n = 1usize << 12;
        let edges = rmat_edges(12, 40_000, RmatParams::social(), 5);
        let mut indeg = vec![0usize; n];
        for &(_, d) in &edges {
            indeg[d as usize] += 1;
        }
        let max = *indeg.iter().max().unwrap();
        let mean = edges.len() as f64 / n as f64;
        // A hub should exceed the mean degree by a large factor.
        assert!(max as f64 > 20.0 * mean, "max in-degree {max} not skewed vs mean {mean}");
    }

    #[test]
    fn reciprocity_creates_symmetric_hubs() {
        let edges = rmat_edges(11, 30_000, RmatParams::social(), 9);
        let set: std::collections::HashSet<(u32, u32)> = edges.iter().copied().collect();
        let reciprocal = edges.iter().filter(|&&(s, d)| set.contains(&(d, s))).count();
        // With reciprocity 0.75 well over a third of edges should be
        // mutual even after uniform thinning.
        assert!(reciprocal as f64 / edges.len() as f64 > 0.35);
    }
}
