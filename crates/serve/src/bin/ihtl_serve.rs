//! The `ihtl-serve` daemon: binds a TCP port and serves graph analytics
//! over the line-delimited JSON protocol (see DESIGN.md).

use ihtl_serve::argv::{parse_or_exit, FlagSpec};
use ihtl_serve::{Server, ServerConfig};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "addr",
        value: Some("HOST:PORT"),
        help: "bind address (default 127.0.0.1:7411; port 0 = ephemeral)",
    },
    FlagSpec {
        name: "port-file",
        value: Some("PATH"),
        help: "write the bound port number to PATH after binding",
    },
    FlagSpec { name: "queue", value: Some("N"), help: "admission queue capacity (default 16)" },
    FlagSpec { name: "executors", value: Some("N"), help: "executor threads (default 1)" },
    FlagSpec {
        name: "cache",
        value: Some("N"),
        help: "result cache entries (default 64, 0 = off)",
    },
    FlagSpec {
        name: "idle-timeout-ms",
        value: Some("N"),
        help: "close connections idle for N ms (default 30000, 0 = never)",
    },
    FlagSpec {
        name: "max-batch",
        value: Some("K"),
        help: "max coalesced queries per SpMM sweep (default 8, 1 = off)",
    },
    FlagSpec {
        name: "store-dir",
        value: Some("PATH"),
        help: "durable artifact store root (default: no store; builds are not persisted)",
    },
    FlagSpec {
        name: "mem-budget-mb",
        value: Some("N"),
        help: "warm-artifact memory budget in MiB; LRU datasets demote to the store \
               (default: unlimited)",
    },
];

fn main() {
    let args = parse_or_exit("ihtl-serve", "[options]", FLAGS, std::env::args().skip(1));
    let mut cfg = ServerConfig {
        addr: args.get_or("addr", "127.0.0.1:7411").to_string(),
        ..ServerConfig::default()
    };
    let numeric = (|| -> Result<(), String> {
        cfg.queue_capacity = args.get_usize("queue", cfg.queue_capacity)?;
        cfg.executors = args.get_usize("executors", cfg.executors)?;
        cfg.cache_capacity = args.get_usize("cache", cfg.cache_capacity)?;
        let default_idle_ms = cfg.idle_timeout.map(|t| t.as_millis() as usize).unwrap_or(0);
        let idle_ms = args.get_usize("idle-timeout-ms", default_idle_ms)?;
        cfg.idle_timeout = (idle_ms > 0).then(|| std::time::Duration::from_millis(idle_ms as u64));
        cfg.max_batch = args.get_usize("max-batch", cfg.max_batch)?.max(1);
        cfg.store_dir = args.get("store-dir").map(str::to_string);
        if args.get("mem-budget-mb").is_some() {
            cfg.mem_budget_mb = Some(args.get_usize("mem-budget-mb", 0)? as u64);
        }
        Ok(())
    })();
    if let Err(msg) = numeric {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
    let port_file = args.get("port-file").map(str::to_string);

    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: binding listener: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.local_addr();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", addr.port())) {
            eprintln!("error: writing port file '{path}': {e}");
            std::process::exit(1);
        }
    }
    println!("ihtl-serve listening on {addr}");
    server.run();
    println!("ihtl-serve stopped");
}
