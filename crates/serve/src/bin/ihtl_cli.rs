//! `ihtl-cli`: a one-shot client for the `ihtl-serve` daemon.
//!
//! Builds one request from the command line, sends it as a single JSON
//! line, prints the server's JSON reply to stdout, and exits 0 iff the
//! reply says `"ok": true`.
//!
//! ```text
//! ihtl-cli --addr 127.0.0.1:7411 ping
//! ihtl-cli register NAME --rmat-scale 12 [--edges N] [--seed N]
//! ihtl-cli register NAME --suite KEY | --edgelist PATH | --graph-image PATH | --ihtl-image PATH
//! ihtl-cli job DATASET KIND [--engine E] [--iters N] [--source V] [--timeout-ms N]
//!                           [--top N] [--values] [--nocache] [--trace]
//! ihtl-cli trace TRACE_ID
//! ihtl-cli list | stats | shutdown
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

use ihtl_serve::argv::{parse_or_exit, FlagSpec, ParsedArgs};
use ihtl_serve::Json;

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "addr",
        value: Some("HOST:PORT"),
        help: "server address (default 127.0.0.1:7411)",
    },
    FlagSpec { name: "rmat-scale", value: Some("S"), help: "register: R-MAT scale (n = 2^S)" },
    FlagSpec { name: "edges", value: Some("N"), help: "register: R-MAT target edge count" },
    FlagSpec { name: "seed", value: Some("N"), help: "register: generator seed (default 1)" },
    FlagSpec { name: "suite", value: Some("KEY"), help: "register: generator-suite dataset key" },
    FlagSpec { name: "edgelist", value: Some("PATH"), help: "register: text edge-list file" },
    FlagSpec { name: "graph-image", value: Some("PATH"), help: "register: IHTLGRPH binary image" },
    FlagSpec { name: "ihtl-image", value: Some("PATH"), help: "register: IHTLBLK2 iHTL image" },
    FlagSpec {
        name: "engine",
        value: Some("E"),
        help:
            "job: ihtl|pull_grind|pull_graphit|pull_galois|push_grind|push_graphit|pb|hybrid|auto",
    },
    FlagSpec { name: "iters", value: Some("N"), help: "job: iterations (pagerank/spmv/compare)" },
    FlagSpec { name: "source", value: Some("V"), help: "job: source vertex (bfs/sssp)" },
    FlagSpec { name: "max-rounds", value: Some("N"), help: "job: round cap (sssp/cc)" },
    FlagSpec { name: "ms", value: Some("N"), help: "job: sleep milliseconds (kind 'sleep')" },
    FlagSpec { name: "timeout-ms", value: Some("N"), help: "job: admission-to-reply deadline" },
    FlagSpec { name: "top", value: Some("K"), help: "job: include the K top-valued vertices" },
    FlagSpec { name: "values", value: None, help: "job: include the full value vector" },
    FlagSpec { name: "nocache", value: None, help: "job: bypass the result cache" },
    FlagSpec {
        name: "trace",
        value: None,
        help: "job: record a span trace; fetch it with 'trace <trace_id>'",
    },
];

const SYNOPSIS: &str = "[options] <ping|register|job|trace|list|stats|shutdown> [args]";

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn num_field(
    args: &ParsedArgs,
    flag: &str,
    key: &'static str,
    pairs: &mut Vec<(&'static str, Json)>,
) {
    if let Some(v) = args.get(flag) {
        match v.parse::<u64>() {
            Ok(n) => pairs.push((key, Json::from(n))),
            Err(_) => die(&format!("--{flag} expects an integer, got '{v}'")),
        }
    }
}

fn build_request(args: &ParsedArgs) -> Json {
    let pos = args.positionals();
    let Some(command) = pos.first().map(String::as_str) else {
        die("missing command (ping, register, job, list, stats, shutdown)");
    };
    match command {
        "ping" | "list" | "stats" | "shutdown" => Json::obj([("op", Json::from(command))]),
        "register" => {
            let Some(name) = pos.get(1) else {
                die("register needs a dataset name: ihtl-cli register NAME --rmat-scale 12");
            };
            let mut source = Vec::new();
            if args.get("rmat-scale").is_some() {
                source.push(("type", Json::from("rmat")));
                num_field(args, "rmat-scale", "scale", &mut source);
                num_field(args, "edges", "edges", &mut source);
                num_field(args, "seed", "seed", &mut source);
            } else if let Some(key) = args.get("suite") {
                source.push(("type", Json::from("suite")));
                source.push(("key", Json::from(key)));
            } else if let Some(path) = args.get("edgelist") {
                source.push(("type", Json::from("edgelist")));
                source.push(("path", Json::from(path)));
            } else if let Some(path) = args.get("graph-image") {
                source.push(("type", Json::from("graph-image")));
                source.push(("path", Json::from(path)));
            } else if let Some(path) = args.get("ihtl-image") {
                source.push(("type", Json::from("ihtl-image")));
                source.push(("path", Json::from(path)));
            } else {
                die("register needs a source: --rmat-scale, --suite, --edgelist, --graph-image, or --ihtl-image");
            }
            Json::obj([
                ("op", Json::from("register")),
                ("name", Json::from(name.as_str())),
                ("source", Json::obj(source)),
            ])
        }
        "job" => {
            let (Some(dataset), Some(kind)) = (pos.get(1), pos.get(2)) else {
                die("job needs a dataset and kind: ihtl-cli job NAME pagerank");
            };
            let mut pairs = vec![
                ("op", Json::from("job")),
                ("dataset", Json::from(dataset.as_str())),
                ("kind", Json::from(kind.as_str())),
            ];
            if let Some(engine) = args.get("engine") {
                pairs.push(("engine", Json::from(engine)));
            }
            num_field(args, "iters", "iters", &mut pairs);
            num_field(args, "source", "source", &mut pairs);
            num_field(args, "max-rounds", "max_rounds", &mut pairs);
            num_field(args, "ms", "ms", &mut pairs);
            num_field(args, "timeout-ms", "timeout_ms", &mut pairs);
            num_field(args, "top", "top_k", &mut pairs);
            if args.has("values") {
                pairs.push(("include_values", Json::Bool(true)));
            }
            if args.has("nocache") {
                pairs.push(("nocache", Json::Bool(true)));
            }
            if args.has("trace") {
                pairs.push(("trace", Json::Bool(true)));
            }
            Json::obj(pairs)
        }
        "trace" => {
            let Some(tid) = pos.get(1) else {
                die("trace needs the id a traced job returned: ihtl-cli trace 7");
            };
            match tid.parse::<u64>() {
                Ok(n) => Json::obj([("op", Json::from("trace")), ("trace_id", Json::from(n))]),
                Err(_) => die(&format!("trace id must be an integer, got '{tid}'")),
            }
        }
        other => die(&format!("unknown command '{other}'")),
    }
}

fn main() {
    let args = parse_or_exit("ihtl-cli", SYNOPSIS, FLAGS, std::env::args().skip(1));
    let request = build_request(&args);
    let addr = args.get_or("addr", "127.0.0.1:7411");

    let stream = match TcpStream::connect(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: connecting to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("error: cloning connection to {addr}: {e}");
            std::process::exit(1);
        }
    };
    if writeln!(writer, "{request}").is_err() {
        eprintln!("error: sending request to {addr}");
        std::process::exit(1);
    }
    let mut reply_line = String::new();
    // A clean EOF (server closed without replying) and an I/O failure are
    // different diagnoses — a reset mid-read must not masquerade as a close.
    match BufReader::new(stream).read_line(&mut reply_line) {
        Ok(0) => {
            eprintln!("error: server closed the connection without replying");
            std::process::exit(1);
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("error: reading reply from {addr}: {e}");
            std::process::exit(1);
        }
    }
    print!("{reply_line}");
    match Json::parse(reply_line.trim()) {
        Ok(reply) if reply.get("ok").and_then(Json::as_bool) == Some(true) => {}
        Ok(_) => std::process::exit(1),
        Err(e) => {
            eprintln!("error: unparseable reply: {e}");
            std::process::exit(1);
        }
    }
}
