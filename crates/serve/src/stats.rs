//! Serving counters for the `stats` endpoint.
//!
//! Everything is atomics — recorded from connection and executor threads
//! without taking the scheduler's lock. Latency is kept as a log2
//! histogram of end-to-end microseconds (admission to reply), and each
//! engine accumulates (seconds, edges, runs) so `stats` can report ns/edge
//! per traversal strategy — the paper's Figure 7 metric, measured live on
//! served traffic instead of a benchmark loop.

use std::sync::atomic::{AtomicU64, Ordering};

use ihtl_apps::EngineKind;

use crate::json::Json;
use crate::proto::engine_wire_name;

/// Number of log2 latency buckets: bucket `i` holds latencies in
/// `[2^i, 2^{i+1})` µs; the last bucket is open-ended (≥ ~34 s).
const LATENCY_BUCKETS: usize = 26;

/// Number of batch-occupancy buckets: bucket `k-1` counts coalesced SpMM
/// chunks that executed exactly `k` queries; the last bucket is open-ended.
const BATCH_BUCKETS: usize = 16;

/// One engine's accumulated serving work.
#[derive(Default)]
struct EngineAccum {
    /// Compute nanoseconds (scheduler-measured, excludes queueing).
    nanos: AtomicU64,
    /// Edges traversed (iterations × graph edges).
    edges: AtomicU64,
    runs: AtomicU64,
}

/// All serving counters. One instance per server, shared by `Arc`.
#[derive(Default)]
pub struct ServeStats {
    pub submitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected_overloaded: AtomicU64,
    pub deadline_missed: AtomicU64,
    /// Connections closed because the client sent nothing for the
    /// configured idle timeout.
    pub idle_disconnects: AtomicU64,
    latency: [AtomicU64; LATENCY_BUCKETS],
    engines: [EngineAccum; 8],
    /// Coalesced SpMM chunks executed (one count per edge sweep).
    batch_runs: AtomicU64,
    /// Queries served by those chunks (Σ occupancy).
    batch_jobs: AtomicU64,
    occupancy: [AtomicU64; BATCH_BUCKETS],
}

fn engine_slot(kind: EngineKind) -> usize {
    // `all()` enumerates every variant; the fallback to slot 0 is dead code
    // kept so the stats path stays panic-free (lint rule R3).
    EngineKind::all().iter().position(|&k| k == kind).unwrap_or(0)
}

impl ServeStats {
    /// Records one end-to-end job latency.
    pub fn record_latency(&self, seconds: f64) {
        let micros = (seconds * 1e6).max(0.0) as u64;
        let bucket = (64 - micros.max(1).leading_zeros() as usize - 1).min(LATENCY_BUCKETS - 1);
        // ORDERING: Relaxed — all ServeStats cells are monotonic counters
        // read only by the stats endpoint; no data is published through
        // them, so no synchronization is needed (holds file-wide).
        self.latency[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records compute work attributed to an engine: `seconds` of SpMV over
    /// `edges` traversed edges.
    pub fn record_engine(&self, kind: EngineKind, seconds: f64, edges: u64) {
        let a = &self.engines[engine_slot(kind)];
        // ORDERING: Relaxed — monotonic stats counters; see record_latency.
        a.nanos.fetch_add((seconds * 1e9) as u64, Ordering::Relaxed);
        a.edges.fetch_add(edges, Ordering::Relaxed);
        a.runs.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one coalesced SpMM chunk that served `k` queries in a single
    /// edge sweep. Pair with [`ServeStats::record_engine`] over the chunk's
    /// total work so per-engine ns/edge stays amortized per query.
    pub fn record_batch(&self, k: usize) {
        // ORDERING: Relaxed — monotonic stats counters; see record_latency.
        self.batch_runs.fetch_add(1, Ordering::Relaxed);
        self.batch_jobs.fetch_add(k as u64, Ordering::Relaxed);
        let bucket = k.clamp(1, BATCH_BUCKETS) - 1;
        // ORDERING: Relaxed — stats counter; see record_latency.
        self.occupancy[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Renders everything as the `stats` reply body. `queue_depth` and the
    /// cache numbers come from the scheduler and cache at call time.
    pub fn to_json(&self, queue_depth: usize, cache: (u64, u64, usize)) -> Json {
        // ORDERING: Relaxed — stats reads; a momentarily torn view across
        // counters is fine for a monitoring endpoint.
        let load = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
        let (cache_hits, cache_misses, cache_len) = cache;
        let mut latency = Vec::new();
        for (i, b) in self.latency.iter().enumerate() {
            // ORDERING: Relaxed — stats read; see above.
            let count = b.load(Ordering::Relaxed);
            if count > 0 {
                latency.push(Json::obj([
                    ("le_us", Json::from(1u64 << (i + 1))),
                    ("count", Json::from(count)),
                ]));
            }
        }
        let mut engines = Vec::new();
        for kind in EngineKind::all() {
            let a = &self.engines[engine_slot(kind)];
            // ORDERING: Relaxed — stats reads; see above.
            let runs = a.runs.load(Ordering::Relaxed);
            if runs == 0 {
                continue;
            }
            // ORDERING: Relaxed — stats reads; see above.
            let nanos = a.nanos.load(Ordering::Relaxed);
            let edges = a.edges.load(Ordering::Relaxed);
            let ns_per_edge = if edges > 0 { nanos as f64 / edges as f64 } else { f64::NAN };
            engines.push(Json::obj([
                ("engine", Json::from(engine_wire_name(kind))),
                ("runs", Json::from(runs)),
                ("edges", Json::from(edges)),
                ("ns_per_edge", Json::Num(ns_per_edge)),
            ]));
        }
        let mut occupancy = Vec::new();
        for (i, b) in self.occupancy.iter().enumerate() {
            // ORDERING: Relaxed — stats read; see above.
            let count = b.load(Ordering::Relaxed);
            if count > 0 {
                occupancy.push(Json::obj([
                    ("k", Json::from(i as u64 + 1)),
                    ("count", Json::from(count)),
                ]));
            }
        }
        Json::obj([
            ("submitted", load(&self.submitted)),
            ("completed", load(&self.completed)),
            ("failed", load(&self.failed)),
            ("rejected_overloaded", load(&self.rejected_overloaded)),
            ("deadline_missed", load(&self.deadline_missed)),
            ("idle_disconnects", load(&self.idle_disconnects)),
            ("queue_depth", Json::from(queue_depth)),
            ("cache_hits", Json::from(cache_hits)),
            ("cache_misses", Json::from(cache_misses)),
            ("cache_entries", Json::from(cache_len)),
            ("latency_us_histogram", Json::Arr(latency)),
            ("engines", Json::Arr(engines)),
            ("batch_runs", load(&self.batch_runs)),
            ("batch_jobs", load(&self.batch_jobs)),
            ("batch_occupancy", Json::Arr(occupancy)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2_micros() {
        let s = ServeStats::default();
        s.record_latency(0.000_003); // 3 µs → bucket [2,4)
        s.record_latency(0.001); // 1000 µs → bucket [512,1024)... le 1024
        s.record_latency(10_000.0); // clamps into the last bucket
        let j = s.to_json(0, (0, 0, 0));
        let hist = j.get("latency_us_histogram").unwrap().as_arr().unwrap();
        assert_eq!(hist.len(), 3);
        assert_eq!(hist[0].get("le_us").unwrap().as_u64(), Some(4));
        assert_eq!(hist[1].get("le_us").unwrap().as_u64(), Some(1024));
    }

    #[test]
    fn engine_ns_per_edge() {
        let s = ServeStats::default();
        s.record_engine(EngineKind::Ihtl, 1.0, 500_000_000);
        s.record_engine(EngineKind::Ihtl, 1.0, 500_000_000);
        let j = s.to_json(2, (1, 2, 3));
        let engines = j.get("engines").unwrap().as_arr().unwrap();
        assert_eq!(engines.len(), 1);
        let e = &engines[0];
        assert_eq!(e.get("engine").unwrap().as_str(), Some("ihtl"));
        assert_eq!(e.get("runs").unwrap().as_u64(), Some(2));
        let nspe = e.get("ns_per_edge").unwrap().as_f64().unwrap();
        assert!((nspe - 2.0).abs() < 1e-9, "{nspe}");
        assert_eq!(j.get("queue_depth").unwrap().as_u64(), Some(2));
        assert_eq!(j.get("cache_hits").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn every_engine_kind_has_a_distinct_slot() {
        // Regression guard: the accumulator array must track
        // `EngineKind::all()` (it silently aliases slot 0 otherwise).
        let s = ServeStats::default();
        for (i, &kind) in EngineKind::all().iter().enumerate() {
            assert_eq!(engine_slot(kind), i);
            s.record_engine(kind, 0.001, 1_000);
        }
        let j = s.to_json(0, (0, 0, 0));
        let engines = j.get("engines").unwrap().as_arr().unwrap();
        assert_eq!(engines.len(), EngineKind::all().len());
    }

    #[test]
    fn batch_occupancy_histogram() {
        let s = ServeStats::default();
        s.record_batch(4);
        s.record_batch(4);
        s.record_batch(1);
        s.record_batch(999); // clamps into the open-ended last bucket
        let j = s.to_json(0, (0, 0, 0));
        assert_eq!(j.get("batch_runs").unwrap().as_u64(), Some(4));
        assert_eq!(j.get("batch_jobs").unwrap().as_u64(), Some(4 + 4 + 1 + 999));
        let occ = j.get("batch_occupancy").unwrap().as_arr().unwrap();
        assert_eq!(occ.len(), 3);
        assert_eq!(occ[0].get("k").unwrap().as_u64(), Some(1));
        assert_eq!(occ[0].get("count").unwrap().as_u64(), Some(1));
        assert_eq!(occ[1].get("k").unwrap().as_u64(), Some(4));
        assert_eq!(occ[1].get("count").unwrap().as_u64(), Some(2));
        assert_eq!(occ[2].get("k").unwrap().as_u64(), Some(16));
    }

    #[test]
    fn zero_latency_goes_to_first_bucket() {
        let s = ServeStats::default();
        s.record_latency(0.0);
        let j = s.to_json(0, (0, 0, 0));
        let hist = j.get("latency_us_histogram").unwrap().as_arr().unwrap();
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].get("le_us").unwrap().as_u64(), Some(2));
    }
}
