//! LRU result cache keyed by (dataset, engine, job) canonical strings.
//!
//! Analytics here are deterministic — same dataset, engine, and parameters
//! produce bitwise-identical value vectors — so a repeated query can be
//! answered from memory without touching the scheduler. The cache stores
//! the final reply body (a [`Json`] object) and counts hits/misses for the
//! `stats` endpoint.
//!
//! Recency is a monotone counter per entry; eviction scans for the minimum
//! (O(capacity), trivial at the default capacity of 64 — a reply object is
//! far more expensive than the scan).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::json::Json;

/// Thread-safe LRU cache of reply bodies.
pub struct ResultCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

struct Inner {
    map: HashMap<String, Entry>,
    capacity: usize,
    tick: u64,
}

struct Entry {
    value: Json,
    last_used: u64,
}

impl ResultCache {
    /// A cache holding up to `capacity` replies. Capacity 0 disables
    /// caching (every lookup misses).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner { map: HashMap::new(), capacity, tick: 0 }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Canonical key for a job request.
    pub fn key(
        dataset: &str,
        engine: &str,
        job_canonical: &str,
        top_k: usize,
        values: bool,
    ) -> String {
        format!("{dataset}|{engine}|{job_canonical}|top_k={top_k}|values={values}")
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<Json> {
        let mut inner = crate::lock_ok(&self.inner);
        inner.tick += 1;
        let tick = inner.tick;
        match inner.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                // ORDERING: Relaxed — hit/miss tallies are stats counters;
                // the cached value itself travels under the inner mutex.
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.value.clone())
            }
            None => {
                // ORDERING: Relaxed — stats counter; see the hit path.
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a reply, evicting the least-recently-used entry at capacity.
    pub fn put(&self, key: String, value: Json) {
        let mut inner = crate::lock_ok(&self.inner);
        if inner.capacity == 0 {
            return;
        }
        inner.tick += 1;
        let tick = inner.tick;
        if inner.map.len() >= inner.capacity && !inner.map.contains_key(&key) {
            // Tie-break equal recency on the key: `min_by_key` alone would
            // pick whichever tied entry HashMap iteration happens to visit
            // first, making eviction (and therefore hit patterns)
            // run-to-run nondeterministic.
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(k, e)| (e.last_used, k.as_str()))
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, Entry { value, last_used: tick });
    }

    /// (hits, misses, current length).
    pub fn stats(&self) -> (u64, u64, usize) {
        let len = crate::lock_ok(&self.inner).map.len();
        // ORDERING: Relaxed — stats reads for the monitoring endpoint.
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: f64) -> Json {
        Json::Num(n)
    }

    #[test]
    fn hit_after_put_and_counters() {
        let c = ResultCache::new(4);
        assert_eq!(c.get("k"), None);
        c.put("k".into(), v(1.0));
        assert_eq!(c.get("k"), Some(v(1.0)));
        assert_eq!(c.stats(), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used() {
        let c = ResultCache::new(2);
        c.put("a".into(), v(1.0));
        c.put("b".into(), v(2.0));
        assert_eq!(c.get("a"), Some(v(1.0))); // refresh a; b is now LRU
        c.put("c".into(), v(3.0));
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("a"), Some(v(1.0)));
        assert_eq!(c.get("c"), Some(v(3.0)));
    }

    #[test]
    fn reinsert_updates_without_evicting() {
        let c = ResultCache::new(2);
        c.put("a".into(), v(1.0));
        c.put("b".into(), v(2.0));
        c.put("a".into(), v(9.0));
        assert_eq!(c.get("a"), Some(v(9.0)));
        assert_eq!(c.get("b"), Some(v(2.0)));
    }

    #[test]
    fn capacity_zero_never_stores() {
        let c = ResultCache::new(0);
        c.put("a".into(), v(1.0));
        assert_eq!(c.get("a"), None);
    }

    #[test]
    fn keys_separate_all_dimensions() {
        let base = ResultCache::key("g", "ihtl", "pagerank:iters=20", 0, false);
        for other in [
            ResultCache::key("h", "ihtl", "pagerank:iters=20", 0, false),
            ResultCache::key("g", "pull_grind", "pagerank:iters=20", 0, false),
            ResultCache::key("g", "ihtl", "pagerank:iters=21", 0, false),
            ResultCache::key("g", "ihtl", "pagerank:iters=20", 5, false),
            ResultCache::key("g", "ihtl", "pagerank:iters=20", 0, true),
        ] {
            assert_ne!(base, other);
        }
    }
}
