//! `ihtl-serve`: a std-only graph analytics service layer.
//!
//! The paper's central economic argument (§4.2) is that iHTL's one-time
//! preprocessing cost is amortised over repeated SpMV runs. A service is
//! where that argument becomes literal: datasets are loaded and
//! preprocessed **once** into a registry, then an unbounded stream of
//! analytics requests reuses the flipped-block structure. This crate
//! provides the pieces:
//!
//! * [`registry`] — named immutable graph snapshots (`Arc`-shared) with
//!   memoised iHTL preprocessing, symmetrization, and an engine checkout
//!   pool;
//! * [`sched`] — a bounded-admission job scheduler: full queue ⇒ immediate
//!   `overloaded` rejection, per-job deadlines, panic isolation;
//! * [`cache`] — an LRU result cache exploiting the determinism of every
//!   analytic here (same request ⇒ bitwise-same answer);
//! * [`proto`] + [`server`] — a line-delimited JSON protocol over plain
//!   `std::net` TCP, with a `stats` endpoint reporting queue depth, cache
//!   hit rates, latency histograms, and live per-engine ns/edge;
//! * [`json`] — a hand-rolled JSON parser/serializer (the workspace builds
//!   with zero external crates);
//! * [`argv`] — the tiny flag parser shared by `ihtl-serve`, `ihtl-cli`,
//!   and `bench_spmv`.
//!
//! Binaries: `ihtl-serve` (the daemon) and `ihtl-cli` (a one-shot client).
//! See DESIGN.md for the wire grammar and README.md for a quickstart.
//!
//! The whole crate is on the panic-free service path checked by `ihtl-lint`
//! (rule R3): request handling returns protocol errors instead of
//! unwrapping, and poisoned locks are recovered via [`lock_ok`] /
//! [`read_ok`] / [`write_ok`] — a panic in one job must never take down a
//! connection thread that merely shares a mutex with it.

#![forbid(unsafe_code)]

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

pub mod argv;
pub mod batch;
pub mod cache;
pub mod json;
pub mod proto;
pub mod registry;
pub mod sched;
pub mod server;
pub mod stats;

pub use batch::{BatchSlot, BatchTicket, BatchedOutput, Coalescer};
pub use cache::ResultCache;
pub use json::Json;
pub use registry::Registry;
pub use sched::{JobError, Scheduler, SubmitError};
pub use server::{fnv1a_checksum, Server, ServerConfig, ServerHandle};
pub use stats::ServeStats;

/// Locks `m`, recovering from poisoning. Every value guarded by a mutex in
/// this crate is kept consistent by its writers *before* any operation that
/// can panic, so the poisoned payload is safe to reuse — and the
/// alternative (unwrap) would cascade one job's panic into every connection
/// thread touching the same lock.
pub fn lock_ok<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering from poisoning (see [`lock_ok`]).
pub fn read_ok<T: ?Sized>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering from poisoning (see [`lock_ok`]).
pub fn write_ok<T: ?Sized>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}
