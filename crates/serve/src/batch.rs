//! Request coalescing: merge queued jobs into one SpMM execution.
//!
//! Queued jobs that share `(dataset, engine, analytic, iteration budget)`
//! and differ only in a per-query parameter (SSSP source, PageRank seed,
//! SpMV start vector) can share a single edge sweep: the scheduler runs
//! them as one K-column SpMM job and demuxes the result columns into the
//! individual replies. The paper's in-hub temporal locality makes the edge
//! stream the expensive part; serving K queries per stream amortises it.
//!
//! Mechanics: the first arrival for a group key becomes the *leader*. It
//! installs a [`Group`] in the coalescer and submits one scheduler closure
//! carrying a [`BatchTicket`]; everyone (leader included) parks on a
//! private [`BatchSlot`]. Arrivals while the closure is still queued join
//! the group. When the closure finally runs it *drains* the group —
//! removing it from the map so later arrivals start a new batch — executes
//! the members in chunks, and fills each slot individually (failure
//! isolation: one bad parameter fails one slot, not the sweep).
//!
//! Liveness invariants:
//!
//! * every slot is eventually filled: by the executing closure, by the
//!   ticket's `Drop` (the scheduler dropped the closure un-run, e.g. at
//!   shutdown → [`JobError::ShutDown`]), or by the member's own deadline
//!   expiring in [`BatchSlot::wait`];
//! * a member abandoned at its deadline marks itself cancelled so the
//!   drain skips its column;
//! * group membership is only touched under the map lock (lock order:
//!   map → members), so a join can never race a drain and strand a member
//!   on a detached group.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

use ihtl_apps::{JobOutput, JobSpec};

use crate::sched::JobError;

/// One demuxed column of a coalesced execution.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchedOutput {
    /// The member's own analytic result, bitwise identical to a solo run.
    pub output: JobOutput,
    /// How many queries shared the edge sweep that produced it.
    pub batch_k: usize,
}

type BatchResult = Result<BatchedOutput, JobError>;

/// One-shot result slot a batched request parks on (first writer wins, as
/// in the scheduler's job slot).
pub struct BatchSlot {
    result: Mutex<Option<BatchResult>>,
    ready: Condvar,
    /// Set when the waiter gave up (deadline); the drain skips this column.
    cancelled: AtomicBool,
}

impl BatchSlot {
    fn new() -> BatchSlot {
        BatchSlot {
            result: Mutex::new(None),
            ready: Condvar::new(),
            cancelled: AtomicBool::new(false),
        }
    }

    fn fill(&self, r: BatchResult) {
        let mut slot = crate::lock_ok(&self.result);
        if slot.is_none() {
            *slot = Some(r);
            self.ready.notify_all();
        }
    }

    /// Blocks until the batch fills this slot or `deadline` passes. On
    /// expiry the slot marks itself cancelled so the sweep (if it has not
    /// started yet) drops the column instead of computing for nobody.
    pub fn wait(&self, deadline: Option<Instant>) -> BatchResult {
        let mut slot = crate::lock_ok(&self.result);
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            match deadline {
                None => {
                    slot = self.ready.wait(slot).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    // lint:allow(R4): deadline bookkeeping — wall-clock never feeds results
                    let now = Instant::now();
                    if now >= d {
                        // ORDERING: Relaxed — advisory abandon flag; the
                        // leader re-checks it and results travel under the
                        // slot mutex, which orders everything that matters.
                        self.cancelled.store(true, Ordering::Relaxed);
                        return Err(JobError::DeadlineExceeded);
                    }
                    let (s, _) = self
                        .ready
                        .wait_timeout(slot, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    slot = s;
                }
            }
        }
    }
}

/// One enlisted request: its spec and the slot its client waits on.
pub struct BatchMember {
    spec: JobSpec,
    slot: Arc<BatchSlot>,
}

impl BatchMember {
    /// The member's job description (per-column parameters included).
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Whether the waiting client already gave up on this member.
    pub fn is_abandoned(&self) -> bool {
        // ORDERING: Relaxed — advisory read: a stale false only means the
        // leader computes a result nobody collects; never a safety issue.
        self.slot.cancelled.load(Ordering::Relaxed)
    }

    /// Delivers this member's result (first writer wins).
    pub fn fill(&self, r: BatchResult) {
        self.slot.fill(r);
    }
}

struct Group {
    members: Mutex<Vec<BatchMember>>,
}

type Groups = Arc<Mutex<HashMap<String, Arc<Group>>>>;

/// Moved into the leader's scheduler closure; draining it claims the
/// group's members for execution. If the closure is dropped without ever
/// running (scheduler shutdown drains the queue), `Drop` fails every
/// member with [`JobError::ShutDown`] so no client hangs.
pub struct BatchTicket {
    groups: Groups,
    key: String,
    group: Arc<Group>,
    drained: bool,
}

impl BatchTicket {
    /// Claims the group's members and retires the group: later arrivals
    /// with the same key start a fresh batch behind a new leader.
    pub fn drain(mut self) -> Vec<BatchMember> {
        self.drained = true;
        self.take_members()
    }

    fn take_members(&self) -> Vec<BatchMember> {
        let mut groups = crate::lock_ok(&self.groups);
        if let Some(g) = groups.get(&self.key) {
            if Arc::ptr_eq(g, &self.group) {
                groups.remove(&self.key);
            }
        }
        // Still under the map lock (lock order map → members): no join can
        // slip a member into the group after this take.
        std::mem::take(&mut *crate::lock_ok(&self.group.members))
    }
}

impl Drop for BatchTicket {
    fn drop(&mut self) {
        if self.drained {
            return;
        }
        for m in self.take_members() {
            m.fill(Err(JobError::ShutDown));
        }
    }
}

/// The per-server coalescer: open groups keyed by
/// `dataset|engine|batch_group_key`.
pub struct Coalescer {
    groups: Groups,
}

impl Default for Coalescer {
    fn default() -> Coalescer {
        Coalescer::new()
    }
}

impl Coalescer {
    pub fn new() -> Coalescer {
        Coalescer { groups: Arc::new(Mutex::new(HashMap::new())) }
    }

    /// Enlists one request. Returns the slot to wait on and, when this
    /// request opened a new group, the [`BatchTicket`] the caller must move
    /// into exactly one scheduler closure. If that submission fails, drop
    /// the ticket: its `Drop` fails every enlisted member (including this
    /// one) so a raced joiner cannot hang on a leaderless group.
    pub fn enlist(&self, key: String, spec: JobSpec) -> (Arc<BatchSlot>, Option<BatchTicket>) {
        let slot = Arc::new(BatchSlot::new());
        let member = BatchMember { spec, slot: Arc::clone(&slot) };
        let mut groups = crate::lock_ok(&self.groups);
        if let Some(g) = groups.get(&key) {
            crate::lock_ok(&g.members).push(member);
            return (slot, None);
        }
        let group = Arc::new(Group { members: Mutex::new(vec![member]) });
        groups.insert(key.clone(), Arc::clone(&group));
        let ticket = BatchTicket { groups: Arc::clone(&self.groups), key, group, drained: false };
        (slot, Some(ticket))
    }

    /// Number of open (not yet drained) groups — observability for tests.
    pub fn open_groups(&self) -> usize {
        crate::lock_ok(&self.groups).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn spec(source: u32) -> JobSpec {
        JobSpec::Sssp { source, max_rounds: 8 }
    }

    fn out(k: usize) -> BatchedOutput {
        BatchedOutput {
            output: JobOutput { values: vec![0.0], rounds: 1, seconds: 0.0 },
            batch_k: k,
        }
    }

    #[test]
    fn first_enlist_leads_then_others_join() {
        let c = Coalescer::new();
        let (s1, t1) = c.enlist("g|ihtl|sssp:max_rounds=8".into(), spec(0));
        assert!(t1.is_some());
        let (s2, t2) = c.enlist("g|ihtl|sssp:max_rounds=8".into(), spec(1));
        assert!(t2.is_none());
        let (_s3, t3) = c.enlist("g|ihtl|pagerank:iters=20".into(), spec(2));
        assert!(t3.is_some(), "different key opens its own group");
        assert_eq!(c.open_groups(), 2);
        let members = t1.map(BatchTicket::drain).unwrap_or_default();
        assert_eq!(members.len(), 2);
        assert_eq!(c.open_groups(), 1);
        members[0].fill(Ok(out(2)));
        members[1].fill(Ok(out(2)));
        assert_eq!(s1.wait(None).map(|b| b.batch_k), Ok(2));
        assert_eq!(s2.wait(None).map(|b| b.batch_k), Ok(2));
    }

    #[test]
    fn drain_retires_the_group_key() {
        let c = Coalescer::new();
        let (_s1, t1) = c.enlist("k".into(), spec(0));
        let members = t1.map(BatchTicket::drain).unwrap_or_default();
        assert_eq!(members.len(), 1);
        // Same key now opens a new group with a new leader.
        let (_s2, t2) = c.enlist("k".into(), spec(1));
        assert!(t2.is_some());
        for m in members {
            m.fill(Err(JobError::Cancelled));
        }
    }

    #[test]
    fn dropped_ticket_fails_all_members_with_shutdown() {
        let c = Coalescer::new();
        let (s1, t1) = c.enlist("k".into(), spec(0));
        let (s2, _) = c.enlist("k".into(), spec(1));
        drop(t1);
        assert_eq!(s1.wait(None), Err(JobError::ShutDown));
        assert_eq!(s2.wait(None), Err(JobError::ShutDown));
        assert_eq!(c.open_groups(), 0);
    }

    #[test]
    fn deadline_expiry_marks_member_abandoned() {
        let c = Coalescer::new();
        let (s1, t1) = c.enlist("k".into(), spec(0));
        let d = Instant::now() + Duration::from_millis(10);
        assert_eq!(s1.wait(Some(d)), Err(JobError::DeadlineExceeded));
        let members = t1.map(BatchTicket::drain).unwrap_or_default();
        assert!(members[0].is_abandoned());
        // A late fill is harmless: the waiter already returned.
        members[0].fill(Ok(out(1)));
    }

    #[test]
    fn first_writer_wins_on_slots() {
        let c = Coalescer::new();
        let (s, t) = c.enlist("k".into(), spec(0));
        let members = t.map(BatchTicket::drain).unwrap_or_default();
        members[0].fill(Ok(out(3)));
        members[0].fill(Err(JobError::Panicked)); // backstop fill, ignored
        assert_eq!(s.wait(None).map(|b| b.batch_k), Ok(3));
    }
}
