//! A tiny shared command-line parser (std-only).
//!
//! Shared by `ihtl-serve`, `ihtl-cli`, and `bench_spmv`: every binary
//! declares its flags as [`FlagSpec`]s, gets a generated usage message, and
//! unknown flags exit with code 2 plus that usage text instead of a panic.
//! The core [`parse`] function is pure (no process exit, no stderr) so it
//! is unit-testable; binaries call [`parse_or_exit`].

/// One accepted `--flag`.
#[derive(Clone, Copy, Debug)]
pub struct FlagSpec {
    /// Flag name without the leading dashes, e.g. `"addr"`.
    pub name: &'static str,
    /// `Some("PLACEHOLDER")` if the flag takes a value, `None` for a
    /// boolean switch.
    pub value: Option<&'static str>,
    /// One-line description for the usage message.
    pub help: &'static str,
}

/// Parsed command line: flag values plus positional arguments.
#[derive(Clone, Debug, Default)]
pub struct ParsedArgs {
    flags: Vec<(&'static str, String)>,
    positionals: Vec<String>,
}

impl ParsedArgs {
    /// Value of `--name VALUE` (last occurrence wins), if present.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.iter().rev().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
    }

    /// Value of `--name VALUE`, or `default` if absent.
    pub fn get_or<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.get(name).unwrap_or(default)
    }

    /// Whether a boolean `--name` switch was given.
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(k, _)| *k == name)
    }

    /// Parsed numeric flag, or `default` if absent. Errors on non-numeric
    /// values.
    pub fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }

    /// Arguments that are not flags, in order (subcommands, file names).
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }
}

/// Renders the usage message for a binary with the given flags.
pub fn usage(bin: &str, synopsis: &str, specs: &[FlagSpec]) -> String {
    let mut out = format!("usage: {bin} {synopsis}\n\noptions:\n");
    let mut lefts: Vec<String> = Vec::new();
    for s in specs {
        match s.value {
            Some(ph) => lefts.push(format!("  --{} {}", s.name, ph)),
            None => lefts.push(format!("  --{}", s.name)),
        }
    }
    lefts.push("  --help".to_string());
    let width = lefts.iter().map(|l| l.len()).max().unwrap_or(0) + 2;
    for (left, s) in lefts.iter().zip(specs.iter().map(|s| s.help).chain(["print this message"])) {
        out.push_str(&format!("{left:width$}{s}\n"));
    }
    out
}

/// Outcome of parsing: arguments, a help request, or an error message
/// (unknown flag, missing value).
pub enum Parsed {
    Args(ParsedArgs),
    Help,
    Err(String),
}

/// Parses `args` (excluding argv[0]) against `specs`. Accepts
/// `--flag value` and `--flag=value`; `--` ends flag processing.
pub fn parse(specs: &[FlagSpec], args: impl IntoIterator<Item = String>) -> Parsed {
    let mut out = ParsedArgs::default();
    let mut iter = args.into_iter();
    let mut flags_done = false;
    while let Some(arg) = iter.next() {
        if flags_done || !arg.starts_with("--") {
            out.positionals.push(arg);
            continue;
        }
        if arg == "--" {
            flags_done = true;
            continue;
        }
        let body = &arg[2..];
        let (name, inline) = match body.split_once('=') {
            Some((n, v)) => (n, Some(v.to_string())),
            None => (body, None),
        };
        if name == "help" {
            return Parsed::Help;
        }
        let Some(spec) = specs.iter().find(|s| s.name == name) else {
            return Parsed::Err(format!("unknown argument '--{name}'"));
        };
        match (spec.value, inline) {
            (None, None) => out.flags.push((spec.name, String::new())),
            (None, Some(_)) => {
                return Parsed::Err(format!("--{name} does not take a value"));
            }
            (Some(_), Some(v)) => out.flags.push((spec.name, v)),
            (Some(ph), None) => match iter.next() {
                Some(v) => out.flags.push((spec.name, v)),
                None => return Parsed::Err(format!("--{name} expects a value ({ph})")),
            },
        }
    }
    Parsed::Args(out)
}

/// [`parse`] for binaries: `--help` prints usage and exits 0; a parse error
/// prints the error plus usage to stderr and exits 2.
pub fn parse_or_exit(
    bin: &str,
    synopsis: &str,
    specs: &[FlagSpec],
    args: impl IntoIterator<Item = String>,
) -> ParsedArgs {
    match parse(specs, args) {
        Parsed::Args(a) => a,
        Parsed::Help => {
            print!("{}", usage(bin, synopsis, specs));
            std::process::exit(0);
        }
        Parsed::Err(msg) => {
            eprint!("error: {msg}\n\n{}", usage(bin, synopsis, specs));
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECS: &[FlagSpec] = &[
        FlagSpec { name: "addr", value: Some("HOST:PORT"), help: "server address" },
        FlagSpec { name: "samples", value: Some("N"), help: "sample count" },
        FlagSpec { name: "verbose", value: None, help: "chatty output" },
    ];

    fn ok(args: &[&str]) -> ParsedArgs {
        match parse(SPECS, args.iter().map(|s| s.to_string())) {
            Parsed::Args(a) => a,
            Parsed::Help => panic!("unexpected help"),
            Parsed::Err(e) => panic!("unexpected error: {e}"),
        }
    }

    #[test]
    fn values_switches_positionals() {
        let a = ok(&["--addr", "x:1", "job", "--verbose", "--samples=9", "pagerank"]);
        assert_eq!(a.get("addr"), Some("x:1"));
        assert!(a.has("verbose"));
        assert_eq!(a.get_usize("samples", 3).unwrap(), 9);
        assert_eq!(a.positionals(), &["job".to_string(), "pagerank".to_string()]);
    }

    #[test]
    fn defaults_and_last_wins() {
        let a = ok(&["--samples", "1", "--samples", "2"]);
        assert_eq!(a.get_usize("samples", 3).unwrap(), 2);
        assert_eq!(a.get_or("addr", "d"), "d");
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn unknown_flag_and_missing_value_error() {
        for bad in [&["--bogus"][..], &["--addr"][..], &["--verbose=yes"][..]] {
            match parse(SPECS, bad.iter().map(|s| s.to_string())) {
                Parsed::Err(_) => {}
                _ => panic!("{bad:?} should be an error"),
            }
        }
    }

    #[test]
    fn help_and_double_dash() {
        assert!(matches!(parse(SPECS, ["--help".to_string()]), Parsed::Help));
        let a = ok(&["--", "--addr"]);
        assert_eq!(a.positionals(), &["--addr".to_string()]);
        assert_eq!(a.get("addr"), None);
    }

    #[test]
    fn bad_number_reports_flag_name() {
        let a = ok(&["--samples", "many"]);
        let e = a.get_usize("samples", 1).unwrap_err();
        assert!(e.contains("samples"), "{e}");
    }

    #[test]
    fn usage_lists_every_flag() {
        let u = usage("demo", "[options]", SPECS);
        for s in SPECS {
            assert!(u.contains(&format!("--{}", s.name)), "{u}");
        }
        assert!(u.contains("--help"));
    }
}
