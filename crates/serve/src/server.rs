//! The TCP server: accept loop, per-connection line protocol, and the glue
//! between registry, scheduler, cache, and stats.
//!
//! Connections are thread-per-client over line-delimited JSON. `ping`,
//! `list`, `stats`, and `shutdown` are answered directly on the connection
//! thread; `register` and `job` requests do their heavy work through the
//! registry/scheduler so the admission queue bounds total in-flight
//! compute. Job replies carry an FNV-1a checksum over the result vector's
//! f64 bit patterns, so clients can assert bitwise determinism without
//! shipping the whole vector.

use std::collections::VecDeque;
use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use ihtl_apps::{run_job, run_job_multi, EngineKind, JobSpec};
use ihtl_core::IhtlConfig;

use crate::batch::{BatchMember, BatchTicket, BatchedOutput, Coalescer};
use crate::cache::ResultCache;
use crate::json::Json;
use crate::proto::{
    engine_wire_name, EngineChoice, GraphSource, GraphView, Monoid, Op, Request, WireJob,
};
use crate::registry::{Dataset, Registry};
use crate::sched::{JobError, Scheduler, SubmitError};
use crate::stats::ServeStats;

/// Server tunables. `Default` suits tests and the smoke script.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Admission queue capacity; beyond it, jobs are rejected `overloaded`.
    pub queue_capacity: usize,
    /// Executor threads. One is right for CPU-bound SpMV (the parallel
    /// pool is already machine-wide); more helps only for blocking jobs.
    pub executors: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// iHTL build configuration used for every dataset.
    pub ihtl_cfg: IhtlConfig,
    /// Request lines longer than this are rejected (protocol error).
    pub max_line_bytes: usize,
    /// Close a connection whose client sends nothing for this long
    /// (`None` = wait forever). Idle sockets otherwise pin a thread and a
    /// file descriptor each for the life of the client process.
    pub idle_timeout: Option<Duration>,
    /// Largest number of coalesced queries per SpMM edge sweep. Queued
    /// jobs sharing (dataset, engine, analytic, iteration budget) merge
    /// into one K-column execution; `1` disables coalescing.
    pub max_batch: usize,
    /// Root directory of the durable artifact store (`--store-dir`);
    /// `None` disables the store (every preprocessing is rebuilt).
    pub store_dir: Option<String>,
    /// Warm-artifact memory budget in MiB (`--mem-budget-mb`); `None`
    /// keeps every artifact resident forever.
    pub mem_budget_mb: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            queue_capacity: 16,
            executors: 1,
            cache_capacity: 64,
            ihtl_cfg: IhtlConfig::default(),
            max_line_bytes: 1 << 20,
            idle_timeout: Some(Duration::from_secs(30)),
            max_batch: 8,
            store_dir: None,
            mem_budget_mb: None,
        }
    }
}

/// How many completed job traces the server retains for the `trace` op.
const TRACE_STORE_CAP: usize = 64;

/// Everything the connection handlers share.
struct ServerState {
    registry: Registry,
    scheduler: Scheduler,
    cache: ResultCache,
    coalescer: Coalescer,
    stats: ServeStats,
    shutting_down: AtomicBool,
    cfg: ServerConfig,
    /// Recent traced-job span trees, oldest first, keyed by trace id.
    traces: Mutex<VecDeque<(u64, Json)>>,
    next_trace_id: AtomicU64,
}

/// A bound (not yet running) server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<ServerState>,
}

/// Handle to a server running on a background thread.
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServerState>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and the scheduler, then joins them.
    pub fn shutdown(mut self) {
        request_shutdown(&self.state, self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn request_shutdown(state: &ServerState, addr: SocketAddr) {
    // ORDERING: SeqCst — shutdown is a once-per-process edge; the accept
    // loop's SeqCst load must see it in total order with the wake-up
    // connection below, and the cost is irrelevant off the hot path.
    if state.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake the blocking accept() with a throwaway connection.
    let _ = TcpStream::connect(addr);
}

impl Server {
    /// Binds the listening socket.
    pub fn bind(cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        // Opening the store is fallible (mkdir) and happens before any
        // connection is accepted — a bad --store-dir fails the boot loudly
        // instead of degrading every job quietly.
        let store = match &cfg.store_dir {
            Some(dir) => Some(Arc::new(ihtl_store::BlockStore::open(dir)?)),
            None => None,
        };
        let state = Arc::new(ServerState {
            registry: Registry::with_store(cfg.ihtl_cfg.clone(), store, cfg.mem_budget_mb),
            scheduler: Scheduler::new(cfg.queue_capacity, cfg.executors),
            cache: ResultCache::new(cfg.cache_capacity),
            coalescer: Coalescer::new(),
            stats: ServeStats::default(),
            shutting_down: AtomicBool::new(false),
            cfg,
            traces: Mutex::new(VecDeque::new()),
            next_trace_id: AtomicU64::new(1),
        });
        Ok(Server { listener, addr, state })
    }

    /// The bound address (resolved once at bind time, so the accept loop
    /// and the shutdown path never need a fallible OS query).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the accept loop on the current thread until shutdown.
    pub fn run(self) {
        let addr = self.addr;
        for conn in self.listener.incoming() {
            // ORDERING: SeqCst — pairs with request_shutdown's swap.
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("ihtl-serve-conn".to_string())
                .spawn(move || handle_connection(stream, &state, addr));
        }
        self.state.scheduler.shutdown();
    }

    /// Runs the accept loop on a background thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let accept_thread = std::thread::Builder::new()
            .name("ihtl-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, state, accept_thread: Some(accept_thread) })
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<ServerState>, addr: SocketAddr) {
    // The timeout only governs reads between requests: a job in flight
    // blocks in `dispatch`, not in `read_line`, so slow jobs are unaffected.
    if state.cfg.idle_timeout.is_some() {
        let _ = stream.set_read_timeout(state.cfg.idle_timeout);
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        // take() bounds the line length; a longer line shows up as a "line"
        // with no terminating newline and non-empty content.
        let mut limited = (&mut reader).take(state.cfg.max_line_bytes as u64);
        match limited.read_line(&mut line) {
            Ok(0) => return, // client closed
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                // Idle expiry (both kinds occur across platforms). Closing
                // frees the connection thread and its file descriptor.
                // ORDERING: Relaxed — stats counter only.
                state.stats.idle_disconnects.fetch_add(1, Ordering::Relaxed);
                let _ = writeln!(writer, "{}", error_reply(None, "idle timeout, closing"));
                return;
            }
            Err(_) => return,
        }
        if !line.ends_with('\n') && line.len() >= state.cfg.max_line_bytes {
            let reply = error_reply(None, "request line too long");
            let _ = writeln!(writer, "{reply}");
            return;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = match Request::parse(trimmed) {
            Err(msg) => error_reply(None, &msg),
            Ok(req) => {
                let is_shutdown = req.op == Op::Shutdown;
                let reply = dispatch(state, req);
                if is_shutdown {
                    let _ = writeln!(writer, "{reply}");
                    let _ = writer.flush();
                    let _ = writer.shutdown(NetShutdown::Both);
                    request_shutdown(state, addr);
                    return;
                }
                reply
            }
        };
        if writeln!(writer, "{reply}").is_err() {
            return;
        }
    }
}

/// Builds the `{"ok":false,...}` reply.
fn error_reply(id: Option<Json>, msg: &str) -> Json {
    let mut pairs = Vec::new();
    if let Some(id) = id {
        pairs.push(("id".to_string(), id));
    }
    pairs.push(("ok".to_string(), Json::Bool(false)));
    pairs.push(("error".to_string(), Json::from(msg)));
    Json::Obj(pairs)
}

/// Builds the `{"ok":true,...}` reply around a body object.
fn ok_reply(id: Option<Json>, body: Json) -> Json {
    let mut pairs = Vec::new();
    if let Some(id) = id {
        pairs.push(("id".to_string(), id));
    }
    pairs.push(("ok".to_string(), Json::Bool(true)));
    if let Json::Obj(fields) = body {
        pairs.extend(fields);
    }
    Json::Obj(pairs)
}

fn dispatch(state: &Arc<ServerState>, req: Request) -> Json {
    let id = req.id;
    match req.op {
        Op::Ping => ok_reply(id, Json::obj([("pong", Json::Bool(true))])),
        Op::Shutdown => ok_reply(id, Json::obj([("bye", Json::Bool(true))])),
        Op::List => {
            let items: Vec<Json> = state
                .registry
                .list()
                .iter()
                .map(|ds| {
                    let mut pairs = vec![
                        ("name".to_string(), Json::from(ds.name.clone())),
                        ("source".to_string(), Json::from(ds.source_desc.clone())),
                        ("n_vertices".to_string(), Json::from(ds.n_vertices)),
                        ("n_edges".to_string(), Json::from(ds.n_edges)),
                        ("load_seconds".to_string(), Json::Num(ds.load_seconds)),
                        ("has_graph".to_string(), Json::Bool(ds.graph().is_some())),
                        ("warm".to_string(), Json::Bool(ds.warm())),
                    ];
                    push_shard_fields(&mut pairs, ds);
                    Json::Obj(pairs)
                })
                .collect();
            ok_reply(id, Json::obj([("datasets", Json::Arr(items))]))
        }
        Op::Stats => {
            let mut body = state.stats.to_json(state.scheduler.queue_depth(), state.cache.stats());
            if let Json::Obj(pairs) = &mut body {
                // Memoised `auto` picks, one entry per dataset that has
                // resolved at least one (datasets never asked for `auto`
                // are omitted rather than forcing a feature computation).
                let autos: Vec<Json> = state
                    .registry
                    .list()
                    .iter()
                    .filter_map(|ds| {
                        let [plain, sym] = ds.auto_decisions();
                        if plain.is_none() && sym.is_none() {
                            return None;
                        }
                        let mut p = vec![("dataset".to_string(), Json::from(ds.name.clone()))];
                        if let Some(k) = plain {
                            p.push((
                                "engine_selected".to_string(),
                                Json::from(engine_wire_name(k)),
                            ));
                        }
                        if let Some(k) = sym {
                            p.push((
                                "engine_selected_symmetrized".to_string(),
                                Json::from(engine_wire_name(k)),
                            ));
                        }
                        Some(Json::Obj(p))
                    })
                    .collect();
                pairs.push(("auto_engines".to_string(), Json::Arr(autos)));
                // Durable-store and warm-tier counters. Always present
                // (zeros without a store) so the wire shape is stable.
                let sc = state.registry.store_counters();
                pairs.push(("store_hits".to_string(), Json::from(sc.hits)));
                pairs.push(("store_misses".to_string(), Json::from(sc.misses)));
                pairs.push(("store_writes".to_string(), Json::from(sc.writes)));
                pairs.push(("store_quarantined".to_string(), Json::from(sc.quarantined)));
                pairs.push(("evictions".to_string(), Json::from(state.registry.evictions())));
                pairs.push((
                    "resident_artifact_bytes".to_string(),
                    Json::from(state.registry.resident_bytes()),
                ));
            }
            ok_reply(id, body)
        }
        Op::Register { name, source } => match handle_register(state, &name, &source) {
            Ok(body) => ok_reply(id, body),
            Err(msg) => error_reply(id, &msg),
        },
        Op::Job { dataset, engine, job, timeout_ms, nocache, top_k, include_values, trace } => {
            match handle_job(
                state,
                &dataset,
                engine,
                &job,
                timeout_ms,
                nocache,
                top_k,
                include_values,
                trace,
            ) {
                Ok(body) => ok_reply(id, body),
                Err(msg) => error_reply(id, &msg),
            }
        }
        Op::Trace { trace_id } => {
            let traces = lock_traces(state);
            match traces.iter().find(|(tid, _)| *tid == trace_id) {
                Some((_, tree)) => ok_reply(id, tree.clone()),
                None => error_reply(
                    id,
                    &format!("unknown trace_id {trace_id} (expired or never recorded)"),
                ),
            }
        }
        Op::Sweep { dataset, engine, monoid, view, xbits } => {
            match handle_sweep(state, &dataset, engine, monoid, view, xbits) {
                Ok(body) => ok_reply(id, body),
                Err(msg) => error_reply(id, &msg),
            }
        }
        Op::Degrees { dataset, view } => match handle_degrees(state, &dataset, view) {
            Ok(body) => ok_reply(id, body),
            Err(msg) => error_reply(id, &msg),
        },
    }
}

/// Appends the shard placement fields to a reply body when the dataset is
/// a destination-range shard — the router builds its placement table from
/// the `register` reply, and `list` mirrors the same fields.
fn push_shard_fields(pairs: &mut Vec<(String, Json)>, ds: &Dataset) {
    let Some(meta) = ds.shard() else {
        return;
    };
    pairs.push(("shard_index".to_string(), Json::from(meta.index)));
    pairs.push(("shard_count".to_string(), Json::from(meta.count)));
    pairs.push(("range_start".to_string(), Json::from(meta.info.range.start)));
    pairs.push(("range_end".to_string(), Json::from(meta.info.range.end)));
    pairs.push(("shard_edges".to_string(), Json::from(meta.info.n_edges)));
    pairs.push(("boundary_sources".to_string(), Json::from(meta.info.boundary_sources)));
}

/// Locks the trace store, recovering from poisoning (R3: a panicking
/// executor must not take the trace endpoint down with it).
fn lock_traces(state: &ServerState) -> std::sync::MutexGuard<'_, VecDeque<(u64, Json)>> {
    state.traces.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn handle_register(
    state: &Arc<ServerState>,
    name: &str,
    source: &GraphSource,
) -> Result<Json, String> {
    let ds = state.registry.register(name, source)?;
    let mut pairs = vec![
        ("name".to_string(), Json::from(ds.name.clone())),
        ("n_vertices".to_string(), Json::from(ds.n_vertices)),
        ("n_edges".to_string(), Json::from(ds.n_edges)),
        ("load_seconds".to_string(), Json::Num(ds.load_seconds)),
    ];
    push_shard_fields(&mut pairs, &ds);
    Ok(Json::Obj(pairs))
}

/// One monoid-typed edge sweep `y = A ⊙ x` — the router's per-round
/// primitive. Vectors travel as f64 *bit patterns* (u64s): JSON has no
/// NaN/∞ literals and SSSP/CC sweeps legitimately carry +∞, and bit
/// patterns exceed 2^53, so the exact-integer `Json` representation is
/// load-bearing here. The sweep runs through the scheduler like any job,
/// so the admission queue still bounds total in-flight compute. Engines
/// run in their internal vertex order; the wire carries original order,
/// converted on both edges — a shard worker therefore folds exactly its
/// shard's CSC rows and returns the monoid identity everywhere else.
fn handle_sweep(
    state: &Arc<ServerState>,
    dataset: &str,
    engine: EngineChoice,
    monoid: Monoid,
    view: GraphView,
    xbits: Vec<u64>,
) -> Result<Json, String> {
    let ds = state
        .registry
        .get(dataset)
        .ok_or_else(|| format!("unknown dataset '{dataset}' (register it first)"))?;
    let symmetrized = view == GraphView::Sym;
    let engine: EngineKind = match engine {
        EngineChoice::Fixed(kind) => kind,
        EngineChoice::Auto => ds.auto_engine(symmetrized, state.registry.cfg())?,
    };
    if xbits.len() != ds.n_vertices {
        return Err(format!(
            "xbits has {} entries; dataset '{dataset}' has {} vertices",
            xbits.len(),
            ds.n_vertices
        ));
    }
    // ORDERING: Relaxed — stats counter only.
    state.stats.submitted.fetch_add(1, Ordering::Relaxed);
    let state_for_exec = Arc::clone(state);
    let ds_for_exec = Arc::clone(&ds);
    let handle = state
        .scheduler
        .submit(
            None,
            Box::new(move |_cancel| {
                let _span = ihtl_trace::span("sweep").with_arg(xbits.len() as u64);
                let x: Vec<f64> = xbits.iter().map(|&b| f64::from_bits(b)).collect();
                let y = ds_for_exec
                    .with_engine(engine, symmetrized, &state_for_exec.registry, |e| {
                        let xe = e.from_original_order(&x);
                        let mut ye = vec![monoid_identity(monoid); xe.len()];
                        match monoid {
                            Monoid::Add => e.spmv_add(&xe, &mut ye),
                            Monoid::Min => e.spmv_min(&xe, &mut ye),
                        }
                        e.to_original_order(&ye)
                    })
                    .map_err(JobError::Failed)?;
                Ok(Json::obj([(
                    "ybits",
                    Json::Arr(y.iter().map(|v| Json::from(v.to_bits())).collect()),
                )]))
            }),
        )
        .map_err(|e| match e {
            SubmitError::Overloaded => {
                // ORDERING: Relaxed — stats counter only.
                state.stats.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                "overloaded".to_string()
            }
            SubmitError::ShuttingDown => "server shutting down".to_string(),
        })?;
    match handle.wait() {
        Ok(mut body) => {
            // ORDERING: Relaxed — stats counter only.
            state.stats.completed.fetch_add(1, Ordering::Relaxed);
            if let Json::Obj(pairs) = &mut body {
                pairs.push(("dataset".to_string(), Json::from(ds.name.clone())));
                pairs.push(("engine".to_string(), Json::from(engine_wire_name(engine))));
                pairs.push(("monoid".to_string(), Json::from(monoid.wire_name())));
                pairs.push(("view".to_string(), Json::from(view.wire_name())));
                pairs.push(("n_vertices".to_string(), Json::from(ds.n_vertices)));
            }
            Ok(body)
        }
        Err(err) => {
            // ORDERING: Relaxed — stats counter only.
            state.stats.failed.fetch_add(1, Ordering::Relaxed);
            Err(err.message())
        }
    }
}

/// The monoid's identity element — what a sweep leaves in rows with no
/// in-edges, and what makes cross-shard merges exact (a non-owner's entry
/// is *exactly* the identity, so the owner's fold is the full fold).
fn monoid_identity(monoid: Monoid) -> f64 {
    match monoid {
        Monoid::Add => 0.0,
        Monoid::Min => f64::INFINITY,
    }
}

/// The dataset's per-vertex out-degree vector. A shard reports only the
/// degrees of edges it kept, so a router sums these across shards to
/// recover the global vector PageRank normalises by — integer addition,
/// hence exact.
fn handle_degrees(
    state: &Arc<ServerState>,
    dataset: &str,
    view: GraphView,
) -> Result<Json, String> {
    let ds = state
        .registry
        .get(dataset)
        .ok_or_else(|| format!("unknown dataset '{dataset}' (register it first)"))?;
    let g = match view {
        GraphView::Raw => ds.graph().ok_or_else(|| {
            format!(
                "dataset '{dataset}' was registered from an iHTL image; degrees need the raw graph"
            )
        })?,
        GraphView::Sym => ds.sym_graph()?,
    };
    let degrees: Vec<Json> =
        (0..g.n_vertices() as u32).map(|v| Json::from(g.out_degree(v) as u64)).collect();
    Ok(Json::obj([
        ("dataset", Json::from(ds.name.clone())),
        ("view", Json::from(view.wire_name())),
        ("n_vertices", Json::from(g.n_vertices())),
        ("degrees", Json::Arr(degrees)),
    ]))
}

#[allow(clippy::too_many_arguments)]
fn handle_job(
    state: &Arc<ServerState>,
    dataset: &str,
    engine: EngineChoice,
    job: &WireJob,
    timeout_ms: Option<u64>,
    nocache: bool,
    top_k: usize,
    include_values: bool,
    trace: bool,
) -> Result<Json, String> {
    let ds = state
        .registry
        .get(dataset)
        .ok_or_else(|| format!("unknown dataset '{dataset}' (register it first)"))?;
    // Reject bad job parameters (e.g. an sssp/bfs source beyond the vertex
    // count) at admission — before the submission counter, the latency
    // timer, and the batching path — so the reply is a clear wire error
    // with zero reported seconds, not a failure deep in the executor.
    if let WireJob::Analytic(spec) = job {
        if let Err(msg) = spec.validate(ds.n_vertices, ds.graph().as_deref()) {
            // A rejected job still counts as a failed one for fleet health.
            // ORDERING: Relaxed — stats counter only.
            state.stats.failed.fetch_add(1, Ordering::Relaxed);
            return Err(msg);
        }
    }
    // Resolve `auto` to a concrete engine *before* cache-keying, so an
    // auto request and an explicit request for the engine it picks share
    // one cache entry (and the memoised decision makes this resolution a
    // single atomic load after the first job).
    let engine: EngineKind = match engine {
        EngineChoice::Fixed(kind) => kind,
        EngineChoice::Auto => {
            let symmetrized = match job {
                WireJob::Analytic(spec) => spec.needs_symmetrized(),
                _ => false,
            };
            ds.auto_engine(symmetrized, state.registry.cfg())?
        }
    };
    let cache_key = ResultCache::key(
        dataset,
        engine_wire_name(engine),
        &job.canonical(),
        top_k,
        include_values,
    );
    // A traced request must actually execute (a cached reply has no spans),
    // and its reply must not be cached (the trace_id is call-specific).
    let use_cache = job.cacheable() && !nocache && !trace && state.cfg.cache_capacity > 0;
    if use_cache {
        if let Some(mut body) = state.cache.get(&cache_key) {
            if let Json::Obj(pairs) = &mut body {
                pairs.retain(|(k, _)| k != "cached");
                pairs.push(("cached".to_string(), Json::Bool(true)));
            }
            return Ok(body);
        }
    }

    // ORDERING: Relaxed — stats counter only.
    state.stats.submitted.fetch_add(1, Ordering::Relaxed);
    // lint:allow(R4): admission timestamp feeds the latency histogram only
    let submitted_at = Instant::now();
    let deadline = timeout_ms.map(|ms| submitted_at + Duration::from_millis(ms));
    // Coalescible analytics park on a batch slot instead of a private
    // scheduler job, so queued lookalikes share one SpMM edge sweep.
    // Traced jobs stay solo: their span tree must describe exactly one
    // execution, not whatever batch they landed in.
    if !trace && state.cfg.max_batch > 1 {
        if let WireJob::Analytic(spec) = job {
            if let Some(group) = spec.batch_group_key() {
                return finish_batched_job(
                    state,
                    &ds,
                    dataset,
                    engine,
                    spec,
                    &group,
                    deadline,
                    submitted_at,
                    use_cache,
                    cache_key,
                    top_k,
                    include_values,
                );
            }
        }
    }
    // ORDERING: Relaxed — only uniqueness of the trace id matters.
    let trace_id = trace.then(|| state.next_trace_id.fetch_add(1, Ordering::Relaxed));
    let job_for_exec = job.clone();
    let state_for_exec = Arc::clone(state);
    let ds_for_exec = Arc::clone(&ds);
    let handle = state
        .scheduler
        .submit(
            deadline,
            Box::new(move |cancel| {
                // Tracing turns on for exactly this job's execution window:
                // the guard + mark are taken on the executor thread, so the
                // `job` root span and everything `run_job` opens nest under
                // it, and pool-worker spans land in the collected window.
                let traced = trace_id.map(|tid| (tid, ihtl_trace::enable(), ihtl_trace::mark()));
                let root = ihtl_trace::span("job");
                let result = execute_job(
                    &state_for_exec,
                    &ds_for_exec,
                    engine,
                    &job_for_exec,
                    top_k,
                    include_values,
                    cancel,
                )
                .map_err(JobError::Failed);
                drop(root);
                if let Some((tid, guard, mark)) = traced {
                    let capture = mark.collect();
                    drop(guard);
                    store_trace(&state_for_exec, tid, &capture);
                }
                result
            }),
        )
        .map_err(|e| match e {
            SubmitError::Overloaded => {
                // ORDERING: Relaxed — stats counter only.
                state.stats.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                "overloaded".to_string()
            }
            SubmitError::ShuttingDown => "server shutting down".to_string(),
        })?;

    let result = handle.wait();
    let latency = submitted_at.elapsed().as_secs_f64();
    state.stats.record_latency(latency);
    match result {
        Ok(mut body) => {
            // ORDERING: Relaxed — stats counter only.
            state.stats.completed.fetch_add(1, Ordering::Relaxed);
            if let Json::Obj(pairs) = &mut body {
                pairs.push(("latency_seconds".to_string(), Json::Num(latency)));
            }
            if use_cache {
                state.cache.put(cache_key, body.clone());
            }
            if let Json::Obj(pairs) = &mut body {
                pairs.push(("cached".to_string(), Json::Bool(false)));
                if let Some(tid) = trace_id {
                    pairs.push(("trace_id".to_string(), Json::from(tid)));
                }
            }
            Ok(body)
        }
        Err(err) => {
            // ORDERING: Relaxed — stats counters only.
            if err == JobError::DeadlineExceeded {
                state.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
            }
            // ORDERING: Relaxed — stats counter only.
            state.stats.failed.fetch_add(1, Ordering::Relaxed);
            Err(err.message())
        }
    }
}

/// Finishes a coalescible job on the batching path: enlist with the
/// coalescer, lead (submit the one batch closure) if this request opened
/// the group, then park on the member slot until the sweep demuxes this
/// column — or the member's own deadline passes.
#[allow(clippy::too_many_arguments)]
fn finish_batched_job(
    state: &Arc<ServerState>,
    ds: &Arc<Dataset>,
    dataset: &str,
    engine: EngineKind,
    spec: &JobSpec,
    group: &str,
    deadline: Option<Instant>,
    submitted_at: Instant,
    use_cache: bool,
    cache_key: String,
    top_k: usize,
    include_values: bool,
) -> Result<Json, String> {
    let key = format!("{dataset}|{}|{group}", engine_wire_name(engine));
    let (slot, ticket) = state.coalescer.enlist(key, spec.clone());
    if let Some(ticket) = ticket {
        let state_for_exec = Arc::clone(state);
        let ds_for_exec = Arc::clone(ds);
        let max_batch = state.cfg.max_batch;
        // The batch closure carries no deadline of its own: each member
        // enforces its deadline on its slot, and a closure purged from the
        // queue would strand every member. On submit failure the dropped
        // ticket fails all enlisted slots, so nobody hangs.
        state
            .scheduler
            .submit(
                None,
                Box::new(move |_cancel| {
                    run_batch(&state_for_exec, &ds_for_exec, engine, ticket, max_batch);
                    Ok(Json::Null)
                }),
            )
            .map_err(|e| match e {
                SubmitError::Overloaded => {
                    // ORDERING: Relaxed — stats counter only.
                    state.stats.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                    "overloaded".to_string()
                }
                SubmitError::ShuttingDown => "server shutting down".to_string(),
            })?;
    }
    let result = slot.wait(deadline);
    let latency = submitted_at.elapsed().as_secs_f64();
    state.stats.record_latency(latency);
    match result {
        Ok(b) => {
            // ORDERING: Relaxed — stats counter only.
            state.stats.completed.fetch_add(1, Ordering::Relaxed);
            let mut body = job_body(ds, engine, spec, &b.output, top_k, include_values);
            if let Json::Obj(pairs) = &mut body {
                pairs.push(("latency_seconds".to_string(), Json::Num(latency)));
            }
            if use_cache {
                state.cache.put(cache_key, body.clone());
            }
            // Appended after the cache put (like `cached`): occupancy is a
            // property of this call's sweep, not of the cached result.
            if let Json::Obj(pairs) = &mut body {
                pairs.push(("cached".to_string(), Json::Bool(false)));
                pairs.push(("batch_k".to_string(), Json::from(b.batch_k)));
            }
            Ok(body)
        }
        Err(err) => {
            // ORDERING: Relaxed — stats counters only.
            if err == JobError::DeadlineExceeded {
                state.stats.deadline_missed.fetch_add(1, Ordering::Relaxed);
            }
            // ORDERING: Relaxed — stats counter only.
            state.stats.failed.fetch_add(1, Ordering::Relaxed);
            Err(err.message())
        }
    }
}

/// Executor-side batch driver: claims the group's members, runs them, and
/// guarantees every member slot is filled even if execution panics.
fn run_batch(
    state: &Arc<ServerState>,
    ds: &Dataset,
    engine: EngineKind,
    ticket: BatchTicket,
    max_batch: usize,
) {
    let members = ticket.drain();
    let ran = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        execute_batch(state, ds, engine, &members, max_batch);
    }));
    // Backstop (first writer wins, so this is a no-op for filled slots):
    // any slot a panic left unfilled fails instead of hanging its client.
    for m in &members {
        m.fill(Err(JobError::Panicked));
    }
    drop(ran);
}

/// Runs a drained batch in chunks of at most `max_batch` columns, demuxing
/// each chunk's result columns into the members' slots. A member whose
/// parameters are rejected fails alone; the surviving columns still share
/// the sweep.
fn execute_batch(
    state: &ServerState,
    ds: &Dataset,
    engine: EngineKind,
    members: &[BatchMember],
    max_batch: usize,
) {
    let live: Vec<&BatchMember> = members.iter().filter(|m| !m.is_abandoned()).collect();
    for chunk in live.chunks(max_batch.max(1)) {
        let _span = ihtl_trace::span("batch").with_arg(chunk.len() as u64);
        let specs: Vec<JobSpec> = chunk.iter().map(|m| m.spec().clone()).collect();
        let ran = ds.with_engine(engine, false, &state.registry, |e| run_job_multi(e, &specs));
        let results = match ran {
            Ok(results) => results,
            Err(msg) => {
                for m in chunk {
                    m.fill(Err(JobError::Failed(msg.clone())));
                }
                continue;
            }
        };
        // Occupancy counts the columns that actually executed; rejected
        // members consumed no sweep capacity.
        let executed = results.iter().filter(|r| r.is_ok()).count();
        let mut chunk_seconds = 0.0;
        let mut chunk_edges = 0u64;
        for (m, r) in chunk.iter().zip(results) {
            match r {
                Ok(out) => {
                    chunk_seconds += out.seconds;
                    chunk_edges = chunk_edges
                        .saturating_add((ds.n_edges as u64).saturating_mul(out.rounds as u64));
                    m.fill(Ok(BatchedOutput { output: out, batch_k: executed }));
                }
                Err(msg) => m.fill(Err(JobError::Failed(msg))),
            }
        }
        if executed > 0 {
            // One record per sweep over the summed work: per-engine
            // ns/edge in `stats` stays amortized per query.
            state.stats.record_engine(engine, chunk_seconds, chunk_edges);
            state.stats.record_batch(executed);
        }
    }
}

/// Runs the job body on an executor thread.
fn execute_job(
    state: &ServerState,
    ds: &Dataset,
    engine: EngineKind,
    job: &WireJob,
    top_k: usize,
    include_values: bool,
    cancel: &AtomicBool,
) -> Result<Json, String> {
    // ORDERING: Relaxed — advisory cancellation flag: a stale false only
    // wastes compute; the result hand-off is mutex-ordered elsewhere.
    if cancel.load(Ordering::Relaxed) {
        return Err("cancelled".to_string());
    }
    match job {
        WireJob::Sleep { ms } => {
            // Sleep in slices so cancellation/deadline abandonment is cheap.
            // lint:allow(R4): the sleep job is wall-clock by definition
            let end = Instant::now() + Duration::from_millis(*ms);
            // ORDERING: Relaxed — advisory cancellation poll.
            // lint:allow(R4): the sleep job is wall-clock by definition
            while Instant::now() < end && !cancel.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(5.min(*ms).max(1)));
            }
            Ok(Json::obj([("slept_ms", Json::from(*ms))]))
        }
        WireJob::Analytic(spec) => {
            let out = run_analytic(state, ds, engine, spec)?;
            Ok(job_body(ds, engine, spec, &out, top_k, include_values))
        }
        WireJob::Compare { iters } => {
            let spec = JobSpec::PageRank { iters: *iters, seed: None };
            let mut per_engine = Vec::new();
            let mut reference: Option<(EngineKind, Vec<f64>)> = None;
            let mut max_abs_diff = 0.0f64;
            for kind in EngineKind::all() {
                // ORDERING: Relaxed — advisory cancellation poll.
                if cancel.load(Ordering::Relaxed) {
                    return Err("cancelled".to_string());
                }
                if ds.graph().is_none() && kind != EngineKind::Ihtl {
                    continue; // iHTL-image datasets can only run iHTL
                }
                let out = run_analytic(state, ds, kind, &spec)?;
                match &reference {
                    None => reference = Some((kind, out.values.clone())),
                    Some((_, r)) => {
                        for (a, b) in r.iter().zip(&out.values) {
                            max_abs_diff = max_abs_diff.max((a - b).abs());
                        }
                    }
                }
                per_engine.push(Json::obj([
                    ("engine", Json::from(engine_wire_name(kind))),
                    ("seconds", Json::Num(out.seconds)),
                    (
                        "ns_per_edge",
                        Json::Num(out.seconds * 1e9 / (ds.n_edges.max(1) * iters) as f64),
                    ),
                    ("checksum", Json::from(fnv1a_checksum(&out.values))),
                ]));
            }
            Ok(Json::obj([
                ("job", Json::from(spec.canonical())),
                ("engines", Json::Arr(per_engine)),
                ("max_abs_diff", Json::Num(max_abs_diff)),
            ]))
        }
    }
}

/// Renders one thread's flat span list as a forest of
/// `{name, start_ns, dur_ns, arg, children}` nodes, children ordered by
/// start time. Parent links only ever point at earlier ids on the same
/// thread (they come from the tracer's per-thread open-span stack), so the
/// recursion is acyclic and its depth is bounded by the tracer's stack cap.
fn span_forest(spans: &[ihtl_trace::SpanInfo]) -> Json {
    // Sorted (id, index) pairs let children find parents by binary search —
    // no hash map (rule R4a keeps wire-facing files to plain collections).
    let mut by_id: Vec<(u64, usize)> = spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
    by_id.sort_unstable();
    let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        match by_id.binary_search_by_key(&s.parent, |&(id, _)| id) {
            Ok(p) if s.parent != 0 && by_id[p].1 != i => children[by_id[p].1].push(i),
            _ => roots.push(i), // orphan: parent span fell out of the ring
        }
    }
    let by_start = |list: &mut Vec<usize>| {
        list.sort_by_key(|&i| spans[i].start_ns);
    };
    by_start(&mut roots);
    for list in &mut children {
        by_start(list);
    }
    fn node(spans: &[ihtl_trace::SpanInfo], children: &[Vec<usize>], i: usize, depth: u32) -> Json {
        let s = &spans[i];
        let kids = if depth > 128 {
            Vec::new() // unreachable with well-formed data; guards the stack
        } else {
            children[i].iter().map(|&c| node(spans, children, c, depth + 1)).collect()
        };
        Json::obj([
            ("name", Json::from(s.name)),
            ("start_ns", Json::from(s.start_ns)),
            ("dur_ns", Json::from(s.dur_ns())),
            ("arg", Json::from(s.arg)),
            ("children", Json::Arr(kids)),
        ])
    }
    Json::Arr(roots.iter().map(|&i| node(spans, &children, i, 0)).collect())
}

/// Renders a job's [`ihtl_trace::Capture`] as the `trace` reply body and
/// files it in the bounded store (oldest traces fall out first).
fn store_trace(state: &ServerState, trace_id: u64, capture: &ihtl_trace::Capture) {
    let mut threads = Vec::with_capacity(1 + capture.remote.len());
    let thread_json = |t: &ihtl_trace::ThreadTrace| {
        Json::obj([
            ("label", Json::from(t.label.clone())),
            ("serial", Json::from(t.serial)),
            ("dropped", Json::from(t.dropped)),
            ("spans", span_forest(&t.spans)),
        ])
    };
    threads.push(thread_json(&capture.local));
    threads.extend(capture.remote.iter().map(thread_json));
    let (start, end) = capture.window_ns;
    let tree = Json::obj([
        ("trace_id", Json::from(trace_id)),
        ("window_ns", Json::Arr(vec![Json::from(start), Json::from(end)])),
        ("threads", Json::Arr(threads)),
    ]);
    let mut traces = lock_traces(state);
    if traces.len() >= TRACE_STORE_CAP {
        traces.pop_front();
    }
    traces.push_back((trace_id, tree));
}

/// Runs one analytic through the dataset's engine pool, recording engine
/// time into stats.
fn run_analytic(
    state: &ServerState,
    ds: &Dataset,
    engine: EngineKind,
    spec: &JobSpec,
) -> Result<ihtl_apps::JobOutput, String> {
    let graph = ds.graph();
    if spec.needs_raw_graph() && graph.is_none() {
        return Err(format!(
            "job '{}' needs the raw graph, which dataset '{}' (iHTL image) lacks",
            spec.name(),
            ds.name
        ));
    }
    let out = ds.with_engine(engine, spec.needs_symmetrized(), &state.registry, |e| {
        run_job(e, graph.as_deref(), spec)
    })??;
    // Attribute traversal work: each round touches every edge once.
    let edges = (ds.n_edges as u64).saturating_mul(out.rounds as u64);
    state.stats.record_engine(engine, out.seconds, edges);
    Ok(out)
}

/// Renders an analytic's output as the reply body.
fn job_body(
    ds: &Dataset,
    engine: EngineKind,
    spec: &JobSpec,
    out: &ihtl_apps::JobOutput,
    top_k: usize,
    include_values: bool,
) -> Json {
    let mut pairs = vec![
        ("dataset".to_string(), Json::from(ds.name.clone())),
        ("engine".to_string(), Json::from(engine_wire_name(engine))),
        // Always the *resolved* engine: under `engine: "auto"` this is the
        // scoring rule's pick; for a fixed request it echoes the request.
        // Cache-safe because auto resolves before the cache key is formed.
        ("engine_selected".to_string(), Json::from(engine_wire_name(engine))),
        ("job".to_string(), Json::from(spec.canonical())),
        ("n_vertices".to_string(), Json::from(out.values.len())),
        ("rounds".to_string(), Json::from(out.rounds)),
        ("compute_seconds".to_string(), Json::Num(out.seconds)),
        ("checksum".to_string(), Json::from(fnv1a_checksum(&out.values))),
    ];
    if top_k > 0 {
        let mut idx: Vec<usize> = (0..out.values.len()).collect();
        idx.sort_by(|&a, &b| {
            out.values[b]
                .partial_cmp(&out.values[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let top: Vec<Json> = idx
            .into_iter()
            .take(top_k)
            .map(|i| Json::obj([("vertex", Json::from(i)), ("value", Json::Num(out.values[i]))]))
            .collect();
        pairs.push(("top".to_string(), Json::Arr(top)));
    }
    if include_values {
        pairs.push((
            "values".to_string(),
            Json::Arr(out.values.iter().map(|&v| Json::Num(v)).collect()),
        ));
    }
    Json::Obj(pairs)
}

/// FNV-1a over the little-endian bit patterns of the vector, rendered as
/// 16 hex digits. Equal checksums across runs ⇒ bitwise-equal results.
pub fn fnv1a_checksum(values: &[f64]) -> String {
    let mut h = ihtl_graph::io::Fnv1a::new();
    for v in values {
        h.write(&v.to_bits().to_le_bytes());
    }
    format!("{:016x}", h.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_bit_sensitive() {
        let a = fnv1a_checksum(&[1.0, 2.0, 3.0]);
        let b = fnv1a_checksum(&[1.0, 2.0, 3.0]);
        assert_eq!(a, b);
        assert_ne!(a, fnv1a_checksum(&[1.0, 2.0, 3.0000000000000004]));
        assert_ne!(a, fnv1a_checksum(&[1.0, 2.0]));
        assert_eq!(a.len(), 16);
        // 0.0 and -0.0 differ in bits, so they must differ in checksum.
        assert_ne!(fnv1a_checksum(&[0.0]), fnv1a_checksum(&[-0.0]));
    }

    #[test]
    fn replies_put_id_first_and_ok() {
        let r = ok_reply(Some(Json::Num(4.0)), Json::obj([("x", Json::from(1u64))]));
        assert_eq!(r.to_string(), "{\"id\":4,\"ok\":true,\"x\":1}");
        let e = error_reply(None, "nope");
        assert_eq!(e.to_string(), "{\"ok\":false,\"error\":\"nope\"}");
    }
}
