//! Bounded job scheduler with explicit overload rejection.
//!
//! A fixed pool of executor threads drains a bounded FIFO queue. Admission
//! never blocks: when the queue is full, [`Scheduler::submit`] returns
//! [`SubmitError::Overloaded`] immediately — the server turns that into an
//! `"overloaded"` wire error so clients back off instead of piling up (the
//! acceptance criterion: saturation yields rejections, not hangs).
//!
//! The SpMV work itself is parallel *inside* a job via the `ihtl-parallel`
//! pool, which serialises regions under a pool-wide lock — so the default
//! of one executor thread already keeps compute saturated; extra executors
//! only help when jobs block elsewhere (e.g. `sleep` or disk loads).
//!
//! Deadlines are admission-to-completion: a job still queued past its
//! deadline is dropped at dequeue time, and a waiting client gives up at
//! the same instant. Cancellation removes a queued job or sets a flag the
//! running closure may observe.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::json::Json;

/// Why a job submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full.
    Overloaded,
    /// The scheduler is shutting down.
    ShuttingDown,
}

/// Why a submitted job produced no result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// Deadline elapsed before the job finished.
    DeadlineExceeded,
    /// The job was cancelled while queued.
    Cancelled,
    /// The scheduler shut down before running the job.
    ShutDown,
    /// The job's closure panicked.
    Panicked,
    /// The job reported an application error (message for the wire).
    Failed(String),
}

impl JobError {
    /// Wire error string.
    pub fn message(&self) -> String {
        match self {
            JobError::DeadlineExceeded => "deadline exceeded".to_string(),
            JobError::Cancelled => "cancelled".to_string(),
            JobError::ShutDown => "server shutting down".to_string(),
            JobError::Panicked => "internal error: job panicked".to_string(),
            JobError::Failed(msg) => msg.clone(),
        }
    }
}

type JobResult = Result<Json, JobError>;

/// One-shot result slot the submitting thread waits on.
struct JobSlot {
    result: Mutex<Option<JobResult>>,
    ready: Condvar,
}

impl JobSlot {
    fn fill(&self, r: JobResult) {
        let mut slot = crate::lock_ok(&self.result);
        // First writer wins: a deadline-waker and the executor may race.
        if slot.is_none() {
            *slot = Some(r);
            self.ready.notify_all();
        }
    }
}

struct QueuedJob {
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    work: Box<dyn FnOnce(&AtomicBool) -> JobResult + Send>,
    done: Arc<JobSlot>,
}

struct Queue {
    jobs: VecDeque<QueuedJob>,
    shutting_down: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a job is enqueued or shutdown begins.
    available: Condvar,
    capacity: usize,
    next_id: AtomicU64,
}

/// Handle for awaiting one submitted job.
pub struct JobHandle {
    pub job_id: u64,
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    done: Arc<JobSlot>,
}

impl JobHandle {
    /// Blocks until the job completes or its deadline passes.
    pub fn wait(self) -> JobResult {
        let mut slot = crate::lock_ok(&self.done.result);
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            match self.deadline {
                None => {
                    slot = self.done.ready.wait(slot).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    // lint:allow(R4): deadline bookkeeping — wall-clock never feeds results
                    let now = Instant::now();
                    if now >= d {
                        // Tell the executor (if it ever starts this job) to
                        // stop early; nobody is listening for the result.
                        self.cancelled.store(true, Ordering::Relaxed);
                        return Err(JobError::DeadlineExceeded);
                    }
                    let (s, _) = self
                        .done
                        .ready
                        .wait_timeout(slot, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    slot = s;
                }
            }
        }
    }
}

/// The bounded scheduler.
pub struct Scheduler {
    shared: Arc<Shared>,
    executors: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `executors` worker threads over a queue of `capacity` slots.
    pub fn new(capacity: usize, executors: usize) -> Scheduler {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), shutting_down: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
        });
        let mut handles = Vec::new();
        for i in 0..executors.max(1) {
            let worker_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("ihtl-serve-exec-{i}"))
                .spawn(move || executor_loop(&worker_shared))
            {
                Ok(h) => handles.push(h),
                // Out of threads: run with however many spawned. With zero
                // executors the queue can never drain, so flip straight to
                // shutting_down and every submit reports ShuttingDown
                // instead of accepting jobs that would hang forever.
                Err(_) => {
                    if handles.is_empty() {
                        crate::lock_ok(&shared.queue).shutting_down = true;
                    }
                    break;
                }
            }
        }
        Scheduler { shared, executors: Mutex::new(handles) }
    }

    /// Admits a job, or rejects immediately when the queue is full. `work`
    /// receives a cancellation flag it may poll between phases.
    pub fn submit(
        &self,
        deadline: Option<Instant>,
        work: Box<dyn FnOnce(&AtomicBool) -> JobResult + Send>,
    ) -> Result<JobHandle, SubmitError> {
        let mut q = crate::lock_ok(&self.shared.queue);
        if q.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        if q.jobs.len() >= self.shared.capacity {
            return Err(SubmitError::Overloaded);
        }
        let job_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancelled = Arc::new(AtomicBool::new(false));
        let done = Arc::new(JobSlot { result: Mutex::new(None), ready: Condvar::new() });
        q.jobs.push_back(QueuedJob {
            deadline,
            cancelled: Arc::clone(&cancelled),
            work,
            done: Arc::clone(&done),
        });
        drop(q);
        self.shared.available.notify_one();
        Ok(JobHandle { job_id, deadline, cancelled, done })
    }

    /// Jobs currently queued (not counting the one an executor is running).
    pub fn queue_depth(&self) -> usize {
        crate::lock_ok(&self.shared.queue).jobs.len()
    }

    /// Drains the queue (pending jobs fail with [`JobError::ShutDown`]) and
    /// joins the executors after their in-flight jobs finish.
    pub fn shutdown(&self) {
        let drained: Vec<QueuedJob> = {
            let mut q = crate::lock_ok(&self.shared.queue);
            q.shutting_down = true;
            q.jobs.drain(..).collect()
        };
        self.shared.available.notify_all();
        for job in drained {
            job.done.fill(Err(JobError::ShutDown));
        }
        let handles = std::mem::take(&mut *crate::lock_ok(&self.executors));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn executor_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = crate::lock_ok(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutting_down {
                    return;
                }
                q = shared.available.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Late checks at dequeue: the client may already have given up.
        if job.cancelled.load(Ordering::Relaxed) {
            job.done.fill(Err(JobError::Cancelled));
            continue;
        }
        // lint:allow(R4): deadline bookkeeping — wall-clock never feeds results
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            job.done.fill(Err(JobError::DeadlineExceeded));
            continue;
        }
        let cancelled = Arc::clone(&job.cancelled);
        let work = job.work;
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || work(&cancelled)))
                .unwrap_or(Err(JobError::Panicked));
        job.done.fill(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn ok_job(v: f64) -> Box<dyn FnOnce(&AtomicBool) -> JobResult + Send> {
        Box::new(move |_| Ok(Json::Num(v)))
    }

    fn sleep_job(ms: u64) -> Box<dyn FnOnce(&AtomicBool) -> JobResult + Send> {
        Box::new(move |_| {
            std::thread::sleep(Duration::from_millis(ms));
            Ok(Json::Null)
        })
    }

    #[test]
    fn runs_jobs_in_order() {
        let s = Scheduler::new(8, 1);
        let h1 = s.submit(None, ok_job(1.0)).unwrap();
        let h2 = s.submit(None, ok_job(2.0)).unwrap();
        assert_eq!(h1.wait().unwrap(), Json::Num(1.0));
        assert_eq!(h2.wait().unwrap(), Json::Num(2.0));
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let s = Scheduler::new(1, 1);
        // Occupy the single executor long enough to fill the queue behind it.
        let busy = s.submit(None, sleep_job(300)).unwrap();
        std::thread::sleep(Duration::from_millis(50)); // let it start running
        let queued = s.submit(None, sleep_job(1)).unwrap();
        let rejected = s.submit(None, ok_job(0.0));
        assert!(matches!(rejected, Err(SubmitError::Overloaded)));
        assert!(busy.wait().is_ok());
        assert!(queued.wait().is_ok());
    }

    #[test]
    fn deadline_in_queue_fails_fast() {
        let s = Scheduler::new(8, 1);
        let _busy = s.submit(None, sleep_job(300)).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let d = Instant::now() + Duration::from_millis(30);
        let h = s.submit(Some(d), ok_job(1.0)).unwrap();
        let t = Instant::now();
        assert_eq!(h.wait(), Err(JobError::DeadlineExceeded));
        // The waiter must give up at its deadline, not wait for the busy job.
        assert!(t.elapsed() < Duration::from_millis(250));
    }

    #[test]
    fn panicking_job_reports_and_pool_survives() {
        let s = Scheduler::new(8, 1);
        let h = s.submit(None, Box::new(|_| panic!("boom"))).unwrap();
        assert_eq!(h.wait(), Err(JobError::Panicked));
        let h2 = s.submit(None, ok_job(5.0)).unwrap();
        assert_eq!(h2.wait().unwrap(), Json::Num(5.0));
    }

    #[test]
    fn shutdown_fails_queued_jobs_and_rejects_new() {
        let s = Scheduler::new(8, 1);
        let _busy = s.submit(None, sleep_job(200)).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let queued = s.submit(None, ok_job(1.0)).unwrap();
        s.shutdown();
        assert_eq!(queued.wait(), Err(JobError::ShutDown));
        assert!(matches!(s.submit(None, ok_job(2.0)), Err(SubmitError::ShuttingDown)));
    }

    #[test]
    fn many_executors_drain_concurrently() {
        let s = Scheduler::new(16, 4);
        let t = Instant::now();
        let handles: Vec<_> = (0..4).map(|_| s.submit(None, sleep_job(100)).unwrap()).collect();
        for h in handles {
            assert!(h.wait().is_ok());
        }
        // 4 × 100 ms jobs on 4 executors: well under the serial 400 ms.
        assert!(t.elapsed() < Duration::from_millis(350), "{:?}", t.elapsed());
    }

    #[test]
    fn failed_jobs_carry_their_message() {
        let s = Scheduler::new(8, 1);
        let h =
            s.submit(None, Box::new(|_| Err(JobError::Failed("no such dataset".into())))).unwrap();
        assert_eq!(h.wait(), Err(JobError::Failed("no such dataset".into())));
    }
}
