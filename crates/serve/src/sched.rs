//! Bounded job scheduler with explicit overload rejection.
//!
//! A fixed pool of executor threads drains a bounded FIFO queue. Admission
//! never blocks: when the queue is full, [`Scheduler::submit`] returns
//! [`SubmitError::Overloaded`] immediately — the server turns that into an
//! `"overloaded"` wire error so clients back off instead of piling up (the
//! acceptance criterion: saturation yields rejections, not hangs).
//!
//! The SpMV work itself is parallel *inside* a job via the `ihtl-parallel`
//! pool, which serialises regions under a pool-wide lock — so the default
//! of one executor thread already keeps compute saturated; extra executors
//! only help when jobs block elsewhere (e.g. `sleep` or disk loads).
//!
//! Deadlines are admission-to-completion: a job still queued past its
//! deadline is dropped at dequeue time, and a waiting client gives up at
//! the same instant. Cancellation removes a queued job or sets a flag the
//! running closure may observe.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::json::Json;

/// Why a job submission was refused.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The admission queue is full.
    Overloaded,
    /// The scheduler is shutting down.
    ShuttingDown,
}

/// Why a submitted job produced no result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// Deadline elapsed before the job finished.
    DeadlineExceeded,
    /// The job was cancelled while queued.
    Cancelled,
    /// The scheduler shut down before running the job.
    ShutDown,
    /// The job's closure panicked.
    Panicked,
    /// The job reported an application error (message for the wire).
    Failed(String),
}

impl JobError {
    /// Wire error string.
    pub fn message(&self) -> String {
        match self {
            JobError::DeadlineExceeded => "deadline exceeded".to_string(),
            JobError::Cancelled => "cancelled".to_string(),
            JobError::ShutDown => "server shutting down".to_string(),
            JobError::Panicked => "internal error: job panicked".to_string(),
            JobError::Failed(msg) => msg.clone(),
        }
    }
}

type JobResult = Result<Json, JobError>;

/// One-shot result slot the submitting thread waits on.
struct JobSlot {
    result: Mutex<Option<JobResult>>,
    ready: Condvar,
}

impl JobSlot {
    fn fill(&self, r: JobResult) {
        let mut slot = crate::lock_ok(&self.result);
        // First writer wins: a deadline-waker and the executor may race.
        if slot.is_none() {
            *slot = Some(r);
            self.ready.notify_all();
        }
    }
}

struct QueuedJob {
    id: u64,
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    work: Box<dyn FnOnce(&AtomicBool) -> JobResult + Send>,
    done: Arc<JobSlot>,
}

struct Queue {
    jobs: VecDeque<QueuedJob>,
    shutting_down: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a job is enqueued or shutdown begins.
    available: Condvar,
    capacity: usize,
    next_id: AtomicU64,
}

/// Handle for awaiting one submitted job.
pub struct JobHandle {
    pub job_id: u64,
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    done: Arc<JobSlot>,
    shared: Arc<Shared>,
}

impl JobHandle {
    /// Blocks until the job completes or its deadline passes. A job
    /// abandoned at its deadline is removed from the queue immediately, so
    /// its closure (and any `Arc<Graph>` snapshot it captured) is released
    /// and its admission slot is free for live traffic.
    pub fn wait(self) -> JobResult {
        let mut slot = crate::lock_ok(&self.done.result);
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            match self.deadline {
                None => {
                    slot = self.done.ready.wait(slot).unwrap_or_else(PoisonError::into_inner);
                }
                Some(d) => {
                    // lint:allow(R4): deadline bookkeeping — wall-clock never feeds results
                    let now = Instant::now();
                    if now >= d {
                        // Tell the executor (if it ever starts this job) to
                        // stop early; nobody is listening for the result.
                        // ORDERING: Relaxed — advisory flag; the result slot
                        // mutex orders the actual hand-off.
                        self.cancelled.store(true, Ordering::Relaxed);
                        // Release the slot lock first: abandoning fills this
                        // slot, and `fill` takes the same mutex.
                        drop(slot);
                        self.abandon_queued(JobError::DeadlineExceeded);
                        return Err(JobError::DeadlineExceeded);
                    }
                    let (s, _) = self
                        .done
                        .ready
                        .wait_timeout(slot, d - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    slot = s;
                }
            }
        }
    }

    /// Flags the job as cancelled; if it is still queued it is removed on
    /// the spot, freeing its admission slot and dropping its closure.
    pub fn cancel(&self) {
        // ORDERING: Relaxed — advisory flag; see the deadline path above.
        self.cancelled.store(true, Ordering::Relaxed);
        self.abandon_queued(JobError::Cancelled);
    }

    /// Removes this handle's job from the queue, if still queued, and fills
    /// its result slot with `err` so any concurrent waiter unblocks.
    fn abandon_queued(&self, err: JobError) {
        let job = {
            let mut q = crate::lock_ok(&self.shared.queue);
            q.jobs.iter().position(|j| j.id == self.job_id).and_then(|i| q.jobs.remove(i))
        };
        if let Some(job) = job {
            job.done.fill(Err(err));
        }
    }
}

/// The bounded scheduler.
pub struct Scheduler {
    shared: Arc<Shared>,
    executors: Mutex<Vec<JoinHandle<()>>>,
}

impl Scheduler {
    /// Starts `executors` worker threads over a queue of `capacity` slots.
    pub fn new(capacity: usize, executors: usize) -> Scheduler {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue { jobs: VecDeque::new(), shutting_down: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
        });
        let mut handles = Vec::new();
        for i in 0..executors.max(1) {
            let worker_shared = Arc::clone(&shared);
            match std::thread::Builder::new()
                .name(format!("ihtl-serve-exec-{i}"))
                .spawn(move || executor_loop(&worker_shared))
            {
                Ok(h) => handles.push(h),
                // Out of threads: run with however many spawned. With zero
                // executors the queue can never drain, so flip straight to
                // shutting_down and every submit reports ShuttingDown
                // instead of accepting jobs that would hang forever.
                Err(_) => {
                    if handles.is_empty() {
                        crate::lock_ok(&shared.queue).shutting_down = true;
                    }
                    break;
                }
            }
        }
        Scheduler { shared, executors: Mutex::new(handles) }
    }

    /// Admits a job, or rejects immediately when the queue is full. `work`
    /// receives a cancellation flag it may poll between phases.
    pub fn submit(
        &self,
        deadline: Option<Instant>,
        work: Box<dyn FnOnce(&AtomicBool) -> JobResult + Send>,
    ) -> Result<JobHandle, SubmitError> {
        let mut q = crate::lock_ok(&self.shared.queue);
        if q.shutting_down {
            return Err(SubmitError::ShuttingDown);
        }
        // Corpses (cancelled, or expired with their waiter gone) must not
        // reject live traffic: purge them before judging capacity.
        purge_dead(&mut q);
        if q.jobs.len() >= self.shared.capacity {
            return Err(SubmitError::Overloaded);
        }
        // ORDERING: Relaxed — only uniqueness of the id matters.
        let job_id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancelled = Arc::new(AtomicBool::new(false));
        let done = Arc::new(JobSlot { result: Mutex::new(None), ready: Condvar::new() });
        q.jobs.push_back(QueuedJob {
            id: job_id,
            deadline,
            cancelled: Arc::clone(&cancelled),
            work,
            done: Arc::clone(&done),
        });
        drop(q);
        self.shared.available.notify_one();
        Ok(JobHandle { job_id, deadline, cancelled, done, shared: Arc::clone(&self.shared) })
    }

    /// Jobs currently queued (not counting the one an executor is running).
    pub fn queue_depth(&self) -> usize {
        crate::lock_ok(&self.shared.queue).jobs.len()
    }

    /// Drains the queue (pending jobs fail with [`JobError::ShutDown`]) and
    /// joins the executors after their in-flight jobs finish.
    pub fn shutdown(&self) {
        let drained: Vec<QueuedJob> = {
            let mut q = crate::lock_ok(&self.shared.queue);
            q.shutting_down = true;
            q.jobs.drain(..).collect()
        };
        self.shared.available.notify_all();
        for job in drained {
            job.done.fill(Err(JobError::ShutDown));
        }
        let handles = std::mem::take(&mut *crate::lock_ok(&self.executors));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Drops queued jobs nobody will collect: cancelled ones, and ones whose
/// deadline has passed (their waiter has returned `DeadlineExceeded`, or
/// never existed). Their slots are filled so a late waiter still unblocks.
fn purge_dead(q: &mut Queue) {
    if q.jobs.is_empty() {
        return;
    }
    // lint:allow(R4): deadline bookkeeping — wall-clock never feeds results
    let now = Instant::now();
    let mut i = 0;
    while i < q.jobs.len() {
        // ORDERING: Relaxed — advisory flag read under the queue lock; a
        // stale false just defers the purge to the executor's own check.
        let err = if q.jobs[i].cancelled.load(Ordering::Relaxed) {
            Some(JobError::Cancelled)
        } else if q.jobs[i].deadline.is_some_and(|d| now >= d) {
            Some(JobError::DeadlineExceeded)
        } else {
            None
        };
        match err {
            Some(err) => {
                if let Some(job) = q.jobs.remove(i) {
                    job.done.fill(Err(err));
                }
            }
            None => i += 1,
        }
    }
}

fn executor_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = crate::lock_ok(&shared.queue);
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutting_down {
                    return;
                }
                q = shared.available.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
        };
        // Late checks at dequeue: the client may already have given up.
        // ORDERING: Relaxed — advisory flag; a stale false only wastes one
        // job's compute, and the fill below is mutex-ordered anyway.
        if job.cancelled.load(Ordering::Relaxed) {
            job.done.fill(Err(JobError::Cancelled));
            continue;
        }
        // lint:allow(R4): deadline bookkeeping — wall-clock never feeds results
        if job.deadline.is_some_and(|d| Instant::now() >= d) {
            job.done.fill(Err(JobError::DeadlineExceeded));
            continue;
        }
        let cancelled = Arc::clone(&job.cancelled);
        let work = job.work;
        let result =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || work(&cancelled)))
                .unwrap_or(Err(JobError::Panicked));
        job.done.fill(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::time::Duration;

    type BoxedJob = Box<dyn FnOnce(&AtomicBool) -> JobResult + Send>;

    fn ok_job(v: f64) -> BoxedJob {
        Box::new(move |_| Ok(Json::Num(v)))
    }

    /// A job that reports when it starts running and then blocks until
    /// released — tests pin an executor on a *signal*, never a sleep guess
    /// (mirrors the barrier-based pool test in ihtl-parallel).
    struct Gate {
        started: mpsc::Receiver<()>,
        release: mpsc::Sender<()>,
    }

    fn gated_job() -> (Gate, BoxedJob) {
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel();
        let job = Box::new(move |_: &AtomicBool| {
            let _ = started_tx.send(());
            let _ = release_rx.recv();
            Ok(Json::Null)
        });
        (Gate { started: started_rx, release: release_tx }, job)
    }

    #[test]
    fn runs_jobs_in_order() {
        let s = Scheduler::new(8, 1);
        let h1 = s.submit(None, ok_job(1.0)).unwrap();
        let h2 = s.submit(None, ok_job(2.0)).unwrap();
        assert_eq!(h1.wait().unwrap(), Json::Num(1.0));
        assert_eq!(h2.wait().unwrap(), Json::Num(2.0));
    }

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let s = Scheduler::new(1, 1);
        let (gate, job) = gated_job();
        let busy = s.submit(None, job).unwrap();
        // Once the job reports in, it has been dequeued: the queue is empty
        // and the single executor is pinned.
        gate.started.recv().unwrap();
        let queued = s.submit(None, ok_job(1.0)).unwrap();
        let rejected = s.submit(None, ok_job(0.0));
        assert!(matches!(rejected, Err(SubmitError::Overloaded)));
        gate.release.send(()).unwrap();
        assert!(busy.wait().is_ok());
        assert_eq!(queued.wait().unwrap(), Json::Num(1.0));
    }

    #[test]
    fn deadline_in_queue_fails_fast() {
        let s = Scheduler::new(8, 1);
        let (gate, job) = gated_job();
        let busy = s.submit(None, job).unwrap();
        gate.started.recv().unwrap();
        let d = Instant::now() + Duration::from_millis(30);
        let h = s.submit(Some(d), ok_job(1.0)).unwrap();
        // The executor stays pinned, so only the deadline can end this wait.
        assert_eq!(h.wait(), Err(JobError::DeadlineExceeded));
        // Abandoning at the deadline removed the corpse from the queue.
        assert_eq!(s.queue_depth(), 0);
        gate.release.send(()).unwrap();
        assert!(busy.wait().is_ok());
    }

    #[test]
    fn panicking_job_reports_and_pool_survives() {
        let s = Scheduler::new(8, 1);
        let h = s.submit(None, Box::new(|_| panic!("boom"))).unwrap();
        assert_eq!(h.wait(), Err(JobError::Panicked));
        let h2 = s.submit(None, ok_job(5.0)).unwrap();
        assert_eq!(h2.wait().unwrap(), Json::Num(5.0));
    }

    #[test]
    fn shutdown_fails_queued_jobs_and_rejects_new() {
        let s = Scheduler::new(8, 1);
        let (gate, job) = gated_job();
        let busy = s.submit(None, job).unwrap();
        gate.started.recv().unwrap();
        let queued = s.submit(None, ok_job(1.0)).unwrap();
        // Shutdown drains the queue, then joins the executors — so it must
        // run on another thread while this one gates on the drain (the
        // queued job's slot filling with ShutDown) before releasing the
        // pinned executor for the join.
        std::thread::scope(|scope| {
            let t = scope.spawn(|| s.shutdown());
            assert_eq!(queued.wait(), Err(JobError::ShutDown));
            gate.release.send(()).unwrap();
            t.join().unwrap();
        });
        assert!(matches!(s.submit(None, ok_job(2.0)), Err(SubmitError::ShuttingDown)));
        assert!(busy.wait().is_ok());
    }

    #[test]
    fn many_executors_drain_concurrently() {
        let s = Scheduler::new(16, 4);
        // Each job blocks on a 4-way barrier: the batch completes only if
        // all four executors run simultaneously. No timing assumptions —
        // insufficient concurrency deadlocks (and trips the test timeout)
        // rather than passing slowly.
        let barrier = Arc::new(std::sync::Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let b = Arc::clone(&barrier);
                s.submit(
                    None,
                    Box::new(move |_| {
                        b.wait();
                        Ok(Json::Null)
                    }),
                )
                .unwrap()
            })
            .collect();
        for h in handles {
            assert!(h.wait().is_ok());
        }
    }

    #[test]
    fn deadline_abandon_restores_admission_capacity() {
        // Regression: a burst of short-deadline jobs used to leave corpses
        // queued (holding their closures and counting against capacity)
        // until an executor happened to reach them.
        let s = Scheduler::new(2, 1);
        let (gate, job) = gated_job();
        let busy = s.submit(None, job).unwrap();
        gate.started.recv().unwrap();
        let d = Instant::now() + Duration::from_millis(20);
        let h1 = s.submit(Some(d), ok_job(1.0)).unwrap();
        let h2 = s.submit(Some(d), ok_job(2.0)).unwrap();
        assert!(matches!(s.submit(None, ok_job(9.0)), Err(SubmitError::Overloaded)));
        assert_eq!(h1.wait(), Err(JobError::DeadlineExceeded));
        assert_eq!(h2.wait(), Err(JobError::DeadlineExceeded));
        // Both corpses were removed when their waiters gave up, so the
        // queue has room again even though the executor is still pinned.
        assert_eq!(s.queue_depth(), 0);
        let h3 = s.submit(None, ok_job(3.0)).expect("capacity restored after abandon");
        gate.release.send(()).unwrap();
        assert!(busy.wait().is_ok());
        assert_eq!(h3.wait().unwrap(), Json::Num(3.0));
    }

    #[test]
    fn submit_purges_expired_corpses() {
        // Corpses whose waiters never call `wait` (a vanished client) are
        // purged by the next submit rather than squatting on capacity.
        let s = Scheduler::new(2, 1);
        let (gate, job) = gated_job();
        let busy = s.submit(None, job).unwrap();
        gate.started.recv().unwrap();
        let d = Instant::now() + Duration::from_millis(5);
        let h1 = s.submit(Some(d), ok_job(1.0)).unwrap();
        let h2 = s.submit(Some(d), ok_job(2.0)).unwrap();
        // Nobody waits; the deadline simply passes (spinning on the actual
        // condition, not a sleep guess).
        while Instant::now() < d {
            std::thread::yield_now();
        }
        let h3 = s.submit(None, ok_job(3.0)).expect("submit must purge expired corpses");
        // The purge filled the corpses' slots, so late waiters unblock.
        assert_eq!(h1.wait(), Err(JobError::DeadlineExceeded));
        assert_eq!(h2.wait(), Err(JobError::DeadlineExceeded));
        gate.release.send(()).unwrap();
        assert!(busy.wait().is_ok());
        assert_eq!(h3.wait().unwrap(), Json::Num(3.0));
    }

    #[test]
    fn cancel_removes_queued_job_immediately() {
        let s = Scheduler::new(2, 1);
        let (gate, job) = gated_job();
        let busy = s.submit(None, job).unwrap();
        gate.started.recv().unwrap();
        let h = s.submit(None, ok_job(1.0)).unwrap();
        assert_eq!(s.queue_depth(), 1);
        h.cancel();
        assert_eq!(s.queue_depth(), 0);
        assert_eq!(h.wait(), Err(JobError::Cancelled));
        gate.release.send(()).unwrap();
        assert!(busy.wait().is_ok());
    }

    #[test]
    fn failed_jobs_carry_their_message() {
        let s = Scheduler::new(8, 1);
        let h =
            s.submit(None, Box::new(|_| Err(JobError::Failed("no such dataset".into())))).unwrap();
        assert_eq!(h.wait(), Err(JobError::Failed("no such dataset".into())));
    }
}
