//! Wire protocol: request parsing and the request/reply vocabulary.
//!
//! Transport is line-delimited JSON over TCP: one request object per line,
//! one reply object per line, in order. Every request carries an `op`; the
//! optional `id` is echoed verbatim in the reply so clients can match
//! pipelined replies. Replies always carry `"ok": true|false`; failures add
//! `"error"` with a human-readable message and keep the connection open.
//! See DESIGN.md for the full grammar.

use ihtl_apps::{EngineKind, JobSpec};

use crate::json::Json;

/// Where a registered dataset's graph comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// Seeded R-MAT (social profile) generated in-process.
    Rmat { scale: u32, edges: usize, seed: u64 },
    /// A named spec from the generator suite (`suite` / `suite_small` keys).
    Suite { key: String },
    /// Whitespace-separated `src dst` text file (`#` comments).
    EdgeListFile { path: String },
    /// A saved `IHTLGRPH` binary graph image.
    GraphImage { path: String },
    /// A saved `IHTLBLK2` preprocessed iHTL image. Only the iHTL engine can
    /// serve such a dataset (the raw graph is not recoverable from it).
    IhtlImage { path: String },
}

impl GraphSource {
    /// Stable description used for duplicate-registration detection and the
    /// `list` reply.
    pub fn describe(&self) -> String {
        match self {
            GraphSource::Rmat { scale, edges, seed } => {
                format!("rmat:scale={scale}:edges={edges}:seed={seed}")
            }
            GraphSource::Suite { key } => format!("suite:{key}"),
            GraphSource::EdgeListFile { path } => format!("edgelist:{path}"),
            GraphSource::GraphImage { path } => format!("graph-image:{path}"),
            GraphSource::IhtlImage { path } => format!("ihtl-image:{path}"),
        }
    }

    fn from_json(v: &Json) -> Result<GraphSource, String> {
        let kind =
            v.get("type").and_then(Json::as_str).ok_or("source requires a string 'type' field")?;
        let path = || {
            v.get("path")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("source type '{kind}' requires a 'path' field"))
        };
        match kind {
            "rmat" => {
                let scale = v.get("scale").and_then(Json::as_u64).ok_or("rmat requires 'scale'")?;
                if !(1..=24).contains(&scale) {
                    return Err(format!("rmat scale {scale} out of range 1..=24"));
                }
                let edges = v.get("edges").and_then(Json::as_u64).unwrap_or(8 << scale);
                // Reject out-of-range sizes instead of silently clamping:
                // the caller asked for a graph we will not build, so tell
                // them rather than hand back a smaller one.
                if edges == 0 || edges > 1 << 30 {
                    return Err(format!("rmat edges {edges} out of range 1..=2^30"));
                }
                let edges = edges as usize;
                let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(1);
                Ok(GraphSource::Rmat { scale: scale as u32, edges, seed })
            }
            "suite" => {
                let key = v.get("key").and_then(Json::as_str).ok_or("suite requires 'key'")?;
                Ok(GraphSource::Suite { key: key.to_string() })
            }
            "edgelist" => Ok(GraphSource::EdgeListFile { path: path()? }),
            "graph-image" => Ok(GraphSource::GraphImage { path: path()? }),
            "ihtl-image" => Ok(GraphSource::IhtlImage { path: path()? }),
            other => Err(format!("unknown source type '{other}'")),
        }
    }
}

/// What a `job` request asks to run.
#[derive(Clone, Debug, PartialEq)]
pub enum WireJob {
    /// One analytic via the `ihtl-apps` job dispatcher.
    Analytic(JobSpec),
    /// Run PageRank on every engine and report agreement + per-engine
    /// timings (the paper's Figure 7 comparison as a service call).
    Compare { iters: usize },
    /// Debug job: occupy an executor for `ms` milliseconds. Used by tests
    /// to saturate the admission queue deterministically.
    Sleep { ms: u64 },
}

impl WireJob {
    /// Cache-key fragment; equal jobs produce equal strings.
    pub fn canonical(&self) -> String {
        match self {
            WireJob::Analytic(spec) => spec.canonical(),
            WireJob::Compare { iters } => format!("compare:iters={iters}"),
            WireJob::Sleep { ms } => format!("sleep:ms={ms}"),
        }
    }

    /// Whether results of this job may be cached (sleep is a timing tool;
    /// caching it would defeat its purpose).
    pub fn cacheable(&self) -> bool {
        !matches!(self, WireJob::Sleep { .. })
    }

    fn from_json(v: &Json) -> Result<WireJob, String> {
        let kind = v.get("kind").and_then(Json::as_str).ok_or("job requires a 'kind' field")?;
        let u = |field: &str, default: u64| v.get(field).and_then(Json::as_u64).unwrap_or(default);
        let iters = u("iters", 20).clamp(1, 10_000) as usize;
        let max_rounds = u("max_rounds", 256).clamp(1, 100_000) as usize;
        let source = u("source", 0);
        if source > u32::MAX as u64 {
            return Err(format!("source vertex {source} exceeds u32"));
        }
        let source = source as u32;
        // Optional per-query parameters: absent means the classic variant
        // (uniform teleport / all-ones start), so old requests and their
        // cache keys are unchanged.
        let opt_u32 = |field: &str| -> Result<Option<u32>, String> {
            match v.get(field).and_then(Json::as_u64) {
                None => Ok(None),
                Some(x) if x <= u32::MAX as u64 => Ok(Some(x as u32)),
                Some(x) => Err(format!("{field} vertex {x} exceeds u32")),
            }
        };
        match kind {
            "pagerank" => {
                Ok(WireJob::Analytic(JobSpec::PageRank { iters, seed: opt_u32("seed")? }))
            }
            "spmv" => Ok(WireJob::Analytic(JobSpec::SpmvSum { iters, source: opt_u32("source")? })),
            "sssp" => Ok(WireJob::Analytic(JobSpec::Sssp { source, max_rounds })),
            "cc" => Ok(WireJob::Analytic(JobSpec::Components { max_rounds })),
            "bfs" => Ok(WireJob::Analytic(JobSpec::Bfs { source })),
            "compare" => Ok(WireJob::Compare { iters }),
            "sleep" => Ok(WireJob::Sleep { ms: u("ms", 100).min(60_000) }),
            other => Err(format!("unknown job kind '{other}'")),
        }
    }
}

/// What the `engine` field of a job request asks for: a specific engine,
/// or the server-side per-dataset adaptive choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// Run exactly this engine.
    Fixed(EngineKind),
    /// Let the registry's memoized scoring rule pick the engine for the
    /// dataset (DESIGN.md §11). The job reply's `engine_selected` field
    /// reports what ran.
    Auto,
}

impl EngineChoice {
    /// The choice's wire name (what the client wrote in `engine`).
    pub fn wire_name(self) -> &'static str {
        match self {
            EngineChoice::Fixed(kind) => engine_wire_name(kind),
            EngineChoice::Auto => "auto",
        }
    }
}

/// Parses an engine name as it appears on the wire. Unknown names report
/// the full valid vocabulary, which tracks `EngineKind::all()` by
/// construction.
pub fn engine_from_str(s: &str) -> Result<EngineChoice, String> {
    if s == "auto" {
        return Ok(EngineChoice::Auto);
    }
    for kind in EngineKind::all() {
        if engine_wire_name(kind) == s {
            return Ok(EngineChoice::Fixed(kind));
        }
    }
    let mut valid: Vec<&'static str> =
        EngineKind::all().iter().map(|&k| engine_wire_name(k)).collect();
    valid.push("auto");
    Err(format!("unknown engine '{s}' (valid engines: {})", valid.join(", ")))
}

/// Wire name of an engine kind (inverse of [`engine_from_str`]).
pub fn engine_wire_name(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Ihtl => "ihtl",
        EngineKind::PullGraphGrind => "pull_grind",
        EngineKind::PullGraphIt => "pull_graphit",
        EngineKind::PullGalois => "pull_galois",
        EngineKind::PushGraphGrind => "push_grind",
        EngineKind::PushGraphIt => "push_graphit",
        EngineKind::Pb => "pb",
        EngineKind::Hybrid => "hybrid",
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Echoed in the reply if present.
    pub id: Option<Json>,
    pub op: Op,
}

/// The operations the server understands.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Liveness check; replies immediately from the connection thread.
    Ping,
    /// Lists registered datasets with their sizes.
    List,
    /// Serving counters: queue depth, cache hits, latency histogram,
    /// per-engine ns/edge.
    Stats,
    /// Stops accepting connections and shuts the server down.
    Shutdown,
    /// Loads/generates a dataset and registers it under `name`.
    Register { name: String, source: GraphSource },
    /// Runs a job on a registered dataset.
    Job {
        dataset: String,
        engine: EngineChoice,
        job: WireJob,
        /// Admission-to-completion deadline; exceeded jobs fail with
        /// `"error": "deadline exceeded"`.
        timeout_ms: Option<u64>,
        /// Skip the result cache for this call (still records stats).
        nocache: bool,
        /// How many top-valued vertices to include in the reply.
        top_k: usize,
        /// Include the full value vector (large!) in the reply.
        include_values: bool,
        /// Trace this job: the reply carries a `trace_id` whose span tree
        /// the `trace` op can fetch afterwards.
        trace: bool,
    },
    /// Fetches the span tree recorded for an earlier traced job.
    Trace { trace_id: u64 },
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let id = v.get("id").cloned();
        let op_name =
            v.get("op").and_then(Json::as_str).ok_or("request requires a string 'op' field")?;
        let op = match op_name {
            "ping" => Op::Ping,
            "list" => Op::List,
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            "register" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("register requires a 'name' field")?;
                if name.is_empty() || name.len() > 128 {
                    return Err("dataset name must be 1..=128 characters".to_string());
                }
                let source =
                    GraphSource::from_json(v.get("source").ok_or("register requires 'source'")?)?;
                Op::Register { name: name.to_string(), source }
            }
            "job" => {
                let dataset = v
                    .get("dataset")
                    .and_then(Json::as_str)
                    .ok_or("job requires a 'dataset' field")?
                    .to_string();
                let engine = match v.get("engine") {
                    None => EngineChoice::Fixed(EngineKind::Ihtl),
                    Some(e) => engine_from_str(e.as_str().ok_or("'engine' must be a string")?)?,
                };
                let job = WireJob::from_json(&v)?;
                let timeout_ms = v.get("timeout_ms").and_then(Json::as_u64);
                let nocache = v.get("nocache").and_then(Json::as_bool).unwrap_or(false);
                let top_k = v.get("top_k").and_then(Json::as_u64).unwrap_or(0).min(1024) as usize;
                let include_values =
                    v.get("include_values").and_then(Json::as_bool).unwrap_or(false);
                let trace = v.get("trace").and_then(Json::as_bool).unwrap_or(false);
                Op::Job { dataset, engine, job, timeout_ms, nocache, top_k, include_values, trace }
            }
            "trace" => {
                let trace_id = v
                    .get("trace_id")
                    .and_then(Json::as_u64)
                    .ok_or("trace requires a numeric 'trace_id' field")?;
                Op::Trace { trace_id }
            }
            other => return Err(format!("unknown op '{other}'")),
        };
        Ok(Request { id, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ping_with_id() {
        let r = Request::parse("{\"op\":\"ping\",\"id\":7}").unwrap();
        assert_eq!(r.op, Op::Ping);
        assert_eq!(r.id, Some(Json::Num(7.0)));
    }

    #[test]
    fn parses_register_rmat() {
        let r = Request::parse(
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"rmat\",\"scale\":10,\
             \"edges\":5000,\"seed\":3}}",
        )
        .unwrap();
        match r.op {
            Op::Register { name, source } => {
                assert_eq!(name, "g");
                assert_eq!(source, GraphSource::Rmat { scale: 10, edges: 5000, seed: 3 });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_job_with_defaults() {
        let r = Request::parse("{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\"}").unwrap();
        match r.op {
            Op::Job { dataset, engine, job, timeout_ms, nocache, top_k, include_values, trace } => {
                assert_eq!(dataset, "g");
                assert_eq!(engine, EngineChoice::Fixed(EngineKind::Ihtl));
                assert_eq!(job, WireJob::Analytic(JobSpec::PageRank { iters: 20, seed: None }));
                assert_eq!(timeout_ms, None);
                assert!(!nocache);
                assert_eq!(top_k, 0);
                assert!(!include_values);
                assert!(!trace);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_traced_job_and_trace_fetch() {
        let r = Request::parse(
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"trace\":true}",
        )
        .unwrap();
        match r.op {
            Op::Job { trace, .. } => assert!(trace),
            other => panic!("{other:?}"),
        }
        let r = Request::parse("{\"op\":\"trace\",\"trace_id\":17}").unwrap();
        assert_eq!(r.op, Op::Trace { trace_id: 17 });
        assert!(Request::parse("{\"op\":\"trace\"}").is_err());
    }

    #[test]
    fn engine_names_roundtrip() {
        for kind in EngineKind::all() {
            assert_eq!(engine_from_str(engine_wire_name(kind)).unwrap(), EngineChoice::Fixed(kind));
        }
        assert_eq!(engine_from_str("auto").unwrap(), EngineChoice::Auto);
        assert_eq!(EngineChoice::Auto.wire_name(), "auto");
        assert_eq!(EngineChoice::Fixed(EngineKind::Pb).wire_name(), "pb");
        assert!(engine_from_str("gpu").is_err());
    }

    #[test]
    fn unknown_engine_error_lists_valid_names() {
        let err = engine_from_str("gpu").unwrap_err();
        for name in [
            "ihtl",
            "pull_grind",
            "pull_graphit",
            "pull_galois",
            "push_grind",
            "push_graphit",
            "pb",
            "hybrid",
            "auto",
        ] {
            assert!(err.contains(name), "error should list '{name}': {err}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            "{\"op\":\"warp\"}",
            "{\"op\":\"register\",\"name\":\"g\"}",
            "{\"op\":\"register\",\"name\":\"\",\"source\":{\"type\":\"suite\",\"key\":\"x\"}}",
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"quantum\"}",
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"engine\":\"gpu\"}",
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"rmat\",\"scale\":60}}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn canonical_job_strings_distinguish_params() {
        let a = WireJob::Analytic(JobSpec::PageRank { iters: 20, seed: None }).canonical();
        let b = WireJob::Analytic(JobSpec::PageRank { iters: 21, seed: None }).canonical();
        let c = WireJob::Compare { iters: 20 }.canonical();
        assert!(a != b && a != c && b != c);
        let d = WireJob::Analytic(JobSpec::PageRank { iters: 20, seed: Some(4) }).canonical();
        assert_ne!(a, d);
        assert!(!WireJob::Sleep { ms: 5 }.cacheable());
        assert!(WireJob::Compare { iters: 2 }.cacheable());
    }

    #[test]
    fn parses_optional_seed_and_source() {
        let r =
            Request::parse("{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"seed\":9}")
                .unwrap();
        match r.op {
            Op::Job { job, .. } => {
                assert_eq!(job, WireJob::Analytic(JobSpec::PageRank { iters: 20, seed: Some(9) }));
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse(
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"spmv\",\"iters\":3,\"source\":2}",
        )
        .unwrap();
        match r.op {
            Op::Job { job, .. } => {
                assert_eq!(job, WireJob::Analytic(JobSpec::SpmvSum { iters: 3, source: Some(2) }));
            }
            other => panic!("{other:?}"),
        }
        assert!(Request::parse(
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"seed\":5000000000}",
        )
        .is_err());
    }

    #[test]
    fn rejects_oversized_rmat_edges_instead_of_clamping() {
        let big = "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"rmat\",\
                   \"scale\":10,\"edges\":2000000000}}";
        let err = Request::parse(big).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(Request::parse(
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"rmat\",\"scale\":10,\
             \"edges\":0}}",
        )
        .is_err());
    }
}
