//! Wire protocol: request parsing and the request/reply vocabulary.
//!
//! Transport is line-delimited JSON over TCP: one request object per line,
//! one reply object per line, in order. Every request carries an `op`; the
//! optional `id` is echoed verbatim in the reply so clients can match
//! pipelined replies. Replies always carry `"ok": true|false`; failures add
//! `"error"` with a human-readable message and keep the connection open.
//! See DESIGN.md for the full grammar.

use ihtl_apps::{EngineKind, JobSpec};

use crate::json::Json;

/// Where a registered dataset's graph comes from.
#[derive(Clone, Debug, PartialEq)]
pub enum GraphSource {
    /// Seeded R-MAT (social profile) generated in-process.
    Rmat { scale: u32, edges: usize, seed: u64 },
    /// A named spec from the generator suite (`suite` / `suite_small` keys).
    Suite { key: String },
    /// Whitespace-separated `src dst` text file (`#` comments).
    EdgeListFile { path: String },
    /// A saved `IHTLGRPH` binary graph image.
    GraphImage { path: String },
    /// A saved `IHTLBLK2` preprocessed iHTL image. Only the iHTL engine can
    /// serve such a dataset (the raw graph is not recoverable from it).
    IhtlImage { path: String },
    /// Destination-range shard `index` of `count` over a base source: the
    /// worker loads (or generates) the base graph, keeps only the edges
    /// whose destination falls in its deterministic edge-balanced range,
    /// and serves that subgraph under the global vertex space. Sent by the
    /// placement router, one shard per worker.
    Shard { index: usize, count: usize, base: Box<GraphSource> },
}

impl GraphSource {
    /// Stable description used for duplicate-registration detection and the
    /// `list` reply.
    pub fn describe(&self) -> String {
        match self {
            GraphSource::Rmat { scale, edges, seed } => {
                format!("rmat:scale={scale}:edges={edges}:seed={seed}")
            }
            GraphSource::Suite { key } => format!("suite:{key}"),
            GraphSource::EdgeListFile { path } => format!("edgelist:{path}"),
            GraphSource::GraphImage { path } => format!("graph-image:{path}"),
            GraphSource::IhtlImage { path } => format!("ihtl-image:{path}"),
            GraphSource::Shard { index, count, base } => {
                format!("shard:{index}/{count}:{}", base.describe())
            }
        }
    }

    /// Renders the source back to its wire form (inverse of `from_json`).
    /// The placement router parses a base source off its own wire and
    /// re-serializes it inside per-worker shard `register` requests.
    pub fn to_json(&self) -> Json {
        match self {
            GraphSource::Rmat { scale, edges, seed } => Json::obj([
                ("type", Json::from("rmat")),
                ("scale", Json::from(*scale)),
                ("edges", Json::from(*edges)),
                ("seed", Json::from(*seed)),
            ]),
            GraphSource::Suite { key } => {
                Json::obj([("type", Json::from("suite")), ("key", Json::from(key.clone()))])
            }
            GraphSource::EdgeListFile { path } => {
                Json::obj([("type", Json::from("edgelist")), ("path", Json::from(path.clone()))])
            }
            GraphSource::GraphImage { path } => {
                Json::obj([("type", Json::from("graph-image")), ("path", Json::from(path.clone()))])
            }
            GraphSource::IhtlImage { path } => {
                Json::obj([("type", Json::from("ihtl-image")), ("path", Json::from(path.clone()))])
            }
            GraphSource::Shard { index, count, base } => Json::obj([
                ("type", Json::from("shard")),
                ("index", Json::from(*index)),
                ("count", Json::from(*count)),
                ("base", base.to_json()),
            ]),
        }
    }

    fn from_json(v: &Json) -> Result<GraphSource, String> {
        let kind =
            v.get("type").and_then(Json::as_str).ok_or("source requires a string 'type' field")?;
        let path = || {
            v.get("path")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or(format!("source type '{kind}' requires a 'path' field"))
        };
        match kind {
            "rmat" => {
                let scale = v.get("scale").and_then(Json::as_u64).ok_or("rmat requires 'scale'")?;
                if !(1..=24).contains(&scale) {
                    return Err(format!("rmat scale {scale} out of range 1..=24"));
                }
                let edges = v.get("edges").and_then(Json::as_u64).unwrap_or(8 << scale);
                // Reject out-of-range sizes instead of silently clamping:
                // the caller asked for a graph we will not build, so tell
                // them rather than hand back a smaller one.
                if edges == 0 || edges > 1 << 30 {
                    return Err(format!("rmat edges {edges} out of range 1..=2^30"));
                }
                let edges = edges as usize;
                let seed = v.get("seed").and_then(Json::as_u64).unwrap_or(1);
                Ok(GraphSource::Rmat { scale: scale as u32, edges, seed })
            }
            "suite" => {
                let key = v.get("key").and_then(Json::as_str).ok_or("suite requires 'key'")?;
                Ok(GraphSource::Suite { key: key.to_string() })
            }
            "edgelist" => Ok(GraphSource::EdgeListFile { path: path()? }),
            "graph-image" => Ok(GraphSource::GraphImage { path: path()? }),
            "ihtl-image" => Ok(GraphSource::IhtlImage { path: path()? }),
            "shard" => {
                let index =
                    v.get("index").and_then(Json::as_u64).ok_or("shard requires 'index'")?;
                let count =
                    v.get("count").and_then(Json::as_u64).ok_or("shard requires 'count'")?;
                if !(1..=64).contains(&count) {
                    return Err(format!("shard count {count} out of range 1..=64"));
                }
                if index >= count {
                    return Err(format!("shard index {index} out of range for count {count}"));
                }
                let base = GraphSource::from_json(v.get("base").ok_or("shard requires 'base'")?)?;
                match base {
                    GraphSource::Shard { .. } => {
                        Err("shard base must not itself be a shard".to_string())
                    }
                    GraphSource::IhtlImage { .. } => {
                        Err("shard base must carry the raw graph (ihtl-image does not)".to_string())
                    }
                    base => Ok(GraphSource::Shard {
                        index: index as usize,
                        count: count as usize,
                        base: Box::new(base),
                    }),
                }
            }
            other => Err(format!("unknown source type '{other}'")),
        }
    }
}

/// What a `job` request asks to run.
#[derive(Clone, Debug, PartialEq)]
pub enum WireJob {
    /// One analytic via the `ihtl-apps` job dispatcher.
    Analytic(JobSpec),
    /// Run PageRank on every engine and report agreement + per-engine
    /// timings (the paper's Figure 7 comparison as a service call).
    Compare { iters: usize },
    /// Debug job: occupy an executor for `ms` milliseconds. Used by tests
    /// to saturate the admission queue deterministically.
    Sleep { ms: u64 },
}

impl WireJob {
    /// Cache-key fragment; equal jobs produce equal strings.
    pub fn canonical(&self) -> String {
        match self {
            WireJob::Analytic(spec) => spec.canonical(),
            WireJob::Compare { iters } => format!("compare:iters={iters}"),
            WireJob::Sleep { ms } => format!("sleep:ms={ms}"),
        }
    }

    /// Whether results of this job may be cached (sleep is a timing tool;
    /// caching it would defeat its purpose).
    pub fn cacheable(&self) -> bool {
        !matches!(self, WireJob::Sleep { .. })
    }

    fn from_json(v: &Json) -> Result<WireJob, String> {
        let kind = v.get("kind").and_then(Json::as_str).ok_or("job requires a 'kind' field")?;
        // Reject out-of-range values instead of silently clamping, matching
        // the rmat `edges` precedent: the caller asked for work we will not
        // do, so tell them rather than quietly run something else.
        let ranged = |field: &str, default: u64, lo: u64, hi: u64| -> Result<u64, String> {
            match v.get(field) {
                None => Ok(default),
                Some(x) => {
                    let x = x
                        .as_u64()
                        .ok_or_else(|| format!("'{field}' must be a non-negative integer"))?;
                    if (lo..=hi).contains(&x) {
                        Ok(x)
                    } else {
                        Err(format!("{field} {x} out of range {lo}..={hi}"))
                    }
                }
            }
        };
        let iters = ranged("iters", 20, 1, 10_000)? as usize;
        let max_rounds = ranged("max_rounds", 256, 1, 100_000)? as usize;
        let source = v.get("source").and_then(Json::as_u64).unwrap_or(0);
        if source > u32::MAX as u64 {
            return Err(format!("source vertex {source} exceeds u32"));
        }
        let source = source as u32;
        // Optional per-query parameters: absent means the classic variant
        // (uniform teleport / all-ones start), so old requests and their
        // cache keys are unchanged.
        let opt_u32 = |field: &str| -> Result<Option<u32>, String> {
            match v.get(field).and_then(Json::as_u64) {
                None => Ok(None),
                Some(x) if x <= u32::MAX as u64 => Ok(Some(x as u32)),
                Some(x) => Err(format!("{field} vertex {x} exceeds u32")),
            }
        };
        match kind {
            "pagerank" => {
                Ok(WireJob::Analytic(JobSpec::PageRank { iters, seed: opt_u32("seed")? }))
            }
            "spmv" => Ok(WireJob::Analytic(JobSpec::SpmvSum { iters, source: opt_u32("source")? })),
            "sssp" => Ok(WireJob::Analytic(JobSpec::Sssp { source, max_rounds })),
            "cc" => Ok(WireJob::Analytic(JobSpec::Components { max_rounds })),
            "bfs" => Ok(WireJob::Analytic(JobSpec::Bfs { source })),
            "compare" => Ok(WireJob::Compare { iters }),
            "sleep" => Ok(WireJob::Sleep { ms: ranged("ms", 100, 0, 60_000)? }),
            other => Err(format!("unknown job kind '{other}'")),
        }
    }
}

/// What the `engine` field of a job request asks for: a specific engine,
/// or the server-side per-dataset adaptive choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineChoice {
    /// Run exactly this engine.
    Fixed(EngineKind),
    /// Let the registry's memoized scoring rule pick the engine for the
    /// dataset (DESIGN.md §11). The job reply's `engine_selected` field
    /// reports what ran.
    Auto,
}

impl EngineChoice {
    /// The choice's wire name (what the client wrote in `engine`).
    pub fn wire_name(self) -> &'static str {
        match self {
            EngineChoice::Fixed(kind) => engine_wire_name(kind),
            EngineChoice::Auto => "auto",
        }
    }
}

/// Parses an engine name as it appears on the wire. Unknown names report
/// the full valid vocabulary, which tracks `EngineKind::all()` by
/// construction.
pub fn engine_from_str(s: &str) -> Result<EngineChoice, String> {
    if s == "auto" {
        return Ok(EngineChoice::Auto);
    }
    for kind in EngineKind::all() {
        if engine_wire_name(kind) == s {
            return Ok(EngineChoice::Fixed(kind));
        }
    }
    let mut valid: Vec<&'static str> =
        EngineKind::all().iter().map(|&k| engine_wire_name(k)).collect();
    valid.push("auto");
    Err(format!("unknown engine '{s}' (valid engines: {})", valid.join(", ")))
}

/// Wire name of an engine kind (inverse of [`engine_from_str`]).
pub fn engine_wire_name(kind: EngineKind) -> &'static str {
    match kind {
        EngineKind::Ihtl => "ihtl",
        EngineKind::PullGraphGrind => "pull_grind",
        EngineKind::PullGraphIt => "pull_graphit",
        EngineKind::PullGalois => "pull_galois",
        EngineKind::PushGraphGrind => "push_grind",
        EngineKind::PushGraphIt => "push_graphit",
        EngineKind::Pb => "pb",
        EngineKind::Hybrid => "hybrid",
    }
}

/// A parsed request line.
#[derive(Clone, Debug, PartialEq)]
pub struct Request {
    /// Echoed in the reply if present.
    pub id: Option<Json>,
    pub op: Op,
}

/// The operations the server understands.
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Liveness check; replies immediately from the connection thread.
    Ping,
    /// Lists registered datasets with their sizes.
    List,
    /// Serving counters: queue depth, cache hits, latency histogram,
    /// per-engine ns/edge.
    Stats,
    /// Stops accepting connections and shuts the server down.
    Shutdown,
    /// Loads/generates a dataset and registers it under `name`.
    Register { name: String, source: GraphSource },
    /// Runs a job on a registered dataset.
    Job {
        dataset: String,
        engine: EngineChoice,
        job: WireJob,
        /// Admission-to-completion deadline; exceeded jobs fail with
        /// `"error": "deadline exceeded"`.
        timeout_ms: Option<u64>,
        /// Skip the result cache for this call (still records stats).
        nocache: bool,
        /// How many top-valued vertices to include in the reply.
        top_k: usize,
        /// Include the full value vector (large!) in the reply.
        include_values: bool,
        /// Trace this job: the reply carries a `trace_id` whose span tree
        /// the `trace` op can fetch afterwards.
        trace: bool,
    },
    /// Fetches the span tree recorded for an earlier traced job.
    Trace { trace_id: u64 },
    /// One monoid edge sweep `y = A ⊙ x` on a registered dataset, used by
    /// the placement router to drive a distributed analytic. The vector
    /// travels as f64 *bit patterns* (`u64`s): JSON has no NaN/∞, and bit
    /// patterns routinely exceed 2^53, so exact integers are load-bearing.
    Sweep {
        dataset: String,
        engine: EngineChoice,
        monoid: Monoid,
        view: GraphView,
        xbits: Vec<u64>,
    },
    /// Fetches the dataset's out-degree vector (a shard reports only the
    /// degrees of the edges it kept, so summing across shards recovers the
    /// global vector exactly — integer addition).
    Degrees { dataset: String, view: GraphView },
}

/// Which merge monoid an edge sweep folds with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Monoid {
    /// `y[v] = Σ x[u]` over in-edges — PageRank / SpMV. Identity 0.
    Add,
    /// `y[v] = min(x[u] + 1)` over in-edges — SSSP / CC relaxation.
    /// Identity +∞.
    Min,
}

impl Monoid {
    /// Wire name (`monoid` field of `sweep`).
    pub fn wire_name(self) -> &'static str {
        match self {
            Monoid::Add => "add",
            Monoid::Min => "min",
        }
    }

    fn from_str(s: &str) -> Result<Monoid, String> {
        match s {
            "add" => Ok(Monoid::Add),
            "min" => Ok(Monoid::Min),
            other => Err(format!("unknown monoid '{other}' (valid: add, min)")),
        }
    }
}

/// Which graph view a sweep or degree fetch runs over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphView {
    /// The directed graph as registered.
    Raw,
    /// The symmetrized graph (weak connectivity; what `cc` runs on).
    Sym,
}

impl GraphView {
    /// Wire name (`view` field of `sweep` / `degrees`).
    pub fn wire_name(self) -> &'static str {
        match self {
            GraphView::Raw => "raw",
            GraphView::Sym => "sym",
        }
    }

    fn from_json(v: &Json) -> Result<GraphView, String> {
        match v.get("view").and_then(Json::as_str) {
            None | Some("raw") => Ok(GraphView::Raw),
            Some("sym") => Ok(GraphView::Sym),
            Some(other) => Err(format!("unknown view '{other}' (valid: raw, sym)")),
        }
    }
}

impl Request {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = Json::parse(line).map_err(|e| e.to_string())?;
        let id = v.get("id").cloned();
        let op_name =
            v.get("op").and_then(Json::as_str).ok_or("request requires a string 'op' field")?;
        let op = match op_name {
            "ping" => Op::Ping,
            "list" => Op::List,
            "stats" => Op::Stats,
            "shutdown" => Op::Shutdown,
            "register" => {
                let name = v
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("register requires a 'name' field")?;
                if name.is_empty() || name.len() > 128 {
                    return Err("dataset name must be 1..=128 characters".to_string());
                }
                let source =
                    GraphSource::from_json(v.get("source").ok_or("register requires 'source'")?)?;
                Op::Register { name: name.to_string(), source }
            }
            "job" => {
                let dataset = v
                    .get("dataset")
                    .and_then(Json::as_str)
                    .ok_or("job requires a 'dataset' field")?
                    .to_string();
                let engine = match v.get("engine") {
                    None => EngineChoice::Fixed(EngineKind::Ihtl),
                    Some(e) => engine_from_str(e.as_str().ok_or("'engine' must be a string")?)?,
                };
                let job = WireJob::from_json(&v)?;
                let timeout_ms = v.get("timeout_ms").and_then(Json::as_u64);
                let nocache = v.get("nocache").and_then(Json::as_bool).unwrap_or(false);
                // Reject, don't clamp (see WireJob::from_json).
                let top_k = v.get("top_k").and_then(Json::as_u64).unwrap_or(0);
                if top_k > 1024 {
                    return Err(format!("top_k {top_k} out of range 0..=1024"));
                }
                let top_k = top_k as usize;
                let include_values =
                    v.get("include_values").and_then(Json::as_bool).unwrap_or(false);
                let trace = v.get("trace").and_then(Json::as_bool).unwrap_or(false);
                Op::Job { dataset, engine, job, timeout_ms, nocache, top_k, include_values, trace }
            }
            "trace" => {
                let trace_id = v
                    .get("trace_id")
                    .and_then(Json::as_u64)
                    .ok_or("trace requires a numeric 'trace_id' field")?;
                Op::Trace { trace_id }
            }
            "sweep" => {
                let dataset = v
                    .get("dataset")
                    .and_then(Json::as_str)
                    .ok_or("sweep requires a 'dataset' field")?
                    .to_string();
                let engine = match v.get("engine") {
                    None => EngineChoice::Fixed(EngineKind::Ihtl),
                    Some(e) => engine_from_str(e.as_str().ok_or("'engine' must be a string")?)?,
                };
                let monoid = Monoid::from_str(
                    v.get("monoid").and_then(Json::as_str).ok_or("sweep requires 'monoid'")?,
                )?;
                let view = GraphView::from_json(&v)?;
                let xbits = v
                    .get("xbits")
                    .and_then(Json::as_arr)
                    .ok_or("sweep requires an 'xbits' array")?
                    .iter()
                    .map(|b| b.as_u64().ok_or("xbits entries must be u64 bit patterns"))
                    .collect::<Result<Vec<u64>, _>>()?;
                Op::Sweep { dataset, engine, monoid, view, xbits }
            }
            "degrees" => {
                let dataset = v
                    .get("dataset")
                    .and_then(Json::as_str)
                    .ok_or("degrees requires a 'dataset' field")?
                    .to_string();
                Op::Degrees { dataset, view: GraphView::from_json(&v)? }
            }
            other => return Err(format!("unknown op '{other}'")),
        };
        Ok(Request { id, op })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ping_with_id() {
        let r = Request::parse("{\"op\":\"ping\",\"id\":7}").unwrap();
        assert_eq!(r.op, Op::Ping);
        assert_eq!(r.id, Some(Json::Int(7)));
    }

    #[test]
    fn big_u64_fields_survive_parsing_exactly() {
        // Regression: seed/trace_id used to round through f64 above 2^53.
        let seed = (1u64 << 60) + 1;
        let r = Request::parse(&format!(
            "{{\"op\":\"register\",\"name\":\"g\",\"source\":\
             {{\"type\":\"rmat\",\"scale\":5,\"edges\":100,\"seed\":{seed}}}}}"
        ))
        .unwrap();
        match r.op {
            Op::Register { source, .. } => {
                assert_eq!(source, GraphSource::Rmat { scale: 5, edges: 100, seed });
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse(&format!("{{\"op\":\"trace\",\"trace_id\":{}}}", u64::MAX)).unwrap();
        assert_eq!(r.op, Op::Trace { trace_id: u64::MAX });
    }

    #[test]
    fn rejects_out_of_range_job_params_instead_of_clamping() {
        for (bad, needle) in [
            ("{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"iters\":0}", "iters 0"),
            (
                "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"iters\":10001}",
                "iters 10001",
            ),
            (
                "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"sssp\",\"max_rounds\":100001}",
                "max_rounds 100001",
            ),
            ("{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"sleep\",\"ms\":60001}", "ms 60001"),
            (
                "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"top_k\":1025}",
                "top_k 1025",
            ),
            ("{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"iters\":\"x\"}", "'iters'"),
        ] {
            let err = Request::parse(bad).unwrap_err();
            assert!(err.contains(needle), "{bad} → {err}");
        }
        // The boundary values themselves are accepted.
        for good in [
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"iters\":10000}",
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"top_k\":1024}",
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"sleep\",\"ms\":60000}",
        ] {
            assert!(Request::parse(good).is_ok(), "{good}");
        }
    }

    #[test]
    fn parses_shard_source() {
        let r = Request::parse(
            "{\"op\":\"register\",\"name\":\"g0\",\"source\":{\"type\":\"shard\",\"index\":1,\
             \"count\":3,\"base\":{\"type\":\"rmat\",\"scale\":8,\"edges\":1000,\"seed\":7}}}",
        )
        .unwrap();
        match r.op {
            Op::Register { source, .. } => {
                assert_eq!(
                    source.describe(),
                    "shard:1/3:rmat:scale=8:edges=1000:seed=7",
                    "describe must pin index, count and base"
                );
            }
            other => panic!("{other:?}"),
        }
        // index out of range, nested shards, and engine-only bases reject.
        for bad in [
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"shard\",\"index\":3,\
             \"count\":3,\"base\":{\"type\":\"suite\",\"key\":\"x\"}}}",
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"shard\",\"index\":0,\
             \"count\":2,\"base\":{\"type\":\"shard\",\"index\":0,\"count\":2,\
             \"base\":{\"type\":\"suite\",\"key\":\"x\"}}}}",
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"shard\",\"index\":0,\
             \"count\":2,\"base\":{\"type\":\"ihtl-image\",\"path\":\"x.blk\"}}}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn parses_sweep_and_degrees() {
        let hi = (1u64 << 60) + 1; // bit patterns exceed 2^53 routinely
        let r = Request::parse(&format!(
            "{{\"op\":\"sweep\",\"dataset\":\"g\",\"monoid\":\"min\",\"view\":\"sym\",\
             \"engine\":\"pull_grind\",\"xbits\":[0,{hi}]}}"
        ))
        .unwrap();
        match r.op {
            Op::Sweep { dataset, engine, monoid, view, xbits } => {
                assert_eq!(dataset, "g");
                assert_eq!(engine, EngineChoice::Fixed(EngineKind::PullGraphGrind));
                assert_eq!(monoid, Monoid::Min);
                assert_eq!(view, GraphView::Sym);
                assert_eq!(xbits, vec![0, hi], "bit patterns must be exact");
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse("{\"op\":\"degrees\",\"dataset\":\"g\"}").unwrap();
        assert_eq!(r.op, Op::Degrees { dataset: "g".into(), view: GraphView::Raw });
        for bad in [
            "{\"op\":\"sweep\",\"dataset\":\"g\",\"monoid\":\"max\",\"xbits\":[]}",
            "{\"op\":\"sweep\",\"dataset\":\"g\",\"monoid\":\"add\",\"view\":\"warp\",\
             \"xbits\":[]}",
            "{\"op\":\"sweep\",\"dataset\":\"g\",\"monoid\":\"add\",\"xbits\":[-1]}",
            "{\"op\":\"sweep\",\"dataset\":\"g\",\"monoid\":\"add\"}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn source_to_json_roundtrips() {
        let sources = [
            GraphSource::Rmat { scale: 9, edges: 4096, seed: (1u64 << 60) + 1 },
            GraphSource::Suite { key: "web".to_string() },
            GraphSource::EdgeListFile { path: "/tmp/g.txt".to_string() },
            GraphSource::GraphImage { path: "/tmp/g.ihtl".to_string() },
            GraphSource::Shard {
                index: 2,
                count: 3,
                base: Box::new(GraphSource::Rmat { scale: 8, edges: 1000, seed: 7 }),
            },
        ];
        for src in sources {
            let wire = src.to_json().to_string();
            let back = GraphSource::from_json(&Json::parse(&wire).unwrap()).unwrap();
            assert_eq!(back, src, "{wire}");
        }
    }

    #[test]
    fn parses_register_rmat() {
        let r = Request::parse(
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"rmat\",\"scale\":10,\
             \"edges\":5000,\"seed\":3}}",
        )
        .unwrap();
        match r.op {
            Op::Register { name, source } => {
                assert_eq!(name, "g");
                assert_eq!(source, GraphSource::Rmat { scale: 10, edges: 5000, seed: 3 });
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_job_with_defaults() {
        let r = Request::parse("{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\"}").unwrap();
        match r.op {
            Op::Job { dataset, engine, job, timeout_ms, nocache, top_k, include_values, trace } => {
                assert_eq!(dataset, "g");
                assert_eq!(engine, EngineChoice::Fixed(EngineKind::Ihtl));
                assert_eq!(job, WireJob::Analytic(JobSpec::PageRank { iters: 20, seed: None }));
                assert_eq!(timeout_ms, None);
                assert!(!nocache);
                assert_eq!(top_k, 0);
                assert!(!include_values);
                assert!(!trace);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_traced_job_and_trace_fetch() {
        let r = Request::parse(
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"trace\":true}",
        )
        .unwrap();
        match r.op {
            Op::Job { trace, .. } => assert!(trace),
            other => panic!("{other:?}"),
        }
        let r = Request::parse("{\"op\":\"trace\",\"trace_id\":17}").unwrap();
        assert_eq!(r.op, Op::Trace { trace_id: 17 });
        assert!(Request::parse("{\"op\":\"trace\"}").is_err());
    }

    #[test]
    fn engine_names_roundtrip() {
        for kind in EngineKind::all() {
            assert_eq!(engine_from_str(engine_wire_name(kind)).unwrap(), EngineChoice::Fixed(kind));
        }
        assert_eq!(engine_from_str("auto").unwrap(), EngineChoice::Auto);
        assert_eq!(EngineChoice::Auto.wire_name(), "auto");
        assert_eq!(EngineChoice::Fixed(EngineKind::Pb).wire_name(), "pb");
        assert!(engine_from_str("gpu").is_err());
    }

    #[test]
    fn unknown_engine_error_lists_valid_names() {
        let err = engine_from_str("gpu").unwrap_err();
        for name in [
            "ihtl",
            "pull_grind",
            "pull_graphit",
            "pull_galois",
            "push_grind",
            "push_graphit",
            "pb",
            "hybrid",
            "auto",
        ] {
            assert!(err.contains(name), "error should list '{name}': {err}");
        }
    }

    #[test]
    fn rejects_malformed_requests() {
        for bad in [
            "not json",
            "{\"op\":\"warp\"}",
            "{\"op\":\"register\",\"name\":\"g\"}",
            "{\"op\":\"register\",\"name\":\"\",\"source\":{\"type\":\"suite\",\"key\":\"x\"}}",
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"quantum\"}",
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"engine\":\"gpu\"}",
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"rmat\",\"scale\":60}}",
        ] {
            assert!(Request::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn canonical_job_strings_distinguish_params() {
        let a = WireJob::Analytic(JobSpec::PageRank { iters: 20, seed: None }).canonical();
        let b = WireJob::Analytic(JobSpec::PageRank { iters: 21, seed: None }).canonical();
        let c = WireJob::Compare { iters: 20 }.canonical();
        assert!(a != b && a != c && b != c);
        let d = WireJob::Analytic(JobSpec::PageRank { iters: 20, seed: Some(4) }).canonical();
        assert_ne!(a, d);
        assert!(!WireJob::Sleep { ms: 5 }.cacheable());
        assert!(WireJob::Compare { iters: 2 }.cacheable());
    }

    #[test]
    fn parses_optional_seed_and_source() {
        let r =
            Request::parse("{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"seed\":9}")
                .unwrap();
        match r.op {
            Op::Job { job, .. } => {
                assert_eq!(job, WireJob::Analytic(JobSpec::PageRank { iters: 20, seed: Some(9) }));
            }
            other => panic!("{other:?}"),
        }
        let r = Request::parse(
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"spmv\",\"iters\":3,\"source\":2}",
        )
        .unwrap();
        match r.op {
            Op::Job { job, .. } => {
                assert_eq!(job, WireJob::Analytic(JobSpec::SpmvSum { iters: 3, source: Some(2) }));
            }
            other => panic!("{other:?}"),
        }
        assert!(Request::parse(
            "{\"op\":\"job\",\"dataset\":\"g\",\"kind\":\"pagerank\",\"seed\":5000000000}",
        )
        .is_err());
    }

    #[test]
    fn rejects_oversized_rmat_edges_instead_of_clamping() {
        let big = "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"rmat\",\
                   \"scale\":10,\"edges\":2000000000}}";
        let err = Request::parse(big).unwrap_err();
        assert!(err.contains("out of range"), "{err}");
        assert!(Request::parse(
            "{\"op\":\"register\",\"name\":\"g\",\"source\":{\"type\":\"rmat\",\"scale\":10,\
             \"edges\":0}}",
        )
        .is_err());
    }
}
