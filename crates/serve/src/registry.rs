//! Graph registry: named datasets, loaded once, served forever.
//!
//! Each dataset is loaded or generated exactly once and then held as an
//! immutable `Arc<Graph>` snapshot. The expensive derived structures are
//! built lazily and memoised per dataset:
//!
//! * the preprocessed [`IhtlGraph`] (the paper's Table 2 preprocessing cost
//!   — paid once per dataset, amortised over every subsequent request, the
//!   §4.2 argument applied to serving);
//! * the symmetrized graph (for weakly-connected components);
//! * a checkout pool of ready engines per (engine kind, symmetrized) pair,
//!   so concurrent requests reuse scratch buffers instead of re-running
//!   engine preprocessing per call.
//!
//! Datasets registered from an `IHTLBLK2` image have *no* raw graph — only
//! the iHTL engine can serve them, and jobs needing the raw or symmetrized
//! graph (BFS, CC) or a baseline engine report a clear error.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use ihtl_apps::{build_engine_shared, ihtl_engine_from_shared, EngineKind, SpmvEngine};
use ihtl_core::io::load_ihtl;
use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_gen::{suite, suite_small};
use ihtl_graph::stats::{engine_features_llc, pick_engine, EnginePick};
use ihtl_graph::{EdgeList, Graph};

use crate::proto::GraphSource;

/// Engine pool key: which strategy, and whether it runs over the
/// symmetrized graph.
type EngineKey = (&'static str, bool);

fn engine_key(kind: EngineKind, symmetrized: bool) -> EngineKey {
    (crate::proto::engine_wire_name(kind), symmetrized)
}

/// One registered dataset and its memoised derived structures.
pub struct Dataset {
    pub name: String,
    pub source_desc: String,
    /// `None` for datasets restored from a preprocessed iHTL image.
    graph: Option<Arc<Graph>>,
    ihtl: OnceLock<Arc<IhtlGraph>>,
    sym: OnceLock<Arc<Graph>>,
    engines: Mutex<HashMap<EngineKey, Vec<Box<dyn SpmvEngine + Send>>>>,
    /// Memoised `auto` engine decision, indexed by `symmetrized as usize`.
    /// The structural features don't change (datasets are immutable), so
    /// the scoring rule runs at most once per (dataset, symmetrized).
    auto_choice: [OnceLock<EngineKind>; 2],
    pub n_vertices: usize,
    pub n_edges: usize,
    /// Wall-clock seconds spent loading/generating at registration.
    pub load_seconds: f64,
}

impl Dataset {
    /// The raw graph, when this dataset has one.
    pub fn graph(&self) -> Option<Arc<Graph>> {
        self.graph.clone()
    }

    /// The preprocessed iHTL graph, building it on first use.
    fn ihtl_graph(&self, cfg: &IhtlConfig) -> Result<Arc<IhtlGraph>, String> {
        match (self.ihtl.get(), &self.graph) {
            (Some(ih), _) => Ok(Arc::clone(ih)),
            (None, Some(g)) => {
                Ok(Arc::clone(self.ihtl.get_or_init(|| Arc::new(IhtlGraph::build(g, cfg)))))
            }
            (None, None) => Err(format!(
                "dataset '{}' has no graph and no iHTL image (internal inconsistency)",
                self.name
            )),
        }
    }

    /// The symmetrized graph (for CC), building it on first use.
    fn sym_graph(&self) -> Result<Arc<Graph>, String> {
        let g = self.graph.as_ref().ok_or_else(|| {
            format!(
                "dataset '{}' was registered from an iHTL image; the raw graph is unavailable \
                 (symmetrization impossible)",
                self.name
            )
        })?;
        Ok(Arc::clone(self.sym.get_or_init(|| Arc::new(ihtl_apps::components::symmetrize(g)))))
    }

    /// Checks out an engine (reusing a pooled one if available), runs `f`,
    /// and returns the engine to the pool.
    pub fn with_engine<R>(
        &self,
        kind: EngineKind,
        symmetrized: bool,
        cfg: &IhtlConfig,
        f: impl FnOnce(&mut dyn SpmvEngine) -> R,
    ) -> Result<R, String> {
        let key = engine_key(kind, symmetrized);
        let pooled = crate::lock_ok(&self.engines).get_mut(&key).and_then(Vec::pop);
        let mut engine = match pooled {
            Some(e) => e,
            None => self.build_engine(kind, symmetrized, cfg)?,
        };
        let out = f(engine.as_mut());
        crate::lock_ok(&self.engines).entry(key).or_default().push(engine);
        Ok(out)
    }

    /// Resolves the `auto` engine choice for this dataset: computes the
    /// structural features once and feeds them through the transparent
    /// scoring rule in `ihtl_graph::stats` (validated offline against the
    /// cache-simulator replays — see DESIGN.md §11). The configured cache
    /// budget sizes the hub buffers; residency is judged against the
    /// machine's detected last-level cache, the same split the bench
    /// matrix uses. Image-only datasets have no raw graph to featurize,
    /// and only the iHTL engine can serve them anyway, so they resolve to
    /// iHTL.
    pub fn auto_engine(&self, symmetrized: bool, cfg: &IhtlConfig) -> Result<EngineKind, String> {
        let cell = &self.auto_choice[usize::from(symmetrized)];
        if let Some(&kind) = cell.get() {
            return Ok(kind);
        }
        let graph = if symmetrized { Some(self.sym_graph()?) } else { self.graph() };
        let kind = *cell.get_or_init(|| {
            let _span = ihtl_trace::span("auto_select");
            let Some(g) = graph else {
                return EngineKind::Ihtl;
            };
            let (_, llc) = ihtl_parallel::cache_sizes();
            let f = engine_features_llc(
                &g,
                cfg.cache_budget_bytes,
                llc.max(cfg.cache_budget_bytes),
                cfg.vertex_data_bytes,
            );
            match pick_engine(&f, ihtl_parallel::num_threads()) {
                EnginePick::Pull => EngineKind::PullGraphGrind,
                EnginePick::Ihtl => EngineKind::Ihtl,
                EnginePick::Pb => EngineKind::Pb,
                EnginePick::Hybrid => EngineKind::Hybrid,
            }
        });
        Ok(kind)
    }

    /// The memoised `auto` decision for (plain, symmetrized), without
    /// forcing a computation — `None` until some job asked for `auto`.
    pub fn auto_decisions(&self) -> [Option<EngineKind>; 2] {
        let [plain, sym] = &self.auto_choice;
        [plain.get().copied(), sym.get().copied()]
    }

    fn build_engine(
        &self,
        kind: EngineKind,
        symmetrized: bool,
        cfg: &IhtlConfig,
    ) -> Result<Box<dyn SpmvEngine + Send>, String> {
        if symmetrized {
            // iHTL over the symmetrized graph would memoise the wrong
            // IhtlGraph; build through the generic path instead.
            return Ok(build_engine_shared(kind, self.sym_graph()?, cfg));
        }
        match (kind, &self.graph) {
            (EngineKind::Ihtl, _) => Ok(Box::new(ihtl_engine_from_shared(self.ihtl_graph(cfg)?))),
            (_, Some(g)) => Ok(build_engine_shared(kind, Arc::clone(g), cfg)),
            (_, None) => Err(format!(
                "dataset '{}' was registered from an iHTL image; only the 'ihtl' engine can \
                 serve it",
                self.name
            )),
        }
    }
}

/// The registry: name → dataset, plus the iHTL configuration every build
/// uses (one config per server keeps cache keys meaningful).
pub struct Registry {
    cfg: IhtlConfig,
    map: RwLock<HashMap<String, Arc<Dataset>>>,
}

impl Registry {
    pub fn new(cfg: IhtlConfig) -> Registry {
        Registry { cfg, map: RwLock::new(HashMap::new()) }
    }

    /// The iHTL configuration used for every engine build.
    pub fn cfg(&self) -> &IhtlConfig {
        &self.cfg
    }

    /// Looks up a registered dataset.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        crate::read_ok(&self.map).get(name).cloned()
    }

    /// All datasets, sorted by name (for `list`).
    pub fn list(&self) -> Vec<Arc<Dataset>> {
        let mut v: Vec<_> = crate::read_ok(&self.map).values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Loads/generates `source` and registers it as `name`. Re-registering
    /// the same name with the same source is an idempotent no-op; with a
    /// different source it is an error (datasets are immutable).
    pub fn register(&self, name: &str, source: &GraphSource) -> Result<Arc<Dataset>, String> {
        let desc = source.describe();
        if let Some(existing) = self.get(name) {
            return if existing.source_desc == desc {
                Ok(existing)
            } else {
                Err(format!(
                    "dataset '{name}' already registered from {} (asked for {desc})",
                    existing.source_desc
                ))
            };
        }
        // Load outside the write lock: generation can take seconds and
        // must not block lookups for running jobs.
        // lint:allow(R4): load_seconds is reported registration metadata
        let t = Instant::now();
        let loaded = load_source(source)?;
        let load_seconds = t.elapsed().as_secs_f64();
        let (n_vertices, n_edges) = match &loaded {
            Loaded::Raw(g) => (g.n_vertices(), g.n_edges()),
            Loaded::Image(ih) => (ih.n_vertices(), ih.n_edges()),
        };
        let (graph, ihtl) = match loaded {
            Loaded::Raw(g) => (Some(g), None),
            Loaded::Image(ih) => (None, Some(ih)),
        };
        let ds = Arc::new(Dataset {
            name: name.to_string(),
            source_desc: desc.clone(),
            graph,
            ihtl: {
                let cell = OnceLock::new();
                if let Some(ih) = ihtl {
                    let _ = cell.set(ih);
                }
                cell
            },
            sym: OnceLock::new(),
            engines: Mutex::new(HashMap::new()),
            auto_choice: [OnceLock::new(), OnceLock::new()],
            n_vertices,
            n_edges,
            load_seconds,
        });
        let mut map = crate::write_ok(&self.map);
        // Two clients may race to register the same name; first wins, and
        // the loser's load is discarded (idempotent if sources matched).
        if let Some(existing) = map.get(name) {
            return if existing.source_desc == desc {
                Ok(Arc::clone(existing))
            } else {
                Err(format!(
                    "dataset '{name}' already registered from {} (asked for {desc})",
                    existing.source_desc
                ))
            };
        }
        map.insert(name.to_string(), Arc::clone(&ds));
        Ok(ds)
    }
}

/// What loading a source yields: every source produces exactly one of a
/// raw graph or a prebuilt iHTL image — an enum, so `register` cannot see
/// an impossible "neither" state (the panic-free tier bans `unreachable!`).
enum Loaded {
    Raw(Arc<Graph>),
    Image(Arc<IhtlGraph>),
}

/// Loads a graph (or a prebuilt iHTL image) from a source description.
fn load_source(source: &GraphSource) -> Result<Loaded, String> {
    match source {
        GraphSource::Rmat { scale, edges, seed } => {
            let raw = rmat_edges(*scale, *edges, RmatParams::social(), *seed);
            let mut el = EdgeList::from_edges(1usize << scale, raw);
            el.compact_zero_degree();
            Ok(Loaded::Raw(Arc::new(Graph::from_edge_list(&el))))
        }
        GraphSource::Suite { key } => {
            let spec = suite()
                .into_iter()
                .chain(suite_small())
                .find(|s| s.key == key)
                .ok_or_else(|| format!("unknown suite key '{key}'"))?;
            Ok(Loaded::Raw(Arc::new(spec.build())))
        }
        GraphSource::EdgeListFile { path } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading edge list '{path}': {e}"))?;
            Ok(Loaded::Raw(Arc::new(parse_edge_list_text(&text)?)))
        }
        GraphSource::GraphImage { path } => {
            let g = ihtl_graph::io::load_graph(Path::new(path))
                .map_err(|e| format!("loading graph image '{path}': {e}"))?;
            Ok(Loaded::Raw(Arc::new(g)))
        }
        GraphSource::IhtlImage { path } => {
            let ih = load_ihtl(Path::new(path))
                .map_err(|e| format!("loading iHTL image '{path}': {e}"))?;
            Ok(Loaded::Image(Arc::new(ih)))
        }
    }
}

/// Parses whitespace-separated `src dst` pairs; `#` starts a comment line.
/// Vertex count is `max id + 1`.
fn parse_edge_list_text(text: &str) -> Result<Graph, String> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(format!("line {}: expected 'src dst'", lineno + 1));
        };
        if it.next().is_some() {
            return Err(format!("line {}: trailing tokens after 'src dst'", lineno + 1));
        }
        let src: u32 =
            a.parse().map_err(|_| format!("line {}: bad vertex id '{a}'", lineno + 1))?;
        let dst: u32 =
            b.parse().map_err(|_| format!("line {}: bad vertex id '{b}'", lineno + 1))?;
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst));
    }
    if edges.is_empty() {
        return Err("edge list contains no edges".to_string());
    }
    Ok(Graph::from_edges(max_id as usize + 1, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_apps::{run_job, JobSpec};

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 4096, ..IhtlConfig::default() }
    }

    fn rmat_source() -> GraphSource {
        GraphSource::Rmat { scale: 9, edges: 4_000, seed: 7 }
    }

    #[test]
    fn register_lookup_and_idempotency() {
        let r = Registry::new(cfg());
        let ds = r.register("g", &rmat_source()).unwrap();
        assert!(ds.n_vertices > 0 && ds.n_edges > 0);
        assert!(r.get("g").is_some());
        assert!(r.get("h").is_none());
        // Same source: idempotent. Different source: error.
        assert!(r.register("g", &rmat_source()).is_ok());
        let other = GraphSource::Rmat { scale: 9, edges: 4_000, seed: 8 };
        assert!(r.register("g", &other).is_err());
        assert_eq!(r.list().len(), 1);
    }

    #[test]
    fn engine_pool_reuses_instances() {
        let r = Registry::new(cfg());
        let ds = r.register("g", &rmat_source()).unwrap();
        let n = ds.n_vertices;
        let a = ds
            .with_engine(EngineKind::Ihtl, false, r.cfg(), |e| {
                run_job(e, None, &JobSpec::PageRank { iters: 3, seed: None }).unwrap().values
            })
            .unwrap();
        let b = ds
            .with_engine(EngineKind::Ihtl, false, r.cfg(), |e| {
                run_job(e, None, &JobSpec::PageRank { iters: 3, seed: None }).unwrap().values
            })
            .unwrap();
        assert_eq!(a.len(), n);
        // Determinism across checkouts (same pooled engine or a rebuild).
        assert_eq!(a, b);
        // The pool holds exactly one engine afterwards.
        assert_eq!(ds.engines.lock().unwrap().values().map(Vec::len).sum::<usize>(), 1);
    }

    #[test]
    fn symmetrized_engines_serve_components() {
        let r = Registry::new(cfg());
        let ds = r.register("g", &rmat_source()).unwrap();
        let labels = ds
            .with_engine(EngineKind::Ihtl, true, r.cfg(), |e| {
                run_job(e, None, &JobSpec::Components { max_rounds: 64 }).unwrap().values
            })
            .unwrap();
        assert_eq!(labels.len(), ds.n_vertices);
    }

    #[test]
    fn ihtl_image_dataset_serves_only_ihtl() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ihtl_serve_reg_{:?}.blk", std::thread::current().id()));
        {
            let g = ihtl_graph::graph::paper_example_graph();
            let ih = IhtlGraph::build(&g, &IhtlConfig { cache_budget_bytes: 16, ..cfg() });
            ihtl_core::io::save_ihtl(&ih, &path).unwrap();
        }
        let r = Registry::new(IhtlConfig { cache_budget_bytes: 16, ..cfg() });
        let src = GraphSource::IhtlImage { path: path.display().to_string() };
        let ds = r.register("img", &src).unwrap();
        assert!(ds.graph().is_none());
        let ranks = ds
            .with_engine(EngineKind::Ihtl, false, r.cfg(), |e| {
                run_job(e, None, &JobSpec::PageRank { iters: 3, seed: None }).unwrap().values
            })
            .unwrap();
        assert_eq!(ranks.len(), 8);
        // Baselines need the raw graph — clear error, no panic.
        assert!(ds.with_engine(EngineKind::PullGalois, false, r.cfg(), |_| ()).is_err());
        assert!(ds.with_engine(EngineKind::Ihtl, true, r.cfg(), |_| ()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_engine_is_memoized_and_valid() {
        let r = Registry::new(cfg());
        let ds = r.register("g", &rmat_source()).unwrap();
        assert_eq!(ds.auto_decisions(), [None, None]);
        let kind = ds.auto_engine(false, r.cfg()).unwrap();
        // Memoised: the same answer comes back, and stats can observe it.
        assert_eq!(ds.auto_engine(false, r.cfg()).unwrap(), kind);
        assert_eq!(ds.auto_decisions()[0], Some(kind));
        // The chosen engine actually serves jobs.
        let vals = ds
            .with_engine(kind, false, r.cfg(), |e| {
                run_job(e, None, &JobSpec::PageRank { iters: 2, seed: None }).unwrap().values
            })
            .unwrap();
        assert_eq!(vals.len(), ds.n_vertices);
        // The symmetrized decision is tracked independently.
        let sym_kind = ds.auto_engine(true, r.cfg()).unwrap();
        assert_eq!(ds.auto_decisions()[1], Some(sym_kind));
    }

    #[test]
    fn auto_engine_falls_back_to_ihtl_for_image_datasets() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ihtl_serve_auto_{:?}.blk", std::thread::current().id()));
        {
            let g = ihtl_graph::graph::paper_example_graph();
            let ih = IhtlGraph::build(&g, &IhtlConfig { cache_budget_bytes: 16, ..cfg() });
            ihtl_core::io::save_ihtl(&ih, &path).unwrap();
        }
        let r = Registry::new(IhtlConfig { cache_budget_bytes: 16, ..cfg() });
        let src = GraphSource::IhtlImage { path: path.display().to_string() };
        let ds = r.register("img", &src).unwrap();
        assert_eq!(ds.auto_engine(false, r.cfg()).unwrap(), EngineKind::Ihtl);
        // Symmetrized auto needs the raw graph — clean error, no panic.
        assert!(ds.auto_engine(true, r.cfg()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn suite_and_edgelist_sources_load() {
        let r = Registry::new(cfg());
        let ds = r.register("mini", &GraphSource::Suite { key: "mini_social".into() }).unwrap();
        assert!(ds.n_edges > 10_000);
        assert!(r.register("nope", &GraphSource::Suite { key: "zzz".into() }).is_err());

        let dir = std::env::temp_dir();
        let path = dir.join(format!("ihtl_serve_el_{:?}.txt", std::thread::current().id()));
        std::fs::write(&path, "# demo\n0 1\n1 2\n2 0\n").unwrap();
        let ds = r
            .register("el", &GraphSource::EdgeListFile { path: path.display().to_string() })
            .unwrap();
        assert_eq!(ds.n_vertices, 3);
        assert_eq!(ds.n_edges, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_parser_rejects_garbage() {
        assert!(parse_edge_list_text("").is_err());
        assert!(parse_edge_list_text("0 x").is_err());
        assert!(parse_edge_list_text("0 1 2").is_err());
        assert!(parse_edge_list_text("0").is_err());
        let g = parse_edge_list_text("#c\n\n 5 3 \n").unwrap();
        assert_eq!(g.n_vertices(), 6);
    }
}
