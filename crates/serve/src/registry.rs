//! Graph registry: named datasets, loaded once, served with a warm/cold
//! artifact tier.
//!
//! Each dataset is loaded or generated exactly once and then held as an
//! immutable `Arc<Graph>` snapshot. The expensive derived structures are
//! built lazily and memoised per dataset:
//!
//! * the preprocessed [`IhtlGraph`] (the paper's Table 2 preprocessing cost
//!   — paid once per dataset, amortised over every subsequent request, the
//!   §4.2 argument applied to serving) and the [`PbGraph`] binned layout;
//! * the symmetrized graph (for weakly-connected components);
//! * a checkout pool of ready engines per (engine kind, symmetrized) pair,
//!   so concurrent requests reuse scratch buffers instead of re-running
//!   engine preprocessing per call.
//!
//! ## Warm/cold tiering (DESIGN.md §12)
//!
//! The big derived artifacts — the iHTL image and the PB layout — live in
//! per-dataset **warm slots** (`Mutex<Option<Arc<…>>>`). With a durable
//! [`BlockStore`] attached, a cold slot first tries a checksum-verified
//! disk load (keyed by the dataset's content hash and the build config)
//! before rebuilding, and every fresh build is written back — the paper's
//! §4.2 amortisation, across process restarts. With a memory budget
//! configured (`--mem-budget-mb`), the registry accounts the topology bytes
//! of all warm artifacts after each checkout and **demotes** the
//! least-recently-used datasets until under budget: the warm `Arc` is
//! dropped (the store key is enough to get it back), the engine pool is
//! cleared, and a generation bump stops in-flight engines from re-pooling.
//! The next checkout transparently reloads from the store (or rebuilds).
//! Results are bitwise identical across demotion because the on-disk images
//! reproduce the in-memory structures exactly (property-tested in
//! `ihtl-store` and `tests/store_tiering.rs`).
//!
//! Datasets registered from an `IHTLBLK2` image have *no* raw graph — only
//! the iHTL engine can serve them, jobs needing the raw or symmetrized
//! graph (BFS, CC) or a baseline engine report a clear error, and they are
//! never demoted (with no raw graph there is no rebuild path).

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use ihtl_apps::{
    build_engine_shared, ihtl_engine_from_shared, pb_engine_from_shared, EngineKind, SpmvEngine,
};
use ihtl_core::io::load_ihtl;
use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_gen::{suite, suite_small};
use ihtl_graph::shard::{extract_shard, shard_info, shard_ranges, ShardInfo};
use ihtl_graph::stats::{engine_features_llc, pick_engine, EnginePick};
use ihtl_graph::{EdgeList, Graph};
use ihtl_store::{dataset_content_hash, BlockStore, StoreCounters};
use ihtl_traversal::pb::PbGraph;

use crate::proto::GraphSource;

/// Engine pool key: which strategy, and whether it runs over the
/// symmetrized graph.
type EngineKey = (&'static str, bool);

fn engine_key(kind: EngineKind, symmetrized: bool) -> EngineKey {
    (crate::proto::engine_wire_name(kind), symmetrized)
}

/// Placement metadata of a shard-registered dataset: which slice of the
/// base graph's destination space this worker owns. Reported in the
/// `register` reply so the router can build its placement table without a
/// second round-trip.
#[derive(Clone, Copy, Debug)]
pub struct ShardMeta {
    /// Shard index in `0..count`.
    pub index: usize,
    /// Total shard count the base graph was split into.
    pub count: usize,
    /// Owned range, edge count, and boundary-source count.
    pub info: ShardInfo,
}

/// One registered dataset and its memoised derived structures.
pub struct Dataset {
    pub name: String,
    pub source_desc: String,
    /// `None` for datasets restored from a preprocessed iHTL image.
    graph: Option<Arc<Graph>>,
    /// Warm slot for the preprocessed iHTL graph; `None` = cold (rebuilt
    /// or store-loaded on next checkout). Pre-filled and pinned for
    /// image-registered datasets.
    ihtl: Mutex<Option<Arc<IhtlGraph>>>,
    /// Warm slot for the propagation-blocking layout.
    pb: Mutex<Option<Arc<PbGraph>>>,
    sym: OnceLock<Arc<Graph>>,
    engines: Mutex<HashMap<EngineKey, Vec<Box<dyn SpmvEngine + Send>>>>,
    /// Memoised `auto` engine decision, indexed by `symmetrized as usize`.
    /// The structural features don't change (datasets are immutable), so
    /// the scoring rule runs at most once per (dataset, symmetrized).
    auto_choice: [OnceLock<EngineKind>; 2],
    pub n_vertices: usize,
    pub n_edges: usize,
    /// Wall-clock seconds spent loading/generating at registration.
    pub load_seconds: f64,
    /// Content hash of the raw graph's CSR — the store address component.
    /// `None` for image-registered datasets: nothing to hash, no rebuild
    /// path, so the store is bypassed and the warm iHTL slot is pinned.
    dataset_hash: Option<u64>,
    /// Registry LRU clock value at the last engine checkout.
    last_used: AtomicU64,
    /// Bumped by demotion; an engine checked out under an older generation
    /// is dropped instead of re-pooled, so demoted pools can't resurrect
    /// the big structures they hold through their `Arc`s.
    generation: AtomicU64,
    /// `Some` when this dataset is one destination-range shard of a larger
    /// base graph (registered through a `shard` source).
    shard: Option<ShardMeta>,
}

impl Dataset {
    /// The raw graph, when this dataset has one.
    pub fn graph(&self) -> Option<Arc<Graph>> {
        self.graph.clone()
    }

    /// Shard placement metadata, when this dataset is a shard.
    pub fn shard(&self) -> Option<ShardMeta> {
        self.shard
    }

    /// Whether any demotable artifact is currently warm.
    pub fn warm(&self) -> bool {
        crate::lock_ok(&self.ihtl).is_some() || crate::lock_ok(&self.pb).is_some()
    }

    /// Topology bytes of the warm (demotable) artifacts — what the memory
    /// budget meters. The raw `Arc<Graph>` snapshot is excluded: it is the
    /// rebuild source, not a demotable artifact.
    fn resident_artifact_bytes(&self) -> u64 {
        let mut bytes = 0;
        if let Some(ih) = crate::lock_ok(&self.ihtl).as_ref() {
            bytes += ih.topology_bytes();
        }
        if let Some(pb) = crate::lock_ok(&self.pb).as_ref() {
            bytes += pb.topology_bytes();
        }
        bytes
    }

    /// Drops the warm artifacts and the engine pool (demotion to cold).
    /// Callers guarantee a rebuild path exists (`dataset_hash.is_some()`).
    /// The generation bump comes first so an engine in flight observes it
    /// and declines to re-pool.
    fn demote(&self) {
        let _span = ihtl_trace::span("evict");
        // ORDERING: Release — pairs with the Acquire loads in with_engine;
        // an engine that observes the bumped generation also observes the
        // cleared slots and must not re-pool demoted artifacts.
        self.generation.fetch_add(1, Ordering::Release);
        crate::lock_ok(&self.engines).clear();
        *crate::lock_ok(&self.ihtl) = None;
        *crate::lock_ok(&self.pb) = None;
    }

    /// The preprocessed iHTL graph: warm slot, else store load (verified;
    /// corruption quarantines and falls through), else build + write-back.
    /// The slot mutex is held across the whole miss path so concurrent
    /// checkouts build once, like the `OnceLock` this slot replaces.
    fn ihtl_graph(&self, reg: &Registry) -> Result<Arc<IhtlGraph>, String> {
        let mut slot = crate::lock_ok(&self.ihtl);
        if let Some(ih) = slot.as_ref() {
            return Ok(Arc::clone(ih));
        }
        let Some(g) = &self.graph else {
            return Err(format!(
                "dataset '{}' has no graph and no iHTL image (internal inconsistency)",
                self.name
            ));
        };
        let cfg = reg.cfg();
        if let (Some(store), Some(hash)) = (reg.store(), self.dataset_hash) {
            // The ihtl slot is deliberately held across store I/O so
            // concurrent checkouts build/load once (see doc comment above).
            // lint:allow(R6): build-once slot guard; no locks taken under it
            if let Some(ih) = store.load_ihtl(hash, cfg) {
                let ih = Arc::new(ih);
                *slot = Some(Arc::clone(&ih));
                return Ok(ih);
            }
        }
        let ih = Arc::new(IhtlGraph::build(g, cfg));
        if let (Some(store), Some(hash)) = (reg.store(), self.dataset_hash) {
            // Write-back is best-effort: the store is a cache, and serving
            // must not fail over a full or read-only disk.
            // lint:allow(R6): same build-once rationale as the load above.
            let _ = store.save_ihtl(hash, cfg, &ih);
        }
        *slot = Some(Arc::clone(&ih));
        Ok(ih)
    }

    /// The propagation-blocking layout, tiered exactly like
    /// [`Dataset::ihtl_graph`]. The partition count is part of the store
    /// key: the default is machine-dependent, and the bin layout bakes the
    /// source ranges in.
    fn pb_graph(&self, reg: &Registry) -> Result<Arc<PbGraph>, String> {
        let mut slot = crate::lock_ok(&self.pb);
        if let Some(pb) = slot.as_ref() {
            return Ok(Arc::clone(pb));
        }
        let Some(g) = &self.graph else {
            return Err(format!(
                "dataset '{}' was registered from an iHTL image; only the 'ihtl' engine can \
                 serve it",
                self.name
            ));
        };
        let cfg = reg.cfg();
        let parts = ihtl_traversal::pull::default_parts();
        if let (Some(store), Some(hash)) = (reg.store(), self.dataset_hash) {
            // The pb slot is held across store I/O so concurrent
            // checkouts build/load once, like the ihtl slot.
            // lint:allow(R6): build-once slot guard; no locks taken under it
            if let Some(pb) = store.load_pb(hash, cfg, parts) {
                let pb = Arc::new(pb);
                *slot = Some(Arc::clone(&pb));
                return Ok(pb);
            }
        }
        let pb =
            Arc::new(PbGraph::with_parts(g, cfg.cache_budget_bytes, cfg.vertex_data_bytes, parts));
        if let (Some(store), Some(hash)) = (reg.store(), self.dataset_hash) {
            // Best-effort write-back under the build-once slot guard.
            // lint:allow(R6): same build-once rationale as the load above.
            let _ = store.save_pb(hash, cfg, parts, &pb);
        }
        *slot = Some(Arc::clone(&pb));
        Ok(pb)
    }

    /// The symmetrized graph (for CC), building it on first use. Shard
    /// datasets arrive with this slot pre-filled: their symmetrized view is
    /// the matching shard of `symmetrize(base)`, which `symmetrize(shard)`
    /// would get wrong (it would drop reverse edges whose destination falls
    /// outside the owned range — they belong to *other* shards).
    pub fn sym_graph(&self) -> Result<Arc<Graph>, String> {
        let g = self.graph.as_ref().ok_or_else(|| {
            format!(
                "dataset '{}' was registered from an iHTL image; the raw graph is unavailable \
                 (symmetrization impossible)",
                self.name
            )
        })?;
        Ok(Arc::clone(self.sym.get_or_init(|| Arc::new(ihtl_apps::components::symmetrize(g)))))
    }

    /// Checks out an engine (reusing a pooled one if available), runs `f`,
    /// returns the engine to the pool, and lets the registry enforce its
    /// memory budget (possibly demoting colder datasets).
    pub fn with_engine<R>(
        &self,
        kind: EngineKind,
        symmetrized: bool,
        reg: &Registry,
        f: impl FnOnce(&mut dyn SpmvEngine) -> R,
    ) -> Result<R, String> {
        // ORDERING: Relaxed — last_used is an LRU heuristic read under no
        // lock; a stale value only perturbs eviction order, never safety.
        self.last_used.store(reg.tick(), Ordering::Relaxed);
        // ORDERING: Acquire — pairs with demote()'s Release bump; observing
        // the old generation here means any demotion that follows will be
        // seen by the second load below, keeping the re-pool check sound.
        let generation = self.generation.load(Ordering::Acquire);
        let key = engine_key(kind, symmetrized);
        let pooled = crate::lock_ok(&self.engines).get_mut(&key).and_then(Vec::pop);
        let mut engine = match pooled {
            Some(e) => e,
            None => self.build_engine(kind, symmetrized, reg)?,
        };
        let out = f(engine.as_mut());
        // Re-pool only if no demotion ran while we held the engine —
        // otherwise the pool entry would keep the demoted artifacts alive
        // through the engine's `Arc`s, defeating the eviction.
        // ORDERING: Acquire — pairs with demote()'s Release; see above.
        if self.generation.load(Ordering::Acquire) == generation {
            crate::lock_ok(&self.engines).entry(key).or_default().push(engine);
        }
        reg.enforce_budget(&self.name);
        Ok(out)
    }

    /// Resolves the `auto` engine choice for this dataset: computes the
    /// structural features once and feeds them through the transparent
    /// scoring rule in `ihtl_graph::stats` (validated offline against the
    /// cache-simulator replays — see DESIGN.md §11). The configured cache
    /// budget sizes the hub buffers; residency is judged against the
    /// machine's detected last-level cache, the same split the bench
    /// matrix uses. Image-only datasets have no raw graph to featurize,
    /// and only the iHTL engine can serve them anyway, so they resolve to
    /// iHTL.
    pub fn auto_engine(&self, symmetrized: bool, cfg: &IhtlConfig) -> Result<EngineKind, String> {
        let cell = &self.auto_choice[usize::from(symmetrized)];
        if let Some(&kind) = cell.get() {
            return Ok(kind);
        }
        let graph = if symmetrized { Some(self.sym_graph()?) } else { self.graph() };
        let kind = *cell.get_or_init(|| {
            let _span = ihtl_trace::span("auto_select");
            let Some(g) = graph else {
                return EngineKind::Ihtl;
            };
            let (_, llc) = ihtl_parallel::cache_sizes();
            let f = engine_features_llc(
                &g,
                cfg.cache_budget_bytes,
                llc.max(cfg.cache_budget_bytes),
                cfg.vertex_data_bytes,
            );
            match pick_engine(&f, ihtl_parallel::num_threads()) {
                EnginePick::Pull => EngineKind::PullGraphGrind,
                EnginePick::Ihtl => EngineKind::Ihtl,
                EnginePick::Pb => EngineKind::Pb,
                EnginePick::Hybrid => EngineKind::Hybrid,
            }
        });
        Ok(kind)
    }

    /// The memoised `auto` decision for (plain, symmetrized), without
    /// forcing a computation — `None` until some job asked for `auto`.
    pub fn auto_decisions(&self) -> [Option<EngineKind>; 2] {
        let [plain, sym] = &self.auto_choice;
        [plain.get().copied(), sym.get().copied()]
    }

    fn build_engine(
        &self,
        kind: EngineKind,
        symmetrized: bool,
        reg: &Registry,
    ) -> Result<Box<dyn SpmvEngine + Send>, String> {
        if symmetrized {
            // iHTL over the symmetrized graph would memoise the wrong
            // IhtlGraph; build through the generic path instead.
            return Ok(build_engine_shared(kind, self.sym_graph()?, reg.cfg()));
        }
        match (kind, &self.graph) {
            // The three engines whose preprocessing dominates build cost go
            // through the tiered (store-backed, demotable) artifact slots;
            // iHTL and hybrid share one warm IhtlGraph.
            (EngineKind::Ihtl, _) => Ok(Box::new(ihtl_engine_from_shared(self.ihtl_graph(reg)?))),
            (EngineKind::Hybrid, Some(_)) => {
                Ok(Box::new(ihtl_apps::engine::hybrid_engine_from_shared(self.ihtl_graph(reg)?)))
            }
            (EngineKind::Pb, Some(g)) => {
                let out_degrees: Vec<u32> =
                    (0..g.n_vertices() as u32).map(|v| g.out_degree(v) as u32).collect();
                Ok(Box::new(pb_engine_from_shared(self.pb_graph(reg)?, out_degrees)))
            }
            (_, Some(g)) => Ok(build_engine_shared(kind, Arc::clone(g), reg.cfg())),
            (_, None) => Err(format!(
                "dataset '{}' was registered from an iHTL image; only the 'ihtl' engine can \
                 serve it",
                self.name
            )),
        }
    }
}

/// The registry: name → dataset, plus the iHTL configuration every build
/// uses (one config per server keeps cache keys meaningful), the optional
/// durable artifact store, and the optional warm-tier memory budget.
pub struct Registry {
    cfg: IhtlConfig,
    map: RwLock<HashMap<String, Arc<Dataset>>>,
    /// Durable artifact store; `None` = build-only (pre-PR-8 behaviour).
    store: Option<Arc<BlockStore>>,
    /// Warm-artifact byte budget; `None` = never demote.
    mem_budget_bytes: Option<u64>,
    /// Monotone LRU clock, advanced by every engine checkout.
    clock: AtomicU64,
    /// Lifetime demotion count (surfaced by `stats`).
    evictions: AtomicU64,
}

impl Registry {
    pub fn new(cfg: IhtlConfig) -> Registry {
        Registry::with_store(cfg, None, None)
    }

    /// A registry with a durable store and/or a warm-tier memory budget.
    pub fn with_store(
        cfg: IhtlConfig,
        store: Option<Arc<BlockStore>>,
        mem_budget_mb: Option<u64>,
    ) -> Registry {
        Registry {
            cfg,
            map: RwLock::new(HashMap::new()),
            store,
            mem_budget_bytes: mem_budget_mb.map(|mb| mb.saturating_mul(1024 * 1024)),
            clock: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The iHTL configuration used for every engine build.
    pub fn cfg(&self) -> &IhtlConfig {
        &self.cfg
    }

    /// The attached artifact store, if any.
    pub fn store(&self) -> Option<&BlockStore> {
        self.store.as_deref()
    }

    /// Store counters (zeros when no store is attached), for `stats`.
    pub fn store_counters(&self) -> StoreCounters {
        self.store.as_ref().map(|s| s.counters()).unwrap_or_default()
    }

    /// Lifetime demotion count.
    pub fn evictions(&self) -> u64 {
        // ORDERING: Relaxed — monotonic stats counter, no data published.
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total topology bytes of warm (demotable) artifacts across datasets.
    pub fn resident_bytes(&self) -> u64 {
        self.list().iter().map(|d| d.resident_artifact_bytes()).sum()
    }

    /// Advances the LRU clock and returns the new tick.
    fn tick(&self) -> u64 {
        // ORDERING: Relaxed — the clock only orders LRU victims; ties or
        // reordering across threads are harmless to correctness.
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Demotes least-recently-used datasets until the warm tier fits the
    /// budget. `current_name` (the dataset just served) is exempt: it is
    /// the MRU by definition, and demoting it would thrash the next
    /// request on the same dataset. Image-registered datasets are pinned
    /// (no rebuild path). If only pinned/current datasets remain warm, the
    /// tier may stay over budget — correctness over strictness.
    fn enforce_budget(&self, current_name: &str) {
        let Some(budget) = self.mem_budget_bytes else {
            return;
        };
        loop {
            let datasets = self.list();
            let total: u64 = datasets.iter().map(|d| d.resident_artifact_bytes()).sum();
            if total <= budget {
                return;
            }
            let victim = datasets
                .iter()
                .filter(|d| d.dataset_hash.is_some() && d.name != current_name && d.warm())
                // ORDERING: Relaxed — LRU heuristic; see with_engine.
                .min_by_key(|d| d.last_used.load(Ordering::Relaxed));
            let Some(victim) = victim else {
                return;
            };
            victim.demote();
            // ORDERING: Relaxed — stats counter only.
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Looks up a registered dataset.
    pub fn get(&self, name: &str) -> Option<Arc<Dataset>> {
        crate::read_ok(&self.map).get(name).cloned()
    }

    /// All datasets, sorted by name (for `list`).
    pub fn list(&self) -> Vec<Arc<Dataset>> {
        let mut v: Vec<_> = crate::read_ok(&self.map).values().cloned().collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Loads/generates `source` and registers it as `name`. Re-registering
    /// the same name with the same source is an idempotent no-op; with a
    /// different source it is an error (datasets are immutable).
    pub fn register(&self, name: &str, source: &GraphSource) -> Result<Arc<Dataset>, String> {
        let desc = source.describe();
        if let Some(existing) = self.get(name) {
            return if existing.source_desc == desc {
                Ok(existing)
            } else {
                Err(format!(
                    "dataset '{name}' already registered from {} (asked for {desc})",
                    existing.source_desc
                ))
            };
        }
        // Load outside the write lock: generation can take seconds and
        // must not block lookups for running jobs.
        // lint:allow(R4): load_seconds is reported registration metadata
        let t = Instant::now();
        let (loaded, shard_parts) = match source {
            GraphSource::Shard { index, count, base } => {
                let (raw, sym, meta) = self.load_shard(*index, *count, base)?;
                (Loaded::Raw(raw), Some((sym, meta)))
            }
            _ => (load_source(source)?, None),
        };
        let load_seconds = t.elapsed().as_secs_f64();
        let (n_vertices, n_edges) = match &loaded {
            Loaded::Raw(g) => (g.n_vertices(), g.n_edges()),
            Loaded::Image(ih) => (ih.n_vertices(), ih.n_edges()),
        };
        let (graph, ihtl) = match loaded {
            Loaded::Raw(g) => (Some(g), None),
            Loaded::Image(ih) => (None, Some(ih)),
        };
        // The content hash addresses this dataset's artifacts in the store
        // and doubles as the "demotable" marker (image-only datasets have
        // nothing to hash and no rebuild path). A shard hashes its own
        // (extracted) topology, so per-shard iHTL/PB artifacts never alias
        // the base graph's or another shard's.
        let dataset_hash = graph.as_deref().map(dataset_content_hash);
        // Shards pre-fill the sym slot with the shard of symmetrize(base);
        // see `sym_graph` for why lazily symmetrizing the shard is wrong.
        let sym = OnceLock::new();
        if let Some((sym_shard, _)) = &shard_parts {
            let _ = sym.set(Arc::clone(sym_shard));
        }
        let ds = Arc::new(Dataset {
            name: name.to_string(),
            source_desc: desc.clone(),
            graph,
            ihtl: Mutex::new(ihtl),
            pb: Mutex::new(None),
            sym,
            engines: Mutex::new(HashMap::new()),
            auto_choice: [OnceLock::new(), OnceLock::new()],
            n_vertices,
            n_edges,
            load_seconds,
            dataset_hash,
            last_used: AtomicU64::new(0),
            generation: AtomicU64::new(0),
            shard: shard_parts.map(|(_, meta)| meta),
        });
        let mut map = crate::write_ok(&self.map);
        // Two clients may race to register the same name; first wins, and
        // the loser's load is discarded (idempotent if sources matched).
        if let Some(existing) = map.get(name) {
            return if existing.source_desc == desc {
                Ok(Arc::clone(existing))
            } else {
                Err(format!(
                    "dataset '{name}' already registered from {} (asked for {desc})",
                    existing.source_desc
                ))
            };
        }
        map.insert(name.to_string(), Arc::clone(&ds));
        Ok(ds)
    }

    /// Loads the `index`-of-`count` destination-range shard of `base`: the
    /// raw shard plus the matching shard of the *symmetrized* base. Both
    /// are content-addressed store artifacts keyed by the base graph's
    /// hash and `(index, count)`, so a worker restart (or a second worker
    /// assigned the same shard) skips the extraction and symmetrization.
    /// The base graph itself is loaded either way — it is the address —
    /// and dropped once the shards exist.
    fn load_shard(
        &self,
        index: usize,
        count: usize,
        base: &GraphSource,
    ) -> Result<(Arc<Graph>, Arc<Graph>, ShardMeta), String> {
        if count == 0 || index >= count {
            return Err(format!("shard index {index} out of range for count {count}"));
        }
        let base_g = match load_source(base)? {
            Loaded::Raw(g) => g,
            Loaded::Image(_) => {
                return Err("shard sources need a raw base graph, not an iHTL image".to_string())
            }
        };
        // Ranges are a pure function of the base graph's CSC, so every
        // worker (and the router) derives the same partition independently.
        let range = shard_ranges(&base_g, count)[index];
        let info = shard_info(&base_g, range);
        let base_hash = dataset_content_hash(&base_g);
        let raw = self.shard_tier(base_hash, index, count, false, || extract_shard(&base_g, range));
        let sym = self.shard_tier(base_hash, index, count, true, || {
            extract_shard(&ihtl_apps::components::symmetrize(&base_g), range)
        });
        Ok((raw, sym, ShardMeta { index, count, info }))
    }

    /// Store-tiered shard materialisation: verified load, else build +
    /// best-effort write-back (the store is a cache, not the source of
    /// truth — a full disk must not fail registration).
    fn shard_tier(
        &self,
        base_hash: u64,
        index: usize,
        count: usize,
        sym: bool,
        build: impl FnOnce() -> Graph,
    ) -> Arc<Graph> {
        if let Some(g) = self.store().and_then(|s| s.load_shard_graph(base_hash, index, count, sym))
        {
            return Arc::new(g);
        }
        let _span = ihtl_trace::span("shard_extract").with_arg(index as u64);
        let g = Arc::new(build());
        if let Some(store) = self.store() {
            let _ = store.save_shard_graph(base_hash, index, count, sym, &g);
        }
        g
    }
}

/// What loading a source yields: every source produces exactly one of a
/// raw graph or a prebuilt iHTL image — an enum, so `register` cannot see
/// an impossible "neither" state (the panic-free tier bans `unreachable!`).
enum Loaded {
    Raw(Arc<Graph>),
    Image(Arc<IhtlGraph>),
}

/// Loads a graph (or a prebuilt iHTL image) from a source description.
fn load_source(source: &GraphSource) -> Result<Loaded, String> {
    match source {
        GraphSource::Rmat { scale, edges, seed } => {
            let raw = rmat_edges(*scale, *edges, RmatParams::social(), *seed);
            let mut el = EdgeList::from_edges(1usize << scale, raw);
            el.compact_zero_degree();
            Ok(Loaded::Raw(Arc::new(Graph::from_edge_list(&el))))
        }
        GraphSource::Suite { key } => {
            let spec = suite()
                .into_iter()
                .chain(suite_small())
                .find(|s| s.key == key)
                .ok_or_else(|| format!("unknown suite key '{key}'"))?;
            Ok(Loaded::Raw(Arc::new(spec.build())))
        }
        GraphSource::EdgeListFile { path } => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("reading edge list '{path}': {e}"))?;
            Ok(Loaded::Raw(Arc::new(parse_edge_list_text(&text)?)))
        }
        GraphSource::GraphImage { path } => {
            let g = ihtl_graph::io::load_graph(Path::new(path))
                .map_err(|e| format!("loading graph image '{path}': {e}"))?;
            Ok(Loaded::Raw(Arc::new(g)))
        }
        GraphSource::IhtlImage { path } => {
            let ih = load_ihtl(Path::new(path))
                .map_err(|e| format!("loading iHTL image '{path}': {e}"))?;
            Ok(Loaded::Image(Arc::new(ih)))
        }
        // Shard sources are handled by `Registry::load_shard` (they need
        // store access); the wire grammar rejects nested shard bases, so
        // reaching this arm means a programmatic caller nested them.
        GraphSource::Shard { .. } => {
            Err("shard sources cannot nest (the base must be a plain source)".to_string())
        }
    }
}

/// Parses whitespace-separated `src dst` pairs; `#` starts a comment line.
/// Vertex count is `max id + 1`.
fn parse_edge_list_text(text: &str) -> Result<Graph, String> {
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut max_id = 0u32;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(a), Some(b)) = (it.next(), it.next()) else {
            return Err(format!("line {}: expected 'src dst'", lineno + 1));
        };
        if it.next().is_some() {
            return Err(format!("line {}: trailing tokens after 'src dst'", lineno + 1));
        }
        let src: u32 =
            a.parse().map_err(|_| format!("line {}: bad vertex id '{a}'", lineno + 1))?;
        let dst: u32 =
            b.parse().map_err(|_| format!("line {}: bad vertex id '{b}'", lineno + 1))?;
        max_id = max_id.max(src).max(dst);
        edges.push((src, dst));
    }
    if edges.is_empty() {
        return Err("edge list contains no edges".to_string());
    }
    Ok(Graph::from_edges(max_id as usize + 1, &edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_apps::{run_job, JobSpec};

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 4096, ..IhtlConfig::default() }
    }

    fn rmat_source() -> GraphSource {
        GraphSource::Rmat { scale: 9, edges: 4_000, seed: 7 }
    }

    #[test]
    fn register_lookup_and_idempotency() {
        let r = Registry::new(cfg());
        let ds = r.register("g", &rmat_source()).unwrap();
        assert!(ds.n_vertices > 0 && ds.n_edges > 0);
        assert!(r.get("g").is_some());
        assert!(r.get("h").is_none());
        // Same source: idempotent. Different source: error.
        assert!(r.register("g", &rmat_source()).is_ok());
        let other = GraphSource::Rmat { scale: 9, edges: 4_000, seed: 8 };
        assert!(r.register("g", &other).is_err());
        assert_eq!(r.list().len(), 1);
    }

    #[test]
    fn engine_pool_reuses_instances() {
        let r = Registry::new(cfg());
        let ds = r.register("g", &rmat_source()).unwrap();
        let n = ds.n_vertices;
        let a = ds
            .with_engine(EngineKind::Ihtl, false, &r, |e| {
                run_job(e, None, &JobSpec::PageRank { iters: 3, seed: None }).unwrap().values
            })
            .unwrap();
        let b = ds
            .with_engine(EngineKind::Ihtl, false, &r, |e| {
                run_job(e, None, &JobSpec::PageRank { iters: 3, seed: None }).unwrap().values
            })
            .unwrap();
        assert_eq!(a.len(), n);
        // Determinism across checkouts (same pooled engine or a rebuild).
        assert_eq!(a, b);
        // The pool holds exactly one engine afterwards.
        assert_eq!(ds.engines.lock().unwrap().values().map(Vec::len).sum::<usize>(), 1);
    }

    fn pagerank(ds: &Dataset, r: &Registry, kind: EngineKind) -> Vec<f64> {
        ds.with_engine(kind, false, r, |e| {
            run_job(e, None, &JobSpec::PageRank { iters: 3, seed: None }).unwrap().values
        })
        .unwrap()
    }

    #[test]
    fn store_amortizes_builds_across_registries() {
        let dir = std::env::temp_dir().join(format!("ihtl_reg_store_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(BlockStore::open(&dir).unwrap());

        // "Boot" 1: cold store — every tiered engine misses, builds, and
        // writes back.
        let r1 = Registry::with_store(cfg(), Some(Arc::clone(&store)), None);
        let ds = r1.register("g", &rmat_source()).unwrap();
        let a_ihtl = pagerank(&ds, &r1, EngineKind::Ihtl);
        let a_pb = pagerank(&ds, &r1, EngineKind::Pb);
        let a_hy = pagerank(&ds, &r1, EngineKind::Hybrid);
        let c1 = store.counters();
        assert_eq!(c1.hits, 0);
        // iHTL image (shared by ihtl + hybrid) and the PB layout.
        assert_eq!(c1.writes, 2);

        // "Boot" 2: a fresh registry over the same store — zero rebuilds
        // means zero new writes, and results stay bitwise identical.
        let r2 = Registry::with_store(cfg(), Some(Arc::clone(&store)), None);
        let ds2 = r2.register("g", &rmat_source()).unwrap();
        let b_ihtl = pagerank(&ds2, &r2, EngineKind::Ihtl);
        let b_pb = pagerank(&ds2, &r2, EngineKind::Pb);
        let b_hy = pagerank(&ds2, &r2, EngineKind::Hybrid);
        let c2 = store.counters();
        assert_eq!(c2.writes, 2, "warm boot must not rebuild anything");
        assert_eq!(c2.hits, 2);
        for (a, b) in [(&a_ihtl, &b_ihtl), (&a_pb, &b_pb), (&a_hy, &b_hy)] {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn tiny_budget_demotes_lru_and_results_stay_bitwise() {
        let dir = std::env::temp_dir().join(format!("ihtl_reg_evict_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(BlockStore::open(&dir).unwrap());
        // 0 MiB: any warm artifact is over budget, so every checkout of a
        // second dataset demotes the first.
        let r = Registry::with_store(cfg(), Some(store), Some(0));
        let a = r.register("a", &rmat_source()).unwrap();
        let b = r.register("b", &GraphSource::Rmat { scale: 9, edges: 4_000, seed: 11 }).unwrap();
        let first = pagerank(&a, &r, EngineKind::Ihtl);
        assert!(a.warm());
        // Serving `b` pushes the tier over budget; `a` is the LRU victim.
        let _ = pagerank(&b, &r, EngineKind::Ihtl);
        assert!(!a.warm(), "LRU dataset must be demoted under a zero budget");
        assert!(r.evictions() >= 1);
        // Transparent reload: `a` still serves, bitwise identically.
        let again = pagerank(&a, &r, EngineKind::Ihtl);
        assert_eq!(first.len(), again.len());
        for (x, y) in first.iter().zip(again.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        std::fs::remove_dir_all(r.store().unwrap().root()).ok();
    }

    #[test]
    fn budget_without_store_rebuilds_instead_of_reloading() {
        // Demotion is legal with no store attached: the rebuild path is the
        // raw graph. Slower, but results must still be bitwise identical.
        let r = Registry::with_store(cfg(), None, Some(0));
        let a = r.register("a", &rmat_source()).unwrap();
        let b = r.register("b", &GraphSource::Rmat { scale: 9, edges: 4_000, seed: 11 }).unwrap();
        let first = pagerank(&a, &r, EngineKind::Ihtl);
        let _ = pagerank(&b, &r, EngineKind::Ihtl);
        assert!(!a.warm());
        let again = pagerank(&a, &r, EngineKind::Ihtl);
        for (x, y) in first.iter().zip(again.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn image_datasets_are_never_demoted() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ihtl_serve_pin_{:?}.blk", std::thread::current().id()));
        {
            let g = ihtl_graph::graph::paper_example_graph();
            let ih = IhtlGraph::build(&g, &IhtlConfig { cache_budget_bytes: 16, ..cfg() });
            ihtl_core::io::save_ihtl(&ih, &path).unwrap();
        }
        let r = Registry::with_store(IhtlConfig { cache_budget_bytes: 16, ..cfg() }, None, Some(0));
        let img = r
            .register("img", &GraphSource::IhtlImage { path: path.display().to_string() })
            .unwrap();
        let other = r.register("g", &rmat_source()).unwrap();
        let _ = pagerank(&img, &r, EngineKind::Ihtl);
        let _ = pagerank(&other, &r, EngineKind::Ihtl);
        // The image dataset has no rebuild path, so it must stay warm even
        // under a zero budget; the rebuildable dataset is the only victim.
        assert!(img.warm());
        let _ = pagerank(&img, &r, EngineKind::Ihtl);
        assert!(!other.warm());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn symmetrized_engines_serve_components() {
        let r = Registry::new(cfg());
        let ds = r.register("g", &rmat_source()).unwrap();
        let labels = ds
            .with_engine(EngineKind::Ihtl, true, &r, |e| {
                run_job(e, None, &JobSpec::Components { max_rounds: 64 }).unwrap().values
            })
            .unwrap();
        assert_eq!(labels.len(), ds.n_vertices);
    }

    #[test]
    fn ihtl_image_dataset_serves_only_ihtl() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ihtl_serve_reg_{:?}.blk", std::thread::current().id()));
        {
            let g = ihtl_graph::graph::paper_example_graph();
            let ih = IhtlGraph::build(&g, &IhtlConfig { cache_budget_bytes: 16, ..cfg() });
            ihtl_core::io::save_ihtl(&ih, &path).unwrap();
        }
        let r = Registry::new(IhtlConfig { cache_budget_bytes: 16, ..cfg() });
        let src = GraphSource::IhtlImage { path: path.display().to_string() };
        let ds = r.register("img", &src).unwrap();
        assert!(ds.graph().is_none());
        let ranks = ds
            .with_engine(EngineKind::Ihtl, false, &r, |e| {
                run_job(e, None, &JobSpec::PageRank { iters: 3, seed: None }).unwrap().values
            })
            .unwrap();
        assert_eq!(ranks.len(), 8);
        // Baselines need the raw graph — clear error, no panic.
        assert!(ds.with_engine(EngineKind::PullGalois, false, &r, |_| ()).is_err());
        assert!(ds.with_engine(EngineKind::Ihtl, true, &r, |_| ()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn auto_engine_is_memoized_and_valid() {
        let r = Registry::new(cfg());
        let ds = r.register("g", &rmat_source()).unwrap();
        assert_eq!(ds.auto_decisions(), [None, None]);
        let kind = ds.auto_engine(false, r.cfg()).unwrap();
        // Memoised: the same answer comes back, and stats can observe it.
        assert_eq!(ds.auto_engine(false, r.cfg()).unwrap(), kind);
        assert_eq!(ds.auto_decisions()[0], Some(kind));
        // The chosen engine actually serves jobs.
        let vals = ds
            .with_engine(kind, false, &r, |e| {
                run_job(e, None, &JobSpec::PageRank { iters: 2, seed: None }).unwrap().values
            })
            .unwrap();
        assert_eq!(vals.len(), ds.n_vertices);
        // The symmetrized decision is tracked independently.
        let sym_kind = ds.auto_engine(true, r.cfg()).unwrap();
        assert_eq!(ds.auto_decisions()[1], Some(sym_kind));
    }

    #[test]
    fn auto_engine_falls_back_to_ihtl_for_image_datasets() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ihtl_serve_auto_{:?}.blk", std::thread::current().id()));
        {
            let g = ihtl_graph::graph::paper_example_graph();
            let ih = IhtlGraph::build(&g, &IhtlConfig { cache_budget_bytes: 16, ..cfg() });
            ihtl_core::io::save_ihtl(&ih, &path).unwrap();
        }
        let r = Registry::new(IhtlConfig { cache_budget_bytes: 16, ..cfg() });
        let src = GraphSource::IhtlImage { path: path.display().to_string() };
        let ds = r.register("img", &src).unwrap();
        assert_eq!(ds.auto_engine(false, r.cfg()).unwrap(), EngineKind::Ihtl);
        // Symmetrized auto needs the raw graph — clean error, no panic.
        assert!(ds.auto_engine(true, r.cfg()).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_datasets_register_with_placement_metadata() {
        let r = Registry::new(cfg());
        let full = r.register("full", &rmat_source()).unwrap();
        let base = Box::new(rmat_source());
        let mut raw_edges = 0;
        let mut sym_edges = 0;
        for i in 0..3 {
            let src = GraphSource::Shard { index: i, count: 3, base: base.clone() };
            let ds = r.register(&format!("s{i}"), &src).unwrap();
            let meta = ds.shard().expect("shard dataset must carry placement metadata");
            assert_eq!((meta.index, meta.count), (i, 3));
            assert_eq!(meta.info.n_edges, ds.n_edges);
            // The vertex space stays global; only the edges are sliced.
            assert_eq!(ds.n_vertices, full.n_vertices);
            raw_edges += ds.n_edges;
            // The sym slot is pre-filled with the shard of symmetrize(base).
            sym_edges += ds.sym_graph().unwrap().n_edges();
        }
        assert_eq!(raw_edges, full.n_edges, "shards must partition the base edges");
        assert_eq!(
            sym_edges,
            full.sym_graph().unwrap().n_edges(),
            "sym shards must partition the symmetrized base"
        );
        assert!(full.shard().is_none(), "plain datasets carry no shard metadata");
        // Out-of-range coordinates are rejected with a clean error.
        let bad = GraphSource::Shard { index: 3, count: 3, base };
        assert!(r.register("bad", &bad).is_err());
    }

    #[test]
    fn shard_registration_tiers_through_the_store() {
        let dir = std::env::temp_dir().join(format!("ihtl_reg_shard_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = Arc::new(BlockStore::open(&dir).unwrap());
        let base = Box::new(rmat_source());
        let src = GraphSource::Shard { index: 1, count: 2, base };

        // Cold boot: both shard views (raw + sym) miss, extract, write back.
        let r1 = Registry::with_store(cfg(), Some(Arc::clone(&store)), None);
        let ds1 = r1.register("s1", &src).unwrap();
        let c1 = store.counters();
        assert_eq!(c1.writes, 2, "raw and sym shard artifacts must be written back");
        assert_eq!(c1.hits, 0);

        // Warm boot: a fresh registry loads both from the store, extracting
        // nothing, and the shard topology is bitwise identical.
        let r2 = Registry::with_store(cfg(), Some(Arc::clone(&store)), None);
        let ds2 = r2.register("s1", &src).unwrap();
        let c2 = store.counters();
        assert_eq!(c2.writes, 2, "warm boot must not re-extract");
        assert_eq!(c2.hits, 2);
        assert_eq!(ds1.graph().unwrap().csr(), ds2.graph().unwrap().csr());
        assert_eq!(ds1.sym_graph().unwrap().csr(), ds2.sym_graph().unwrap().csr());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn suite_and_edgelist_sources_load() {
        let r = Registry::new(cfg());
        let ds = r.register("mini", &GraphSource::Suite { key: "mini_social".into() }).unwrap();
        assert!(ds.n_edges > 10_000);
        assert!(r.register("nope", &GraphSource::Suite { key: "zzz".into() }).is_err());

        let dir = std::env::temp_dir();
        let path = dir.join(format!("ihtl_serve_el_{:?}.txt", std::thread::current().id()));
        std::fs::write(&path, "# demo\n0 1\n1 2\n2 0\n").unwrap();
        let ds = r
            .register("el", &GraphSource::EdgeListFile { path: path.display().to_string() })
            .unwrap();
        assert_eq!(ds.n_vertices, 3);
        assert_eq!(ds.n_edges, 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn edge_list_parser_rejects_garbage() {
        assert!(parse_edge_list_text("").is_err());
        assert!(parse_edge_list_text("0 x").is_err());
        assert!(parse_edge_list_text("0 1 2").is_err());
        assert!(parse_edge_list_text("0").is_err());
        let g = parse_edge_list_text("#c\n\n 5 3 \n").unwrap();
        assert_eq!(g.n_vertices(), 6);
    }
}
