//! Hand-rolled JSON, std-only per the hermetic-build policy.
//!
//! One value type, a recursive-descent parser, and a serializer. Objects
//! preserve insertion order (a `Vec` of pairs, not a map): the wire
//! protocol's replies stay byte-stable across runs, which the determinism
//! tests and the result cache rely on.
//!
//! Numbers are `f64`. Rust's `Display` for `f64` prints the shortest string
//! that round-trips, so serialize→parse is exact for every finite value;
//! non-finite values serialize as `null` (JSON has no NaN/∞).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Numeric field as a non-negative integer (rejects fractions and
    /// values beyond 2^53, which JSON cannot carry exactly).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && *v <= 9_007_199_254_740_992.0 && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

/// Nesting depth cap: deeper input is rejected rather than risking a stack
/// overflow on hostile wire data.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { pos: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                } else {
                    loop {
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => {
                                self.pos += 1;
                                self.skip_ws();
                            }
                            Some(b']') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or ']'")),
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                } else {
                    loop {
                        let k = self.string()?;
                        self.skip_ws();
                        self.expect_byte(b':')?;
                        self.skip_ws();
                        let v = self.value()?;
                        pairs.push((k, v));
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => {
                                self.pos += 1;
                                self.skip_ws();
                            }
                            Some(b'}') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or '}'")),
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Obj(pairs))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // The scanned range holds only ASCII digit/sign/dot/exponent bytes,
        // so this conversion cannot fail; report it as a parse error anyway
        // rather than panicking a connection thread.
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("bad number"));
        };
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the last hex digit;
                            // compensate for the unconditional += 1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unexpected end of input"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Num(42.0)),
            ("-1.5", Json::Num(-1.5)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn roundtrip_structures() {
        let v = Json::obj([
            ("id", Json::from(3u64)),
            ("name", Json::from("g\"1\"\n")),
            ("vals", Json::Arr(vec![Json::Num(1.0), Json::Null, Json::Bool(false)])),
            ("nested", Json::obj([("k", Json::from(0.125))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_display_roundtrips_bitwise() {
        // Shortest-roundtrip Display: serialize→parse is the identity on
        // finite doubles, which job-result bitwise determinism relies on.
        let vals = [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1.2345678901234567e-300, 6.02e23];
        for v in vals {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse("\"a\\u00e9\\u20ac\\ud83d\\ude00 ü\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "aé€😀 ü");
        let text = Json::Str("tab\tnl\nquote\"".into()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), "tab\tnl\nquote\"");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"\\x\"",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":5,\"s\":\"x\",\"b\":true,\"a\":[1],\"f\":5.5}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
