//! Hand-rolled JSON, std-only per the hermetic-build policy.
//!
//! One value type, a recursive-descent parser, and a serializer. Objects
//! preserve insertion order (a `Vec` of pairs, not a map): the wire
//! protocol's replies stay byte-stable across runs, which the determinism
//! tests and the result cache rely on.
//!
//! Numbers carry their exact wire form. Integer literals (no `.` or
//! exponent) parse to [`Json::Int`], which holds any `u64`/`i64` exactly —
//! `seed`, `trace_id` and f64 bit patterns above 2^53 must not round
//! through a double. Everything else parses to [`Json::Num`]; Rust's
//! `Display` for `f64` prints the shortest string that round-trips, so
//! serialize→parse is exact for every finite value, and non-finite values
//! serialize as `null` (JSON has no NaN/∞). Two carve-outs keep the
//! mapping total: `-0` stays a `Num` (an integer type cannot carry the
//! `-0.0` bit pattern), and integer literals beyond `i128` fall back to
//! `f64` (nothing on this wire is both integral and that large).

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// An integer literal, kept exact (never rounded through `f64`).
    Int(i128),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric field as a double. Integer literals convert with
    /// round-to-nearest, so a value that was `f64::to_string`'d (which
    /// prints integral doubles without a point) comes back bitwise equal.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Numeric field as a non-negative integer. Exact over the whole `u64`
    /// range for integer literals; float-form numbers (`"5.0"`) are
    /// accepted only when integral and below 2^53, beyond which `f64`
    /// cannot have carried the value exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) if *v >= 0 && *v <= u64::MAX as i128 => Some(*v as u64),
            Json::Num(v) if *v >= 0.0 && *v <= 9_007_199_254_740_992.0 && v.fract() == 0.0 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0, depth: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after value"));
        }
        Ok(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(v as i128)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Int(v as i128)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Int(v as i128)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(true) => f.write_str("true"),
            Json::Bool(false) => f.write_str("false"),
            // Same bytes f64 Display would print for any value both types
            // carry, so replies that switched to Int stayed byte-stable.
            Json::Int(v) => write!(f, "{v}"),
            Json::Num(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_fmt(format_args!("{c}"))?,
        }
    }
    f.write_str("\"")
}

/// Parse error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    pub pos: usize,
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.msg)
    }
}

/// Nesting depth cap: deeper input is rejected rather than risking a stack
/// overflow on hostile wire data.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError { pos: self.pos, msg: msg.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                self.depth += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                } else {
                    loop {
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => {
                                self.pos += 1;
                                self.skip_ws();
                            }
                            Some(b']') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or ']'")),
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Arr(items))
            }
            Some(b'{') => {
                self.pos += 1;
                self.depth += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                } else {
                    loop {
                        let k = self.string()?;
                        self.skip_ws();
                        self.expect_byte(b':')?;
                        self.skip_ws();
                        let v = self.value()?;
                        pairs.push((k, v));
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => {
                                self.pos += 1;
                                self.skip_ws();
                            }
                            Some(b'}') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(self.err("expected ',' or '}'")),
                        }
                    }
                }
                self.depth -= 1;
                Ok(Json::Obj(pairs))
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if self.digits() == 0 {
            return Err(self.err("expected digits in number"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            is_float = true;
            if self.digits() == 0 {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            is_float = true;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if self.digits() == 0 {
                return Err(self.err("expected digits in exponent"));
            }
        }
        // The scanned range holds only ASCII digit/sign/dot/exponent bytes,
        // so this conversion cannot fail; report it as a parse error anyway
        // rather than panicking a connection thread.
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("bad number"));
        };
        // Integer literals stay exact. "-0" must remain a float (Int has no
        // negative zero, and `-0.0` round-trips bitwise through "-0");
        // literals beyond i128 fall back to f64, matching the old lossy
        // behaviour only where exactness was never possible on this wire.
        if !is_float && text != "-0" {
            if let Ok(v) = text.parse::<i128>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err(format!("bad number '{text}'")))
    }

    /// Consumes a run of ASCII digits, returning how many were consumed.
    fn digits(&mut self) -> usize {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        self.pos - start
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("bad low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the last hex digit;
                            // compensate for the unconditional += 1 below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unexpected end of input"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("42", Json::Int(42)),
            ("-7", Json::Int(-7)),
            ("-1.5", Json::Num(-1.5)),
            ("5.0", Json::Num(5.0)),
            ("1e3", Json::Num(1000.0)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn roundtrip_structures() {
        let v = Json::obj([
            ("id", Json::from(3u64)),
            ("name", Json::from("g\"1\"\n")),
            ("vals", Json::Arr(vec![Json::Int(1), Json::Num(1.5), Json::Null, Json::Bool(false)])),
            ("nested", Json::obj([("k", Json::from(0.125))])),
        ]);
        let text = v.to_string();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn f64_display_roundtrips_bitwise() {
        // Shortest-roundtrip Display: serialize→parse is the identity on
        // finite doubles, which job-result bitwise determinism relies on.
        let vals = [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1.2345678901234567e-300, 6.02e23];
        for v in vals {
            let text = Json::Num(v).to_string();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }

    #[test]
    fn unicode_and_escapes() {
        let v = Json::parse("\"a\\u00e9\\u20ac\\ud83d\\ude00 ü\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "aé€😀 ü");
        let text = Json::Str("tab\tnl\nquote\"".into()).to_string();
        assert_eq!(Json::parse(&text).unwrap().as_str().unwrap(), "tab\tnl\nquote\"");
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "1.2.3",
            "\"\\x\"",
            "\"unterminated",
            "[1] trailing",
            "{\"a\":1,}",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn rejects_malformed_numbers() {
        // Tightened grammar: every digit run the JSON spec requires must be
        // non-empty (the old scanner let Rust's f64 parser arbitrate, which
        // happened to accept "1.").
        for bad in ["-", "1e", "1e+", "1e-", "1.", "-.5", ".5", "--1", "+1", "1.e3", "-e3"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn big_integers_are_exact() {
        // Regression: u64 wire values (seed, trace_id, f64 bit patterns)
        // above 2^53 used to round through f64 and come back wrong.
        let cases: [u64; 5] = [
            (1u64 << 60) + 1,
            u64::MAX,
            (1u64 << 53) + 1,
            9_007_199_254_740_993, // 2^53 + 1: the first f64-unrepresentable integer
            f64::INFINITY.to_bits(),
        ];
        for v in cases {
            let wire = Json::from(v).to_string();
            assert_eq!(wire, v.to_string(), "serialization must print every digit");
            let back = Json::parse(&wire).unwrap();
            assert_eq!(back, Json::Int(v as i128));
            assert_eq!(back.as_u64(), Some(v), "round-trip must be exact for {v}");
        }
        // Negative literals are exact too (and out of as_u64's domain).
        let neg = Json::parse("-1152921504606846977").unwrap();
        assert_eq!(neg, Json::Int(-((1i128 << 60) + 1)));
        assert_eq!(neg.as_u64(), None);
    }

    #[test]
    fn negative_zero_stays_a_float() {
        let v = Json::parse("-0").unwrap();
        assert_eq!(v.as_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        // And it survives a serialize→parse cycle bitwise.
        let back = Json::parse(&v.to_string()).unwrap();
        assert_eq!(back.as_f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
    }

    #[test]
    fn integers_beyond_i128_fall_back_to_f64() {
        let text = format!("1{}", "0".repeat(40)); // 1e40 > i128::MAX
        let v = Json::parse(&text).unwrap();
        assert_eq!(v, Json::Num(1e40));
    }

    #[test]
    fn parser_edge_cases_table() {
        // Surrogate-pair escapes must produce astral-plane characters, and
        // the malformed halves must be rejected — table-driven so new cases
        // are one line each.
        let good: [(&str, &str); 4] = [
            ("\"\\ud83d\\ude00\"", "😀"),            // U+1F600
            ("\"\\ud834\\udd1e\"", "𝄞"),             // U+1D11E MUSICAL SYMBOL G CLEF
            ("\"\\udbff\\udfff\"", "\u{10FFFF}"),    // last code point
            ("\"x\\ud800\\udc00y\"", "x\u{10000}y"), // first astral, embedded
        ];
        for (text, want) in good {
            assert_eq!(Json::parse(text).unwrap().as_str(), Some(want), "{text}");
        }
        let bad = [
            "\"\\ud83d\"",        // lone high surrogate
            "\"\\ud83dx\"",       // high surrogate not followed by \u
            "\"\\ud83d\\u0041\"", // high surrogate followed by a non-low escape
            "\"\\ude00\"",        // lone low surrogate decodes to no char
            "\"\\ud83d\\ud83d\"", // two high surrogates
        ];
        for text in bad {
            assert!(Json::parse(text).is_err(), "{text} should fail");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(40) + &"]".repeat(40);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors() {
        let v = Json::parse("{\"n\":5,\"s\":\"x\",\"b\":true,\"a\":[1],\"f\":5.5}").unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(5));
        assert_eq!(v.get("f").unwrap().as_u64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 1);
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn non_finite_serializes_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
