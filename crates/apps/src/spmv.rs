//! Bare SpMV application — the microbenchmark of the paper's §2.2
//! ("SpMV multiplication that iteratively calculates the new data of a
//! vertex as summation of previous data of its in-neighbours":
//! `u_i[v] = Σ_{u ∈ N⁻(v)} u_{i-1}[u]`).

use std::time::Instant;

use crate::engine::SpmvEngine;

/// Result of iterated SpMV.
#[derive(Clone, Debug)]
pub struct SpmvRun {
    /// Final vector in original vertex order.
    pub values: Vec<f64>,
    /// Per-iteration wall-clock seconds.
    pub iter_seconds: Vec<f64>,
}

/// Runs `iters` sum-SpMV iterations starting from `x0` (original order).
/// Values are renormalised each iteration to keep them finite on graphs
/// whose spectral radius exceeds 1 (any graph with a vertex of in-degree
/// > 1 would otherwise overflow in a few hundred iterations).
pub fn spmv_iterations(engine: &mut dyn SpmvEngine, x0: &[f64], iters: usize) -> SpmvRun {
    let n = engine.n_vertices();
    assert_eq!(x0.len(), n);
    let mut x = engine.from_original_order(x0);
    let mut y = vec![0.0f64; n];
    let mut iter_seconds = Vec::with_capacity(iters);
    for _ in 0..iters {
        // lint:allow(R4): per-iteration timing for the Table 2 report
        let t = Instant::now();
        engine.spmv_add(&x, &mut y);
        std::mem::swap(&mut x, &mut y);
        iter_seconds.push(t.elapsed().as_secs_f64());
        let norm: f64 = x.iter().map(|v| v.abs()).sum();
        if norm > 1e100 {
            let inv = 1.0 / norm;
            x.iter_mut().for_each(|v| *v *= inv);
        }
    }
    SpmvRun { values: engine.to_original_order(&x), iter_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_engine, EngineKind};
    use ihtl_core::IhtlConfig;
    use ihtl_graph::graph::paper_example_graph;

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() }
    }

    #[test]
    fn one_iteration_matches_manual_sum() {
        let g = paper_example_graph();
        let x0: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let run = spmv_iterations(e.as_mut(), &x0, 1);
        // Hub 2's in-neighbours: {1,4,5,6,7} → 2+5+6+7+8.
        assert_eq!(run.values[2], 28.0);
        // Vertex 7 has no in-edges → 0.
        assert_eq!(run.values[7], 0.0);
    }

    #[test]
    fn engines_agree_after_three_iterations() {
        let g = paper_example_graph();
        let x0: Vec<f64> = (0..8).map(|i| 1.0 + (i as f64) * 0.25).collect();
        let mut reference: Option<Vec<f64>> = None;
        for kind in EngineKind::all() {
            let mut e = build_engine(kind, &g, &cfg());
            let run = spmv_iterations(e.as_mut(), &x0, 3);
            match &reference {
                None => reference = Some(run.values),
                Some(r) => {
                    for (a, b) in r.iter().zip(&run.values) {
                        assert!((a - b).abs() < 1e-9, "{kind:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn renormalisation_keeps_values_finite() {
        let g = paper_example_graph();
        let x0 = vec![1e90; 8];
        let mut e = build_engine(EngineKind::PullGraphGrind, &g, &cfg());
        let run = spmv_iterations(e.as_mut(), &x0, 50);
        assert!(run.values.iter().all(|v| v.is_finite()));
    }
}
