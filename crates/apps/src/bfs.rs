//! Direction-optimizing BFS (Beamer et al., the paper's reference [3]) —
//! the classic *push OR pull* scheme the paper's §5.2 contrasts with
//! iHTL's per-vertex-type mix: each BFS level is traversed entirely
//! top-down (push from the frontier) or entirely bottom-up (pull: each
//! unvisited vertex scans its in-neighbours for a frontier member),
//! switching on frontier density.

use ihtl_graph::{Graph, VertexId};

/// Result of a BFS run.
#[derive(Clone, Debug)]
pub struct BfsRun {
    /// BFS level per vertex (`u32::MAX` = unreachable).
    pub level: Vec<u32>,
    /// Traversal direction chosen per level (`true` = bottom-up/pull).
    pub bottom_up_levels: Vec<bool>,
}

/// Fraction of vertices on the frontier beyond which a level switches to
/// bottom-up (Beamer's heuristic, simplified to a single ratio).
const BOTTOM_UP_THRESHOLD: f64 = 0.05;

/// Runs direction-optimizing BFS from `source` over the directed graph
/// (edges followed forward).
pub fn bfs(g: &Graph, source: VertexId) -> BfsRun {
    let n = g.n_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut level = vec![u32::MAX; n];
    level[source as usize] = 0;
    let mut frontier: Vec<VertexId> = vec![source];
    let mut bottom_up_levels = Vec::new();
    let mut depth = 0u32;

    while !frontier.is_empty() {
        let bottom_up = (frontier.len() as f64) > BOTTOM_UP_THRESHOLD * n as f64;
        bottom_up_levels.push(bottom_up);
        let mut next = Vec::new();
        if bottom_up {
            // Pull: every unvisited vertex checks its in-neighbours.
            let on_frontier: Vec<bool> = {
                let mut f = vec![false; n];
                for &v in &frontier {
                    f[v as usize] = true;
                }
                f
            };
            for v in 0..n as u32 {
                if level[v as usize] != u32::MAX {
                    continue;
                }
                if g.csc().neighbours(v).iter().any(|&u| on_frontier[u as usize]) {
                    level[v as usize] = depth + 1;
                    next.push(v);
                }
            }
        } else {
            // Push: frontier members scatter to out-neighbours.
            for &u in &frontier {
                for &v in g.csr().neighbours(u) {
                    if level[v as usize] == u32::MAX {
                        level[v as usize] = depth + 1;
                        next.push(v);
                    }
                }
            }
        }
        frontier = next;
        depth += 1;
    }
    BfsRun { level, bottom_up_levels }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle(g: &Graph, src: u32) -> Vec<u32> {
        let n = g.n_vertices();
        let mut level = vec![u32::MAX; n];
        let mut q = std::collections::VecDeque::new();
        level[src as usize] = 0;
        q.push_back(src);
        while let Some(v) = q.pop_front() {
            for &u in g.csr().neighbours(v) {
                if level[u as usize] == u32::MAX {
                    level[u as usize] = level[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        level
    }

    #[test]
    fn path_levels() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let run = bfs(&g, 0);
        assert_eq!(run.level, vec![0, 1, 2, 3]);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let run = bfs(&g, 0);
        assert_eq!(run.level[1], 1);
        assert_eq!(run.level[2], u32::MAX);
        assert_eq!(run.level[3], u32::MAX);
    }

    #[test]
    fn matches_oracle_on_random_graph() {
        let mut rng = ihtl_gen::Pcg64::seed_from_u64(9);
        let n = 200usize;
        let edges: Vec<(u32, u32)> = (0..1500)
            .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
            .filter(|&(a, b)| a != b)
            .collect();
        let g = Graph::from_edges(n, &edges);
        for src in [0u32, 7, 42] {
            assert_eq!(bfs(&g, src).level, oracle(&g, src), "src {src}");
        }
    }

    #[test]
    fn dense_graph_switches_to_bottom_up() {
        // A hub-star plus a clique core: the second level covers most of
        // the graph, which must trigger the bottom-up direction.
        let n = 200usize;
        let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|v| (0, v)).collect();
        edges.extend((1..50u32).flat_map(|a| (50..100u32).map(move |b| (a, b))));
        let g = Graph::from_edges(n, &edges);
        let run = bfs(&g, 0);
        assert!(
            run.bottom_up_levels.iter().any(|&b| b),
            "never switched bottom-up: {:?}",
            run.bottom_up_levels
        );
        assert_eq!(bfs(&g, 0).level, oracle(&g, 0));
    }

    #[test]
    fn sparse_frontier_stays_top_down() {
        let g = Graph::from_edges(100, &(0..99u32).map(|v| (v, v + 1)).collect::<Vec<_>>());
        let run = bfs(&g, 0);
        assert!(run.bottom_up_levels.iter().all(|&b| !b));
    }
}
