//! Job dispatch: one entry point for every analytic this crate implements.
//!
//! Callers (the serving layer, harness binaries) describe work as a
//! [`JobSpec`] value and run it against any `dyn SpmvEngine` — replacing
//! the per-binary glue that used to call each analytic's function directly.
//! The output is uniform (a value vector in original vertex order, a round
//! count, compute seconds), which is what a wire protocol or a results
//! table needs regardless of the analytic.

use std::time::Instant;

use ihtl_graph::Graph;

use crate::bfs::bfs;
use crate::components::propagate_components;
use crate::engine::SpmvEngine;
use crate::multi::{pagerank_multi, pagerank_seeded, spmv_sum_multi, sssp_multi};
use crate::pagerank::pagerank;
use crate::spmv::spmv_iterations;
use crate::sssp::sssp;

/// A description of one analytics job, independent of the engine that will
/// run it.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// PageRank for a fixed number of iterations (the paper's §4.1
    /// evaluation application). `seed: Some(s)` personalises the teleport
    /// (and the start vector) to vertex `s`; `None` is classic uniform
    /// PageRank.
    PageRank { iters: usize, seed: Option<u32> },
    /// Bare iterated sum-SpMV (§2.2's microbenchmark) from `x0 = 1`
    /// (`source: None`) or an indicator at `source` (`Some`).
    SpmvSum { iters: usize, source: Option<u32> },
    /// Unweighted Bellman–Ford from `source`.
    Sssp { source: u32, max_rounds: usize },
    /// Min-label propagation. The engine must have been built over a
    /// symmetrized graph for weakly-connected-component semantics.
    Components { max_rounds: usize },
    /// Direction-optimizing BFS from `source` — runs on the raw graph, not
    /// an SpMV engine.
    Bfs { source: u32 },
}

impl JobSpec {
    /// Stable lowercase name (wire protocol, cache keys, reports).
    pub fn name(&self) -> &'static str {
        match self {
            JobSpec::PageRank { .. } => "pagerank",
            JobSpec::SpmvSum { .. } => "spmv",
            JobSpec::Sssp { .. } => "sssp",
            JobSpec::Components { .. } => "cc",
            JobSpec::Bfs { .. } => "bfs",
        }
    }

    /// Canonical parameter string: equal specs produce equal strings, so it
    /// can key a result cache. Optional parameters only appear when set, so
    /// pre-existing cache keys stay valid.
    pub fn canonical(&self) -> String {
        match self {
            JobSpec::PageRank { iters, seed: None } => format!("pagerank:iters={iters}"),
            JobSpec::PageRank { iters, seed: Some(s) } => {
                format!("pagerank:iters={iters}:seed={s}")
            }
            JobSpec::SpmvSum { iters, source: None } => format!("spmv:iters={iters}"),
            JobSpec::SpmvSum { iters, source: Some(s) } => {
                format!("spmv:iters={iters}:source={s}")
            }
            JobSpec::Sssp { source, max_rounds } => {
                format!("sssp:source={source}:max_rounds={max_rounds}")
            }
            JobSpec::Components { max_rounds } => format!("cc:max_rounds={max_rounds}"),
            JobSpec::Bfs { source } => format!("bfs:source={source}"),
        }
    }

    /// Coalescing key: two queued jobs whose group keys are equal (and
    /// `Some`) can share one SpMM edge sweep — they are the same analytic
    /// with the same iteration budget, differing only in the per-column
    /// parameter (seed / source). `None` means the job cannot be batched.
    pub fn batch_group_key(&self) -> Option<String> {
        match self {
            JobSpec::PageRank { iters, .. } => Some(format!("pagerank:iters={iters}")),
            JobSpec::SpmvSum { iters, .. } => Some(format!("spmv:iters={iters}")),
            JobSpec::Sssp { max_rounds, .. } => Some(format!("sssp:max_rounds={max_rounds}")),
            JobSpec::Components { .. } | JobSpec::Bfs { .. } => None,
        }
    }

    /// Parameter validation, shared by the solo and batched paths. Runs
    /// *before* any compute timer or trace span starts, so a rejected job
    /// reports no compute time and emits no span.
    pub fn validate(&self, n: usize, graph: Option<&Graph>) -> Result<(), String> {
        let check_source = |s: u32| {
            if (s as usize) < n {
                Ok(())
            } else {
                Err(format!("source vertex {s} out of range (n = {n})"))
            }
        };
        match *self {
            JobSpec::PageRank { seed: Some(s), .. } => check_source(s),
            JobSpec::PageRank { seed: None, .. } => Ok(()),
            JobSpec::SpmvSum { source: Some(s), .. } => check_source(s),
            JobSpec::SpmvSum { source: None, .. } => Ok(()),
            JobSpec::Sssp { source, .. } => check_source(source),
            JobSpec::Components { .. } => Ok(()),
            JobSpec::Bfs { source } => {
                if graph.is_none() {
                    return Err(
                        "bfs requires the raw graph (unavailable for this dataset)".to_string()
                    );
                }
                check_source(source)
            }
        }
    }

    /// Whether this job must run on an engine built over the symmetrized
    /// graph (weak connectivity) rather than the directed one.
    pub fn needs_symmetrized(&self) -> bool {
        matches!(self, JobSpec::Components { .. })
    }

    /// Whether this job runs on the raw [`Graph`] rather than an engine.
    pub fn needs_raw_graph(&self) -> bool {
        matches!(self, JobSpec::Bfs { .. })
    }
}

/// Uniform result of a dispatched job.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutput {
    /// Per-vertex result in *original* vertex order: ranks (PageRank), SpMV
    /// values, distances (SSSP; unreachable = +∞), component labels, or BFS
    /// levels (unreachable = +∞).
    pub values: Vec<f64>,
    /// Iterations / propagation rounds / BFS levels executed.
    pub rounds: usize,
    /// Compute wall-clock seconds (excludes queueing; the caller measures
    /// end-to-end latency separately).
    pub seconds: f64,
}

/// Runs `spec` on `engine` (and `graph` for raw-graph jobs). Errors are
/// returned as strings suitable for a wire-protocol `error` field.
pub fn run_job(
    engine: &mut dyn SpmvEngine,
    graph: Option<&Graph>,
    spec: &JobSpec,
) -> Result<JobOutput, String> {
    let n = engine.n_vertices();
    // Reject bad parameters before the timer and span start: a rejected job
    // must report zero compute seconds and leave no trace span behind.
    spec.validate(n, graph)?;
    // lint:allow(R4): wall-clock feeds the reported job timing, not values
    let t = Instant::now();
    // Span name is the analytic's stable wire name.
    let _job_span = ihtl_trace::span(spec.name());
    match *spec {
        JobSpec::PageRank { iters, seed: None } => {
            let run = pagerank(engine, iters);
            // Report rounds actually executed (the empty-graph early return
            // runs none), not the requested budget.
            let rounds = run.iter_seconds.len();
            Ok(JobOutput { values: run.ranks, rounds, seconds: t.elapsed().as_secs_f64() })
        }
        JobSpec::PageRank { iters, seed: seed @ Some(_) } => {
            let values = pagerank_seeded(engine, iters, seed);
            let rounds = if n == 0 { 0 } else { iters };
            Ok(JobOutput { values, rounds, seconds: t.elapsed().as_secs_f64() })
        }
        JobSpec::SpmvSum { iters, source } => {
            let mut x0 = vec![0.0f64; n];
            match source {
                None => x0.iter_mut().for_each(|v| *v = 1.0),
                Some(s) => x0[s as usize] = 1.0,
            }
            let run = spmv_iterations(engine, &x0, iters);
            Ok(JobOutput { values: run.values, rounds: iters, seconds: t.elapsed().as_secs_f64() })
        }
        JobSpec::Sssp { source, max_rounds } => {
            let run = sssp(engine, source, max_rounds);
            Ok(JobOutput {
                values: run.dist,
                rounds: run.rounds,
                seconds: t.elapsed().as_secs_f64(),
            })
        }
        JobSpec::Components { max_rounds } => {
            let run = propagate_components(engine, max_rounds);
            Ok(JobOutput {
                values: run.labels.iter().map(|&l| l as f64).collect(),
                rounds: run.rounds,
                seconds: t.elapsed().as_secs_f64(),
            })
        }
        JobSpec::Bfs { source } => {
            let g = graph.ok_or("bfs requires the raw graph (unavailable for this dataset)")?;
            let run = bfs(g, source);
            let values = run
                .level
                .iter()
                .map(|&l| if l == u32::MAX { f64::INFINITY } else { l as f64 })
                .collect();
            Ok(JobOutput {
                values,
                rounds: run.bottom_up_levels.len(),
                seconds: t.elapsed().as_secs_f64(),
            })
        }
    }
}

/// Runs a coalesced batch of jobs sharing one [`JobSpec::batch_group_key`]
/// in a single SpMM edge sweep (K value columns per sweep), returning one
/// result per input spec in order.
///
/// Failure isolation: members that fail validation, are unbatchable, or
/// don't share the batch's group key get their own `Err` and are excluded
/// *before* any compute runs — the surviving columns execute and succeed
/// normally. Each successful member's `seconds` is its amortized share of
/// the batch's compute wall-clock (the batch total divided by the number of
/// executed columns), so summing members recovers the sweep cost.
///
/// Each result column is bitwise identical to the corresponding solo
/// [`run_job`] wherever solo runs are themselves schedule independent (see
/// `crate::multi`).
pub fn run_job_multi(
    engine: &mut dyn SpmvEngine,
    specs: &[JobSpec],
) -> Vec<Result<JobOutput, String>> {
    let n = engine.n_vertices();
    let mut results: Vec<Option<Result<JobOutput, String>>> = specs.iter().map(|_| None).collect();
    let group = specs.iter().find_map(JobSpec::batch_group_key);
    let mut live: Vec<usize> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        match (spec.batch_group_key(), spec.validate(n, None)) {
            (None, _) => {
                results[i] = Some(Err(format!("{} jobs cannot be batched", spec.name())));
            }
            (_, Err(e)) => results[i] = Some(Err(e)),
            (Some(g), Ok(())) if Some(&g) != group.as_ref() => {
                results[i] = Some(Err(format!(
                    "batch group mismatch: {g} does not match {}",
                    group.as_deref().unwrap_or("?")
                )));
            }
            _ => live.push(i),
        }
    }
    if live.is_empty() {
        return results
            .into_iter()
            .map(|r| r.unwrap_or_else(|| Err("empty batch".to_string())))
            .collect();
    }
    let k = live.len();
    // lint:allow(R4): wall-clock feeds the reported job timing, not values
    let t = Instant::now();
    let _job_span = ihtl_trace::span(specs[live[0]].name()).with_arg(k as u64);
    match specs[live[0]] {
        JobSpec::PageRank { iters, .. } => {
            let seeds: Vec<Option<u32>> = live
                .iter()
                .map(|&i| match specs[i] {
                    JobSpec::PageRank { seed, .. } => seed,
                    _ => None,
                })
                .collect();
            let cols = pagerank_multi(engine, iters, &seeds);
            let secs = t.elapsed().as_secs_f64() / k as f64;
            let rounds = if n == 0 { 0 } else { iters };
            for (&i, col) in live.iter().zip(cols) {
                results[i] = Some(Ok(JobOutput { values: col, rounds, seconds: secs }));
            }
        }
        JobSpec::SpmvSum { iters, .. } => {
            let sources: Vec<Option<u32>> = live
                .iter()
                .map(|&i| match specs[i] {
                    JobSpec::SpmvSum { source, .. } => source,
                    _ => None,
                })
                .collect();
            let cols = spmv_sum_multi(engine, iters, &sources);
            let secs = t.elapsed().as_secs_f64() / k as f64;
            for (&i, col) in live.iter().zip(cols) {
                results[i] = Some(Ok(JobOutput { values: col, rounds: iters, seconds: secs }));
            }
        }
        JobSpec::Sssp { max_rounds, .. } => {
            let sources: Vec<u32> = live
                .iter()
                .map(|&i| match specs[i] {
                    JobSpec::Sssp { source, .. } => source,
                    _ => 0,
                })
                .collect();
            let cols = sssp_multi(engine, &sources, max_rounds);
            let secs = t.elapsed().as_secs_f64() / k as f64;
            for (&i, (dist, rounds)) in live.iter().zip(cols) {
                results[i] = Some(Ok(JobOutput { values: dist, rounds, seconds: secs }));
            }
        }
        JobSpec::Components { .. } | JobSpec::Bfs { .. } => {
            // Unreachable: batch_group_key() returned None above.
            for &i in &live {
                results[i] = Some(Err(format!("{} jobs cannot be batched", specs[i].name())));
            }
        }
    }
    results.into_iter().map(|r| r.unwrap_or_else(|| Err("empty batch".to_string()))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::symmetrize;
    use crate::engine::{build_engine, EngineKind};
    use ihtl_core::IhtlConfig;
    use ihtl_graph::graph::paper_example_graph;

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() }
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let direct = crate::pagerank::pagerank(e.as_mut(), 10).ranks;
        let mut e2 = build_engine(EngineKind::Ihtl, &g, &cfg());
        let out =
            run_job(e2.as_mut(), Some(&g), &JobSpec::PageRank { iters: 10, seed: None }).unwrap();
        assert_eq!(direct, out.values);
        assert_eq!(out.rounds, 10);
    }

    #[test]
    fn every_spec_runs_on_every_engine() {
        let g = paper_example_graph();
        let sym = symmetrize(&g);
        let specs = [
            JobSpec::PageRank { iters: 5, seed: None },
            JobSpec::PageRank { iters: 5, seed: Some(2) },
            JobSpec::SpmvSum { iters: 3, source: None },
            JobSpec::SpmvSum { iters: 3, source: Some(1) },
            JobSpec::Sssp { source: 0, max_rounds: 16 },
            JobSpec::Components { max_rounds: 16 },
            JobSpec::Bfs { source: 0 },
        ];
        for kind in EngineKind::all() {
            for spec in &specs {
                let base = if spec.needs_symmetrized() { &sym } else { &g };
                let mut e = build_engine(kind, base, &cfg());
                let out = run_job(e.as_mut(), Some(base), spec).unwrap();
                assert_eq!(out.values.len(), base.n_vertices(), "{spec:?} on {kind:?}");
            }
        }
    }

    #[test]
    fn bfs_without_graph_errors() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        assert!(run_job(e.as_mut(), None, &JobSpec::Bfs { source: 0 }).is_err());
    }

    #[test]
    fn out_of_range_source_errors() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let r = run_job(e.as_mut(), Some(&g), &JobSpec::Sssp { source: 999, max_rounds: 4 });
        assert!(r.is_err());
    }

    #[test]
    fn canonical_strings_are_distinct_and_stable() {
        let a = JobSpec::PageRank { iters: 20, seed: None }.canonical();
        let b = JobSpec::PageRank { iters: 21, seed: None }.canonical();
        assert_ne!(a, b);
        assert_eq!(a, "pagerank:iters=20");
        let c = JobSpec::PageRank { iters: 20, seed: Some(3) }.canonical();
        assert_eq!(c, "pagerank:iters=20:seed=3");
        assert_eq!(JobSpec::SpmvSum { iters: 4, source: None }.canonical(), "spmv:iters=4");
        assert_eq!(
            JobSpec::SpmvSum { iters: 4, source: Some(7) }.canonical(),
            "spmv:iters=4:source=7"
        );
    }

    #[test]
    fn batch_group_keys_ignore_per_column_parameters() {
        let a = JobSpec::Sssp { source: 0, max_rounds: 16 }.batch_group_key();
        let b = JobSpec::Sssp { source: 5, max_rounds: 16 }.batch_group_key();
        let c = JobSpec::Sssp { source: 0, max_rounds: 17 }.batch_group_key();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(JobSpec::Bfs { source: 0 }.batch_group_key().is_none());
        assert!(JobSpec::Components { max_rounds: 8 }.batch_group_key().is_none());
        assert_eq!(
            JobSpec::PageRank { iters: 9, seed: Some(1) }.batch_group_key(),
            JobSpec::PageRank { iters: 9, seed: None }.batch_group_key()
        );
    }

    #[test]
    fn rejected_jobs_report_zero_seconds() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        for spec in [
            JobSpec::Sssp { source: 999, max_rounds: 4 },
            JobSpec::PageRank { iters: 4, seed: Some(999) },
            JobSpec::SpmvSum { iters: 4, source: Some(999) },
        ] {
            let r = run_job(e.as_mut(), Some(&g), &spec);
            assert!(r.is_err(), "{spec:?} must be rejected");
        }
    }

    #[test]
    fn pagerank_reports_executed_rounds() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let out =
            run_job(e.as_mut(), Some(&g), &JobSpec::PageRank { iters: 7, seed: None }).unwrap();
        assert_eq!(out.rounds, 7);
    }

    #[test]
    fn run_job_multi_matches_solo_runs_bitwise() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let specs: Vec<JobSpec> =
            [5u32, 0, 2, 6].iter().map(|&s| JobSpec::Sssp { source: s, max_rounds: 32 }).collect();
        let batched = run_job_multi(e.as_mut(), &specs);
        for (spec, out) in specs.iter().zip(&batched) {
            let out = out.as_ref().unwrap();
            let solo = run_job(e.as_mut(), Some(&g), spec).unwrap();
            assert_eq!(out.rounds, solo.rounds);
            for (a, b) in out.values.iter().zip(&solo.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn run_job_multi_isolates_failures() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let specs = vec![
            JobSpec::Sssp { source: 5, max_rounds: 32 },
            JobSpec::Sssp { source: 999, max_rounds: 32 },
            JobSpec::Bfs { source: 0 },
            JobSpec::Sssp { source: 0, max_rounds: 32 },
        ];
        let batched = run_job_multi(e.as_mut(), &specs);
        assert!(batched[0].is_ok());
        assert!(batched[1].as_ref().unwrap_err().contains("out of range"));
        assert!(batched[2].as_ref().unwrap_err().contains("cannot be batched"));
        assert!(batched[3].is_ok());
        let solo = run_job(e.as_mut(), Some(&g), &specs[3]).unwrap();
        for (a, b) in batched[3].as_ref().unwrap().values.iter().zip(&solo.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn run_job_multi_rejects_group_mismatch() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let specs = vec![
            JobSpec::Sssp { source: 5, max_rounds: 32 },
            JobSpec::Sssp { source: 0, max_rounds: 16 },
        ];
        let batched = run_job_multi(e.as_mut(), &specs);
        assert!(batched[0].is_ok());
        assert!(batched[1].as_ref().unwrap_err().contains("group mismatch"));
    }
}
