//! Job dispatch: one entry point for every analytic this crate implements.
//!
//! Callers (the serving layer, harness binaries) describe work as a
//! [`JobSpec`] value and run it against any `dyn SpmvEngine` — replacing
//! the per-binary glue that used to call each analytic's function directly.
//! The output is uniform (a value vector in original vertex order, a round
//! count, compute seconds), which is what a wire protocol or a results
//! table needs regardless of the analytic.

use std::time::Instant;

use ihtl_graph::Graph;

use crate::bfs::bfs;
use crate::components::propagate_components;
use crate::engine::SpmvEngine;
use crate::pagerank::pagerank;
use crate::spmv::spmv_iterations;
use crate::sssp::sssp;

/// A description of one analytics job, independent of the engine that will
/// run it.
#[derive(Clone, Debug, PartialEq)]
pub enum JobSpec {
    /// PageRank for a fixed number of iterations (the paper's §4.1
    /// evaluation application).
    PageRank { iters: usize },
    /// Bare iterated sum-SpMV from `x0 = 1` (§2.2's microbenchmark).
    SpmvSum { iters: usize },
    /// Unweighted Bellman–Ford from `source`.
    Sssp { source: u32, max_rounds: usize },
    /// Min-label propagation. The engine must have been built over a
    /// symmetrized graph for weakly-connected-component semantics.
    Components { max_rounds: usize },
    /// Direction-optimizing BFS from `source` — runs on the raw graph, not
    /// an SpMV engine.
    Bfs { source: u32 },
}

impl JobSpec {
    /// Stable lowercase name (wire protocol, cache keys, reports).
    pub fn name(&self) -> &'static str {
        match self {
            JobSpec::PageRank { .. } => "pagerank",
            JobSpec::SpmvSum { .. } => "spmv",
            JobSpec::Sssp { .. } => "sssp",
            JobSpec::Components { .. } => "cc",
            JobSpec::Bfs { .. } => "bfs",
        }
    }

    /// Canonical parameter string: equal specs produce equal strings, so it
    /// can key a result cache.
    pub fn canonical(&self) -> String {
        match self {
            JobSpec::PageRank { iters } => format!("pagerank:iters={iters}"),
            JobSpec::SpmvSum { iters } => format!("spmv:iters={iters}"),
            JobSpec::Sssp { source, max_rounds } => {
                format!("sssp:source={source}:max_rounds={max_rounds}")
            }
            JobSpec::Components { max_rounds } => format!("cc:max_rounds={max_rounds}"),
            JobSpec::Bfs { source } => format!("bfs:source={source}"),
        }
    }

    /// Whether this job must run on an engine built over the symmetrized
    /// graph (weak connectivity) rather than the directed one.
    pub fn needs_symmetrized(&self) -> bool {
        matches!(self, JobSpec::Components { .. })
    }

    /// Whether this job runs on the raw [`Graph`] rather than an engine.
    pub fn needs_raw_graph(&self) -> bool {
        matches!(self, JobSpec::Bfs { .. })
    }
}

/// Uniform result of a dispatched job.
#[derive(Clone, Debug)]
pub struct JobOutput {
    /// Per-vertex result in *original* vertex order: ranks (PageRank), SpMV
    /// values, distances (SSSP; unreachable = +∞), component labels, or BFS
    /// levels (unreachable = +∞).
    pub values: Vec<f64>,
    /// Iterations / propagation rounds / BFS levels executed.
    pub rounds: usize,
    /// Compute wall-clock seconds (excludes queueing; the caller measures
    /// end-to-end latency separately).
    pub seconds: f64,
}

/// Runs `spec` on `engine` (and `graph` for raw-graph jobs). Errors are
/// returned as strings suitable for a wire-protocol `error` field.
pub fn run_job(
    engine: &mut dyn SpmvEngine,
    graph: Option<&Graph>,
    spec: &JobSpec,
) -> Result<JobOutput, String> {
    let n = engine.n_vertices();
    let check_source = |s: u32| {
        if (s as usize) < n {
            Ok(())
        } else {
            Err(format!("source vertex {s} out of range (n = {n})"))
        }
    };
    // lint:allow(R4): wall-clock feeds the reported job timing, not values
    let t = Instant::now();
    // Span name is the analytic's stable wire name, arg its round budget.
    let _job_span = ihtl_trace::span(spec.name());
    match *spec {
        JobSpec::PageRank { iters } => {
            let run = pagerank(engine, iters);
            Ok(JobOutput { values: run.ranks, rounds: iters, seconds: t.elapsed().as_secs_f64() })
        }
        JobSpec::SpmvSum { iters } => {
            let x0 = vec![1.0f64; n];
            let run = spmv_iterations(engine, &x0, iters);
            Ok(JobOutput { values: run.values, rounds: iters, seconds: t.elapsed().as_secs_f64() })
        }
        JobSpec::Sssp { source, max_rounds } => {
            check_source(source)?;
            let run = sssp(engine, source, max_rounds);
            Ok(JobOutput {
                values: run.dist,
                rounds: run.rounds,
                seconds: t.elapsed().as_secs_f64(),
            })
        }
        JobSpec::Components { max_rounds } => {
            let run = propagate_components(engine, max_rounds);
            Ok(JobOutput {
                values: run.labels.iter().map(|&l| l as f64).collect(),
                rounds: run.rounds,
                seconds: t.elapsed().as_secs_f64(),
            })
        }
        JobSpec::Bfs { source } => {
            let g = graph.ok_or("bfs requires the raw graph (unavailable for this dataset)")?;
            check_source(source)?;
            let run = bfs(g, source);
            let values = run
                .level
                .iter()
                .map(|&l| if l == u32::MAX { f64::INFINITY } else { l as f64 })
                .collect();
            Ok(JobOutput {
                values,
                rounds: run.bottom_up_levels.len(),
                seconds: t.elapsed().as_secs_f64(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::symmetrize;
    use crate::engine::{build_engine, EngineKind};
    use ihtl_core::IhtlConfig;
    use ihtl_graph::graph::paper_example_graph;

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() }
    }

    #[test]
    fn dispatch_matches_direct_calls() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let direct = crate::pagerank::pagerank(e.as_mut(), 10).ranks;
        let mut e2 = build_engine(EngineKind::Ihtl, &g, &cfg());
        let out = run_job(e2.as_mut(), Some(&g), &JobSpec::PageRank { iters: 10 }).unwrap();
        assert_eq!(direct, out.values);
        assert_eq!(out.rounds, 10);
    }

    #[test]
    fn every_spec_runs_on_every_engine() {
        let g = paper_example_graph();
        let sym = symmetrize(&g);
        let specs = [
            JobSpec::PageRank { iters: 5 },
            JobSpec::SpmvSum { iters: 3 },
            JobSpec::Sssp { source: 0, max_rounds: 16 },
            JobSpec::Components { max_rounds: 16 },
            JobSpec::Bfs { source: 0 },
        ];
        for kind in EngineKind::all() {
            for spec in &specs {
                let base = if spec.needs_symmetrized() { &sym } else { &g };
                let mut e = build_engine(kind, base, &cfg());
                let out = run_job(e.as_mut(), Some(base), spec).unwrap();
                assert_eq!(out.values.len(), base.n_vertices(), "{spec:?} on {kind:?}");
            }
        }
    }

    #[test]
    fn bfs_without_graph_errors() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        assert!(run_job(e.as_mut(), None, &JobSpec::Bfs { source: 0 }).is_err());
    }

    #[test]
    fn out_of_range_source_errors() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let r = run_job(e.as_mut(), Some(&g), &JobSpec::Sssp { source: 999, max_rounds: 4 });
        assert!(r.is_err());
    }

    #[test]
    fn canonical_strings_are_distinct_and_stable() {
        let a = JobSpec::PageRank { iters: 20 }.canonical();
        let b = JobSpec::PageRank { iters: 21 }.canonical();
        assert_ne!(a, b);
        assert_eq!(a, "pagerank:iters=20");
    }
}
