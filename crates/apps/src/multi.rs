//! Multi-query (SpMM) analytics: K independent queries per edge sweep.
//!
//! Under serving load every queued job re-streams the entire edge array to
//! produce one value vector, yet the edge stream is the expensive part —
//! the in-hub temporal locality that makes one sweep cache-efficient
//! amortises even better when the sweep feeds K queries at once. The
//! drivers here run K parameter-variants of one analytic (multi-seed
//! PageRank, multi-source SSSP, batched SpMV sums) over
//! [`SpmvEngine::spmm_add`]/[`SpmvEngine::spmm_min`], with all vectors in
//! the row-major `[vertex][k]` layout so one vertex's K values share a
//! cache line.
//!
//! **Determinism contract.** Each column performs, element for element, the
//! same floating-point expressions its solo counterpart performs, and the
//! SpMM kernels fold each column in the solo combine order. Batched results
//! are therefore bitwise identical to K solo runs wherever the solo runs
//! themselves are schedule independent (pull engines on any input; every
//! engine under the exact-arithmetic discipline of `tests/determinism.rs`).

use crate::engine::SpmvEngine;
use crate::pagerank::DAMPING;

/// Extracts column `j` from a `[vertex][k]` interleaved vector.
pub fn take_column(v: &[f64], k: usize, j: usize) -> Vec<f64> {
    assert!(j < k);
    v.iter().skip(j).step_by(k).copied().collect()
}

/// Interleaves equal-length columns into the `[vertex][k]` layout.
pub fn interleave_columns(cols: &[Vec<f64>]) -> Vec<f64> {
    let k = cols.len();
    assert!(k >= 1);
    let n = cols[0].len();
    let mut out = vec![0.0; n * k];
    for (j, col) in cols.iter().enumerate() {
        assert_eq!(col.len(), n);
        for (i, &v) in col.iter().enumerate() {
            out[i * k + j] = v;
        }
    }
    out
}

/// K PageRank queries in one sweep: column `j` runs `iters` iterations
/// with teleport seed `seeds[j]` — `None` is the uniform teleport of
/// [`crate::pagerank::pagerank`], `Some(s)` personalises the teleport (and
/// the initial ranks) to vertex `s` in original order. Returns one rank
/// vector (original order) per column.
///
/// A uniform column's teleport vector holds exactly the scalar
/// `(1 - d)/n` a solo run uses, so the fused update performs bit-identical
/// arithmetic; a seeded column mirrors [`pagerank_seeded`].
pub fn pagerank_multi(
    engine: &mut dyn SpmvEngine,
    iters: usize,
    seeds: &[Option<u32>],
) -> Vec<Vec<f64>> {
    let k = seeds.len();
    assert!(k >= 1, "pagerank_multi needs at least one column");
    let n = engine.n_vertices();
    if n == 0 {
        return vec![Vec::new(); k];
    }
    let uniform_base = (1.0 - DAMPING) / n as f64;
    // Per-column teleport vector and initial ranks, original order first so
    // seeds address original IDs, then permuted into engine order (a pure
    // permutation, bitwise-transparent).
    let mut base_orig = vec![0.0f64; n * k];
    let mut pr_orig = vec![0.0f64; n * k];
    for (j, seed) in seeds.iter().enumerate() {
        match *seed {
            None => {
                for i in 0..n {
                    base_orig[i * k + j] = uniform_base;
                    pr_orig[i * k + j] = 1.0 / n as f64;
                }
            }
            Some(s) => {
                assert!((s as usize) < n, "seed vertex out of range");
                base_orig[s as usize * k + j] = 1.0 - DAMPING;
                pr_orig[s as usize * k + j] = 1.0;
            }
        }
    }
    let basev = engine.from_original_order_multi(&base_orig, k);
    let mut pr = engine.from_original_order_multi(&pr_orig, k);
    let mut contrib = vec![0.0f64; n * k];
    let mut sums = vec![0.0f64; n * k];
    for it in 0..iters {
        // Same fused contribution/update pass as the solo driver, k columns
        // wide; `idx / k` is the vertex, `idx % k` the column.
        let degs = engine.out_degrees();
        {
            let pr = &pr[..];
            let sums = &sums[..];
            let basev = &basev[..];
            ihtl_parallel::par_for_each_mut(&mut contrib, 4096, |idx, c| {
                let d = degs[idx / k];
                let rank = if it == 0 { pr[idx] } else { basev[idx] + DAMPING * sums[idx] };
                *c = if d > 0 { rank / d as f64 } else { 0.0 };
            });
        }
        engine.spmm_add(&contrib, &mut sums, k);
    }
    if iters > 0 {
        let sums = &sums[..];
        let basev = &basev[..];
        ihtl_parallel::par_for_each_mut(&mut pr, 4096, |idx, p| {
            *p = basev[idx] + DAMPING * sums[idx];
        });
    }
    let back = engine.to_original_order_multi(&pr, k);
    (0..k).map(|j| take_column(&back, k, j)).collect()
}

/// Personalised PageRank: [`crate::pagerank::pagerank`] generalised with an
/// optional teleport seed. Defined as the single-column case of
/// [`pagerank_multi`], so solo and batched replies agree by construction.
pub fn pagerank_seeded(engine: &mut dyn SpmvEngine, iters: usize, seed: Option<u32>) -> Vec<f64> {
    pagerank_multi(engine, iters, &[seed]).pop().unwrap_or_default()
}

/// K Bellman–Ford queries in one sweep: column `j` relaxes from
/// `sources[j]` (original ID). Returns `(distances, rounds)` per column;
/// `rounds` is the round count the solo run would report — the first round
/// with no improvement for that column (inclusive), capped at
/// `max_rounds`. Columns already at fixpoint keep relaxing without change
/// (min is idempotent), so late columns never perturb early ones.
pub fn sssp_multi(
    engine: &mut dyn SpmvEngine,
    sources: &[u32],
    max_rounds: usize,
) -> Vec<(Vec<f64>, usize)> {
    let k = sources.len();
    assert!(k >= 1, "sssp_multi needs at least one column");
    let n = engine.n_vertices();
    for &s in sources {
        assert!((s as usize) < n, "source vertex out of range");
    }
    let mut init = vec![f64::INFINITY; n * k];
    for (j, &s) in sources.iter().enumerate() {
        init[s as usize * k + j] = 0.0;
    }
    let mut dist = engine.from_original_order_multi(&init, k);
    let mut bumped = vec![0.0f64; n * k];
    let mut relaxed = vec![0.0f64; n * k];
    let mut col_rounds = vec![max_rounds; k];
    let mut done = vec![false; k];
    let mut rounds = 0;
    while rounds < max_rounds && done.iter().any(|d| !d) {
        for (b, &d) in bumped.iter_mut().zip(&dist) {
            *b = d + 1.0;
        }
        engine.spmm_min(&bumped, &mut relaxed, k);
        let mut changed = vec![false; k];
        for (idx, (d, &r)) in dist.iter_mut().zip(&relaxed).enumerate() {
            if r < *d {
                *d = r;
                changed[idx % k] = true;
            }
        }
        rounds += 1;
        for j in 0..k {
            if !done[j] && !changed[j] {
                done[j] = true;
                col_rounds[j] = rounds;
            }
        }
    }
    let back = engine.to_original_order_multi(&dist, k);
    (0..k).map(|j| (take_column(&back, k, j), col_rounds[j])).collect()
}

/// K iterated sum-SpMV queries in one sweep: column `j` starts from all
/// ones (`sources[j] == None`, the classic §2.2 microbenchmark) or from an
/// indicator at the given original-order vertex. Per-column renormalisation
/// follows the solo driver's fold order exactly (ascending rows, rescale
/// when the 1-norm exceeds `1e100`).
pub fn spmv_sum_multi(
    engine: &mut dyn SpmvEngine,
    iters: usize,
    sources: &[Option<u32>],
) -> Vec<Vec<f64>> {
    let k = sources.len();
    assert!(k >= 1, "spmv_sum_multi needs at least one column");
    let n = engine.n_vertices();
    let mut x0 = vec![0.0f64; n * k];
    for (j, src) in sources.iter().enumerate() {
        match *src {
            None => {
                for i in 0..n {
                    x0[i * k + j] = 1.0;
                }
            }
            Some(s) => {
                assert!((s as usize) < n, "source vertex out of range");
                x0[s as usize * k + j] = 1.0;
            }
        }
    }
    let mut x = engine.from_original_order_multi(&x0, k);
    let mut y = vec![0.0f64; n * k];
    for _ in 0..iters {
        engine.spmm_add(&x, &mut y, k);
        std::mem::swap(&mut x, &mut y);
        for j in 0..k {
            let mut norm = 0.0f64;
            let mut i = j;
            while i < x.len() {
                norm += x[i].abs();
                i += k;
            }
            if norm > 1e100 {
                let inv = 1.0 / norm;
                let mut i = j;
                while i < x.len() {
                    x[i] *= inv;
                    i += k;
                }
            }
        }
    }
    let back = engine.to_original_order_multi(&x, k);
    (0..k).map(|j| take_column(&back, k, j)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_engine, EngineKind};
    use crate::pagerank::pagerank;
    use crate::spmv::spmv_iterations;
    use crate::sssp::sssp;
    use ihtl_core::IhtlConfig;
    use ihtl_graph::graph::paper_example_graph;

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() }
    }

    fn assert_bitwise(a: &[f64], b: &[f64], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn uniform_pagerank_multi_matches_solo_bitwise() {
        // Pull engine: schedule independent, so bitwise identity must hold
        // on arbitrary (non-integer) rank values.
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::PullGraphGrind, &g, &cfg());
        let solo = pagerank(e.as_mut(), 12).ranks;
        for k in [1usize, 4, 8] {
            let seeds = vec![None; k];
            let cols = pagerank_multi(e.as_mut(), 12, &seeds);
            for (j, col) in cols.iter().enumerate() {
                assert_bitwise(col, &solo, &format!("k={k} column {j}"));
            }
        }
    }

    #[test]
    fn seeded_pagerank_multi_matches_seeded_solo_bitwise() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::PullGraphGrind, &g, &cfg());
        let seeds = [Some(2u32), None, Some(5u32), Some(0u32)];
        let cols = pagerank_multi(e.as_mut(), 10, &seeds);
        for (j, seed) in seeds.iter().enumerate() {
            let solo = pagerank_seeded(e.as_mut(), 10, *seed);
            assert_bitwise(&cols[j], &solo, &format!("seed {seed:?}"));
        }
        // A seeded column concentrates rank around its seed's reach.
        let seeded = &cols[0];
        assert!(seeded[2] > seeded[3], "seed vertex outranks non-seed");
    }

    #[test]
    fn sssp_multi_matches_solo_bitwise_on_every_engine() {
        // Min is exact on any values: bitwise identity holds on every
        // engine, batch against independent solo runs.
        let g = paper_example_graph();
        let sources = [5u32, 0, 2, 5, 1, 6, 3, 4];
        for kind in EngineKind::all() {
            for k in [1usize, 4, 8] {
                let mut e = build_engine(kind, &g, &cfg());
                let cols = sssp_multi(e.as_mut(), &sources[..k], 64);
                for (j, &s) in sources[..k].iter().enumerate() {
                    let solo = sssp(e.as_mut(), s, 64);
                    assert_bitwise(&cols[j].0, &solo.dist, &format!("{kind:?} k={k} src {s}"));
                    assert_eq!(cols[j].1, solo.rounds, "{kind:?} k={k} src {s} rounds");
                }
            }
        }
    }

    #[test]
    fn spmv_sum_multi_matches_solo_bitwise() {
        // Integer-valued inputs (ones / indicators): exact Add, bitwise on
        // every engine.
        let g = paper_example_graph();
        let n = g.n_vertices();
        for kind in EngineKind::all() {
            let mut e = build_engine(kind, &g, &cfg());
            let sources = [None, Some(2u32), Some(5u32), None];
            let cols = spmv_sum_multi(e.as_mut(), 3, &sources);
            for (j, src) in sources.iter().enumerate() {
                let mut x0 = vec![0.0; n];
                match *src {
                    None => x0.iter_mut().for_each(|v| *v = 1.0),
                    Some(s) => x0[s as usize] = 1.0,
                }
                let solo = spmv_iterations(e.as_mut(), &x0, 3);
                assert_bitwise(&cols[j], &solo.values, &format!("{kind:?} src {src:?}"));
            }
        }
    }

    #[test]
    fn column_helpers_round_trip() {
        let cols = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let m = interleave_columns(&cols);
        assert_eq!(m, vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        assert_eq!(take_column(&m, 2, 0), cols[0]);
        assert_eq!(take_column(&m, 2, 1), cols[1]);
    }

    #[test]
    fn sssp_multi_rounds_respect_max_rounds_cap() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let cols = sssp_multi(e.as_mut(), &[5, 0], 2);
        for (j, &(_, rounds)) in cols.iter().enumerate() {
            let solo = sssp(e.as_mut(), [5u32, 0][j], 2);
            assert_eq!(rounds, solo.rounds);
            assert!(rounds <= 2);
        }
    }
}
