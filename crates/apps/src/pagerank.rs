//! PageRank — the paper's evaluation application (§4.1):
//!
//! `PR_i[v] = 0.15/n + 0.85 · Σ_{u ∈ N⁻(v)} PR_{i-1}[u] / |N⁺(u)|`
//!
//! Each iteration is one sum-SpMV over contributions `x[u] = PR[u]/deg⁺(u)`,
//! which is exactly what Figures 7/8 time per iteration.

use std::time::Instant;

use crate::engine::SpmvEngine;

/// Damping factor used throughout the paper's evaluation.
pub const DAMPING: f64 = 0.85;

/// Result of a PageRank run.
#[derive(Clone, Debug)]
pub struct PageRankRun {
    /// Final ranks in *original* vertex order.
    pub ranks: Vec<f64>,
    /// Wall-clock seconds of each SpMV iteration (contribution scaling and
    /// rank update included — they are part of every framework's iteration).
    pub iter_seconds: Vec<f64>,
}

impl PageRankRun {
    /// Mean per-iteration time, skipping the first (warm-up) iteration when
    /// more than one was run — matching the paper's per-iteration metric.
    pub fn mean_iter_seconds(&self) -> f64 {
        let timed: &[f64] =
            if self.iter_seconds.len() > 1 { &self.iter_seconds[1..] } else { &self.iter_seconds };
        timed.iter().sum::<f64>() / timed.len().max(1) as f64
    }
}

/// Runs `iters` PageRank iterations on `engine`.
pub fn pagerank(engine: &mut dyn SpmvEngine, iters: usize) -> PageRankRun {
    let n = engine.n_vertices();
    if n == 0 {
        return PageRankRun { ranks: Vec::new(), iter_seconds: Vec::new() };
    }
    let base = (1.0 - DAMPING) / n as f64;
    let mut pr = vec![1.0 / n as f64; n];
    let mut contrib = vec![0.0f64; n];
    let mut sums = vec![0.0f64; n];
    let mut iter_seconds = Vec::with_capacity(iters);

    for it in 0..iters {
        // lint:allow(R4): per-iteration timing for the Table 2 report
        let t = Instant::now();
        // Contribution of each vertex; dangling vertices contribute 0 (the
        // paper's formula divides by |N⁺| which only appears for vertices
        // that have out-edges). From the second iteration on, the rank
        // update `base + d·sums` is fused into this scaling pass — same
        // per-element arithmetic, one fewer full-vector sweep per
        // iteration — so ranks are materialized only once, after the loop.
        let degs = engine.out_degrees();
        {
            let pr = &pr[..];
            let sums = &sums[..];
            ihtl_parallel::par_for_each_mut(&mut contrib, 4096, |i, c| {
                let d = degs[i];
                let rank = if it == 0 { pr[i] } else { base + DAMPING * sums[i] };
                *c = if d > 0 { rank / d as f64 } else { 0.0 };
            });
        }
        engine.spmv_add(&contrib, &mut sums);
        iter_seconds.push(t.elapsed().as_secs_f64());
    }
    if iters > 0 {
        let sums = &sums[..];
        ihtl_parallel::par_for_each_mut(&mut pr, 4096, |i, p| {
            *p = base + DAMPING * sums[i];
        });
    }

    PageRankRun { ranks: engine.to_original_order(&pr), iter_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_engine, EngineKind};
    use ihtl_core::IhtlConfig;
    use ihtl_graph::graph::paper_example_graph;
    use ihtl_graph::Graph;

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() }
    }

    #[test]
    fn ranks_sum_below_one_and_positive() {
        // With dangling losses ranks sum to <= 1 but every rank >= base.
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::PullGraphGrind, &g, &cfg());
        let run = pagerank(e.as_mut(), 20);
        let total: f64 = run.ranks.iter().sum();
        assert!(total <= 1.0 + 1e-9, "sum {total}");
        assert!(run.ranks.iter().all(|&r| r >= (1.0 - DAMPING) / 8.0 - 1e-12));
    }

    #[test]
    fn all_engines_compute_identical_ranks() {
        let g = paper_example_graph();
        let mut reference: Option<Vec<f64>> = None;
        for kind in EngineKind::all() {
            let mut e = build_engine(kind, &g, &cfg());
            let run = pagerank(e.as_mut(), 15);
            match &reference {
                None => reference = Some(run.ranks),
                Some(r) => {
                    for (v, (a, b)) in r.iter().zip(&run.ranks).enumerate() {
                        assert!((a - b).abs() < 1e-12, "{kind:?} vertex {v}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn hub_outranks_fringe() {
        // The in-hub (vertex 2) must end with more rank than a fringe
        // vertex with a single in-edge.
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let run = pagerank(e.as_mut(), 30);
        assert!(run.ranks[2] > run.ranks[0]);
        assert!(run.ranks[2] > run.ranks[3]);
    }

    #[test]
    fn converges_on_a_cycle_to_uniform() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let mut e = build_engine(EngineKind::PullGalois, &g, &cfg());
        let run = pagerank(e.as_mut(), 50);
        for &r in &run.ranks {
            assert!((r - 0.25).abs() < 1e-10, "rank {r}");
        }
    }

    #[test]
    fn iteration_times_recorded() {
        let g = paper_example_graph();
        let mut e = build_engine(EngineKind::PullGraphGrind, &g, &cfg());
        let run = pagerank(e.as_mut(), 5);
        assert_eq!(run.iter_seconds.len(), 5);
        assert!(run.mean_iter_seconds() >= 0.0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        let mut e = build_engine(EngineKind::PullGraphGrind, &g, &cfg());
        let run = pagerank(e.as_mut(), 3);
        assert!(run.ranks.is_empty());
    }
}
