//! The engine abstraction: one SpMV implementation per paper baseline.
//!
//! An engine owns whatever preprocessed structure its strategy needs
//! (segmented CSC, destination partitions, the iHTL graph) plus reusable
//! scratch, and exposes object-safe `spmv_add` / `spmv_min` so the analytic
//! layer can iterate over `dyn SpmvEngine`s uniformly — mirroring how the
//! paper runs the same PageRank in every framework.
//!
//! Engines that keep the input graph around are generic over
//! `Borrow<Graph>`: batch callers pass `&Graph` ([`build_engine`]) and pay
//! no refcount, while long-lived services pass `Arc<Graph>`
//! ([`build_engine_shared`]) so one immutable graph snapshot serves many
//! concurrent engine instances. The expensive iHTL preprocessing is shared
//! the same way: [`ihtl_engine_from_shared`] wraps an existing
//! `Arc<IhtlGraph>` with fresh per-engine scratch buffers.

use std::borrow::Borrow;
use std::sync::Arc;

use ihtl_core::{HybridPlan, IhtlConfig, IhtlGraph, ThreadBuffers};
use ihtl_graph::Graph;
use ihtl_traversal::pb::PbGraph;
use ihtl_traversal::pull::{
    spmv_pull, spmv_pull_chunked, spmv_pull_multi, spmv_pull_segmented, SegmentedCsc,
};
use ihtl_traversal::push::{spmv_push_atomic, spmv_push_partitioned, DstPartitionedCsr};
use ihtl_traversal::{Add, Min};

/// The traversal strategies of the paper's evaluation (Figure 7 columns),
/// plus iHTL and the propagation-blocking additions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// GraphGrind pull: edge-balanced contiguous partitions.
    PullGraphGrind,
    /// GraphIt pull: Cagra-style source-segmented CSC.
    PullGraphIt,
    /// Galois pull: fine-grained chunked scheduling.
    PullGalois,
    /// GraphGrind push: destination-partitioned, race-free.
    PushGraphGrind,
    /// GraphIt push: atomic CAS updates.
    PushGraphIt,
    /// The paper's contribution.
    Ihtl,
    /// Propagation-blocking push: contributions binned by destination
    /// segment, merged segment-by-segment (Balaji & Lucia).
    Pb,
    /// iHTL's blocking with the flipped-block push replaced by the binned
    /// sweep; the sparse pull phase is kept.
    Hybrid,
}

impl EngineKind {
    /// Human-readable label used in harness tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::PullGraphGrind => "pull/GraphGrind",
            EngineKind::PullGraphIt => "pull/GraphIt",
            EngineKind::PullGalois => "pull/Galois",
            EngineKind::PushGraphGrind => "push/GraphGrind",
            EngineKind::PushGraphIt => "push/GraphIt",
            EngineKind::Ihtl => "iHTL",
            EngineKind::Pb => "push/PB",
            EngineKind::Hybrid => "iHTL+PB",
        }
    }

    /// All kinds in the order Figure 7 reports them, with the
    /// propagation-blocking additions appended.
    pub fn all() -> [EngineKind; 8] {
        [
            EngineKind::PushGraphGrind,
            EngineKind::PushGraphIt,
            EngineKind::PullGraphGrind,
            EngineKind::PullGraphIt,
            EngineKind::PullGalois,
            EngineKind::Ihtl,
            EngineKind::Pb,
            EngineKind::Hybrid,
        ]
    }
}

/// An SpMV engine: computes `y[v] = ⊕ x[u]` over in-neighbours, in the
/// engine's own vertex order.
pub trait SpmvEngine {
    /// Number of vertices.
    fn n_vertices(&self) -> usize;

    /// Strategy label for reports.
    fn label(&self) -> &'static str;

    /// Original out-degrees in the engine's vertex order (PageRank divides
    /// contributions by them).
    fn out_degrees(&self) -> &[u32];

    /// `y = A^T ⊕_add x` — one sum-SpMV iteration.
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]);

    /// `y = A^T ⊕_min x` — one min-SpMV iteration.
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]);

    /// Maps a vector from the engine's order back to original vertex IDs
    /// (identity for every engine except iHTL).
    fn to_original_order(&self, v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }

    /// Maps a vector from original vertex IDs into the engine's order.
    /// (Takes `&self` deliberately: this is a conversion the engine
    /// performs, not a constructor — hence the lint allow.)
    #[allow(clippy::wrong_self_convention)]
    fn from_original_order(&self, v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }

    /// `Y = A^T ⊕_add X` over `k` interleaved columns per vertex (row-major
    /// `[vertex][k]`, so one vertex's `k` values share a cache line) — one
    /// call serves `k` independent queries. The default de-interleaves into
    /// `k` solo sweeps, which is bitwise identical to `k` separate
    /// [`SpmvEngine::spmv_add`] calls by construction; engines with native
    /// SpMM kernels (iHTL, GraphGrind pull) override it so the `k` queries
    /// share a single edge sweep.
    fn spmm_add(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        let n = self.n_vertices();
        spmm_by_columns(n, x, y, k, |xj, yj| self.spmv_add(xj, yj));
    }

    /// `Y = A^T ⊕_min X` over `k` interleaved columns per vertex (see
    /// [`SpmvEngine::spmm_add`] for the layout and the fallback contract).
    fn spmm_min(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        let n = self.n_vertices();
        spmm_by_columns(n, x, y, k, |xj, yj| self.spmv_min(xj, yj));
    }

    /// [`SpmvEngine::to_original_order`] for `k` interleaved columns per
    /// vertex — a permutation of whole `k`-wide rows.
    fn to_original_order_multi(&self, v: &[f64], _k: usize) -> Vec<f64> {
        v.to_vec()
    }

    /// [`SpmvEngine::from_original_order`] for `k` interleaved columns.
    #[allow(clippy::wrong_self_convention)]
    fn from_original_order_multi(&self, v: &[f64], _k: usize) -> Vec<f64> {
        v.to_vec()
    }
}

/// The de-interleaving SpMM fallback: runs `solo` on each of the `k`
/// columns of `x`/`y` in turn. Column `j`'s sweep sees exactly the vector a
/// solo run would, so the fallback is bitwise identical to `k` solo runs.
fn spmm_by_columns(
    n: usize,
    x: &[f64],
    y: &mut [f64],
    k: usize,
    mut solo: impl FnMut(&[f64], &mut [f64]),
) {
    assert!(k >= 1, "spmm needs at least one column");
    assert_eq!(x.len(), n * k);
    assert_eq!(y.len(), n * k);
    let mut xj = vec![0.0; n];
    let mut yj = vec![0.0; n];
    for j in 0..k {
        for (i, slot) in xj.iter_mut().enumerate() {
            *slot = x[i * k + j];
        }
        solo(&xj, &mut yj);
        for (i, &v) in yj.iter().enumerate() {
            y[i * k + j] = v;
        }
    }
}

/// Builds the engine of the given kind over `g`, generic in how the graph
/// is held (`&Graph` or `Arc<Graph>`). The construction cost is the
/// engine's preprocessing (what Table 2 prices for iHTL; the blocked
/// baselines pay analogous costs at load time).
fn build_engine_over<'g, G>(
    kind: EngineKind,
    g: G,
    ihtl_cfg: &IhtlConfig,
) -> Box<dyn SpmvEngine + Send + 'g>
where
    G: Borrow<Graph> + Send + 'g,
{
    let gr = g.borrow();
    let out_degrees: Vec<u32> =
        (0..gr.n_vertices() as u32).map(|v| gr.out_degree(v) as u32).collect();
    match kind {
        EngineKind::PullGraphGrind => Box::new(PullGraphGrind { g, out_degrees }),
        EngineKind::PullGraphIt => {
            // Segment width sized so a segment's source data fits the same
            // cache budget iHTL uses (Cagra's sizing rule).
            let width = (ihtl_cfg.cache_budget_bytes / ihtl_cfg.vertex_data_bytes).max(1);
            Box::new(PullGraphIt { seg: SegmentedCsc::new(gr, width), out_degrees })
        }
        EngineKind::PullGalois => Box::new(PullGalois { g, out_degrees, chunk: 256 }),
        EngineKind::PushGraphGrind => {
            let parts = ihtl_traversal::pull::default_parts();
            Box::new(PushGraphGrind { part: DstPartitionedCsr::new(gr, parts), out_degrees })
        }
        EngineKind::PushGraphIt => Box::new(PushGraphIt { g, out_degrees }),
        EngineKind::Ihtl => {
            let ih = Arc::new(IhtlGraph::build(gr, ihtl_cfg));
            Box::new(ihtl_engine_from_shared(ih))
        }
        EngineKind::Pb => {
            let pb = PbGraph::new(gr, ihtl_cfg.cache_budget_bytes, ihtl_cfg.vertex_data_bytes);
            Box::new(pb_engine_from_shared(Arc::new(pb), out_degrees))
        }
        EngineKind::Hybrid => {
            let ih = Arc::new(IhtlGraph::build(gr, ihtl_cfg));
            Box::new(hybrid_engine_from_shared(ih))
        }
    }
}

/// Builds the engine of the given kind borrowing `g` for the engine's
/// lifetime — the batch/bench entry point.
pub fn build_engine<'g>(
    kind: EngineKind,
    g: &'g Graph,
    ihtl_cfg: &IhtlConfig,
) -> Box<dyn SpmvEngine + Send + 'g> {
    build_engine_over(kind, g, ihtl_cfg)
}

/// Builds an engine that co-owns the graph through an `Arc`, so the result
/// is `'static` and can be pooled in a long-lived service while the same
/// immutable snapshot backs other engines and direct readers.
pub fn build_engine_shared(
    kind: EngineKind,
    g: Arc<Graph>,
    ihtl_cfg: &IhtlConfig,
) -> Box<dyn SpmvEngine + Send> {
    build_engine_over(kind, g, ihtl_cfg)
}

struct PullGraphGrind<G> {
    g: G,
    out_degrees: Vec<u32>,
}

impl<G: Borrow<Graph> + Send> SpmvEngine for PullGraphGrind<G> {
    fn n_vertices(&self) -> usize {
        self.g.borrow().n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::PullGraphGrind.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull::<Add>(self.g.borrow(), x, y);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull::<Min>(self.g.borrow(), x, y);
    }
    // Native SpMM: one edge sweep for all k columns. Pull folds are
    // schedule independent, so each column stays bitwise equal to a solo
    // sweep on any inputs.
    fn spmm_add(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        spmv_pull_multi::<Add>(self.g.borrow(), x, y, k);
    }
    fn spmm_min(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        spmv_pull_multi::<Min>(self.g.borrow(), x, y, k);
    }
}

struct PullGraphIt {
    seg: SegmentedCsc,
    out_degrees: Vec<u32>,
}

impl SpmvEngine for PullGraphIt {
    fn n_vertices(&self) -> usize {
        self.out_degrees.len()
    }
    fn label(&self) -> &'static str {
        EngineKind::PullGraphIt.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull_segmented::<Add>(&self.seg, x, y);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull_segmented::<Min>(&self.seg, x, y);
    }
}

struct PullGalois<G> {
    g: G,
    out_degrees: Vec<u32>,
    chunk: usize,
}

impl<G: Borrow<Graph> + Send> SpmvEngine for PullGalois<G> {
    fn n_vertices(&self) -> usize {
        self.g.borrow().n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::PullGalois.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull_chunked::<Add>(self.g.borrow(), x, y, self.chunk);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull_chunked::<Min>(self.g.borrow(), x, y, self.chunk);
    }
}

struct PushGraphGrind {
    part: DstPartitionedCsr,
    out_degrees: Vec<u32>,
}

impl SpmvEngine for PushGraphGrind {
    fn n_vertices(&self) -> usize {
        self.out_degrees.len()
    }
    fn label(&self) -> &'static str {
        EngineKind::PushGraphGrind.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_push_partitioned::<Add>(&self.part, x, y);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_push_partitioned::<Min>(&self.part, x, y);
    }
}

struct PushGraphIt<G> {
    g: G,
    out_degrees: Vec<u32>,
}

impl<G: Borrow<Graph> + Send> SpmvEngine for PushGraphIt<G> {
    fn n_vertices(&self) -> usize {
        self.g.borrow().n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::PushGraphIt.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_push_atomic::<Add>(self.g.borrow(), x, y);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_push_atomic::<Min>(self.g.borrow(), x, y);
    }
}

/// The iHTL engine. `x`/`y` live in the iHTL (new) vertex order; the
/// `to/from_original_order` hooks translate at the analytic boundary.
///
/// The preprocessed graph is held behind an `Arc` so the one-time
/// flipped-block construction (the cost the paper's §4.2 amortises) is
/// shared by every engine instance serving it; only the per-thread hub
/// buffers are private per engine.
pub struct Ihtl {
    pub ih: Arc<IhtlGraph>,
    bufs: ThreadBuffers,
    /// Per-column-count SpMM buffers, allocated on first use and reused
    /// across batches of the same width (a serving engine sees the same few
    /// K values over and over).
    multi_bufs: Vec<(usize, ThreadBuffers)>,
    out_degrees: Vec<u32>,
}

impl Ihtl {
    /// Access to the underlying iHTL graph (stats, breakdowns).
    pub fn graph(&self) -> &IhtlGraph {
        &self.ih
    }

    /// Index of the cached `k`-column buffers, allocating on first use.
    fn multi_buf_index(&mut self, k: usize) -> usize {
        match self.multi_bufs.iter().position(|(kk, _)| *kk == k) {
            Some(i) => i,
            None => {
                self.multi_bufs.push((k, self.ih.new_buffers_multi(k)));
                self.multi_bufs.len() - 1
            }
        }
    }

    /// Runs one SpMV and returns the phase breakdown (Table 5's right
    /// half needs it; the trait method discards it).
    pub fn spmv_add_with_breakdown(
        &mut self,
        x: &[f64],
        y: &mut [f64],
    ) -> ihtl_core::ExecBreakdown {
        self.ih.spmv::<Add>(x, y, &mut self.bufs)
    }
}

impl SpmvEngine for Ihtl {
    fn n_vertices(&self) -> usize {
        self.ih.n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::Ihtl.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        self.ih.spmv::<Add>(x, y, &mut self.bufs);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        self.ih.spmv::<Min>(x, y, &mut self.bufs);
    }
    fn to_original_order(&self, v: &[f64]) -> Vec<f64> {
        self.ih.to_old_order(v)
    }
    fn from_original_order(&self, v: &[f64]) -> Vec<f64> {
        self.ih.to_new_order(v)
    }
    // Native SpMM: the flipped-block push, merge and sparse pull all run
    // k columns wide over one edge sweep (`IhtlGraph::spmm`).
    fn spmm_add(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        if k == 1 {
            return self.spmv_add(x, y);
        }
        let i = self.multi_buf_index(k);
        self.ih.spmm::<Add>(x, y, k, &mut self.multi_bufs[i].1);
    }
    fn spmm_min(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        if k == 1 {
            return self.spmv_min(x, y);
        }
        let i = self.multi_buf_index(k);
        self.ih.spmm::<Min>(x, y, k, &mut self.multi_bufs[i].1);
    }
    fn to_original_order_multi(&self, v: &[f64], k: usize) -> Vec<f64> {
        self.ih.to_old_order_multi(v, k)
    }
    fn from_original_order_multi(&self, v: &[f64], k: usize) -> Vec<f64> {
        self.ih.to_new_order_multi(v, k)
    }
}

/// The propagation-blocking push engine: contributions are binned by
/// destination cache segment during the source sweep, then merged
/// segment-by-segment ([`PbGraph`]). Works in original vertex order, and —
/// uniquely among the push engines — is bitwise identical to pull for any
/// monoid and inputs (every edge's bin slot is fixed at build time).
pub struct Pb {
    /// Shared so a disk-loaded layout can back many pooled engines (and
    /// stay resident across engine rebuilds) without copying the bins.
    pb: Arc<PbGraph>,
    /// Per-edge contribution scratch, reused across traversals.
    values: Vec<f64>,
    out_degrees: Vec<u32>,
}

impl SpmvEngine for Pb {
    fn n_vertices(&self) -> usize {
        self.pb.n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::Pb.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        self.pb.spmv::<Add>(x, y, &mut self.values);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        self.pb.spmv::<Min>(x, y, &mut self.values);
    }
    // Native SpMM: bin and merge run k columns wide over one edge sweep;
    // slots are fixed per edge, so each column stays bitwise equal to a
    // solo sweep on any inputs.
    fn spmm_add(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        self.pb.spmm::<Add>(x, y, k, &mut self.values);
    }
    fn spmm_min(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        self.pb.spmm::<Min>(x, y, k, &mut self.values);
    }
}

/// The hybrid engine: iHTL's blocking and sparse pull with the buffered
/// flipped-block push replaced by the binned sweep
/// ([`IhtlGraph::spmv_hybrid`]). Shares the preprocessed graph exactly like
/// [`Ihtl`]; only the per-engine plan values are private.
pub struct Hybrid {
    ih: Arc<IhtlGraph>,
    plan: HybridPlan,
    out_degrees: Vec<u32>,
}

impl SpmvEngine for Hybrid {
    fn n_vertices(&self) -> usize {
        self.ih.n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::Hybrid.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        self.ih.spmv_hybrid::<Add>(x, y, &mut self.plan);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        self.ih.spmv_hybrid::<Min>(x, y, &mut self.plan);
    }
    fn to_original_order(&self, v: &[f64]) -> Vec<f64> {
        self.ih.to_old_order(v)
    }
    fn from_original_order(&self, v: &[f64]) -> Vec<f64> {
        self.ih.to_new_order(v)
    }
    // Native SpMM: the binned push and the sparse pull both run k columns
    // wide over one edge sweep (`IhtlGraph::spmm_hybrid`).
    fn spmm_add(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        if k == 1 {
            return self.spmv_add(x, y);
        }
        self.ih.spmm_hybrid::<Add>(x, y, k, &mut self.plan);
    }
    fn spmm_min(&mut self, x: &[f64], y: &mut [f64], k: usize) {
        if k == 1 {
            return self.spmv_min(x, y);
        }
        self.ih.spmm_hybrid::<Min>(x, y, k, &mut self.plan);
    }
    fn to_original_order_multi(&self, v: &[f64], k: usize) -> Vec<f64> {
        self.ih.to_old_order_multi(v, k)
    }
    fn from_original_order_multi(&self, v: &[f64], k: usize) -> Vec<f64> {
        self.ih.to_new_order_multi(v, k)
    }
}

/// Builds the iHTL engine concretely (callers needing breakdown access).
pub fn build_ihtl_engine(g: &Graph, cfg: &IhtlConfig) -> Ihtl {
    ihtl_engine_from_shared(Arc::new(IhtlGraph::build(g, cfg)))
}

/// Wraps an already-built (possibly disk-loaded) propagation-blocking
/// layout in an engine with fresh contribution scratch. `out_degrees` must
/// be the out-degrees of the graph the layout was built from (the PB image
/// stores topology only; degree data travels with the dataset).
pub fn pb_engine_from_shared(pb: Arc<PbGraph>, out_degrees: Vec<u32>) -> Pb {
    Pb { pb, values: Vec::new(), out_degrees }
}

/// Wraps an already-preprocessed iHTL graph in a hybrid engine with a fresh
/// propagation-blocking plan, sharing the blocked graph like
/// [`ihtl_engine_from_shared`].
pub fn hybrid_engine_from_shared(ih: Arc<IhtlGraph>) -> Hybrid {
    let plan = ih.new_hybrid_plan();
    let out_degrees = ih.out_degree_new().to_vec();
    Hybrid { ih, plan, out_degrees }
}

/// Wraps an already-preprocessed (possibly disk-loaded) iHTL graph in an
/// engine with fresh scratch buffers. Many engines can share one
/// `Arc<IhtlGraph>`, paying the paper's Table 2 preprocessing cost once per
/// dataset rather than once per request.
pub fn ihtl_engine_from_shared(ih: Arc<IhtlGraph>) -> Ihtl {
    let bufs = ih.new_buffers();
    let out_degrees = ih.out_degree_new().to_vec();
    Ihtl { ih, bufs, multi_bufs: Vec::new(), out_degrees }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_graph::graph::paper_example_graph;

    #[test]
    fn all_engines_agree_on_spmv_add() {
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let x: Vec<f64> = (0..8).map(|i| (i + 1) as f64).collect();
        let mut reference: Option<Vec<f64>> = None;
        for kind in EngineKind::all() {
            let mut e = build_engine(kind, &g, &cfg);
            let xe = e.from_original_order(&x);
            let mut y = vec![0.0; 8];
            e.spmv_add(&xe, &mut y);
            let yo = e.to_original_order(&y);
            match &reference {
                None => reference = Some(yo),
                Some(r) => {
                    for (a, b) in r.iter().zip(&yo) {
                        assert!((a - b).abs() < 1e-9, "{} disagrees", e.label());
                    }
                }
            }
        }
    }

    #[test]
    fn all_engines_agree_on_spmv_min() {
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let x: Vec<f64> = (0..8).map(|i| ((i * 5) % 7) as f64).collect();
        let mut reference: Option<Vec<f64>> = None;
        for kind in EngineKind::all() {
            let mut e = build_engine(kind, &g, &cfg);
            let xe = e.from_original_order(&x);
            let mut y = vec![0.0; 8];
            e.spmv_min(&xe, &mut y);
            let yo = e.to_original_order(&y);
            match &reference {
                None => reference = Some(yo),
                Some(r) => assert_eq!(r, &yo, "{} disagrees", e.label()),
            }
        }
    }

    #[test]
    fn spmm_matches_solo_spmv_per_column_on_every_engine() {
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let n = 8;
        for kind in EngineKind::all() {
            for k in [1usize, 4, 8] {
                let mut e = build_engine(kind, &g, &cfg);
                // Integer-valued columns: Add is exact under any combine
                // grouping, so bitwise identity holds on every engine.
                let cols: Vec<Vec<f64>> = (0..k)
                    .map(|j| (0..n).map(|i| ((i * 3 + j * 5) % 11) as f64).collect())
                    .collect();
                let mut x_orig = vec![0.0; n * k];
                for (j, col) in cols.iter().enumerate() {
                    for (i, &v) in col.iter().enumerate() {
                        x_orig[i * k + j] = v;
                    }
                }
                let x_m = e.from_original_order_multi(&x_orig, k);
                let mut y_m = vec![f64::NAN; n * k];
                e.spmm_add(&x_m, &mut y_m, k);
                let y_back = e.to_original_order_multi(&y_m, k);
                for (j, col) in cols.iter().enumerate() {
                    let xe = e.from_original_order(col);
                    let mut y = vec![f64::NAN; n];
                    e.spmv_add(&xe, &mut y);
                    let solo = e.to_original_order(&y);
                    for v in 0..n {
                        assert_eq!(
                            y_back[v * k + j].to_bits(),
                            solo[v].to_bits(),
                            "{} add k={k} column {j} vertex {v}",
                            e.label()
                        );
                    }
                }
                // Min is exact on any values — use non-integer inputs.
                let x_min: Vec<f64> = (0..n * k).map(|i| (i as f64) * 0.37 + 0.25).collect();
                let xm = e.from_original_order_multi(&x_min, k);
                let mut ym = vec![f64::NAN; n * k];
                e.spmm_min(&xm, &mut ym, k);
                let ym_back = e.to_original_order_multi(&ym, k);
                for j in 0..k {
                    let col: Vec<f64> = (0..n).map(|i| x_min[i * k + j]).collect();
                    let xe = e.from_original_order(&col);
                    let mut y = vec![f64::NAN; n];
                    e.spmv_min(&xe, &mut y);
                    let solo = e.to_original_order(&y);
                    for v in 0..n {
                        assert_eq!(
                            ym_back[v * k + j].to_bits(),
                            solo[v].to_bits(),
                            "{} min k={k} column {j} vertex {v}",
                            e.label()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn out_degrees_follow_engine_order() {
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let e = build_ihtl_engine(&g, &cfg);
        // New ID 0 is old vertex 2 with out-degree 1.
        assert_eq!(e.out_degrees()[0], 1);
        // New ID 4 is old vertex 5 with out-degree 4.
        assert_eq!(e.out_degrees()[4], 4);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            EngineKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 8);
    }
}
