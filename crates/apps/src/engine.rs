//! The engine abstraction: one SpMV implementation per paper baseline.
//!
//! An engine owns whatever preprocessed structure its strategy needs
//! (segmented CSC, destination partitions, the iHTL graph) plus reusable
//! scratch, and exposes object-safe `spmv_add` / `spmv_min` so the analytic
//! layer can iterate over `dyn SpmvEngine`s uniformly — mirroring how the
//! paper runs the same PageRank in every framework.
//!
//! Engines that keep the input graph around are generic over
//! `Borrow<Graph>`: batch callers pass `&Graph` ([`build_engine`]) and pay
//! no refcount, while long-lived services pass `Arc<Graph>`
//! ([`build_engine_shared`]) so one immutable graph snapshot serves many
//! concurrent engine instances. The expensive iHTL preprocessing is shared
//! the same way: [`ihtl_engine_from_shared`] wraps an existing
//! `Arc<IhtlGraph>` with fresh per-engine scratch buffers.

use std::borrow::Borrow;
use std::sync::Arc;

use ihtl_core::{IhtlConfig, IhtlGraph, ThreadBuffers};
use ihtl_graph::Graph;
use ihtl_traversal::pull::{spmv_pull, spmv_pull_chunked, spmv_pull_segmented, SegmentedCsc};
use ihtl_traversal::push::{spmv_push_atomic, spmv_push_partitioned, DstPartitionedCsr};
use ihtl_traversal::{Add, Min};

/// The traversal strategies of the paper's evaluation (Figure 7 columns),
/// plus iHTL.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EngineKind {
    /// GraphGrind pull: edge-balanced contiguous partitions.
    PullGraphGrind,
    /// GraphIt pull: Cagra-style source-segmented CSC.
    PullGraphIt,
    /// Galois pull: fine-grained chunked scheduling.
    PullGalois,
    /// GraphGrind push: destination-partitioned, race-free.
    PushGraphGrind,
    /// GraphIt push: atomic CAS updates.
    PushGraphIt,
    /// The paper's contribution.
    Ihtl,
}

impl EngineKind {
    /// Human-readable label used in harness tables.
    pub fn label(&self) -> &'static str {
        match self {
            EngineKind::PullGraphGrind => "pull/GraphGrind",
            EngineKind::PullGraphIt => "pull/GraphIt",
            EngineKind::PullGalois => "pull/Galois",
            EngineKind::PushGraphGrind => "push/GraphGrind",
            EngineKind::PushGraphIt => "push/GraphIt",
            EngineKind::Ihtl => "iHTL",
        }
    }

    /// All kinds in the order Figure 7 reports them.
    pub fn all() -> [EngineKind; 6] {
        [
            EngineKind::PushGraphGrind,
            EngineKind::PushGraphIt,
            EngineKind::PullGraphGrind,
            EngineKind::PullGraphIt,
            EngineKind::PullGalois,
            EngineKind::Ihtl,
        ]
    }
}

/// An SpMV engine: computes `y[v] = ⊕ x[u]` over in-neighbours, in the
/// engine's own vertex order.
pub trait SpmvEngine {
    /// Number of vertices.
    fn n_vertices(&self) -> usize;

    /// Strategy label for reports.
    fn label(&self) -> &'static str;

    /// Original out-degrees in the engine's vertex order (PageRank divides
    /// contributions by them).
    fn out_degrees(&self) -> &[u32];

    /// `y = A^T ⊕_add x` — one sum-SpMV iteration.
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]);

    /// `y = A^T ⊕_min x` — one min-SpMV iteration.
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]);

    /// Maps a vector from the engine's order back to original vertex IDs
    /// (identity for every engine except iHTL).
    fn to_original_order(&self, v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }

    /// Maps a vector from original vertex IDs into the engine's order.
    /// (Takes `&self` deliberately: this is a conversion the engine
    /// performs, not a constructor — hence the lint allow.)
    #[allow(clippy::wrong_self_convention)]
    fn from_original_order(&self, v: &[f64]) -> Vec<f64> {
        v.to_vec()
    }
}

/// Builds the engine of the given kind over `g`, generic in how the graph
/// is held (`&Graph` or `Arc<Graph>`). The construction cost is the
/// engine's preprocessing (what Table 2 prices for iHTL; the blocked
/// baselines pay analogous costs at load time).
fn build_engine_over<'g, G>(
    kind: EngineKind,
    g: G,
    ihtl_cfg: &IhtlConfig,
) -> Box<dyn SpmvEngine + Send + 'g>
where
    G: Borrow<Graph> + Send + 'g,
{
    let gr = g.borrow();
    let out_degrees: Vec<u32> =
        (0..gr.n_vertices() as u32).map(|v| gr.out_degree(v) as u32).collect();
    match kind {
        EngineKind::PullGraphGrind => Box::new(PullGraphGrind { g, out_degrees }),
        EngineKind::PullGraphIt => {
            // Segment width sized so a segment's source data fits the same
            // cache budget iHTL uses (Cagra's sizing rule).
            let width = (ihtl_cfg.cache_budget_bytes / ihtl_cfg.vertex_data_bytes).max(1);
            Box::new(PullGraphIt { seg: SegmentedCsc::new(gr, width), out_degrees })
        }
        EngineKind::PullGalois => Box::new(PullGalois { g, out_degrees, chunk: 256 }),
        EngineKind::PushGraphGrind => {
            let parts = ihtl_traversal::pull::default_parts();
            Box::new(PushGraphGrind { part: DstPartitionedCsr::new(gr, parts), out_degrees })
        }
        EngineKind::PushGraphIt => Box::new(PushGraphIt { g, out_degrees }),
        EngineKind::Ihtl => {
            let ih = Arc::new(IhtlGraph::build(gr, ihtl_cfg));
            Box::new(ihtl_engine_from_shared(ih))
        }
    }
}

/// Builds the engine of the given kind borrowing `g` for the engine's
/// lifetime — the batch/bench entry point.
pub fn build_engine<'g>(
    kind: EngineKind,
    g: &'g Graph,
    ihtl_cfg: &IhtlConfig,
) -> Box<dyn SpmvEngine + Send + 'g> {
    build_engine_over(kind, g, ihtl_cfg)
}

/// Builds an engine that co-owns the graph through an `Arc`, so the result
/// is `'static` and can be pooled in a long-lived service while the same
/// immutable snapshot backs other engines and direct readers.
pub fn build_engine_shared(
    kind: EngineKind,
    g: Arc<Graph>,
    ihtl_cfg: &IhtlConfig,
) -> Box<dyn SpmvEngine + Send> {
    build_engine_over(kind, g, ihtl_cfg)
}

struct PullGraphGrind<G> {
    g: G,
    out_degrees: Vec<u32>,
}

impl<G: Borrow<Graph> + Send> SpmvEngine for PullGraphGrind<G> {
    fn n_vertices(&self) -> usize {
        self.g.borrow().n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::PullGraphGrind.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull::<Add>(self.g.borrow(), x, y);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull::<Min>(self.g.borrow(), x, y);
    }
}

struct PullGraphIt {
    seg: SegmentedCsc,
    out_degrees: Vec<u32>,
}

impl SpmvEngine for PullGraphIt {
    fn n_vertices(&self) -> usize {
        self.out_degrees.len()
    }
    fn label(&self) -> &'static str {
        EngineKind::PullGraphIt.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull_segmented::<Add>(&self.seg, x, y);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull_segmented::<Min>(&self.seg, x, y);
    }
}

struct PullGalois<G> {
    g: G,
    out_degrees: Vec<u32>,
    chunk: usize,
}

impl<G: Borrow<Graph> + Send> SpmvEngine for PullGalois<G> {
    fn n_vertices(&self) -> usize {
        self.g.borrow().n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::PullGalois.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull_chunked::<Add>(self.g.borrow(), x, y, self.chunk);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_pull_chunked::<Min>(self.g.borrow(), x, y, self.chunk);
    }
}

struct PushGraphGrind {
    part: DstPartitionedCsr,
    out_degrees: Vec<u32>,
}

impl SpmvEngine for PushGraphGrind {
    fn n_vertices(&self) -> usize {
        self.out_degrees.len()
    }
    fn label(&self) -> &'static str {
        EngineKind::PushGraphGrind.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_push_partitioned::<Add>(&self.part, x, y);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_push_partitioned::<Min>(&self.part, x, y);
    }
}

struct PushGraphIt<G> {
    g: G,
    out_degrees: Vec<u32>,
}

impl<G: Borrow<Graph> + Send> SpmvEngine for PushGraphIt<G> {
    fn n_vertices(&self) -> usize {
        self.g.borrow().n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::PushGraphIt.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_push_atomic::<Add>(self.g.borrow(), x, y);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        spmv_push_atomic::<Min>(self.g.borrow(), x, y);
    }
}

/// The iHTL engine. `x`/`y` live in the iHTL (new) vertex order; the
/// `to/from_original_order` hooks translate at the analytic boundary.
///
/// The preprocessed graph is held behind an `Arc` so the one-time
/// flipped-block construction (the cost the paper's §4.2 amortises) is
/// shared by every engine instance serving it; only the per-thread hub
/// buffers are private per engine.
pub struct Ihtl {
    pub ih: Arc<IhtlGraph>,
    bufs: ThreadBuffers,
    out_degrees: Vec<u32>,
}

impl Ihtl {
    /// Access to the underlying iHTL graph (stats, breakdowns).
    pub fn graph(&self) -> &IhtlGraph {
        &self.ih
    }

    /// Runs one SpMV and returns the phase breakdown (Table 5's right
    /// half needs it; the trait method discards it).
    pub fn spmv_add_with_breakdown(
        &mut self,
        x: &[f64],
        y: &mut [f64],
    ) -> ihtl_core::ExecBreakdown {
        self.ih.spmv::<Add>(x, y, &mut self.bufs)
    }
}

impl SpmvEngine for Ihtl {
    fn n_vertices(&self) -> usize {
        self.ih.n_vertices()
    }
    fn label(&self) -> &'static str {
        EngineKind::Ihtl.label()
    }
    fn out_degrees(&self) -> &[u32] {
        &self.out_degrees
    }
    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        self.ih.spmv::<Add>(x, y, &mut self.bufs);
    }
    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        self.ih.spmv::<Min>(x, y, &mut self.bufs);
    }
    fn to_original_order(&self, v: &[f64]) -> Vec<f64> {
        self.ih.to_old_order(v)
    }
    fn from_original_order(&self, v: &[f64]) -> Vec<f64> {
        self.ih.to_new_order(v)
    }
}

/// Builds the iHTL engine concretely (callers needing breakdown access).
pub fn build_ihtl_engine(g: &Graph, cfg: &IhtlConfig) -> Ihtl {
    ihtl_engine_from_shared(Arc::new(IhtlGraph::build(g, cfg)))
}

/// Wraps an already-preprocessed (possibly disk-loaded) iHTL graph in an
/// engine with fresh scratch buffers. Many engines can share one
/// `Arc<IhtlGraph>`, paying the paper's Table 2 preprocessing cost once per
/// dataset rather than once per request.
pub fn ihtl_engine_from_shared(ih: Arc<IhtlGraph>) -> Ihtl {
    let bufs = ih.new_buffers();
    let out_degrees = ih.out_degree_new().to_vec();
    Ihtl { ih, bufs, out_degrees }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_graph::graph::paper_example_graph;

    #[test]
    fn all_engines_agree_on_spmv_add() {
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let x: Vec<f64> = (0..8).map(|i| (i + 1) as f64).collect();
        let mut reference: Option<Vec<f64>> = None;
        for kind in EngineKind::all() {
            let mut e = build_engine(kind, &g, &cfg);
            let xe = e.from_original_order(&x);
            let mut y = vec![0.0; 8];
            e.spmv_add(&xe, &mut y);
            let yo = e.to_original_order(&y);
            match &reference {
                None => reference = Some(yo),
                Some(r) => {
                    for (a, b) in r.iter().zip(&yo) {
                        assert!((a - b).abs() < 1e-9, "{} disagrees", e.label());
                    }
                }
            }
        }
    }

    #[test]
    fn all_engines_agree_on_spmv_min() {
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let x: Vec<f64> = (0..8).map(|i| ((i * 5) % 7) as f64).collect();
        let mut reference: Option<Vec<f64>> = None;
        for kind in EngineKind::all() {
            let mut e = build_engine(kind, &g, &cfg);
            let xe = e.from_original_order(&x);
            let mut y = vec![0.0; 8];
            e.spmv_min(&xe, &mut y);
            let yo = e.to_original_order(&y);
            match &reference {
                None => reference = Some(yo),
                Some(r) => assert_eq!(r, &yo, "{} disagrees", e.label()),
            }
        }
    }

    #[test]
    fn out_degrees_follow_engine_order() {
        let g = paper_example_graph();
        let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
        let e = build_ihtl_engine(&g, &cfg);
        // New ID 0 is old vertex 2 with out-degree 1.
        assert_eq!(e.out_degrees()[0], 1);
        // New ID 4 is old vertex 5 with out-degree 4.
        assert_eq!(e.out_degrees()[4], 4);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            EngineKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}
