//! Unweighted single-source shortest paths (Bellman–Ford over min-plus
//! SpMV) — another §6 analytic ("Single Source Shortest Path").
//!
//! `dist_i[v] = min(dist_{i-1}[v], min_{u ∈ N⁻(v)} dist_{i-1}[u] + 1)`
//!
//! The inner `min` is a min-SpMV over `x[u] = dist[u] + 1`, so the kernel
//! is shared with components and PageRank across all engines.

use crate::engine::SpmvEngine;

/// Result of an SSSP run.
#[derive(Clone, Debug)]
pub struct SsspRun {
    /// Distance from the source per vertex (original order); `f64::INFINITY`
    /// for unreachable vertices.
    pub dist: Vec<f64>,
    /// Relaxation rounds executed.
    pub rounds: usize,
}

/// Runs Bellman–Ford from `source` (original vertex ID). Stops at the first
/// round with no improvement or after `max_rounds`.
pub fn sssp(engine: &mut dyn SpmvEngine, source: u32, max_rounds: usize) -> SsspRun {
    let n = engine.n_vertices();
    assert!((source as usize) < n, "source out of range");
    let mut init = vec![f64::INFINITY; n];
    init[source as usize] = 0.0;
    let mut dist = engine.from_original_order(&init);
    let mut bumped = vec![0.0f64; n];
    let mut relaxed = vec![0.0f64; n];
    let mut rounds = 0;
    while rounds < max_rounds {
        // x[u] = dist[u] + 1 (∞ stays ∞).
        for (b, &d) in bumped.iter_mut().zip(&dist) {
            *b = d + 1.0;
        }
        engine.spmv_min(&bumped, &mut relaxed);
        let mut changed = false;
        for (d, &r) in dist.iter_mut().zip(&relaxed) {
            if r < *d {
                *d = r;
                changed = true;
            }
        }
        rounds += 1;
        if !changed {
            break;
        }
    }
    SsspRun { dist: engine.to_original_order(&dist), rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_engine, EngineKind};
    use ihtl_core::IhtlConfig;
    use ihtl_graph::graph::paper_example_graph;
    use ihtl_graph::Graph;

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() }
    }

    #[test]
    fn path_graph_distances() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let mut e = build_engine(EngineKind::PullGraphGrind, &g, &cfg());
        let run = sssp(e.as_mut(), 0, 100);
        assert_eq!(run.dist, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let mut e = build_engine(EngineKind::PullGalois, &g, &cfg());
        let run = sssp(e.as_mut(), 0, 100);
        assert_eq!(run.dist[1], 1.0);
        assert!(run.dist[2].is_infinite());
        assert!(run.dist[3].is_infinite());
    }

    #[test]
    fn engines_agree_on_paper_example() {
        let g = paper_example_graph();
        let mut reference: Option<Vec<f64>> = None;
        for kind in EngineKind::all() {
            let mut e = build_engine(kind, &g, &cfg());
            let run = sssp(e.as_mut(), 5, 100);
            match &reference {
                None => reference = Some(run.dist),
                Some(r) => assert_eq!(r, &run.dist, "{kind:?}"),
            }
        }
    }

    #[test]
    fn respects_directionality() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut e = build_engine(EngineKind::Ihtl, &g, &cfg());
        let run = sssp(e.as_mut(), 2, 100);
        // Nothing is reachable *from* vertex 2.
        assert_eq!(run.dist[2], 0.0);
        assert!(run.dist[0].is_infinite());
        assert!(run.dist[1].is_infinite());
    }

    #[test]
    fn terminates_early_on_fixpoint() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut e = build_engine(EngineKind::PullGraphGrind, &g, &cfg());
        let run = sssp(e.as_mut(), 0, 1000);
        assert!(run.rounds <= 4, "rounds {}", run.rounds);
    }
}
