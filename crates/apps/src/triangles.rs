//! Triangle counting — the third analytic the paper's §6 names as a target
//! for structure-aware traversal, and the home of the oldest
//! low-degree/high-degree split the paper cites (§5.1: "the history of
//! using different traversals for different vertices returns to the AYZ
//! algorithm for triangle counting").
//!
//! Two counters over the symmetrized graph:
//!
//! * [`count_triangles_edge_iterator`] — the textbook baseline: for every
//!   edge, intersect the endpoints' (sorted) neighbourhoods. Hubs make this
//!   quadratic-ish: a hub's adjacency is scanned once per incident edge.
//! * [`count_triangles_forward`] — the AYZ/forward algorithm: orient every
//!   edge from the lower-ranked to the higher-ranked endpoint under a
//!   degree ordering, then intersect *out*-neighbourhoods only. Hubs sit
//!   last in the ordering, so their huge neighbourhoods are never the
//!   iteration side — the same "treat hubs differently" insight iHTL
//!   applies to SpMV.

use ihtl_graph::{Graph, VertexId};

/// Builds the sorted undirected adjacency (deduplicated union of in- and
/// out-neighbours, self-loops dropped) that both counters consume.
fn undirected_sorted_adjacency(g: &Graph) -> Vec<Vec<VertexId>> {
    (0..g.n_vertices() as u32)
        .map(|v| {
            let mut ns: Vec<VertexId> = g
                .csr()
                .neighbours(v)
                .iter()
                .chain(g.csc().neighbours(v))
                .copied()
                .filter(|&u| u != v)
                .collect();
            ns.sort_unstable();
            ns.dedup();
            ns
        })
        .collect()
}

/// Number of common elements of two ascending-sorted slices.
fn intersection_size(a: &[VertexId], b: &[VertexId]) -> u64 {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0u64);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Baseline edge-iterator triangle count: `Σ_(u,v)∈E |N(u) ∩ N(v)|` over
/// the undirected edge set, divided by 3 (each triangle is found once per
/// edge). Cost concentrates on hubs.
pub fn count_triangles_edge_iterator(g: &Graph) -> u64 {
    let adj = undirected_sorted_adjacency(g);
    let total = ihtl_parallel::par_map_reduce(
        0..adj.len(),
        64,
        || 0u64,
        |r| {
            r.map(|u| {
                let ns = &adj[u];
                let u = u as u32;
                ns.iter()
                    .filter(|&&v| u < v) // each undirected edge once
                    .map(|&v| intersection_size(ns, &adj[v as usize]))
                    .sum::<u64>()
            })
            .sum()
        },
        |a, b| a + b,
        |a, b| a + b,
    );
    total / 3
}

/// AYZ/forward triangle count: rank vertices by (degree, id), orient each
/// edge toward the higher rank, and intersect out-neighbourhoods. Each
/// triangle is counted exactly once, and no intersection ever iterates a
/// hub's full neighbourhood from the hub's side.
pub fn count_triangles_forward(g: &Graph) -> u64 {
    let adj = undirected_sorted_adjacency(g);
    let n = g.n_vertices();
    // rank[v]: position in the ascending-degree order.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_unstable_by_key(|&v| (adj[v as usize].len(), v));
    let mut rank = vec![0u32; n];
    for (r, &v) in order.iter().enumerate() {
        rank[v as usize] = r as u32;
    }
    // Forward adjacency: only neighbours of higher rank, kept sorted by ID.
    let fwd: Vec<Vec<VertexId>> = (0..n as u32)
        .map(|v| {
            adj[v as usize]
                .iter()
                .copied()
                .filter(|&u| rank[u as usize] > rank[v as usize])
                .collect()
        })
        .collect();
    ihtl_parallel::par_map_reduce(
        0..fwd.len(),
        64,
        || 0u64,
        |r| {
            r.map(|u| {
                let ns = &fwd[u];
                ns.iter().map(|&v| intersection_size(ns, &fwd[v as usize])).sum::<u64>()
            })
            .sum()
        },
        |a, b| a + b,
        |a, b| a + b,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_graph() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(count_triangles_edge_iterator(&g), 1);
        assert_eq!(count_triangles_forward(&g), 1);
    }

    #[test]
    fn square_has_no_triangles() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(count_triangles_edge_iterator(&g), 0);
        assert_eq!(count_triangles_forward(&g), 0);
    }

    #[test]
    fn k4_has_four_triangles() {
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in 0..4u32 {
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(4, &edges);
        assert_eq!(count_triangles_edge_iterator(&g), 4);
        assert_eq!(count_triangles_forward(&g), 4);
    }

    #[test]
    fn direction_and_duplicates_are_ignored() {
        // Same triangle expressed with mixed directions and a reciprocal
        // duplicate: still exactly one triangle.
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (2, 1), (0, 2)]);
        assert_eq!(count_triangles_edge_iterator(&g), 1);
        assert_eq!(count_triangles_forward(&g), 1);
    }

    #[test]
    fn hub_fan_has_no_triangles() {
        // A star: hub 0 with 10 leaves; no leaf-leaf edges.
        let edges: Vec<(u32, u32)> = (1..11u32).map(|v| (v, 0)).collect();
        let g = Graph::from_edges(11, &edges);
        assert_eq!(count_triangles_edge_iterator(&g), 0);
        assert_eq!(count_triangles_forward(&g), 0);
    }

    #[test]
    fn counters_agree_on_random_graph() {
        let mut rng = ihtl_gen::Pcg64::seed_from_u64(7);
        let n = 60usize;
        let edges: Vec<(u32, u32)> = (0..500)
            .map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32))
            .filter(|&(a, b)| a != b)
            .collect();
        let g = Graph::from_edges(n, &edges);
        assert_eq!(count_triangles_edge_iterator(&g), count_triangles_forward(&g));
    }
}
