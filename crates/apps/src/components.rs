//! Connected components by min-label propagation — one of the analytics
//! the paper's §6 names as a future target for the irregular-traversal
//! idea ("Connected Components").
//!
//! Weakly connected components of a directed graph: symmetrize, then
//! iterate `label[v] ← min(label[v], min_{u ∈ N⁻(v)} label[u])` to a
//! fixpoint. Each step is a min-SpMV, so every engine (including iHTL)
//! runs it unchanged.

use ihtl_graph::Graph;

use crate::engine::SpmvEngine;

/// Result of a components run.
#[derive(Clone, Debug)]
pub struct ComponentsRun {
    /// Component label per vertex (the smallest original vertex ID in the
    /// component), in original order.
    pub labels: Vec<u32>,
    /// Number of propagation rounds until fixpoint.
    pub rounds: usize,
}

/// Builds the symmetrized version of `g` (needed for *weakly* connected
/// components; min-label over a directed graph computes reachability
/// minima instead).
pub fn symmetrize(g: &Graph) -> Graph {
    let mut edges = Vec::with_capacity(g.n_edges() * 2);
    for (u, outs) in g.csr().iter_rows() {
        for &v in outs {
            edges.push((u, v));
            edges.push((v, u));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    Graph::from_edges(g.n_vertices(), &edges)
}

/// Runs min-label propagation on `engine` (which must already be built over
/// a symmetrized graph for weak components). `max_rounds` bounds runaway
/// iteration; the propagation otherwise stops at the first unchanged round.
pub fn propagate_components(engine: &mut dyn SpmvEngine, max_rounds: usize) -> ComponentsRun {
    let n = engine.n_vertices();
    let init: Vec<f64> = (0..n).map(|v| v as f64).collect();
    let mut labels = engine.from_original_order(&init);
    let mut incoming = vec![0.0f64; n];
    let mut rounds = 0;
    while rounds < max_rounds {
        engine.spmv_min(&labels, &mut incoming);
        let mut changed = false;
        for (l, &inc) in labels.iter_mut().zip(&incoming) {
            if inc < *l {
                *l = inc;
                changed = true;
            }
        }
        rounds += 1;
        if !changed {
            break;
        }
    }
    let labels = engine.to_original_order(&labels).into_iter().map(|l| l as u32).collect();
    ComponentsRun { labels, rounds }
}

/// Counts distinct components in a label assignment.
pub fn count_components(labels: &[u32]) -> usize {
    let mut distinct: Vec<u32> = labels.to_vec();
    distinct.sort_unstable();
    distinct.dedup();
    distinct.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{build_engine, EngineKind};
    use ihtl_core::IhtlConfig;
    use ihtl_graph::graph::paper_example_graph;

    fn cfg() -> IhtlConfig {
        IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() }
    }

    #[test]
    fn two_separate_cycles() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let sym = symmetrize(&g);
        let mut e = build_engine(EngineKind::PullGraphGrind, &sym, &cfg());
        let run = propagate_components(e.as_mut(), 100);
        assert_eq!(run.labels[..3], [0, 0, 0]);
        assert_eq!(run.labels[3..], [3, 3, 3]);
        assert_eq!(count_components(&run.labels), 2);
    }

    #[test]
    fn paper_example_is_weakly_connected() {
        let g = paper_example_graph();
        let sym = symmetrize(&g);
        for kind in [EngineKind::PullGraphGrind, EngineKind::Ihtl, EngineKind::PushGraphIt] {
            let mut e = build_engine(kind, &sym, &cfg());
            let run = propagate_components(e.as_mut(), 100);
            assert_eq!(count_components(&run.labels), 1, "{kind:?}");
            assert!(run.labels.iter().all(|&l| l == 0), "{kind:?}");
        }
    }

    #[test]
    fn ihtl_matches_pull_labels() {
        let g = Graph::from_edges(
            10,
            &[(0, 1), (2, 1), (3, 2), (5, 4), (6, 5), (7, 8), (8, 9), (9, 7)],
        );
        let sym = symmetrize(&g);
        let mut pull = build_engine(EngineKind::PullGraphGrind, &sym, &cfg());
        let mut ihtl = build_engine(EngineKind::Ihtl, &sym, &cfg());
        let a = propagate_components(pull.as_mut(), 100);
        let b = propagate_components(ihtl.as_mut(), 100);
        assert_eq!(a.labels, b.labels);
        assert_eq!(count_components(&a.labels), 3);
    }

    #[test]
    fn isolated_vertices_keep_own_label() {
        let g = Graph::from_edges(4, &[(0, 1)]);
        let sym = symmetrize(&g);
        let mut e = build_engine(EngineKind::PullGalois, &sym, &cfg());
        let run = propagate_components(e.as_mut(), 10);
        assert_eq!(run.labels, vec![0, 0, 2, 3]);
    }

    #[test]
    fn symmetrize_doubles_one_way_edges_only() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (1, 2)]);
        let sym = symmetrize(&g);
        assert_eq!(sym.n_edges(), 4); // (0,1),(1,0) kept; (1,2)+(2,1) added
    }
}
