//! Graph analytics layered over the traversal engines.
//!
//! The paper evaluates with PageRank (§4.1), "which … iteratively performs
//! SpMV-type calculations". Its §6 argues the same irregular-traversal idea
//! applies to other analytics; this crate implements those too:
//!
//! * [`pagerank`] — the evaluation application (Figures 7 and 8);
//! * [`spmv`] — the bare Algorithm 1/2/3 kernel (§2.2's microbenchmark);
//! * [`components`] — connected components by min-label propagation;
//! * [`sssp`] — unweighted single-source shortest paths (Bellman–Ford);
//! * [`triangles`] — triangle counting with the AYZ-style degree split the
//!   paper's §5.1 traces its lineage to;
//! * [`bfs`] — direction-optimizing BFS, the push-OR-pull scheme the
//!   paper's §5.2 contrasts with iHTL's per-vertex-type mix.
//!
//! All of them run on any [`engine::SpmvEngine`], so every paper baseline
//! (five traversal strategies) and iHTL execute the identical analytic code.

#![forbid(unsafe_code)]

pub mod bfs;
pub mod components;
pub mod engine;
pub mod jobs;
pub mod multi;
pub mod pagerank;
pub mod spmv;
pub mod sssp;
pub mod triangles;

pub use engine::{
    build_engine, build_engine_shared, ihtl_engine_from_shared, pb_engine_from_shared, EngineKind,
    SpmvEngine,
};
pub use jobs::{run_job, run_job_multi, JobOutput, JobSpec};
pub use multi::{pagerank_multi, pagerank_seeded, spmv_sum_multi, sssp_multi};
pub use pagerank::{pagerank, PageRankRun};
