//! Timing counterpart of Figure 8: pull SpMV over graphs relabeled by
//! each reordering algorithm vs the iHTL traversal, plus the preprocessing
//! cost of each algorithm (benchmarked once each — GOrder's cost *is* the
//! result).

use std::hint::black_box;

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_bench::harness::Harness;
use ihtl_core::IhtlConfig;
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_gen::shuffle_vertex_ids;
use ihtl_graph::Graph;
use ihtl_reorder::{gorder, rabbit, simple, slashburn};

fn bench_graph() -> Graph {
    let n = 1usize << 15;
    let mut edges = rmat_edges(15, 400_000, RmatParams::social(), 31);
    shuffle_vertex_ids(n, &mut edges, 31);
    Graph::from_edges(n, &edges)
}

fn pull_after_reordering(h: &mut Harness) {
    let g = bench_graph();
    let cfg = IhtlConfig { cache_budget_bytes: 4 << 10, ..IhtlConfig::default() };
    let orderings = vec![
        ("initial", simple::identity(&g)),
        ("SlashBurn", slashburn::slashburn(&g, 0.005)),
        ("GOrder", gorder::gorder(&g, 5)),
        ("Rabbit-Order", rabbit::rabbit_order(&g, 16)),
    ];
    let mut group = h.group("fig8/pull_after");
    group.sample_size(10);
    let n = g.n_vertices();
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    for (name, r) in &orderings {
        let relabeled = g.relabel(&r.perm);
        let mut engine = build_engine(EngineKind::PullGraphGrind, &relabeled, &cfg);
        group.bench_function(format!("pull/{name}"), |b| {
            b.iter(|| engine.spmv_add(black_box(&x), black_box(&mut y)));
        });
    }
    let mut ihtl = build_engine(EngineKind::Ihtl, &g, &cfg);
    let xe = ihtl.from_original_order(&x);
    group.bench_function("iHTL/blocked", |b| {
        b.iter(|| ihtl.spmv_add(black_box(&xe), black_box(&mut y)));
    });
    group.finish();
}

fn preprocessing_cost(h: &mut Harness) {
    let g = bench_graph();
    let mut group = h.group("fig8/preprocessing");
    group.sample_size(10);
    group.bench_function("SlashBurn", |b| b.iter(|| black_box(slashburn::slashburn(&g, 0.005))));
    group.bench_function("Rabbit-Order", |b| b.iter(|| black_box(rabbit::rabbit_order(&g, 16))));
    group.bench_function("iHTL-build", |b| {
        let cfg = IhtlConfig { cache_budget_bytes: 4 << 10, ..IhtlConfig::default() };
        b.iter(|| black_box(ihtl_core::IhtlGraph::build(&g, &cfg)))
    });
    // GOrder is far slower; give it fewer samples so the bench suite still
    // terminates promptly.
    group.sample_size(3);
    group.bench_function("GOrder", |b| b.iter(|| black_box(gorder::gorder(&g, 5))));
    group.finish();
}

fn main() {
    let mut h = Harness::from_args();
    pull_after_reordering(&mut h);
    preprocessing_cost(&mut h);
}
