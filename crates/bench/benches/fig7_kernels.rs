//! Timing counterpart of Figure 7: one SpMV iteration per traversal
//! strategy, on a bench-sized social graph and a bench-sized web graph.
//! (The full-scale table comes from `--bin fig7_pagerank`; this bench gives
//! per-kernel numbers on smaller inputs.)

use std::hint::black_box;

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_bench::harness::Harness;
use ihtl_core::IhtlConfig;
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_gen::shuffle_vertex_ids;
use ihtl_gen::weblike::{web_edges, WebParams};
use ihtl_graph::Graph;

fn bench_graphs() -> Vec<(&'static str, Graph)> {
    let n_social = 1usize << 16;
    let mut social_edges = rmat_edges(16, 900_000, RmatParams::social(), 21);
    shuffle_vertex_ids(n_social, &mut social_edges, 21);
    let social = Graph::from_edges(n_social, &social_edges);

    let n_web = 80_000;
    let web =
        Graph::from_edges(n_web, &web_edges(n_web, 1_000_000, &WebParams::concentrated(), 22));
    vec![("social", social), ("web", web)]
}

fn main() {
    // Budget scaled to the bench graphs (|V| ≈ 2^16): H = 512.
    let cfg = IhtlConfig { cache_budget_bytes: 4 << 10, ..IhtlConfig::default() };
    let mut h = Harness::from_args();
    let mut group = h.group("fig7/spmv");
    group.sample_size(10);
    for (name, g) in bench_graphs() {
        let n = g.n_vertices();
        let x = vec![1.0f64; n];
        let mut y = vec![0.0f64; n];
        for kind in EngineKind::all() {
            let mut engine = build_engine(kind, &g, &cfg);
            let xe = engine.from_original_order(&x);
            group.bench_function(format!("{}/{}", kind.label(), name), |b| {
                b.iter(|| {
                    engine.spmv_add(black_box(&xe), black_box(&mut y));
                });
            });
        }
    }
    group.finish();
}
