//! Microbenchmarks of the substrates: graph construction, transpose, cache
//! simulation throughput, and the reordering building blocks.

use std::hint::black_box;

use ihtl_bench::harness::Harness;
use ihtl_cachesim::{replay_pull, CacheConfig, Hierarchy, ReplayMode};
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_graph::builder::csr_from_pairs;
use ihtl_graph::Graph;

fn graph_construction(h: &mut Harness) {
    let edges = rmat_edges(15, 300_000, RmatParams::social(), 51);
    let mut group = h.group("micro/graph");
    group.sample_size(10);
    group.throughput_elements(edges.len() as u64);
    group.bench_function("csr_from_pairs", |b| {
        b.iter(|| black_box(csr_from_pairs(1 << 15, 1 << 15, &edges)))
    });
    let csr = csr_from_pairs(1 << 15, 1 << 15, &edges);
    group.bench_function("transpose", |b| b.iter(|| black_box(csr.transpose())));
    group.finish();
}

fn cache_hierarchy_throughput(h: &mut Harness) {
    let mut group = h.group("micro/cachesim");
    group.sample_size(10);
    let addrs: Vec<u64> = (0..100_000u64).map(|i| (i * 2654435761) % (1 << 24)).collect();
    group.throughput_elements(addrs.len() as u64);
    group.bench_function("hierarchy_access", |b| {
        let mut hier = Hierarchy::new(&CacheConfig::default());
        b.iter(|| {
            for &a in &addrs {
                black_box(hier.access(a));
            }
        })
    });
    let g = Graph::from_edges(1 << 14, &rmat_edges(14, 120_000, RmatParams::social(), 52));
    group.throughput_elements(g.n_edges() as u64);
    group.bench_function("replay_pull_full", |b| {
        b.iter(|| black_box(replay_pull(&g, &CacheConfig::default(), ReplayMode::Full)))
    });
    group.finish();
}

fn spmv_throughput(h: &mut Harness) {
    use ihtl_traversal::pull::{spmv_pull, spmv_pull_serial};
    use ihtl_traversal::push::spmv_push_atomic;
    use ihtl_traversal::Add;
    let g = Graph::from_edges(1 << 16, &rmat_edges(16, 900_000, RmatParams::social(), 53));
    let n = g.n_vertices();
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut group = h.group("micro/spmv");
    group.sample_size(10);
    group.throughput_elements(g.n_edges() as u64);
    group.bench_function("pull_serial", |b| {
        b.iter(|| spmv_pull_serial::<Add>(&g, black_box(&x), black_box(&mut y)))
    });
    group.bench_function("pull_parallel", |b| {
        b.iter(|| spmv_pull::<Add>(&g, black_box(&x), black_box(&mut y)))
    });
    group.bench_function("push_atomic", |b| {
        b.iter(|| spmv_push_atomic::<Add>(&g, black_box(&x), black_box(&mut y)))
    });
    group.finish();
}

fn main() {
    let mut h = Harness::from_args();
    graph_construction(&mut h);
    cache_hierarchy_throughput(&mut h);
    spmv_throughput(&mut h);
}
