//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **buffered vs atomic flipped blocks** — the paper's §3.4 choice of
//!   buffering over atomics;
//! * **fringe separation on/off** — the §3.1 zero-block optimisation;
//! * **exact vs single-pass block counting** — the §6 lower-complexity
//!   preprocessing variant;
//! * **acceptance threshold** — the 50 % rule of §3.3, swept.

use std::hint::black_box;

use ihtl_bench::harness::Harness;
use ihtl_core::{BlockCountMode, IhtlConfig, IhtlGraph};
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_gen::shuffle_vertex_ids;
use ihtl_graph::Graph;
use ihtl_traversal::Add;

fn bench_graph() -> Graph {
    let n = 1usize << 16;
    let mut edges = rmat_edges(16, 900_000, RmatParams::social(), 41);
    shuffle_vertex_ids(n, &mut edges, 41);
    Graph::from_edges(n, &edges)
}

fn cfg() -> IhtlConfig {
    IhtlConfig { cache_budget_bytes: 4 << 10, ..IhtlConfig::default() }
}

fn buffered_vs_atomic(h: &mut Harness) {
    let g = bench_graph();
    let ih = IhtlGraph::build(&g, &cfg());
    let n = g.n_vertices();
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut bufs = ih.new_buffers();
    let mut group = h.group("ablation/fb_protection");
    group.sample_size(10);
    group.bench_function("buffered (paper)", |b| {
        b.iter(|| ih.spmv::<Add>(black_box(&x), black_box(&mut y), &mut bufs))
    });
    group.bench_function("atomic", |b| {
        b.iter(|| ih.spmv_atomic_hubs::<Add>(black_box(&x), black_box(&mut y)))
    });
    group.finish();
}

fn fringe_separation(h: &mut Harness) {
    let g = bench_graph();
    let n = g.n_vertices();
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut group = h.group("ablation/fringe_separation");
    group.sample_size(10);
    for (label, separate) in [("separated (paper)", true), ("no zero block", false)] {
        let ih = IhtlGraph::build(&g, &IhtlConfig { separate_fringe: separate, ..cfg() });
        let mut bufs = ih.new_buffers();
        group.bench_function(label, |b| {
            b.iter(|| ih.spmv::<Add>(black_box(&x), black_box(&mut y), &mut bufs))
        });
    }
    group.finish();
}

fn block_count_modes(h: &mut Harness) {
    let g = bench_graph();
    let mut group = h.group("ablation/preprocessing_mode");
    group.sample_size(10);
    group.bench_function("exact (§3.3)", |b| b.iter(|| black_box(IhtlGraph::build(&g, &cfg()))));
    group.bench_function("single-pass (§6)", |b| {
        let c = IhtlConfig { block_count: BlockCountMode::SinglePass { max_blocks: 16 }, ..cfg() };
        b.iter(|| black_box(IhtlGraph::build(&g, &c)))
    });
    group.finish();
}

fn acceptance_threshold(h: &mut Harness) {
    let g = bench_graph();
    let n = g.n_vertices();
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut group = h.group("ablation/acceptance_threshold");
    group.sample_size(10);
    for ratio in [0.25f64, 0.5, 0.75] {
        let ih = IhtlGraph::build(&g, &IhtlConfig { acceptance_ratio: ratio, ..cfg() });
        let mut bufs = ih.new_buffers();
        group.bench_function(format!("{ratio}:{}FB", ih.n_blocks()), |b| {
            b.iter(|| ih.spmv::<Add>(black_box(&x), black_box(&mut y), &mut bufs))
        });
    }
    group.finish();
}

fn main() {
    let mut h = Harness::from_args();
    buffered_vs_atomic(&mut h);
    fringe_separation(&mut h);
    block_count_modes(&mut h);
    acceptance_threshold(&mut h);
}
