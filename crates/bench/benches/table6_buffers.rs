//! Timing counterpart of Table 6: iHTL SpMV with the hub-buffer budget
//! swept over the scaled L1 / L2÷2 / L2 / 2·L2 sizes (plus a wider tail, as
//! an extension) on a bench-sized web graph.

use std::hint::black_box;

use ihtl_bench::harness::Harness;
use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_gen::weblike::{web_edges, WebParams};
use ihtl_graph::Graph;
use ihtl_traversal::Add;

fn main() {
    let n = 100_000;
    let g = Graph::from_edges(n, &web_edges(n, 1_200_000, &WebParams::concentrated(), 61));
    let mut h = Harness::from_args();
    let mut group = h.group("table6/buffer_budget");
    group.sample_size(10);
    // The four paper budgets (scaled) plus an extended tail.
    for (label, bytes) in [
        ("L1=0.5KiB", 512usize),
        ("L2half=2KiB", 2 << 10),
        ("L2=4KiB", 4 << 10),
        ("2xL2=8KiB", 8 << 10),
        ("8xL2=32KiB", 32 << 10),
        ("64xL2=256KiB", 256 << 10),
    ] {
        let cfg = IhtlConfig { cache_budget_bytes: bytes, ..IhtlConfig::default() };
        let ih = IhtlGraph::build(&g, &cfg);
        let mut bufs = ih.new_buffers();
        let x = vec![1.0f64; n];
        let mut y = vec![0.0f64; n];
        group.bench_function(label, |b| {
            b.iter(|| {
                ih.spmv::<Add>(black_box(&x), black_box(&mut y), &mut bufs);
            });
        });
    }
    group.finish();
}
