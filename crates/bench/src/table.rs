//! Minimal aligned-table renderer for harness reports.

/// Renders a right-aligned table (first column left-aligned) with a header
/// row and a separator, markdown-flavoured so reports paste into
/// EXPERIMENTS.md directly.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let n_cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), n_cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i == 0 {
                line.push_str(&format!(" {c:<w$} |"));
            } else {
                line.push_str(&format!(" {c:>w$} |"));
            }
        }
        line.push('\n');
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('|');
    for (i, w) in widths.iter().enumerate() {
        if i == 0 {
            out.push_str(&format!("{:-<1$}|", "", w + 2));
        } else {
            out.push_str(&format!("{:-<1$}:|", "", w + 1));
        }
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Formats seconds as milliseconds with sensible precision.
pub fn ms(seconds: f64) -> String {
    let v = seconds * 1e3;
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// Formats a ratio as `N.N×`.
pub fn speedup(r: f64) -> String {
    format!("{r:.1}×")
}

/// Formats a fraction as a percentage.
pub fn pct(f: f64) -> String {
    format!("{:.1}%", f * 100.0)
}

/// Formats a count in millions.
pub fn millions(v: u64) -> String {
    format!("{:.1}", v as f64 / 1e6)
}

/// Geometric mean of positive ratios; 0 on empty input.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let s = render(
            &["name", "x"],
            &[vec!["a".into(), "1".into()], vec!["long-name".into(), "12345".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("| a"));
        // All lines same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
    }

    #[test]
    fn format_helpers() {
        assert_eq!(ms(0.123), "123");
        assert_eq!(ms(0.0123), "12.3");
        assert_eq!(ms(0.000123), "0.123");
        assert_eq!(speedup(2.349), "2.3×");
        assert_eq!(pct(0.457), "45.7%");
        assert_eq!(millions(2_500_000), "2.5");
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }
}
