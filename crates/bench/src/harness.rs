//! Minimal in-repo timing harness for the `benches/` targets.
//!
//! A hermetic replacement for the external criterion crate (the build
//! environment cannot fetch crates): each bench target is a plain
//! `fn main()` (`harness = false`) that builds a [`Harness`], opens named
//! groups and times closures. The statistics are deliberately simple —
//! warm-up plus a fixed number of measured samples, reporting
//! min/median/mean — which is enough to compare kernels within one run,
//! the only comparison the paper's figures need.
//!
//! Usage mirrors the old criterion call shape so the bench sources read the
//! same:
//!
//! ```no_run
//! use ihtl_bench::harness::Harness;
//! let mut h = Harness::from_args();
//! let mut group = h.group("fig7/spmv");
//! group.sample_size(10);
//! group.bench_function("pull/social", |b| b.iter(|| 2 + 2));
//! group.finish();
//! ```
//!
//! `cargo bench -- <substring>` filters benchmarks by `group/id` name.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so bench sources can `black_box` inputs without depending on
/// `std::hint` themselves.
pub use std::hint::black_box as bb;

/// Top-level bench driver: holds the optional name filter from argv.
pub struct Harness {
    filter: Option<String>,
}

impl Harness {
    /// Builds a harness from the process arguments, ignoring the flags
    /// cargo passes to bench binaries (`--bench`, `--nocapture`, ...). The
    /// first positional argument becomes a substring filter.
    pub fn from_args() -> Self {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Self { filter }
    }

    /// Opens a named benchmark group.
    pub fn group(&mut self, name: &str) -> Group<'_> {
        Group { harness: self, name: name.to_string(), samples: 10, throughput_elements: None }
    }
}

/// A named group of benchmarks sharing sample settings.
pub struct Group<'h> {
    harness: &'h Harness,
    name: String,
    samples: usize,
    throughput_elements: Option<u64>,
}

impl Group<'_> {
    /// Number of measured samples per benchmark (after one warm-up run).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Declares the per-iteration element count so the report includes an
    /// elements/second figure.
    pub fn throughput_elements(&mut self, elements: u64) -> &mut Self {
        self.throughput_elements = Some(elements);
        self
    }

    /// Runs one benchmark. `f` is called once with a [`Bencher`]; the
    /// closure it passes to [`Bencher::iter`] is what gets timed.
    pub fn bench_function<F>(&mut self, id: impl AsRef<str>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut b = Bencher { samples: self.samples, times: Vec::new() };
        f(&mut b);
        report(&full, &b.times, self.throughput_elements);
        self
    }

    /// Ends the group (kept for criterion-shaped call sites; the report is
    /// printed per benchmark, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times its argument.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up
        self.times = (0..self.samples)
            .map(|_| {
                let t = Instant::now();
                black_box(f());
                t.elapsed()
            })
            .collect();
    }
}

fn report(name: &str, times: &[Duration], throughput: Option<u64>) {
    if times.is_empty() {
        println!("{name:<48} (no samples — Bencher::iter never called)");
        return;
    }
    let mut sorted: Vec<Duration> = times.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let mut line = format!(
        "{name:<48} min {:>12} median {:>12} mean {:>12}",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean)
    );
    if let Some(elements) = throughput {
        let eps = elements as f64 / median.as_secs_f64().max(1e-12);
        line.push_str(&format!("  {:>10.3} Melem/s", eps / 1e6));
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_requested_samples() {
        let mut b = Bencher { samples: 7, times: Vec::new() };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(b.times.len(), 7);
        assert_eq!(calls, 8); // warm-up + samples
    }

    #[test]
    fn group_filter_skips_mismatches() {
        let h = Harness { filter: Some("nomatch-xyz".into()) };
        let mut g = Group { harness: &h, name: "g".into(), samples: 3, throughput_elements: None };
        let mut ran = false;
        g.bench_function("id", |b| {
            ran = true;
            b.iter(|| ());
        });
        assert!(!ran);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.000 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.000 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.000 µs");
        assert_eq!(fmt_duration(Duration::from_nanos(90)), "90.0 ns");
    }
}
