//! Evaluation harness: one experiment per table/figure of the paper.
//!
//! Every experiment is a library function returning a formatted report, so
//! the per-experiment binaries stay thin and the `repro` driver can run the
//! whole evaluation in one process (building each dataset once). See
//! `DESIGN.md` §4 for the experiment index and the expected shapes.

#![forbid(unsafe_code)]

pub mod datasets;
pub mod experiments;
pub mod harness;
pub mod table;

pub use datasets::{load_suite, Loaded};
