//! Dataset loading for the harness: build each suite graph once, keep it
//! in memory for every experiment in the process.

use std::time::Instant;

use ihtl_gen::{suite, DatasetSpec};
use ihtl_graph::Graph;

/// A built dataset.
pub struct Loaded {
    pub spec: DatasetSpec,
    pub graph: Graph,
    /// Seconds it took to generate + build the graph (not part of any
    /// paper metric; printed for orientation).
    pub build_seconds: f64,
}

/// Builds the full 10-dataset suite (DESIGN.md §3). Set
/// `IHTL_SUITE=small` to substitute the 3-dataset miniature suite (used to
/// smoke-test the harness quickly), and `IHTL_ONLY=key1,key2` to restrict
/// to specific datasets.
pub fn load_suite() -> Vec<Loaded> {
    let specs = match std::env::var("IHTL_SUITE").as_deref() {
        Ok("small") => ihtl_gen::suite_small(),
        _ => suite(),
    };
    let only = std::env::var("IHTL_ONLY").ok();
    specs
        .into_iter()
        .filter(|spec| only.as_deref().is_none_or(|keys| keys.split(',').any(|k| k == spec.key)))
        .map(|spec| {
            let t = Instant::now();
            let graph = spec.build();
            let build_seconds = t.elapsed().as_secs_f64();
            eprintln!(
                "[datasets] {:>9}: |V|={:>8} |E|={:>9} ({:.1}s)",
                spec.key,
                graph.n_vertices(),
                graph.n_edges(),
                build_seconds
            );
            Loaded { spec, graph, build_seconds }
        })
        .collect()
}

/// Builds one dataset of the full suite by key (for focused binaries).
pub fn load_one(key: &str) -> Option<Loaded> {
    let spec = suite().into_iter().find(|s| s.key == key)?;
    let t = Instant::now();
    let graph = spec.build();
    Some(Loaded { spec, graph, build_seconds: t.elapsed().as_secs_f64() })
}
