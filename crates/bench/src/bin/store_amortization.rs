//! Measures what the durable store amortizes: iHTL/PB preprocessing cost
//! (build) versus persisting (save) and reloading (load) the finished
//! artifact, over R-MAT graphs of growing scale. Writes a markdown table
//! to `results/store_amortization.md` and echoes it to stdout.
//!
//! Usage: `store_amortization [--samples N] [--max-scale S]`

use std::time::Instant;

use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_graph::Graph;
use ihtl_store::{dataset_content_hash, BlockStore};
use ihtl_traversal::pb::PbGraph;

/// Times `f` `samples` times after one warm-up call; returns the best
/// (minimum) seconds observed.
fn time_best<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f(); // warm-up
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

struct Row {
    scale: u32,
    n_edges: usize,
    ihtl_build: f64,
    ihtl_save: f64,
    ihtl_load: f64,
    pb_build: f64,
    pb_save: f64,
    pb_load: f64,
}

fn measure(scale: u32, samples: usize, store: &BlockStore) -> Row {
    let edges = rmat_edges(scale, (1usize << scale) * 8, RmatParams::social(), 100 + scale as u64);
    let g = Graph::from_edges(1usize << scale, &edges);
    let cfg = IhtlConfig::default();
    let hash = dataset_content_hash(&g);
    let parts = ihtl_traversal::pull::default_parts();

    let ihtl_build = time_best(samples, || {
        std::hint::black_box(IhtlGraph::build(&g, &cfg));
    });
    let ih = IhtlGraph::build(&g, &cfg);
    let ihtl_save = time_best(samples, || {
        store.save_ihtl(hash, &cfg, &ih).expect("save ihtl artifact");
    });
    let ihtl_load = time_best(samples, || {
        std::hint::black_box(store.load_ihtl(hash, &cfg).expect("load ihtl artifact"));
    });

    let pb_build = time_best(samples, || {
        std::hint::black_box(PbGraph::with_parts(
            &g,
            cfg.cache_budget_bytes,
            cfg.vertex_data_bytes,
            parts,
        ));
    });
    let pb = PbGraph::with_parts(&g, cfg.cache_budget_bytes, cfg.vertex_data_bytes, parts);
    let pb_save = time_best(samples, || {
        store.save_pb(hash, &cfg, parts, &pb).expect("save pb artifact");
    });
    let pb_load = time_best(samples, || {
        std::hint::black_box(store.load_pb(hash, &cfg, parts).expect("load pb artifact"));
    });

    eprintln!(
        "[store_amortization] scale {scale}: |E|={} ihtl build {:.1}ms load {:.1}ms",
        g.n_edges(),
        ihtl_build * 1e3,
        ihtl_load * 1e3
    );
    Row {
        scale,
        n_edges: g.n_edges(),
        ihtl_build,
        ihtl_save,
        ihtl_load,
        pb_build,
        pb_save,
        pb_load,
    }
}

fn main() {
    let mut samples = 3usize;
    let mut max_scale = 16u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--samples" => {
                samples = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--samples expects an integer");
                    std::process::exit(2);
                })
            }
            "--max-scale" => {
                max_scale = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--max-scale expects an integer");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown flag '{other}' (supported: --samples N, --max-scale S)");
                std::process::exit(2);
            }
        }
    }

    let dir = std::env::temp_dir().join(format!("ihtl_store_bench_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = BlockStore::open(&dir).expect("open bench store");

    let rows: Vec<Row> = (12..=max_scale).step_by(2).map(|s| measure(s, samples, &store)).collect();
    let _ = std::fs::remove_dir_all(&dir);

    let mut out = String::new();
    out.push_str("# Durable store amortization: build vs save vs load (best-of samples, ms)\n\n");
    out.push_str(&format!(
        "R-MAT (social skew), 8 edges/vertex, {} threads, {} samples.\n\n",
        ihtl_parallel::num_threads(),
        samples
    ));
    out.push_str(
        "| scale | edges | iHTL build | iHTL save | iHTL load | build/load | \
         PB build | PB save | PB load |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for r in &rows {
        let speedup = r.ihtl_build / r.ihtl_load.max(1e-9);
        out.push_str(&format!(
            "| {} | {} | {:.2} | {:.2} | {:.2} | {:.1}x | {:.2} | {:.2} | {:.2} |\n",
            r.scale,
            r.n_edges,
            r.ihtl_build * 1e3,
            r.ihtl_save * 1e3,
            r.ihtl_load * 1e3,
            speedup,
            r.pb_build * 1e3,
            r.pb_save * 1e3,
            r.pb_load * 1e3,
        ));
    }
    print!("{out}");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/store_amortization.md", &out))
    {
        eprintln!("warning: could not write results/store_amortization.md: {e}");
    }
}
