//! Regenerates Table 1 (dataset statistics).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::table1::run(&suite));
}
