//! Regenerates Table 4 (topology bytes: CSC vs iHTL).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::table4::run(&suite));
}
