//! Machine-readable SpMV benchmark: writes `results/BENCH_spmv.json`.
//!
//! Unlike the table/figure binaries (human-oriented markdown), this target
//! exists so every PR leaves a perf trajectory: per-kernel ns/edge and the
//! iHTL phase breakdown (push / merge / pull) over a fixed R-MAT suite,
//! serialised as JSON a driver can diff across commits. Run it through
//! `scripts/bench.sh`, which also embeds the checked-in seed capture as the
//! `baseline` field so before/after speedups are computed in-place.
//!
//! Usage:
//!   bench_spmv [--out PATH] [--baseline PATH] [--samples N]
//!              [--max-regress PCT] [--trace-ab]
//!
//! `--max-regress PCT` turns the run into a regression gate: if the live
//! iHTL SpMV ns/edge geomean is more than PCT percent above the baseline's,
//! the binary exits nonzero. `--trace-ab` additionally measures the
//! `ihtl-trace` instrumentation cost (tracing enabled vs idle on the same
//! kernel) and records it as `trace_overhead_pct` in the summary.

use std::time::Instant;

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_apps::pagerank::pagerank;
use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_gen::{er, weblike};
use ihtl_graph::stats::{engine_features_llc, pick_engine, EnginePick};
use ihtl_graph::Graph;
use ihtl_serve::argv::{parse_or_exit, FlagSpec};
use ihtl_traversal::pull::spmv_pull;
use ihtl_traversal::Add;

/// One benchmarked dataset: a social R-MAT graph at the given scale.
struct Dataset {
    key: &'static str,
    scale: u32,
    target_edges: usize,
    seed: u64,
}

const SUITE: &[Dataset] = &[
    Dataset { key: "rmat18", scale: 18, target_edges: 2_600_000, seed: 118 },
    Dataset { key: "rmat19", scale: 19, target_edges: 3_600_000, seed: 119 },
    Dataset { key: "rmat20", scale: 20, target_edges: 6_000_000, seed: 120 },
];

struct KernelResult {
    name: &'static str,
    /// Best (minimum) wall-clock seconds of one kernel invocation over all
    /// samples. The kernels are deterministic compute, so variation is
    /// one-sided interference (scheduler preemption, frequency dips) and
    /// the minimum is the robust estimator of the true cost.
    seconds_best: f64,
    /// Nanoseconds per edge at the best sample.
    ns_per_edge: f64,
    /// Mean per-iteration phase seconds (iHTL only): (fb, merge, pull).
    phases: Option<(f64, f64, f64)>,
}

struct DatasetResult {
    key: &'static str,
    n_vertices: usize,
    n_edges: usize,
    kernels: Vec<KernelResult>,
}

/// Times `f` `samples` times after one warm-up call; returns the best
/// (minimum) seconds observed.
fn time_best<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f(); // warm-up
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_dataset(ds: &Dataset, samples: usize) -> DatasetResult {
    let t = Instant::now();
    let edges = rmat_edges(ds.scale, ds.target_edges, RmatParams::social(), ds.seed);
    let g = Graph::from_edges(1usize << ds.scale, &edges);
    eprintln!(
        "[bench_spmv] {}: |V|={} |E|={} ({:.1}s build)",
        ds.key,
        g.n_vertices(),
        g.n_edges(),
        t.elapsed().as_secs_f64()
    );
    let n = g.n_vertices();
    let m = g.n_edges();
    let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 + 0.5).collect();
    let mut y = vec![0.0f64; n];
    let mut kernels = Vec::new();

    // iHTL SpMV with phase breakdown.
    let cfg = IhtlConfig::default();
    let ih = IhtlGraph::build(&g, &cfg);
    let x_new = ih.to_new_order(&x);
    let mut bufs = ih.new_buffers();
    let mut fb = 0.0;
    let mut merge = 0.0;
    let mut pull = 0.0;
    let mut phase_samples = 0usize;
    let sec = time_best(samples, || {
        let bd = ih.spmv::<Add>(&x_new, &mut y, &mut bufs);
        fb += bd.fb_seconds;
        merge += bd.merge_seconds;
        pull += bd.pull_seconds;
        phase_samples += 1;
    });
    let k = phase_samples as f64;
    kernels.push(KernelResult {
        name: "ihtl_spmv",
        seconds_best: sec,
        ns_per_edge: sec * 1e9 / m as f64,
        phases: Some((fb / k, merge / k, pull / k)),
    });

    // Pull baseline (GraphGrind-style edge-balanced parallel pull).
    let sec = time_best(samples, || spmv_pull::<Add>(&g, &x, &mut y));
    kernels.push(KernelResult {
        name: "pull_spmv",
        seconds_best: sec,
        ns_per_edge: sec * 1e9 / m as f64,
        phases: None,
    });

    // PageRank per-iteration via the iHTL engine (the paper's Fig. 7 metric).
    let mut e = build_engine(EngineKind::Ihtl, &g, &cfg);
    let run = pagerank(e.as_mut(), samples.max(2));
    let sec = run.mean_iter_seconds();
    kernels.push(KernelResult {
        name: "pagerank_ihtl_iter",
        seconds_best: sec,
        ns_per_edge: sec * 1e9 / m as f64,
        phases: None,
    });

    DatasetResult { key: ds.key, n_vertices: n, n_edges: m, kernels }
}

/// Batched-execution A/B on one dataset: amortized ns/edge/query of the
/// iHTL kernel at K = 1 (solo SpMV baseline) and K = 4/8 columns per edge
/// sweep. One SpMM sweep serves K queries, so its per-query cost is its
/// wall-clock divided by K× the edge count.
struct SpmmResult {
    key: &'static str,
    n_edges: usize,
    /// (k, best seconds per sweep, amortized ns/edge/query).
    points: Vec<(usize, f64, f64)>,
}

fn bench_spmm(ds: &Dataset, samples: usize) -> SpmmResult {
    let edges = rmat_edges(ds.scale, ds.target_edges, RmatParams::social(), ds.seed);
    let g = Graph::from_edges(1usize << ds.scale, &edges);
    let n = g.n_vertices();
    let m = g.n_edges();
    let ih = IhtlGraph::build(&g, &IhtlConfig::default());
    let mut points = Vec::new();
    for k in [1usize, 4, 8] {
        let x: Vec<f64> = (0..n * k).map(|i| ((i * 37) % 101) as f64 + 0.5).collect();
        let x_new = ih.to_new_order_multi(&x, k);
        let mut y = vec![0.0f64; n * k];
        let sec = if k == 1 {
            let mut bufs = ih.new_buffers();
            time_best(samples, || {
                let _ = ih.spmv::<Add>(&x_new, &mut y, &mut bufs);
            })
        } else {
            let mut bufs = ih.new_buffers_multi(k);
            time_best(samples, || {
                let _ = ih.spmm::<Add>(&x_new, &mut y, k, &mut bufs);
            })
        };
        let ns_per_edge_query = sec * 1e9 / (m * k) as f64;
        eprintln!(
            "[bench_spmv] spmm {} k={k}: {sec:.6}s/sweep, {ns_per_edge_query:.3} ns/edge/query",
            ds.key
        );
        points.push((k, sec, ns_per_edge_query));
    }
    SpmmResult { key: ds.key, n_edges: m, points }
}

/// Per-dataset speedup of K=8 amortized cost over the K=1 baseline
/// (> 1.0 means batching wins).
fn spmm_k8_speedup(r: &SpmmResult) -> f64 {
    let at = |k: usize| r.points.iter().find(|p| p.0 == k).map(|p| p.2);
    match (at(1), at(8)) {
        (Some(k1), Some(k8)) if k8 > 0.0 => k1 / k8,
        _ => 0.0,
    }
}

fn render_spmm_json(results: &[SpmmResult], samples: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ihtl-bench-spmm/v1\",\n");
    let unix =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    out.push_str(&format!("  \"generated_unix\": {unix},\n"));
    out.push_str(&format!("  \"threads\": {},\n", ihtl_parallel::num_threads()));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"key\": \"{}\",\n", ds.key));
        out.push_str(&format!("      \"n_edges\": {},\n", ds.n_edges));
        out.push_str("      \"points\": {\n");
        for (j, (k, sec, nspe)) in ds.points.iter().enumerate() {
            out.push_str(&format!(
                "        \"k{k}\": {{ \"seconds_best\": {sec:.6}, \
                 \"ns_per_edge_per_query\": {nspe:.3} }}"
            ));
            out.push_str(if j + 1 < ds.points.len() { ",\n" } else { "\n" });
        }
        out.push_str("      },\n");
        out.push_str(&format!("      \"k8_vs_k1_speedup\": {:.3}\n", spmm_k8_speedup(ds)));
        out.push_str("    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let best = results.iter().map(spmm_k8_speedup).fold(0.0f64, f64::max);
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!("    \"best_k8_vs_k1_speedup\": {best:.3}\n"));
    out.push_str("  }\n}\n");
    out
}

/// One row of the four-engine A/B matrix.
struct EngineMatrixRow {
    key: String,
    n_vertices: usize,
    n_edges: usize,
    /// (wire name, best seconds, ns/edge) per candidate engine, in
    /// [`EnginePick::ALL`] order.
    engines: Vec<(&'static str, f64, f64)>,
    /// The scoring rule's pick for this dataset at the live thread count.
    auto_pick: &'static str,
}

impl EngineMatrixRow {
    fn ns_of(&self, name: &str) -> f64 {
        self.engines.iter().find(|(n, _, _)| *n == name).map_or(f64::NAN, |&(_, _, ns)| ns)
    }

    fn best(&self) -> (&'static str, f64) {
        self.engines
            .iter()
            .fold(("", f64::INFINITY), |acc, &(n, _, ns)| if ns < acc.1 { (n, ns) } else { acc })
    }

    /// Percent by which the auto pick's measured cost exceeds the best
    /// fixed engine's (0 when auto picked the winner).
    fn auto_gap_pct(&self) -> f64 {
        let (_, best_ns) = self.best();
        (self.ns_of(self.auto_pick) / best_ns - 1.0) * 100.0
    }
}

/// Smallest R-MAT scale whose vertex data is at least 1.5× `llc_bytes`
/// (capped so a huge reported LLC cannot make the bench unbounded).
fn thrashing_scale(llc_bytes: usize) -> u32 {
    let mut scale = 20u32;
    while (1usize << scale) * 8 < llc_bytes + llc_bytes / 2 && scale < 27 {
        scale += 1;
    }
    scale
}

/// The engine A/B suite, sized to the machine rather than to fixed scales:
/// "cache-thrashing" is a property of the *hardware*, so the skewed R-MAT
/// is generated at the smallest scale whose vertex data is ≥ 1.5× the
/// detected LLC — pull's random source reads genuinely miss, which is the
/// regime propagation blocking exists for. Two LLC-resident contrasts ride
/// along (flat er, skewed weblike) where pull cannot miss and the scoring
/// rule must leave it alone.
fn engine_suite(samples: usize) -> Vec<(String, Graph)> {
    let (_, llc) = ihtl_parallel::cache_sizes();
    let scale = thrashing_scale(llc);
    let n = 1usize << scale;
    eprintln!(
        "[bench_spmv] engines: llc {} MiB -> thrashing rmat at scale {scale} \
         ({} MiB vertex data, ~{} samples/engine)",
        llc >> 20,
        (n * 8) >> 20,
        samples
    );
    let t = Instant::now();
    let edges = rmat_edges(scale, 2 * n, RmatParams::social(), 0xE5_0007);
    let g = Graph::from_edges(n, &edges);
    drop(edges);
    eprintln!(
        "[bench_spmv] engines rmat{scale}: |V|={} |E|={} ({:.1}s build)",
        g.n_vertices(),
        g.n_edges(),
        t.elapsed().as_secs_f64()
    );
    let mut out: Vec<(String, Graph)> = vec![(format!("rmat{scale}"), g)];
    let n = 1usize << 19;
    out.push((format!("er{}", 19), Graph::from_edges(n, &er::er_edges(n, 4 * n, 0xE5_19))));
    let n = 1usize << 18;
    let web = weblike::web_edges(n, 6 * n, &weblike::WebParams::concentrated(), 0xE5_18);
    out.push((format!("web{}", 18), Graph::from_edges(n, &web)));
    out
}

/// Times all four candidate engines (plain pull, iHTL, PB, hybrid) on one
/// dataset through the uniform engine API, and resolves the scoring rule's
/// pick from the same structural features the serve tier uses — with the
/// two cache roles split to the detected hierarchy: the flipped-block /
/// bin buffers are sized to the private L2, residency to the LLC.
///
/// Samples are **interleaved round-robin** (one sweep per engine per
/// round) rather than engine-by-engine: this row feeds a *ranking* gate,
/// and on shared hosts a slow window (noisy neighbours, frequency dips)
/// lasting longer than one engine's whole sample budget would otherwise
/// penalise only the engine being timed just then. Round-robin spreads any
/// window across all four; per-engine minima then come from the same fast
/// windows.
fn bench_engine_matrix(key: &str, g: &Graph, samples: usize) -> EngineMatrixRow {
    let (buffer, llc) = ihtl_parallel::cache_sizes();
    let cfg = IhtlConfig { cache_budget_bytes: buffer, ..IhtlConfig::default() };
    let n = g.n_vertices();
    let m = g.n_edges();
    let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 + 0.5).collect();
    const CANDIDATES: [(EnginePick, EngineKind); 4] = [
        (EnginePick::Pull, EngineKind::PullGraphGrind),
        (EnginePick::Ihtl, EngineKind::Ihtl),
        (EnginePick::Pb, EngineKind::Pb),
        (EnginePick::Hybrid, EngineKind::Hybrid),
    ];
    let mut runs = Vec::new();
    let mut slowest_warmup = 0.0f64;
    for (pick, kind) in CANDIDATES {
        let t = Instant::now();
        let mut e = build_engine(kind, g, &cfg);
        let built = t.elapsed().as_secs_f64();
        let xe = e.from_original_order(&x);
        let mut y = vec![0.0f64; n];
        let t = Instant::now();
        e.spmv_add(&xe, &mut y);
        slowest_warmup = slowest_warmup.max(t.elapsed().as_secs_f64());
        eprintln!("[bench_spmv] engines {key} {}: built {built:.1}s", pick.wire_name());
        runs.push((pick, e, xe, y, f64::INFINITY));
    }
    // At least 5 rounds even when --samples is lower (this gates a
    // ranking); fast sweeps are nearly free, so small graphs get extra
    // rounds for their minima to settle, bounded at 50.
    let budget_rounds = (0.5 / slowest_warmup.max(1e-9)) as usize;
    let rounds = samples.max(5).max(budget_rounds.min(50));
    for _ in 0..rounds {
        for (_, e, xe, y, best) in runs.iter_mut() {
            let t = Instant::now();
            e.spmv_add(xe, y);
            *best = best.min(t.elapsed().as_secs_f64());
        }
    }
    let mut engines = Vec::new();
    for (pick, _, _, _, sec) in &runs {
        let ns = sec * 1e9 / m as f64;
        eprintln!(
            "[bench_spmv] engines {key} {}: {sec:.6}s, {ns:.3} ns/edge ({rounds} rounds)",
            pick.wire_name()
        );
        engines.push((pick.wire_name(), *sec, ns));
    }
    drop(runs);
    let f = engine_features_llc(g, cfg.cache_budget_bytes, llc, cfg.vertex_data_bytes);
    let auto_pick = pick_engine(&f, ihtl_parallel::num_threads()).wire_name();
    let row =
        EngineMatrixRow { key: key.to_string(), n_vertices: n, n_edges: m, engines, auto_pick };
    eprintln!(
        "[bench_spmv] engines {key}: auto={auto_pick} (gap {:+.1}% vs best {})",
        row.auto_gap_pct(),
        row.best().0
    );
    row
}

fn render_engines_json(rows: &[EngineMatrixRow], samples: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ihtl-bench-engines/v1\",\n");
    let unix =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    out.push_str(&format!("  \"generated_unix\": {unix},\n"));
    out.push_str(&format!("  \"threads\": {},\n", ihtl_parallel::num_threads()));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"datasets\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"key\": \"{}\",\n", row.key));
        out.push_str(&format!("      \"n_vertices\": {},\n", row.n_vertices));
        out.push_str(&format!("      \"n_edges\": {},\n", row.n_edges));
        out.push_str("      \"engines\": {\n");
        for (j, (name, sec, ns)) in row.engines.iter().enumerate() {
            out.push_str(&format!(
                "        \"{name}\": {{ \"seconds_best\": {sec:.6}, \"ns_per_edge\": {ns:.3} }}"
            ));
            out.push_str(if j + 1 < row.engines.len() { ",\n" } else { "\n" });
        }
        out.push_str("      },\n");
        let (best_name, best_ns) = row.best();
        out.push_str(&format!(
            "      \"best\": {{ \"engine\": \"{best_name}\", \"ns_per_edge\": {best_ns:.3} }},\n"
        ));
        out.push_str(&format!(
            "      \"auto\": {{ \"pick\": \"{}\", \"ns_per_edge\": {:.3}, \
             \"gap_vs_best_pct\": {:.2} }}\n",
            row.auto_pick,
            row.ns_of(row.auto_pick),
            row.auto_gap_pct()
        ));
        out.push_str("    }");
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let max_gap = rows.iter().map(EngineMatrixRow::auto_gap_pct).fold(0.0f64, f64::max);
    let rmat_speedup = rows
        .iter()
        .filter(|r| r.key.starts_with("rmat"))
        .map(|r| r.ns_of("pull") / r.ns_of("pb").min(r.ns_of("hybrid")))
        .fold(f64::INFINITY, f64::min);
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!("    \"max_auto_gap_pct\": {max_gap:.2},\n"));
    out.push_str(&format!(
        "    \"min_rmat_binned_vs_pull_speedup\": {rmat_speedup:.3}\n  }}\n}}\n"
    ));
    out
}

/// Engine-matrix acceptance: `auto` within `gate_pct` of the best fixed
/// engine on every dataset, and the binned engines (pb and hybrid) beating
/// plain pull on every skewed cache-thrashing rmat dataset. Returns the
/// failure messages (empty = pass).
fn check_engine_gate(rows: &[EngineMatrixRow], gate_pct: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for row in rows {
        let gap = row.auto_gap_pct();
        // NaN (no measurement) must fail the gate, not sneak past it.
        if gap.is_nan() || gap > gate_pct {
            failures.push(format!(
                "{}: auto picked {} at {:.3} ns/edge, {:.1}% over best {} ({:.3}); limit {}%",
                row.key,
                row.auto_pick,
                row.ns_of(row.auto_pick),
                gap,
                row.best().0,
                row.best().1,
                gate_pct
            ));
        }
        if row.key.starts_with("rmat") {
            let pull = row.ns_of("pull");
            for name in ["pb", "hybrid"] {
                let ns = row.ns_of(name);
                if ns.is_nan() || pull.is_nan() || ns >= pull {
                    failures.push(format!(
                        "{}: {name} ({ns:.3} ns/edge) does not beat plain pull ({pull:.3})",
                        row.key
                    ));
                }
            }
        }
    }
    failures
}

/// A/B of the iHTL kernel with tracing idle vs enabled, on the smallest
/// suite graph. Returns the overhead in percent (negative = noise in the
/// traced run's favour). Uses best-of-samples on both sides, so one-sided
/// interference does not masquerade as tracing cost.
fn trace_overhead_pct(samples: usize) -> f64 {
    let ds = &SUITE[0];
    let edges = rmat_edges(ds.scale, ds.target_edges, RmatParams::social(), ds.seed);
    let g = Graph::from_edges(1usize << ds.scale, &edges);
    let n = g.n_vertices();
    let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 + 0.5).collect();
    let mut y = vec![0.0f64; n];
    let ih = IhtlGraph::build(&g, &IhtlConfig::default());
    let x_new = ih.to_new_order(&x);
    let mut bufs = ih.new_buffers();
    let off = time_best(samples, || {
        let _ = ih.spmv::<Add>(&x_new, &mut y, &mut bufs);
    });
    let on_guard = ihtl_trace::enable();
    let on = time_best(samples, || {
        let _ = ih.spmv::<Add>(&x_new, &mut y, &mut bufs);
    });
    drop(on_guard);
    eprintln!("[bench_spmv] trace A/B on {}: idle {:.6}s, enabled {:.6}s", ds.key, off, on);
    (on / off - 1.0) * 100.0
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut count) = (0.0f64, 0usize);
    for v in vals {
        log_sum += v.ln();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

/// Pulls `"name": <number>` out of our own JSON format (no general parser
/// needed: the schema is fixed and written by this binary).
fn extract_number(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))?;
    rest[..end].parse().ok()
}

fn render_json(
    results: &[DatasetResult],
    samples: usize,
    baseline: Option<&str>,
    trace_overhead: Option<f64>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ihtl-bench-spmv/v1\",\n");
    let unix =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    out.push_str(&format!("  \"generated_unix\": {unix},\n"));
    out.push_str(&format!("  \"threads\": {},\n", ihtl_parallel::num_threads()));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"key\": \"{}\",\n", ds.key));
        out.push_str(&format!("      \"n_vertices\": {},\n", ds.n_vertices));
        out.push_str(&format!("      \"n_edges\": {},\n", ds.n_edges));
        out.push_str("      \"kernels\": {\n");
        for (j, k) in ds.kernels.iter().enumerate() {
            out.push_str(&format!("        \"{}\": {{\n", k.name));
            out.push_str(&format!("          \"seconds_best\": {:.6},\n", k.seconds_best));
            out.push_str(&format!("          \"ns_per_edge\": {:.3}", k.ns_per_edge));
            if let Some((fb, merge, pull)) = k.phases {
                out.push_str(",\n          \"phases_mean_seconds\": {\n");
                out.push_str(&format!("            \"fb\": {fb:.6},\n"));
                out.push_str(&format!("            \"merge\": {merge:.6},\n"));
                out.push_str(&format!("            \"pull\": {pull:.6}\n"));
                out.push_str("          },\n");
                let total = fb + merge + pull;
                let frac = if total > 0.0 { merge / total } else { 0.0 };
                out.push_str(&format!("          \"merge_fraction\": {frac:.4}\n"));
            } else {
                out.push('\n');
            }
            out.push_str("        }");
            out.push_str(if j + 1 < ds.kernels.len() { ",\n" } else { "\n" });
        }
        out.push_str("      }\n");
        out.push_str("    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    let ihtl_geo =
        geomean(results.iter().flat_map(|d| {
            d.kernels.iter().filter(|k| k.name == "ihtl_spmv").map(|k| k.ns_per_edge)
        }));
    let pr_geo = geomean(results.iter().flat_map(|d| {
        d.kernels.iter().filter(|k| k.name == "pagerank_ihtl_iter").map(|k| k.ns_per_edge)
    }));
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!("    \"ihtl_spmv_ns_per_edge_geomean\": {ihtl_geo:.3},\n"));
    out.push_str(&format!("    \"pagerank_ihtl_ns_per_edge_geomean\": {pr_geo:.3}"));
    if let Some(pct) = trace_overhead {
        out.push_str(&format!(",\n    \"trace_overhead_pct\": {pct:.2}"));
    }
    if let Some(base) = baseline {
        if let Some(base_geo) = extract_number(base, "ihtl_spmv_ns_per_edge_geomean") {
            if ihtl_geo > 0.0 {
                out.push_str(&format!(
                    ",\n    \"ihtl_spmv_speedup_vs_baseline\": {:.3}",
                    base_geo / ihtl_geo
                ));
            }
        }
    }
    out.push_str("\n  }");
    if let Some(base) = baseline {
        out.push_str(",\n  \"baseline\": ");
        // Re-indent the embedded document two spaces so the file stays
        // readable; it is already valid JSON.
        let indented: String = base
            .trim_end()
            .lines()
            .enumerate()
            .map(|(i, l)| if i == 0 { l.to_string() } else { format!("  {l}") })
            .collect::<Vec<_>>()
            .join("\n");
        out.push_str(&indented);
    }
    out.push_str("\n}\n");
    out
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "out",
        value: Some("PATH"),
        help: "output JSON path (default results/BENCH_spmv.json)",
    },
    FlagSpec {
        name: "baseline",
        value: Some("PATH"),
        help: "seed capture to embed and compute speedups against",
    },
    FlagSpec { name: "samples", value: Some("N"), help: "timing samples per kernel (default 7)" },
    FlagSpec {
        name: "max-regress",
        value: Some("PCT"),
        help: "fail if iHTL ns/edge geomean regresses more than PCT% vs the baseline",
    },
    FlagSpec {
        name: "trace-ab",
        value: None,
        help: "measure tracing-enabled vs idle kernel cost (summary trace_overhead_pct)",
    },
    FlagSpec {
        name: "spmm",
        value: None,
        help: "also run the batched SpMM A/B (K=1/4/8 columns per sweep)",
    },
    FlagSpec {
        name: "spmm-out",
        value: Some("PATH"),
        help: "batched A/B output path (default results/BENCH_spmm.json)",
    },
    FlagSpec {
        name: "engines",
        value: None,
        help: "run the four-engine A/B matrix (pull/ihtl/pb/hybrid + auto pick)",
    },
    FlagSpec {
        name: "engines-out",
        value: Some("PATH"),
        help: "engine matrix output path (default results/BENCH_engines.json)",
    },
    FlagSpec {
        name: "engines-gate",
        value: Some("PCT"),
        help: "fail unless auto is within PCT% of the best fixed engine everywhere \
               and pb/hybrid beat pull on the rmat datasets",
    },
];

fn main() {
    let args = parse_or_exit("bench_spmv", "[options]", FLAGS, std::env::args().skip(1));
    let out_path = args.get_or("out", "results/BENCH_spmv.json").to_string();
    let samples = match args.get_usize("samples", 7) {
        Ok(n) if n > 0 => n,
        Ok(_) => {
            eprintln!("error: --samples must be at least 1");
            std::process::exit(2);
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let max_regress = match args.get("max-regress") {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(pct) if pct >= 0.0 => Some(pct),
            _ => {
                eprintln!("error: --max-regress expects a non-negative percentage, got '{v}'");
                std::process::exit(2);
            }
        },
    };
    let baseline = args.get("baseline").and_then(|p| std::fs::read_to_string(p).ok());
    let results: Vec<DatasetResult> = SUITE.iter().map(|d| bench_dataset(d, samples)).collect();
    let overhead = args.has("trace-ab").then(|| trace_overhead_pct(samples));
    let json = render_json(&results, samples, baseline.as_deref(), overhead);
    std::fs::write(&out_path, &json).expect("writing results JSON");
    eprintln!("[bench_spmv] wrote {out_path}");
    print!("{json}");

    if let Some(pct) = max_regress {
        // The summary block precedes the embedded baseline document, so the
        // first occurrence of the key is always the live number.
        let live = extract_number(&json, "ihtl_spmv_ns_per_edge_geomean");
        let base =
            baseline.as_deref().and_then(|b| extract_number(b, "ihtl_spmv_ns_per_edge_geomean"));
        match (live, base) {
            (Some(live), Some(base)) if base > 0.0 => {
                let delta = (live / base - 1.0) * 100.0;
                if delta > pct {
                    eprintln!(
                        "error: iHTL SpMV regressed {delta:.1}% vs baseline \
                         ({live:.3} vs {base:.3} ns/edge, limit {pct}%)"
                    );
                    std::process::exit(1);
                }
                eprintln!("[bench_spmv] regression gate: {delta:+.1}% vs baseline (limit {pct}%)");
            }
            _ => {
                eprintln!("error: --max-regress needs a readable --baseline with a geomean");
                std::process::exit(2);
            }
        }
    }

    if args.has("engines") || args.get("engines-gate").is_some() {
        let engines_out = args.get_or("engines-out", "results/BENCH_engines.json").to_string();
        let gate = match args.get("engines-gate") {
            None => None,
            Some(v) => match v.parse::<f64>() {
                Ok(pct) if pct >= 0.0 => Some(pct),
                _ => {
                    eprintln!("error: --engines-gate expects a non-negative percentage, got '{v}'");
                    std::process::exit(2);
                }
            },
        };
        let rows: Vec<EngineMatrixRow> = engine_suite(samples)
            .iter()
            .map(|(key, g)| bench_engine_matrix(key, g, samples))
            .collect();
        let ejson = render_engines_json(&rows, samples);
        std::fs::write(&engines_out, &ejson).expect("writing engine matrix JSON");
        eprintln!("[bench_spmv] wrote {engines_out}");
        if let Some(pct) = gate {
            let failures = check_engine_gate(&rows, pct);
            if !failures.is_empty() {
                for f in &failures {
                    eprintln!("error: engine gate: {f}");
                }
                std::process::exit(1);
            }
            eprintln!("[bench_spmv] engine gate: auto within {pct}% of best on every dataset");
        }
    }

    if args.has("spmm") {
        let spmm_out = args.get_or("spmm-out", "results/BENCH_spmm.json").to_string();
        // Two datasets keep the A/B fast; the K sweep is the experiment.
        let spmm_results: Vec<SpmmResult> =
            SUITE[..2].iter().map(|d| bench_spmm(d, samples)).collect();
        let sjson = render_spmm_json(&spmm_results, samples);
        std::fs::write(&spmm_out, &sjson).expect("writing spmm results JSON");
        eprintln!("[bench_spmv] wrote {spmm_out}");
        if max_regress.is_some() {
            // Batched execution must actually pay for itself: the amortized
            // per-query cost at K=8 has to beat the solo kernel somewhere.
            let best = spmm_results.iter().map(spmm_k8_speedup).fold(0.0f64, f64::max);
            if best <= 1.0 {
                eprintln!(
                    "error: batched SpMM at K=8 is not cheaper per query than K=1 on any \
                     dataset (best speedup {best:.3}x)"
                );
                std::process::exit(1);
            }
            eprintln!("[bench_spmv] spmm gate: best K=8 vs K=1 speedup {best:.3}x");
        }
    }
}
