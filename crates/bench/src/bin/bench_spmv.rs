//! Machine-readable SpMV benchmark: writes `results/BENCH_spmv.json`.
//!
//! Unlike the table/figure binaries (human-oriented markdown), this target
//! exists so every PR leaves a perf trajectory: per-kernel ns/edge and the
//! iHTL phase breakdown (push / merge / pull) over a fixed R-MAT suite,
//! serialised as JSON a driver can diff across commits. Run it through
//! `scripts/bench.sh`, which also embeds the checked-in seed capture as the
//! `baseline` field so before/after speedups are computed in-place.
//!
//! Usage:
//!   bench_spmv [--out PATH] [--baseline PATH] [--samples N]
//!              [--max-regress PCT] [--trace-ab]
//!
//! `--max-regress PCT` turns the run into a regression gate: if the live
//! iHTL SpMV ns/edge geomean is more than PCT percent above the baseline's,
//! the binary exits nonzero. `--trace-ab` additionally measures the
//! `ihtl-trace` instrumentation cost (tracing enabled vs idle on the same
//! kernel) and records it as `trace_overhead_pct` in the summary.

use std::time::Instant;

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_apps::pagerank::pagerank;
use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_graph::Graph;
use ihtl_serve::argv::{parse_or_exit, FlagSpec};
use ihtl_traversal::pull::spmv_pull;
use ihtl_traversal::Add;

/// One benchmarked dataset: a social R-MAT graph at the given scale.
struct Dataset {
    key: &'static str,
    scale: u32,
    target_edges: usize,
    seed: u64,
}

const SUITE: &[Dataset] = &[
    Dataset { key: "rmat18", scale: 18, target_edges: 2_600_000, seed: 118 },
    Dataset { key: "rmat19", scale: 19, target_edges: 3_600_000, seed: 119 },
    Dataset { key: "rmat20", scale: 20, target_edges: 6_000_000, seed: 120 },
];

struct KernelResult {
    name: &'static str,
    /// Best (minimum) wall-clock seconds of one kernel invocation over all
    /// samples. The kernels are deterministic compute, so variation is
    /// one-sided interference (scheduler preemption, frequency dips) and
    /// the minimum is the robust estimator of the true cost.
    seconds_best: f64,
    /// Nanoseconds per edge at the best sample.
    ns_per_edge: f64,
    /// Mean per-iteration phase seconds (iHTL only): (fb, merge, pull).
    phases: Option<(f64, f64, f64)>,
}

struct DatasetResult {
    key: &'static str,
    n_vertices: usize,
    n_edges: usize,
    kernels: Vec<KernelResult>,
}

/// Times `f` `samples` times after one warm-up call; returns the best
/// (minimum) seconds observed.
fn time_best<F: FnMut()>(samples: usize, mut f: F) -> f64 {
    f(); // warm-up
    (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

fn bench_dataset(ds: &Dataset, samples: usize) -> DatasetResult {
    let t = Instant::now();
    let edges = rmat_edges(ds.scale, ds.target_edges, RmatParams::social(), ds.seed);
    let g = Graph::from_edges(1usize << ds.scale, &edges);
    eprintln!(
        "[bench_spmv] {}: |V|={} |E|={} ({:.1}s build)",
        ds.key,
        g.n_vertices(),
        g.n_edges(),
        t.elapsed().as_secs_f64()
    );
    let n = g.n_vertices();
    let m = g.n_edges();
    let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 + 0.5).collect();
    let mut y = vec![0.0f64; n];
    let mut kernels = Vec::new();

    // iHTL SpMV with phase breakdown.
    let cfg = IhtlConfig::default();
    let ih = IhtlGraph::build(&g, &cfg);
    let x_new = ih.to_new_order(&x);
    let mut bufs = ih.new_buffers();
    let mut fb = 0.0;
    let mut merge = 0.0;
    let mut pull = 0.0;
    let mut phase_samples = 0usize;
    let sec = time_best(samples, || {
        let bd = ih.spmv::<Add>(&x_new, &mut y, &mut bufs);
        fb += bd.fb_seconds;
        merge += bd.merge_seconds;
        pull += bd.pull_seconds;
        phase_samples += 1;
    });
    let k = phase_samples as f64;
    kernels.push(KernelResult {
        name: "ihtl_spmv",
        seconds_best: sec,
        ns_per_edge: sec * 1e9 / m as f64,
        phases: Some((fb / k, merge / k, pull / k)),
    });

    // Pull baseline (GraphGrind-style edge-balanced parallel pull).
    let sec = time_best(samples, || spmv_pull::<Add>(&g, &x, &mut y));
    kernels.push(KernelResult {
        name: "pull_spmv",
        seconds_best: sec,
        ns_per_edge: sec * 1e9 / m as f64,
        phases: None,
    });

    // PageRank per-iteration via the iHTL engine (the paper's Fig. 7 metric).
    let mut e = build_engine(EngineKind::Ihtl, &g, &cfg);
    let run = pagerank(e.as_mut(), samples.max(2));
    let sec = run.mean_iter_seconds();
    kernels.push(KernelResult {
        name: "pagerank_ihtl_iter",
        seconds_best: sec,
        ns_per_edge: sec * 1e9 / m as f64,
        phases: None,
    });

    DatasetResult { key: ds.key, n_vertices: n, n_edges: m, kernels }
}

/// Batched-execution A/B on one dataset: amortized ns/edge/query of the
/// iHTL kernel at K = 1 (solo SpMV baseline) and K = 4/8 columns per edge
/// sweep. One SpMM sweep serves K queries, so its per-query cost is its
/// wall-clock divided by K× the edge count.
struct SpmmResult {
    key: &'static str,
    n_edges: usize,
    /// (k, best seconds per sweep, amortized ns/edge/query).
    points: Vec<(usize, f64, f64)>,
}

fn bench_spmm(ds: &Dataset, samples: usize) -> SpmmResult {
    let edges = rmat_edges(ds.scale, ds.target_edges, RmatParams::social(), ds.seed);
    let g = Graph::from_edges(1usize << ds.scale, &edges);
    let n = g.n_vertices();
    let m = g.n_edges();
    let ih = IhtlGraph::build(&g, &IhtlConfig::default());
    let mut points = Vec::new();
    for k in [1usize, 4, 8] {
        let x: Vec<f64> = (0..n * k).map(|i| ((i * 37) % 101) as f64 + 0.5).collect();
        let x_new = ih.to_new_order_multi(&x, k);
        let mut y = vec![0.0f64; n * k];
        let sec = if k == 1 {
            let mut bufs = ih.new_buffers();
            time_best(samples, || {
                let _ = ih.spmv::<Add>(&x_new, &mut y, &mut bufs);
            })
        } else {
            let mut bufs = ih.new_buffers_multi(k);
            time_best(samples, || {
                let _ = ih.spmm::<Add>(&x_new, &mut y, k, &mut bufs);
            })
        };
        let ns_per_edge_query = sec * 1e9 / (m * k) as f64;
        eprintln!(
            "[bench_spmv] spmm {} k={k}: {sec:.6}s/sweep, {ns_per_edge_query:.3} ns/edge/query",
            ds.key
        );
        points.push((k, sec, ns_per_edge_query));
    }
    SpmmResult { key: ds.key, n_edges: m, points }
}

/// Per-dataset speedup of K=8 amortized cost over the K=1 baseline
/// (> 1.0 means batching wins).
fn spmm_k8_speedup(r: &SpmmResult) -> f64 {
    let at = |k: usize| r.points.iter().find(|p| p.0 == k).map(|p| p.2);
    match (at(1), at(8)) {
        (Some(k1), Some(k8)) if k8 > 0.0 => k1 / k8,
        _ => 0.0,
    }
}

fn render_spmm_json(results: &[SpmmResult], samples: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ihtl-bench-spmm/v1\",\n");
    let unix =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    out.push_str(&format!("  \"generated_unix\": {unix},\n"));
    out.push_str(&format!("  \"threads\": {},\n", ihtl_parallel::num_threads()));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"key\": \"{}\",\n", ds.key));
        out.push_str(&format!("      \"n_edges\": {},\n", ds.n_edges));
        out.push_str("      \"points\": {\n");
        for (j, (k, sec, nspe)) in ds.points.iter().enumerate() {
            out.push_str(&format!(
                "        \"k{k}\": {{ \"seconds_best\": {sec:.6}, \
                 \"ns_per_edge_per_query\": {nspe:.3} }}"
            ));
            out.push_str(if j + 1 < ds.points.len() { ",\n" } else { "\n" });
        }
        out.push_str("      },\n");
        out.push_str(&format!("      \"k8_vs_k1_speedup\": {:.3}\n", spmm_k8_speedup(ds)));
        out.push_str("    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");
    let best = results.iter().map(spmm_k8_speedup).fold(0.0f64, f64::max);
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!("    \"best_k8_vs_k1_speedup\": {best:.3}\n"));
    out.push_str("  }\n}\n");
    out
}

/// A/B of the iHTL kernel with tracing idle vs enabled, on the smallest
/// suite graph. Returns the overhead in percent (negative = noise in the
/// traced run's favour). Uses best-of-samples on both sides, so one-sided
/// interference does not masquerade as tracing cost.
fn trace_overhead_pct(samples: usize) -> f64 {
    let ds = &SUITE[0];
    let edges = rmat_edges(ds.scale, ds.target_edges, RmatParams::social(), ds.seed);
    let g = Graph::from_edges(1usize << ds.scale, &edges);
    let n = g.n_vertices();
    let x: Vec<f64> = (0..n).map(|i| ((i * 37) % 101) as f64 + 0.5).collect();
    let mut y = vec![0.0f64; n];
    let ih = IhtlGraph::build(&g, &IhtlConfig::default());
    let x_new = ih.to_new_order(&x);
    let mut bufs = ih.new_buffers();
    let off = time_best(samples, || {
        let _ = ih.spmv::<Add>(&x_new, &mut y, &mut bufs);
    });
    let on_guard = ihtl_trace::enable();
    let on = time_best(samples, || {
        let _ = ih.spmv::<Add>(&x_new, &mut y, &mut bufs);
    });
    drop(on_guard);
    eprintln!("[bench_spmv] trace A/B on {}: idle {:.6}s, enabled {:.6}s", ds.key, off, on);
    (on / off - 1.0) * 100.0
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut count) = (0.0f64, 0usize);
    for v in vals {
        log_sum += v.ln();
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        (log_sum / count as f64).exp()
    }
}

/// Pulls `"name": <number>` out of our own JSON format (no general parser
/// needed: the schema is fixed and written by this binary).
fn extract_number(json: &str, name: &str) -> Option<f64> {
    let needle = format!("\"{name}\":");
    let at = json.find(&needle)? + needle.len();
    let rest = json[at..].trim_start();
    let end = rest.find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))?;
    rest[..end].parse().ok()
}

fn render_json(
    results: &[DatasetResult],
    samples: usize,
    baseline: Option<&str>,
    trace_overhead: Option<f64>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"ihtl-bench-spmv/v1\",\n");
    let unix =
        std::time::SystemTime::now().duration_since(std::time::UNIX_EPOCH).unwrap().as_secs();
    out.push_str(&format!("  \"generated_unix\": {unix},\n"));
    out.push_str(&format!("  \"threads\": {},\n", ihtl_parallel::num_threads()));
    out.push_str(&format!("  \"samples\": {samples},\n"));
    out.push_str("  \"datasets\": [\n");
    for (i, ds) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"key\": \"{}\",\n", ds.key));
        out.push_str(&format!("      \"n_vertices\": {},\n", ds.n_vertices));
        out.push_str(&format!("      \"n_edges\": {},\n", ds.n_edges));
        out.push_str("      \"kernels\": {\n");
        for (j, k) in ds.kernels.iter().enumerate() {
            out.push_str(&format!("        \"{}\": {{\n", k.name));
            out.push_str(&format!("          \"seconds_best\": {:.6},\n", k.seconds_best));
            out.push_str(&format!("          \"ns_per_edge\": {:.3}", k.ns_per_edge));
            if let Some((fb, merge, pull)) = k.phases {
                out.push_str(",\n          \"phases_mean_seconds\": {\n");
                out.push_str(&format!("            \"fb\": {fb:.6},\n"));
                out.push_str(&format!("            \"merge\": {merge:.6},\n"));
                out.push_str(&format!("            \"pull\": {pull:.6}\n"));
                out.push_str("          },\n");
                let total = fb + merge + pull;
                let frac = if total > 0.0 { merge / total } else { 0.0 };
                out.push_str(&format!("          \"merge_fraction\": {frac:.4}\n"));
            } else {
                out.push('\n');
            }
            out.push_str("        }");
            out.push_str(if j + 1 < ds.kernels.len() { ",\n" } else { "\n" });
        }
        out.push_str("      }\n");
        out.push_str("    }");
        out.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    let ihtl_geo =
        geomean(results.iter().flat_map(|d| {
            d.kernels.iter().filter(|k| k.name == "ihtl_spmv").map(|k| k.ns_per_edge)
        }));
    let pr_geo = geomean(results.iter().flat_map(|d| {
        d.kernels.iter().filter(|k| k.name == "pagerank_ihtl_iter").map(|k| k.ns_per_edge)
    }));
    out.push_str("  \"summary\": {\n");
    out.push_str(&format!("    \"ihtl_spmv_ns_per_edge_geomean\": {ihtl_geo:.3},\n"));
    out.push_str(&format!("    \"pagerank_ihtl_ns_per_edge_geomean\": {pr_geo:.3}"));
    if let Some(pct) = trace_overhead {
        out.push_str(&format!(",\n    \"trace_overhead_pct\": {pct:.2}"));
    }
    if let Some(base) = baseline {
        if let Some(base_geo) = extract_number(base, "ihtl_spmv_ns_per_edge_geomean") {
            if ihtl_geo > 0.0 {
                out.push_str(&format!(
                    ",\n    \"ihtl_spmv_speedup_vs_baseline\": {:.3}",
                    base_geo / ihtl_geo
                ));
            }
        }
    }
    out.push_str("\n  }");
    if let Some(base) = baseline {
        out.push_str(",\n  \"baseline\": ");
        // Re-indent the embedded document two spaces so the file stays
        // readable; it is already valid JSON.
        let indented: String = base
            .trim_end()
            .lines()
            .enumerate()
            .map(|(i, l)| if i == 0 { l.to_string() } else { format!("  {l}") })
            .collect::<Vec<_>>()
            .join("\n");
        out.push_str(&indented);
    }
    out.push_str("\n}\n");
    out
}

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "out",
        value: Some("PATH"),
        help: "output JSON path (default results/BENCH_spmv.json)",
    },
    FlagSpec {
        name: "baseline",
        value: Some("PATH"),
        help: "seed capture to embed and compute speedups against",
    },
    FlagSpec { name: "samples", value: Some("N"), help: "timing samples per kernel (default 7)" },
    FlagSpec {
        name: "max-regress",
        value: Some("PCT"),
        help: "fail if iHTL ns/edge geomean regresses more than PCT% vs the baseline",
    },
    FlagSpec {
        name: "trace-ab",
        value: None,
        help: "measure tracing-enabled vs idle kernel cost (summary trace_overhead_pct)",
    },
    FlagSpec {
        name: "spmm",
        value: None,
        help: "also run the batched SpMM A/B (K=1/4/8 columns per sweep)",
    },
    FlagSpec {
        name: "spmm-out",
        value: Some("PATH"),
        help: "batched A/B output path (default results/BENCH_spmm.json)",
    },
];

fn main() {
    let args = parse_or_exit("bench_spmv", "[options]", FLAGS, std::env::args().skip(1));
    let out_path = args.get_or("out", "results/BENCH_spmv.json").to_string();
    let samples = match args.get_usize("samples", 7) {
        Ok(n) if n > 0 => n,
        Ok(_) => {
            eprintln!("error: --samples must be at least 1");
            std::process::exit(2);
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let max_regress = match args.get("max-regress") {
        None => None,
        Some(v) => match v.parse::<f64>() {
            Ok(pct) if pct >= 0.0 => Some(pct),
            _ => {
                eprintln!("error: --max-regress expects a non-negative percentage, got '{v}'");
                std::process::exit(2);
            }
        },
    };
    let baseline = args.get("baseline").and_then(|p| std::fs::read_to_string(p).ok());
    let results: Vec<DatasetResult> = SUITE.iter().map(|d| bench_dataset(d, samples)).collect();
    let overhead = args.has("trace-ab").then(|| trace_overhead_pct(samples));
    let json = render_json(&results, samples, baseline.as_deref(), overhead);
    std::fs::write(&out_path, &json).expect("writing results JSON");
    eprintln!("[bench_spmv] wrote {out_path}");
    print!("{json}");

    if let Some(pct) = max_regress {
        // The summary block precedes the embedded baseline document, so the
        // first occurrence of the key is always the live number.
        let live = extract_number(&json, "ihtl_spmv_ns_per_edge_geomean");
        let base =
            baseline.as_deref().and_then(|b| extract_number(b, "ihtl_spmv_ns_per_edge_geomean"));
        match (live, base) {
            (Some(live), Some(base)) if base > 0.0 => {
                let delta = (live / base - 1.0) * 100.0;
                if delta > pct {
                    eprintln!(
                        "error: iHTL SpMV regressed {delta:.1}% vs baseline \
                         ({live:.3} vs {base:.3} ns/edge, limit {pct}%)"
                    );
                    std::process::exit(1);
                }
                eprintln!("[bench_spmv] regression gate: {delta:+.1}% vs baseline (limit {pct}%)");
            }
            _ => {
                eprintln!("error: --max-regress needs a readable --baseline with a geomean");
                std::process::exit(2);
            }
        }
    }

    if args.has("spmm") {
        let spmm_out = args.get_or("spmm-out", "results/BENCH_spmm.json").to_string();
        // Two datasets keep the A/B fast; the K sweep is the experiment.
        let spmm_results: Vec<SpmmResult> =
            SUITE[..2].iter().map(|d| bench_spmm(d, samples)).collect();
        let sjson = render_spmm_json(&spmm_results, samples);
        std::fs::write(&spmm_out, &sjson).expect("writing spmm results JSON");
        eprintln!("[bench_spmv] wrote {spmm_out}");
        if max_regress.is_some() {
            // Batched execution must actually pay for itself: the amortized
            // per-query cost at K=8 has to beat the solo kernel somewhere.
            let best = spmm_results.iter().map(spmm_k8_speedup).fold(0.0f64, f64::max);
            if best <= 1.0 {
                eprintln!(
                    "error: batched SpMM at K=8 is not cheaper per query than K=1 on any \
                     dataset (best speedup {best:.3}x)"
                );
                std::process::exit(1);
            }
            eprintln!("[bench_spmv] spmm gate: best K=8 vs K=1 speedup {best:.3}x");
        }
    }
}
