//! Ablation tables for the design choices DESIGN.md §6 calls out, on two
//! representative datasets (one social, one web):
//!
//! 1. flipped-block write protection: buffering (paper §3.4) vs atomics;
//! 2. fringe separation (§3.1 zero block) on vs off;
//! 3. block counting: exact §3.3 vs single-pass §6;
//! 4. acceptance-threshold sweep around the paper's 50 %;
//! 5. §6 composition: Rabbit-Order the graph first, then iHTL on top
//!    ("locality of the sparse block may improve by applying Rabbit-Order").

use std::time::Instant;

use ihtl_apps::engine::{build_engine, build_ihtl_engine, EngineKind};
use ihtl_apps::pagerank::pagerank;
use ihtl_bench::{datasets, table};
use ihtl_core::{BlockCountMode, IhtlConfig, IhtlGraph};
use ihtl_graph::Graph;
use ihtl_reorder::rabbit;
use ihtl_traversal::Add;

const ITERS: usize = 6;

fn spmv_mean_seconds(ih: &IhtlGraph) -> f64 {
    let n = ih.n_vertices();
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut bufs = ih.new_buffers();
    let mut total = 0.0;
    for i in 0..ITERS {
        let t = Instant::now();
        ih.spmv::<Add>(&x, &mut y, &mut bufs);
        if i > 0 {
            total += t.elapsed().as_secs_f64();
        }
    }
    total / (ITERS - 1) as f64
}

fn spmv_atomic_mean_seconds(ih: &IhtlGraph) -> f64 {
    let n = ih.n_vertices();
    let x = vec![1.0f64; n];
    let mut y = vec![0.0f64; n];
    let mut total = 0.0;
    for i in 0..ITERS {
        let t = Instant::now();
        ih.spmv_atomic_hubs::<Add>(&x, &mut y);
        if i > 0 {
            total += t.elapsed().as_secs_f64();
        }
    }
    total / (ITERS - 1) as f64
}

fn run_dataset(key: &str, g: &Graph) -> String {
    let base = IhtlConfig::default();
    let mut out = format!("### {key}\n\n");

    // 1 + 2 + 3: structural variants.
    let mut rows = Vec::new();
    {
        let ih = IhtlGraph::build(g, &base);
        rows.push(vec![
            "buffered FB (paper)".to_string(),
            ih.n_blocks().to_string(),
            table::pct(ih.stats().fb_edge_fraction()),
            table::ms(spmv_mean_seconds(&ih)),
            format!("{:.2}", ih.stats().preprocessing_seconds),
        ]);
        rows.push(vec![
            "atomic FB updates".to_string(),
            ih.n_blocks().to_string(),
            table::pct(ih.stats().fb_edge_fraction()),
            table::ms(spmv_atomic_mean_seconds(&ih)),
            "—".to_string(),
        ]);
    }
    {
        let cfg = IhtlConfig { separate_fringe: false, ..base.clone() };
        let ih = IhtlGraph::build(g, &cfg);
        rows.push(vec![
            "no fringe separation".to_string(),
            ih.n_blocks().to_string(),
            table::pct(ih.stats().fb_edge_fraction()),
            table::ms(spmv_mean_seconds(&ih)),
            format!("{:.2}", ih.stats().preprocessing_seconds),
        ]);
    }
    {
        let cfg = IhtlConfig {
            block_count: BlockCountMode::SinglePass { max_blocks: 16 },
            ..base.clone()
        };
        let ih = IhtlGraph::build(g, &cfg);
        rows.push(vec![
            "single-pass blocks (§6)".to_string(),
            ih.n_blocks().to_string(),
            table::pct(ih.stats().fb_edge_fraction()),
            table::ms(spmv_mean_seconds(&ih)),
            format!("{:.2}", ih.stats().preprocessing_seconds),
        ]);
    }
    out.push_str(&table::render(&["variant", "#FB", "FB edges", "SpMV ms", "preproc s"], &rows));

    // 4: acceptance-threshold sweep.
    let mut rows = Vec::new();
    for ratio in [0.0, 0.25, 0.5, 0.75, 1.01] {
        let cfg = IhtlConfig { acceptance_ratio: ratio, max_blocks: Some(32), ..base.clone() };
        let ih = IhtlGraph::build(g, &cfg);
        rows.push(vec![
            format!("{ratio:.2}"),
            ih.n_blocks().to_string(),
            table::pct(ih.stats().fb_edge_fraction()),
            table::ms(spmv_mean_seconds(&ih)),
        ]);
    }
    out.push_str("\nAcceptance-threshold sweep (paper rule: 0.50, max 32 blocks):\n\n");
    out.push_str(&table::render(&["threshold", "#FB", "FB edges", "SpMV ms"], &rows));

    // 5: Rabbit-Order composition.
    let mut rows = Vec::new();
    {
        let mut plain_pull = build_engine(EngineKind::PullGraphGrind, g, &base);
        let pr = pagerank(plain_pull.as_mut(), ITERS);
        rows.push(vec!["pull".into(), table::ms(pr.mean_iter_seconds())]);
        let mut ihtl = build_ihtl_engine(g, &base);
        let pr = pagerank(&mut ihtl, ITERS);
        rows.push(vec!["iHTL".into(), table::ms(pr.mean_iter_seconds())]);
        let ro = rabbit::rabbit_order(g, 16);
        let relabeled = g.relabel(&ro.perm);
        let mut ro_pull = build_engine(EngineKind::PullGraphGrind, &relabeled, &base);
        let pr = pagerank(ro_pull.as_mut(), ITERS);
        rows.push(vec!["RO → pull".into(), table::ms(pr.mean_iter_seconds())]);
        let mut ro_ihtl = build_ihtl_engine(&relabeled, &base);
        let pr = pagerank(&mut ro_ihtl, ITERS);
        rows.push(vec!["RO → iHTL (§6)".into(), table::ms(pr.mean_iter_seconds())]);
    }
    out.push_str(
        "\nRabbit-Order composition (§6: reorder first so the sparse block\ninherits community locality, then build iHTL on top):\n\n",
    );
    out.push_str(&table::render(&["pipeline", "PageRank ms/iter"], &rows));
    out.push('\n');
    out
}

fn main() {
    let keys = ["twtr_mpi", "uu"];
    std::env::set_var("IHTL_ONLY", keys.join(","));
    let suite = datasets::load_suite();
    let mut out = String::from("## Ablations — design-choice sweeps\n\n");
    for d in &suite {
        out.push_str(&run_dataset(d.spec.key, &d.graph));
    }
    std::fs::create_dir_all("results").ok();
    std::fs::write("results/ablations.md", &out).ok();
    println!("{out}");
}
