//! Regenerates Table 3 (memory accesses and cache misses, simulated).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::table3::run(&suite));
}
