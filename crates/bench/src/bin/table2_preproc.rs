//! Regenerates Table 2 (iHTL preprocessing in per-framework iterations).
fn main() {
    let suite = ihtl_bench::load_suite();
    let m = ihtl_bench::experiments::fig7::measure(&suite, &ihtl_core::IhtlConfig::default());
    println!("{}", ihtl_bench::experiments::fig7::render_table2(&m));
}
