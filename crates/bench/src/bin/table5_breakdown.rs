//! Regenerates Table 5 (iHTL graph statistics and execution breakdown).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::table5::run(&suite));
}
