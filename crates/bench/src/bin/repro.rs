//! Runs the complete evaluation — every table and figure — and writes the
//! reports to `results/`. `EXPERIMENTS.md` embeds these outputs.
use std::fs;
use std::time::Instant;

fn main() {
    let t0 = Instant::now();
    fs::create_dir_all("results").expect("cannot create results/");
    let suite = ihtl_bench::load_suite();

    let write = |name: &str, content: &str| {
        let path = format!("results/{name}.md");
        fs::write(&path, content).expect("write failed");
        println!("=== wrote {path} ({:.0}s elapsed) ===", t0.elapsed().as_secs_f64());
    };

    write("table1_datasets", &ihtl_bench::experiments::table1::run(&suite));
    write("fig2_example", &ihtl_bench::experiments::fig2::run());
    write("fig9_asymmetricity", &ihtl_bench::experiments::fig9::run(&suite));
    write("table4_memory", &ihtl_bench::experiments::table4::run(&suite));
    write("table5_breakdown", &ihtl_bench::experiments::table5::run(&suite));
    let m = ihtl_bench::experiments::fig7::measure(&suite, &ihtl_core::IhtlConfig::default());
    write("fig7_pagerank", &ihtl_bench::experiments::fig7::render_fig7(&m));
    write("table2_preproc", &ihtl_bench::experiments::fig7::render_table2(&m));
    write("table6_buffer", &ihtl_bench::experiments::table6::run(&suite));
    write("table3_cache", &ihtl_bench::experiments::table3::run(&suite));
    write("fig1_missrate", &ihtl_bench::experiments::fig1::run(&suite));
    write("fig8_reorder", &ihtl_bench::experiments::fig8::run(&suite));

    println!("total: {:.0}s", t0.elapsed().as_secs_f64());
}
