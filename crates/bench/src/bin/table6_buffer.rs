//! Regenerates Table 6 (buffer-size sensitivity).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::table6::run(&suite));
}
