//! Figure 7 at memory-bound scale — the wall-clock demonstration of the
//! headline claim.
//!
//! The regular suite is sized for the *scaled* cache model, which means its
//! working sets fit inside this machine's (huge) last-level cache and the
//! pull baseline never pays a memory miss — muting wall-clock gaps that the
//! simulated hierarchy (Fig. 1, Table 3) still shows. This binary builds
//! one Twitter-like graph big enough that the randomly-read vertex data
//! exceeds the real LLC, then times pull vs push vs iHTL for real.
//!
//! Scale 25 → 33.5 M vertices ≈ 268 MB of 8-byte vertex data (the container
//! reports a 260 MB L3). ~20 GB would be needed to dwarf the LLC by the
//! paper's 18×; this is the largest configuration that fits the machine,
//! so expect the iHTL/pull gap to be directionally right but smaller than
//! the paper's 1.5–2.4×.
//!
//! Runs several minutes. `IHTL_LARGE_SCALE=23` shrinks it.

use std::time::Instant;

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_apps::pagerank::pagerank;
use ihtl_core::IhtlConfig;
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_gen::shuffle_vertex_ids;
use ihtl_graph::Graph;

fn main() {
    let scale: u32 =
        std::env::var("IHTL_LARGE_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(25);
    let n = 1usize << scale;
    let target_edges = n * 4; // sparse enough to generate quickly
    eprintln!("[fig7_large] generating R-MAT scale {scale} (~{target_edges} edges)…");
    let t = Instant::now();
    let mut edges = rmat_edges(scale, target_edges, RmatParams::social(), 71);
    shuffle_vertex_ids(n, &mut edges, 71);
    let graph = Graph::from_edges(n, &edges);
    drop(edges);
    eprintln!(
        "[fig7_large] |V|={} |E|={} built in {:.0}s (vertex data {} MB)",
        graph.n_vertices(),
        graph.n_edges(),
        t.elapsed().as_secs_f64(),
        (graph.n_vertices() * 8) >> 20
    );

    // Hub buffer sized to half the real L2 (2 MiB here): H = 131072, the
    // same H the paper derives from its 1 MB L2.
    let cfg = IhtlConfig { cache_budget_bytes: 1 << 20, ..IhtlConfig::default() };

    println!("## Figure 7 (memory-bound scale) — PageRank ms/iteration\n");
    for kind in [
        EngineKind::PushGraphIt,
        EngineKind::PullGraphGrind,
        EngineKind::PullGalois,
        EngineKind::Ihtl,
    ] {
        let t = Instant::now();
        let mut engine = build_engine(kind, &graph, &cfg);
        let preproc = t.elapsed().as_secs_f64();
        let run = pagerank(engine.as_mut(), 4);
        println!(
            "| {:<16} | {:>10.0} ms/iter | preprocessing {:>6.1} s |",
            engine.label(),
            run.mean_iter_seconds() * 1e3,
            preproc
        );
    }

    // Table 6 against the *real* hierarchy (48 KiB L1d / 2 MiB L2 on this
    // container): at memory-bound scale the paper's conclusion — size the
    // hub buffer to L2 — is testable in wall clock.
    println!("\n## Table 6 (memory-bound scale) — hub-buffer budget vs real caches\n");
    for (label, bytes) in [
        ("L1d (48 KiB)", 48usize << 10),
        ("L2/2 (1 MiB)", 1 << 20),
        ("L2 (2 MiB)", 2 << 20),
        ("2·L2 (4 MiB)", 4 << 20),
        ("8·L2 (16 MiB)", 16 << 20),
    ] {
        let sweep_cfg = IhtlConfig { cache_budget_bytes: bytes, ..IhtlConfig::default() };
        let mut engine = build_engine(EngineKind::Ihtl, &graph, &sweep_cfg);
        let run = pagerank(engine.as_mut(), 3);
        println!("| {:<14} | {:>10.0} ms/iter |", label, run.mean_iter_seconds() * 1e3);
    }
}
