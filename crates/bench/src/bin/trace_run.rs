//! `trace_run`: records a Chrome-trace-event capture of one traced
//! preprocessing + PageRank run and writes it as Perfetto-loadable JSON.
//!
//! Drive it through `scripts/trace.sh`, or directly:
//!
//!   trace_run [--out PATH] [--scale S] [--edges N] [--iters N]
//!
//! Open the output at https://ui.perfetto.dev (or chrome://tracing): one
//! row per thread — the main thread carries `ihtl_build` and the
//! `ihtl_spmv` phase spans, the pool workers their `worker_busy` /
//! `push_task` / `merge_task` / `pull_task` spans.

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_apps::pagerank::pagerank;
use ihtl_gen::rmat::{rmat_edges, RmatParams};
use ihtl_graph::Graph;
use ihtl_serve::argv::{parse_or_exit, FlagSpec};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "out",
        value: Some("PATH"),
        help: "output Chrome trace JSON path (default results/trace.json)",
    },
    FlagSpec { name: "scale", value: Some("S"), help: "R-MAT scale (default 16)" },
    FlagSpec { name: "edges", value: Some("N"), help: "R-MAT target edges (default 8 << scale)" },
    FlagSpec { name: "iters", value: Some("N"), help: "PageRank iterations (default 5)" },
];

fn main() {
    let args = parse_or_exit("trace_run", "[options]", FLAGS, std::env::args().skip(1));
    let out_path = args.get_or("out", "results/trace.json").to_string();
    let numeric = (|| -> Result<(u32, usize, usize), String> {
        let scale = args.get_usize("scale", 16)?;
        if !(1..=24).contains(&scale) {
            return Err(format!("--scale {scale} out of range 1..=24"));
        }
        let edges = args.get_usize("edges", 8 << scale)?;
        let iters = args.get_usize("iters", 5)?.max(1);
        Ok((scale as u32, edges, iters))
    })();
    let (scale, edges, iters) = match numeric {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };

    // Everything from here on is recorded: graph build is untraced (no
    // spans there by design), engine preprocessing and the iterations are.
    ihtl_trace::enable_forever();
    eprintln!("[trace_run] generating rmat scale={scale} edges~{edges}");
    let edge_list = rmat_edges(scale, edges, RmatParams::social(), 1);
    let g = Graph::from_edges(1usize << scale, &edge_list);
    eprintln!("[trace_run] |V|={} |E|={}; building iHTL engine", g.n_vertices(), g.n_edges());
    let mut engine = build_engine(EngineKind::Ihtl, &g, &ihtl_core::IhtlConfig::default());
    eprintln!("[trace_run] pagerank iters={iters}");
    let _ = pagerank(engine.as_mut(), iters);

    let snap = ihtl_trace::snapshot();
    let spans: usize = snap.iter().map(|t| t.spans.len()).sum();
    let dropped: u64 = snap.iter().map(|t| t.dropped).sum();
    let json = ihtl_trace::chrome::export(&snap);
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("error: writing {out_path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "[trace_run] wrote {out_path}: {} threads, {spans} spans ({dropped} dropped to ring wrap)",
        snap.len()
    );
    eprintln!("[trace_run] open it at https://ui.perfetto.dev or chrome://tracing");
}
