//! Regenerates Figure 2 (the worked example: pull vs iHTL, cache of 2).
fn main() {
    println!("{}", ihtl_bench::experiments::fig2::run());
}
