//! Regenerates Figure 1 (LLC miss rate conditional on in-degree).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::fig1::run(&suite));
}
