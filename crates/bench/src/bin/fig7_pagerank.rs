//! Regenerates Figure 7 (PageRank per-iteration time across traversals)
//! and Table 2 (preprocessing cost in SpMV iterations).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::fig7::run(&suite));
}
