//! Regenerates Figure 9 (asymmetricity degree distribution).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::fig9::run(&suite));
}
