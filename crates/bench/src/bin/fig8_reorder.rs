//! Regenerates Figure 8 (iHTL vs relabeling algorithms).
fn main() {
    let suite = ihtl_bench::load_suite();
    println!("{}", ihtl_bench::experiments::fig8::run(&suite));
}
