//! Figure 2 — the worked example: the 8-vertex graph, an effective cache of
//! 2 vertex-data entries, pull vs iHTL. Reproduces the timeline's bottom
//! line: pull achieves no reuse on the hubs' 9 in-edges while iHTL reuses
//! the hub buffer on most of them.

use ihtl_cachesim::{replay_ihtl, replay_pull, CacheConfig, ReplayMode};
use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_graph::graph::paper_example_graph;

use crate::table;

/// The Figure 2 cache: 2 lines of one 8-byte vertex each, fully
/// associative, at every level (so the LLC behaves as the 2-entry cache of
/// the worked example).
fn figure2_cache() -> CacheConfig {
    CacheConfig {
        line_bytes: 8,
        l1_bytes: 16,
        l1_ways: 0,
        l2_bytes: 16,
        l2_ways: 0,
        l3_bytes: 16,
        l3_ways: 0,
    }
}

/// Runs the worked example and renders the comparison.
pub fn run() -> String {
    let g = paper_example_graph();
    let cfg = IhtlConfig { cache_budget_bytes: 16, ..IhtlConfig::default() };
    let ih = IhtlGraph::build(&g, &cfg);

    let pull = replay_pull(&g, &figure2_cache(), ReplayMode::RandomOnly);
    let ihtl = replay_ihtl(&ih, &g, &figure2_cache(), ReplayMode::RandomOnly);

    let mut out =
        String::from("## Figure 2 — worked example (8 vertices, effective cache size 2)\n\n");
    out.push_str(&format!(
        "iHTL relabeling array (new → old, 1-indexed as in the paper's Fig. 4): {:?}\n",
        ih.new_to_old().iter().map(|&v| v + 1).collect::<Vec<_>>()
    ));
    out.push_str(&format!(
        "hubs: {}, VWEH: {}, FV: {}, flipped blocks: {}\n\n",
        ih.n_hubs(),
        ih.n_vweh(),
        ih.n_fringe(),
        ih.n_blocks()
    ));

    let hub_rows = |rows: &[ihtl_cachesim::replay::ProfileRow]| {
        rows.iter()
            .filter(|r| r.degree_lo >= 4)
            .map(|r| (r.random_accesses, r.llc_misses))
            .fold((0u64, 0u64), |(a, m), (ra, rm)| (a + ra, m + rm))
    };
    let (p_acc, p_miss) = hub_rows(&pull.profile.rows());
    let (i_acc, i_miss) = hub_rows(&ihtl.profile.rows());
    out.push_str(&table::render(
        &["traversal", "hub accesses", "hub misses", "hub reuses"],
        &[
            vec![
                "pull".into(),
                p_acc.to_string(),
                p_miss.to_string(),
                (p_acc - p_miss).to_string(),
            ],
            vec![
                "iHTL".into(),
                i_acc.to_string(),
                i_miss.to_string(),
                (i_acc - i_miss).to_string(),
            ],
        ],
    ));
    out.push_str(&format!(
        "\npull reuse on hub edges: {}; iHTL reuse on hub edges: {} (paper timeline: 0 vs 3+)\n",
        p_acc - p_miss,
        i_acc - i_miss
    ));
    out
}
