//! Table 3 — memory accesses (loads + stores) and L3/L2 cache misses for
//! pull vs iHTL, from the instrumented access-stream replays (the paper
//! captures these with PAPI).

use ihtl_cachesim::{replay_ihtl, replay_pull, CacheConfig, ReplayMode};
use ihtl_core::{IhtlConfig, IhtlGraph};

use crate::datasets::Loaded;
use crate::table;

/// Runs the Table 3 replays over the suite.
pub fn run(suite: &[Loaded]) -> String {
    let cache = CacheConfig::default();
    let cfg = IhtlConfig::default();
    let mut rows = Vec::new();
    for d in suite {
        eprintln!("[table3] {}", d.spec.key);
        let pull = replay_pull(&d.graph, &cache, ReplayMode::Full).counters;
        let ih = IhtlGraph::build(&d.graph, &cfg);
        let ihtl = replay_ihtl(&ih, &d.graph, &cache, ReplayMode::Full).counters;
        rows.push(vec![
            d.spec.key.to_string(),
            table::millions(pull.accesses),
            table::millions(ihtl.accesses),
            table::millions(pull.l3_misses),
            table::millions(ihtl.l3_misses),
            table::millions(pull.l2_misses),
            table::millions(ihtl.l2_misses),
        ]);
    }
    let mut out =
        String::from("## Table 3 — memory accesses and cache misses (simulated, in millions)\n\n");
    out.push_str(&table::render(
        &[
            "dataset",
            "accesses pull",
            "accesses iHTL",
            "L3 miss pull",
            "L3 miss iHTL",
            "L2 miss pull",
            "L2 miss iHTL",
        ],
        &rows,
    ));
    out.push_str(
        "\n(expected shape: iHTL issues *more* accesses but fewer L2/L3 misses —\n\
         the random writes of flipped blocks are captured by the L2-sized buffer.)\n",
    );
    out
}
