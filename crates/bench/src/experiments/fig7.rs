//! Figure 7 — per-iteration PageRank time for push (GraphGrind, GraphIt),
//! pull (GraphGrind, GraphIt, Galois) and iHTL, plus the average-speedup
//! summary row — and Table 2, which reprices iHTL's preprocessing time in
//! units of each framework's SpMV iterations (both tables come from the
//! same measurement pass).

use std::time::Instant;

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_apps::pagerank::pagerank;
use ihtl_core::IhtlConfig;

use crate::datasets::Loaded;
use crate::experiments::PR_ITERS;
use crate::table;

/// Raw measurements shared by Figure 7 and Table 2.
pub struct PagerankMatrix {
    pub dataset_keys: Vec<String>,
    pub engines: Vec<EngineKind>,
    /// `iter_seconds[d][e]` — mean per-iteration seconds.
    pub iter_seconds: Vec<Vec<f64>>,
    /// iHTL graph-construction seconds per dataset (Table 2 numerator).
    pub ihtl_preproc_seconds: Vec<f64>,
}

/// Runs PageRank with every engine on every dataset.
pub fn measure(suite: &[Loaded], cfg: &IhtlConfig) -> PagerankMatrix {
    let engines = EngineKind::all().to_vec();
    let mut iter_seconds = Vec::with_capacity(suite.len());
    let mut ihtl_preproc = Vec::with_capacity(suite.len());
    for d in suite {
        let mut row = Vec::with_capacity(engines.len());
        for &kind in &engines {
            let t = Instant::now();
            let mut engine = build_engine(kind, &d.graph, cfg);
            let preproc = t.elapsed().as_secs_f64();
            if kind == EngineKind::Ihtl {
                ihtl_preproc.push(preproc);
            }
            let run = pagerank(engine.as_mut(), PR_ITERS);
            row.push(run.mean_iter_seconds());
            eprintln!(
                "[fig7] {:>9} {:<16} iter {:>9} preproc {:>8}",
                d.spec.key,
                kind.label(),
                table::ms(run.mean_iter_seconds()),
                table::ms(preproc),
            );
        }
        iter_seconds.push(row);
    }
    PagerankMatrix {
        dataset_keys: suite.iter().map(|d| d.spec.key.to_string()).collect(),
        engines,
        iter_seconds,
        ihtl_preproc_seconds: ihtl_preproc,
    }
}

/// Renders Figure 7: per-iteration times (ms) and average speedups vs iHTL.
pub fn render_fig7(m: &PagerankMatrix) -> String {
    let mut headers: Vec<&str> = vec!["dataset"];
    headers.extend(m.engines.iter().map(|e| e.label()));
    let mut rows = Vec::new();
    for (d, key) in m.dataset_keys.iter().enumerate() {
        let mut row = vec![key.clone()];
        for e in 0..m.engines.len() {
            row.push(table::ms(m.iter_seconds[d][e]));
        }
        rows.push(row);
    }
    // Average-speedup summary row (geometric mean of baseline/iHTL ratios),
    // matching the paper's "Avg. Speedup" row.
    let ihtl_idx =
        m.engines.iter().position(|&e| e == EngineKind::Ihtl).expect("iHTL engine missing");
    let mut summary = vec!["avg speedup vs iHTL".to_string()];
    for e in 0..m.engines.len() {
        if e == ihtl_idx {
            summary.push("1×".to_string());
            continue;
        }
        let ratios: Vec<f64> = (0..m.dataset_keys.len())
            .map(|d| m.iter_seconds[d][e] / m.iter_seconds[d][ihtl_idx])
            .collect();
        summary.push(table::speedup(table::geomean(&ratios)));
    }
    rows.push(summary);
    let mut out = String::from(
        "## Figure 7 — PageRank per-iteration time (ms), push/pull baselines vs iHTL\n\n",
    );
    out.push_str(&table::render(&headers, &rows));
    out
}

/// Renders Table 2: iHTL preprocessing expressed in SpMV iterations of the
/// pull traversal of each framework (and of iHTL itself).
pub fn render_table2(m: &PagerankMatrix) -> String {
    let cols = [
        ("GraphGrind", EngineKind::PullGraphGrind),
        ("GraphIt", EngineKind::PullGraphIt),
        ("Galois", EngineKind::PullGalois),
        ("iHTL", EngineKind::Ihtl),
    ];
    let mut rows = Vec::new();
    let mut col_ratios: Vec<Vec<f64>> = vec![Vec::new(); cols.len()];
    for (d, key) in m.dataset_keys.iter().enumerate() {
        let mut row = vec![key.clone()];
        for (c, (_, kind)) in cols.iter().enumerate() {
            let e = m.engines.iter().position(|k| k == kind).unwrap();
            let iters = m.ihtl_preproc_seconds[d] / m.iter_seconds[d][e];
            col_ratios[c].push(iters);
            row.push(format!("{iters:.1}"));
        }
        rows.push(row);
    }
    let mut avg = vec!["average".to_string()];
    for r in &col_ratios {
        avg.push(format!("{:.1}", r.iter().sum::<f64>() / r.len().max(1) as f64));
    }
    rows.push(avg);
    let mut headers: Vec<&str> = vec!["dataset"];
    headers.extend(cols.iter().map(|(n, _)| *n));
    let mut out =
        String::from("## Table 2 — iHTL preprocessing cost, in per-framework SpMV iterations\n\n");
    out.push_str(&table::render(&headers, &rows));
    out
}

/// Full Figure 7 + Table 2 report.
pub fn run(suite: &[Loaded]) -> String {
    let m = measure(suite, &IhtlConfig::default());
    format!("{}\n{}", render_fig7(&m), render_table2(&m))
}
