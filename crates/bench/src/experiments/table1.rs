//! Table 1 — the dataset table: |V|, |E|, maximum in/out-degree per
//! dataset, for the synthetic suite standing in for the paper's graphs.

use ihtl_graph::stats::degree_stats;

use crate::datasets::Loaded;
use crate::table;

/// Renders the dataset table.
pub fn run(suite: &[Loaded]) -> String {
    let mut rows = Vec::new();
    for d in suite {
        let s = degree_stats(&d.graph);
        rows.push(vec![
            d.spec.key.to_string(),
            d.spec.paper_name.to_string(),
            format!("{:?}", d.spec.kind),
            format!("{}", s.n_vertices),
            format!("{}", s.n_edges),
            format!("{}", s.max_in_degree),
            format!("{}", s.max_out_degree),
            format!("{:.1}", s.mean_degree),
        ]);
    }
    let mut out = String::from("## Table 1 — datasets (synthetic stand-ins)\n\n");
    out.push_str(&table::render(
        &["key", "stands in for", "class", "|V|", "|E|", "max in-deg", "max out-deg", "mean deg"],
        &rows,
    ));
    out
}
