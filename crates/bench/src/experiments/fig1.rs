//! Figure 1 — LLC miss rate of pull SpMV conditional on vertex in-degree,
//! for the initial ordering, the three relabeling baselines, and iHTL; on
//! one social graph (Twitter MPI stand-in) and one web graph (SK-Domain
//! stand-in), as in the paper.

use ihtl_cachesim::{replay_ihtl, replay_pull, CacheConfig, ReplayMode};
use ihtl_core::{IhtlConfig, IhtlGraph};
use ihtl_graph::Graph;
use ihtl_reorder::{gorder, rabbit, slashburn};

use crate::datasets::Loaded;
use crate::table;

/// Datasets profiled. The paper uses Twitter MPI and SK-Domain; the social
/// graph here is the Twitter 2010 stand-in instead, because our sequential
/// GOrder reimplementation is infeasible on the Twitter MPI stand-in (the
/// same |E|-bound that made the paper skip GOrder on its largest graphs).
pub const FIG1_DATASETS: [&str; 2] = ["twtr10", "sk"];

fn profile_pull(g: &Graph, cache: &CacheConfig) -> Vec<(usize, f64)> {
    let rep = replay_pull(g, cache, ReplayMode::Full);
    rep.profile.rows().iter().map(|r| (r.degree_lo, r.miss_rate())).collect()
}

/// Runs the miss-rate profiles for one dataset; returns the rendered table.
fn run_one(d: &Loaded) -> String {
    let g = &d.graph;
    let cache = CacheConfig::default();
    let ihtl_cfg = IhtlConfig::default();

    eprintln!("[fig1] {}: initial", d.spec.key);
    let initial = profile_pull(g, &cache);
    eprintln!("[fig1] {}: SlashBurn", d.spec.key);
    let sb = profile_pull(&g.relabel(&slashburn::slashburn(g, 0.005).perm), &cache);
    eprintln!("[fig1] {}: GOrder", d.spec.key);
    let go = if gorder::gorder_cost_estimate(g) <= 6_000_000_000 {
        profile_pull(&g.relabel(&gorder::gorder(g, 5).perm), &cache)
    } else {
        eprintln!("[fig1] {}: GOrder skipped (cost estimate too high)", d.spec.key);
        Vec::new()
    };
    eprintln!("[fig1] {}: Rabbit-Order", d.spec.key);
    let ro = profile_pull(&g.relabel(&rabbit::rabbit_order(g, 16).perm), &cache);
    eprintln!("[fig1] {}: iHTL", d.spec.key);
    let ih = IhtlGraph::build(g, &ihtl_cfg);
    let ihtl: Vec<(usize, f64)> = replay_ihtl(&ih, g, &cache, ReplayMode::Full)
        .profile
        .rows()
        .iter()
        .map(|r| (r.degree_lo, r.miss_rate()))
        .collect();

    // Align all series on the union of degree buckets.
    let mut degrees: Vec<usize> = initial.iter().map(|&(d, _)| d).collect();
    for s in [&sb, &go, &ro, &ihtl] {
        degrees.extend(s.iter().map(|&(d, _)| d));
    }
    degrees.sort_unstable();
    degrees.dedup();
    let lookup = |series: &[(usize, f64)], deg: usize| -> String {
        series
            .iter()
            .find(|&&(d, _)| d == deg)
            .map_or("—".to_string(), |&(_, r)| format!("{r:.3}"))
    };
    let rows: Vec<Vec<String>> = degrees
        .iter()
        .map(|&deg| {
            vec![
                format!("{deg}"),
                lookup(&initial, deg),
                lookup(&sb, deg),
                lookup(&go, deg),
                lookup(&ro, deg),
                lookup(&ihtl, deg),
            ]
        })
        .collect();
    let mut out = format!("### {} ({})\n\n", d.spec.key, d.spec.paper_name);
    out.push_str(&table::render(
        &["in-degree ≥", "initial", "SlashBurn", "GOrder", "Rabbit-Order", "iHTL"],
        &rows,
    ));
    out
}

/// Full Figure 1 report.
pub fn run(suite: &[Loaded]) -> String {
    let mut out = String::from(
        "## Figure 1 — LLC miss rate of SpMV conditional on vertex in-degree\n\n\
         (simulated hierarchy; miss rate of the random accesses attributed to each\n\
         destination, bucketed by in-degree — hubs are the rightmost rows)\n\n",
    );
    for key in FIG1_DATASETS {
        if let Some(d) = suite.iter().find(|d| d.spec.key == key) {
            out.push_str(&run_one(d));
            out.push('\n');
        }
    }
    out
}
