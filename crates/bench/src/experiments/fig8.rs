//! Figure 8 — pull traversal of SlashBurn/GOrder/Rabbit-Order relabeled
//! graphs vs iHTL: per-iteration PageRank time (left) and preprocessing
//! time (right). Mirrors the paper's availability gaps: GOrder is skipped
//! on the four largest web graphs (its |E| < 2³¹ limit in the paper; its
//! quadratic-in-hub-degree update cost here) and Rabbit-Order on ClueWeb09
//! (out-of-memory in the paper).

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_apps::pagerank::pagerank;
use ihtl_core::IhtlConfig;
use ihtl_graph::Graph;
use ihtl_reorder::{gorder, rabbit, slashburn, Reordering};

use crate::datasets::Loaded;
use crate::experiments::PR_ITERS;
use crate::table;

/// SlashBurn hub fraction per round (the original paper's suggestion).
const SB_K_RATIO: f64 = 0.005;
/// GOrder window width (the original paper's default).
const GO_WINDOW: usize = 5;
/// Rabbit-Order aggregation levels.
const RO_LEVELS: usize = 16;

/// Datasets GOrder is skipped on, mirroring the paper's Figure 8 gaps.
const GO_SKIP: [&str; 4] = ["uk_dls", "uu", "uk_dmn", "clwb9"];
/// Safety valve on top of the key list: GOrder's sibling updates cost
/// `Σ deg⁺²`; beyond this budget a run would take tens of minutes (the
/// paper's own GOrder run on Twitter MPI took 5 697 s — GOrder being
/// painfully slow on hub-heavy graphs is itself one of the paper's
/// findings, which the estimate reproduces).
const GO_MAX_COST: u64 = 6_000_000_000;
/// Datasets Rabbit-Order is skipped on (paper: OOM on ClueWeb09).
const RO_SKIP: [&str; 1] = ["clwb9"];

struct Cell {
    iter_seconds: f64,
    preproc_seconds: f64,
}

/// Relabels `g` and times a GraphGrind-style pull PageRank over the result.
fn pull_after(g: &Graph, r: &Reordering, cfg: &IhtlConfig) -> f64 {
    r.validate();
    let relabeled = g.relabel(&r.perm);
    let mut engine = build_engine(EngineKind::PullGraphGrind, &relabeled, cfg);
    pagerank(engine.as_mut(), PR_ITERS).mean_iter_seconds()
}

/// Runs the Figure 8 comparison.
pub fn run(suite: &[Loaded]) -> String {
    let cfg = IhtlConfig::default();
    let mut rows = Vec::new();
    let mut iter_ratios: Vec<Vec<f64>> = vec![Vec::new(); 3];
    let mut pre_ratios: Vec<Vec<f64>> = vec![Vec::new(); 3];
    for d in suite {
        let g = &d.graph;
        let key = d.spec.key;

        let sb = {
            let r = slashburn::slashburn(g, SB_K_RATIO);
            let iter = pull_after(g, &r, &cfg);
            Some(Cell { iter_seconds: iter, preproc_seconds: r.seconds })
        };
        let go = if GO_SKIP.contains(&key) || gorder::gorder_cost_estimate(g) > GO_MAX_COST {
            None
        } else {
            let r = gorder::gorder(g, GO_WINDOW);
            let iter = pull_after(g, &r, &cfg);
            Some(Cell { iter_seconds: iter, preproc_seconds: r.seconds })
        };
        let ro = if RO_SKIP.contains(&key) {
            None
        } else {
            let r = rabbit::rabbit_order(g, RO_LEVELS);
            let iter = pull_after(g, &r, &cfg);
            Some(Cell { iter_seconds: iter, preproc_seconds: r.seconds })
        };
        let (ihtl_iter, ihtl_pre) = {
            let t = std::time::Instant::now();
            let mut engine = build_engine(EngineKind::Ihtl, g, &cfg);
            let pre = t.elapsed().as_secs_f64();
            (pagerank(engine.as_mut(), PR_ITERS).mean_iter_seconds(), pre)
        };

        for (i, cell) in [&sb, &go, &ro].into_iter().enumerate() {
            if let Some(c) = cell {
                iter_ratios[i].push(c.iter_seconds / ihtl_iter);
                pre_ratios[i].push(c.preproc_seconds / ihtl_pre);
            }
        }
        let fmt_iter =
            |c: &Option<Cell>| c.as_ref().map_or("—".to_string(), |c| table::ms(c.iter_seconds));
        let fmt_pre = |c: &Option<Cell>| {
            c.as_ref().map_or("—".to_string(), |c| format!("{:.2}", c.preproc_seconds))
        };
        eprintln!(
            "[fig8] {:>9}: SB {} GO {} RO {} iHTL {} | pre SB {} GO {} RO {} iHTL {:.2}",
            key,
            fmt_iter(&sb),
            fmt_iter(&go),
            fmt_iter(&ro),
            table::ms(ihtl_iter),
            fmt_pre(&sb),
            fmt_pre(&go),
            fmt_pre(&ro),
            ihtl_pre
        );
        rows.push(vec![
            key.to_string(),
            fmt_iter(&sb),
            fmt_iter(&go),
            fmt_iter(&ro),
            table::ms(ihtl_iter),
            fmt_pre(&sb),
            fmt_pre(&go),
            fmt_pre(&ro),
            format!("{ihtl_pre:.2}"),
        ]);
    }
    let mut summary = vec!["avg speedup / slowdown".to_string()];
    for r in &iter_ratios {
        summary.push(if r.is_empty() { "—".into() } else { table::speedup(table::geomean(r)) });
    }
    summary.push("1×".to_string());
    for r in &pre_ratios {
        summary.push(if r.is_empty() {
            "—".into()
        } else {
            format!(">{:.0}×", table::geomean(r))
        });
    }
    summary.push("1×".to_string());
    rows.push(summary);

    let mut out = String::from(
        "## Figure 8 — pull after relabeling vs iHTL: iteration time (ms) | preprocessing (s)\n\n",
    );
    out.push_str(&table::render(
        &[
            "dataset",
            "SB pull",
            "GO pull",
            "RO pull",
            "iHTL",
            "SB pre (s)",
            "GO pre (s)",
            "RO pre (s)",
            "iHTL pre (s)",
        ],
        &rows,
    ));
    out.push_str("\n(—: skipped, mirroring the paper — GOrder's |E| limit; Rabbit-Order OOM on ClueWeb09.)\n");
    out
}
