//! Table 6 — buffer-size sensitivity: PageRank iteration time with the
//! hub-buffer budget set to the scaled equivalents of L1, L2/2, L2 and
//! 2·L2 (the paper concludes L2 is the right home for hub data).

use ihtl_apps::engine::{build_engine, EngineKind};
use ihtl_apps::pagerank::pagerank;
use ihtl_core::IhtlConfig;

use crate::datasets::Loaded;
use crate::experiments::PR_ITERS;
use crate::table;

/// Budgets swept, as (label, bytes): the scaled hierarchy has L1 = 4 KiB
/// and L2 = 32 KiB (see `ihtl-cachesim`).
pub const BUDGETS: [(&str, usize); 4] =
    [("L1", 4 << 10), ("L2/2", 16 << 10), ("L2", 32 << 10), ("L2*2", 64 << 10)];

/// Datasets swept (the seven rows of the paper's Table 6).
pub const TABLE6_DATASETS: [&str; 7] =
    ["twtr_mpi", "frndstr", "wb_cc", "uk_dls", "uu", "uk_dmn", "clwb9"];

/// Runs the sweep.
pub fn run(suite: &[Loaded]) -> String {
    let mut rows = Vec::new();
    for key in TABLE6_DATASETS {
        let Some(d) = suite.iter().find(|d| d.spec.key == key) else {
            continue;
        };
        let mut row = vec![key.to_string()];
        for (label, bytes) in BUDGETS {
            let cfg = IhtlConfig { cache_budget_bytes: bytes, ..IhtlConfig::default() };
            let mut engine = build_engine(EngineKind::Ihtl, &d.graph, &cfg);
            let run = pagerank(engine.as_mut(), PR_ITERS);
            eprintln!("[table6] {:>9} {:>5}: {}", key, label, table::ms(run.mean_iter_seconds()));
            row.push(table::ms(run.mean_iter_seconds()));
        }
        rows.push(row);
    }
    let mut headers: Vec<&str> = vec!["dataset"];
    headers.extend(BUDGETS.iter().map(|(l, _)| *l));
    let mut out =
        String::from("## Table 6 — PageRank iteration time (ms) vs hub-buffer budget\n\n");
    out.push_str(&table::render(&headers, &rows));
    out
}
