//! Table 5 — iHTL graph statistics (#FB, %VWEH, minimum hub degree, %FB
//! edges) and execution breakdown (%time in flipped blocks, %time merging
//! buffers, flipped-block speed), measured over timed SpMV iterations.

use ihtl_apps::engine::build_ihtl_engine;
use ihtl_core::IhtlConfig;

use crate::datasets::Loaded;
use crate::experiments::PR_ITERS;
use crate::table;

/// Runs the breakdown over the suite.
pub fn run(suite: &[Loaded]) -> String {
    let cfg = IhtlConfig::default();
    let mut rows = Vec::new();
    for d in suite {
        let mut engine = build_ihtl_engine(&d.graph, &cfg);
        let stats = engine.graph().stats().clone();
        let n = engine.graph().n_vertices();
        // Timed iterations with phase breakdown (skip the first).
        let x = vec![1.0f64; n];
        let mut y = vec![0.0f64; n];
        let mut fb = 0.0;
        let mut merge = 0.0;
        let mut total = 0.0;
        for i in 0..PR_ITERS {
            let bd = engine.spmv_add_with_breakdown(&x, &mut y);
            if i == 0 {
                continue;
            }
            fb += bd.fb_seconds;
            merge += bd.merge_seconds;
            total += bd.total_seconds();
        }
        let fb_time_frac = fb / total;
        let merge_frac = merge / total;
        let fb_edge_frac = stats.fb_edge_fraction();
        let fb_speed = if fb_time_frac > 0.0 { fb_edge_frac / fb_time_frac } else { 0.0 };
        eprintln!(
            "[table5] {:>9}: #FB {} VWEH {} FBedges {} FBtime {} merge {} speed {:.2}",
            d.spec.key,
            stats.n_blocks,
            table::pct(stats.vweh_fraction()),
            table::pct(fb_edge_frac),
            table::pct(fb_time_frac),
            table::pct(merge_frac),
            fb_speed
        );
        rows.push(vec![
            d.spec.key.to_string(),
            stats.n_blocks.to_string(),
            table::pct(stats.vweh_fraction()),
            stats.min_hub_degree.to_string(),
            table::pct(fb_edge_frac),
            table::pct(fb_time_frac),
            format!("{:.2}%", merge_frac * 100.0),
            format!("{fb_speed:.2}"),
        ]);
    }
    let mut out = String::from("## Table 5 — iHTL graph statistics and execution breakdown\n\n");
    out.push_str(&table::render(
        &[
            "dataset",
            "#FB",
            "VWEH",
            "min hub deg",
            "FB edges",
            "FB time",
            "buffer merging",
            "FB speed",
        ],
        &rows,
    ));
    out.push_str(
        "\n(FB speed = share of edges in flipped blocks ÷ share of time spent there;\n\
         > 1 means a flipped-block edge processes faster than average.)\n",
    );
    out
}
