//! One submodule per paper table/figure. Each entry point takes the loaded
//! suite and returns a report string (markdown tables + commentary lines).

pub mod fig1;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;

/// Number of timed PageRank iterations per measurement (mean over all but
/// the first, which warms caches and the page tables).
pub const PR_ITERS: usize = 6;
