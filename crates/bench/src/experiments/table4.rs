//! Table 4 — topology size: plain CSC vs the iHTL graph, and the overhead
//! percentage (the paper reports 2–57 %, large only where multiple flipped
//! blocks replicate the index array).

use ihtl_core::{IhtlConfig, IhtlGraph};

use crate::datasets::Loaded;
use crate::table;

/// Runs the byte accounting over the suite.
pub fn run(suite: &[Loaded]) -> String {
    let cfg = IhtlConfig::default();
    let mut rows = Vec::new();
    for d in suite {
        let csc_bytes = d.graph.csc().topology_bytes();
        let ih = IhtlGraph::build(&d.graph, &cfg);
        let ihtl_bytes = ih.topology_bytes();
        let overhead = (ihtl_bytes as f64 / csc_bytes as f64 - 1.0) * 100.0;
        rows.push(vec![
            d.spec.key.to_string(),
            format!("{:.1}", csc_bytes as f64 / (1 << 20) as f64),
            format!("{:.1}", ihtl_bytes as f64 / (1 << 20) as f64),
            format!("{overhead:.0}%"),
            ih.n_blocks().to_string(),
        ]);
    }
    let mut out = String::from("## Table 4 — topology size (MiB): CSC vs iHTL graph\n\n");
    out.push_str(&table::render(&["dataset", "CSC (MiB)", "iHTL (MiB)", "overhead", "#FB"], &rows));
    out
}
