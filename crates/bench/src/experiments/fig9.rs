//! Figure 9 — asymmetricity vs degree, social vs web (the paper profiles
//! Twitter MPI and UK-Union): social in-hubs are near-symmetric (their
//! in-neighbours link back), web in-hubs are not — which is why horizontal
//! (out-hub) blocking cannot work on web graphs while iHTL's vertical
//! (in-hub) blocking can (§5.4).

use ihtl_graph::stats::{asymmetricity, degree_profile};

use crate::datasets::Loaded;
use crate::table;

/// Datasets profiled (matching the paper's figure).
pub const FIG9_DATASETS: [&str; 2] = ["twtr_mpi", "uu"];

fn run_one(d: &Loaded) -> String {
    let g = &d.graph;
    let prof = degree_profile(g, |v| asymmetricity(g, v));
    let rows: Vec<Vec<String>> = prof
        .iter()
        .map(|b| {
            vec![format!("{}..{}", b.lo, b.hi), b.n_vertices.to_string(), format!("{:.3}", b.mean)]
        })
        .collect();
    let mut out = format!("### {} ({})\n\n", d.spec.key, d.spec.paper_name);
    out.push_str(&table::render(&["in-degree", "vertices", "mean asymmetricity"], &rows));
    out
}

/// Full Figure 9 report.
pub fn run(suite: &[Loaded]) -> String {
    let mut out = String::from(
        "## Figure 9 — asymmetricity degree distribution (0 = every in-neighbour\n\
         links back; 1 = none does)\n\n",
    );
    for key in FIG9_DATASETS {
        if let Some(d) = suite.iter().find(|d| d.spec.key == key) {
            out.push_str(&run_one(d));
            out.push('\n');
        }
    }
    out
}
