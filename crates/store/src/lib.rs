//! # ihtl-store — durable content-addressed artifact store
//!
//! The paper amortises iHTL preprocessing by keeping the transformed graph
//! on disk in its binary format (§4.2, Table 2: preprocessing costs several
//! full SpMV sweeps). This crate is the workspace's durable tier for that
//! amortisation: a content-addressed on-disk store for *preprocessed*
//! artifacts — `IhtlGraph` images (`IHTLBLK2`) and `PbGraph` layouts
//! (`IHTLPBG1`) — shared by the serve registry, the CLI, and the benches.
//!
//! ## Addressing
//!
//! An artifact is keyed by `(dataset content hash, artifact kind,
//! config key, format version)` and stored at
//!
//! ```text
//! <root>/<kind>/<dataset_hash:016x>-<config_key:016x>-v<version>.blk
//! ```
//!
//! * The **dataset content hash** is the FNV-1a-64 of the graph's CSR
//!   (vertex count, edge count, offsets, targets). Two registrations of
//!   bitwise-identical topology share artifacts no matter how they were
//!   named or produced; a reordered copy of the same graph hashes
//!   differently — as it must, since preprocessed images bake the
//!   permutation in (PAPERS.md: Faldu et al., arXiv:2001.08448).
//! * The **config key** hashes every construction parameter that changes
//!   the artifact's bytes. For iHTL images the partition count is
//!   *excluded* (tasks are rebuilt at load; the blocked structure is
//!   parts-independent); for PB layouts it is *included* (the bin layout
//!   depends on the source ranges, and the default partition count is
//!   machine-dependent).
//! * The **format version** tracks the on-disk magic, so a format bump
//!   simply misses instead of mis-parsing.
//!
//! ## Doctrine
//!
//! Writes are atomic and checksum-trailered (`ihtl_graph::io::save_atomic`
//! — sibling temp + rename, FNV-1a-64 trailer). Loads verify the trailer
//! and then full structural validation via the hardened `load_ihtl` /
//! `load_pb` paths. A file that fails either check is **quarantined** —
//! renamed to `<name>.corrupt` — and reported as a miss, so the caller
//! rebuilds and the store heals by write-back; serving never fails on a
//! bad image. I/O errors on write-back are returned to the caller but are
//! safe to ignore (the store is a cache, not the source of truth).
//!
//! Counters (`hits`/`misses`/`writes`/`quarantined`) are plain atomics
//! surfaced by the serve `stats` endpoint; `store_load` / `store_write`
//! spans bracket the disk work (the trace crate owns the clock — this
//! crate takes no timestamps of its own).

#![forbid(unsafe_code)]

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ihtl_core::config::IhtlConfig;
use ihtl_core::graph::IhtlGraph;
use ihtl_graph::io::Fnv1a;
use ihtl_graph::Graph;
use ihtl_traversal::pb::PbGraph;

/// Artifact kinds the store can hold. The wire name doubles as the
/// subdirectory name under the store root.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A preprocessed iHTL graph (`IHTLBLK2`).
    Ihtl,
    /// A propagation-blocking layout (`IHTLPBG1`).
    Pb,
    /// A destination-range shard graph (`IHTLGRPH`), extracted for one
    /// worker of a sharded deployment.
    Shard,
}

impl ArtifactKind {
    fn dir(self) -> &'static str {
        match self {
            ArtifactKind::Ihtl => "ihtl",
            ArtifactKind::Pb => "pb",
            ArtifactKind::Shard => "shard",
        }
    }

    /// On-disk format version; bump alongside the format magic so stale
    /// images miss instead of mis-parsing.
    fn version(self) -> u32 {
        match self {
            ArtifactKind::Ihtl => 2,  // IHTLBLK2
            ArtifactKind::Pb => 1,    // IHTLPBG1
            ArtifactKind::Shard => 1, // IHTLGRPH
        }
    }
}

/// A fully resolved artifact address.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StoreKey {
    pub kind: ArtifactKind,
    pub dataset_hash: u64,
    pub config_key: u64,
}

impl StoreKey {
    fn file_name(&self) -> String {
        format!("{:016x}-{:016x}-v{}.blk", self.dataset_hash, self.config_key, self.kind.version())
    }
}

/// Snapshot of the store's lifetime counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreCounters {
    pub hits: u64,
    pub misses: u64,
    pub writes: u64,
    pub quarantined: u64,
}

/// Content-addressed on-disk store for preprocessed graph artifacts.
pub struct BlockStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    quarantined: AtomicU64,
}

impl BlockStore {
    /// Opens (creating if needed) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<BlockStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(BlockStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The on-disk path an artifact with `key` would occupy.
    pub fn path_for(&self, key: StoreKey) -> PathBuf {
        self.root.join(key.kind.dir()).join(key.file_name())
    }

    /// Lifetime counters since open.
    pub fn counters(&self) -> StoreCounters {
        StoreCounters {
            // ORDERING: Relaxed — all four are monotonic stats counters
            // read for reporting; no data is published through them
            // (holds for every counter op in this file).
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed), // ORDERING: as above
        }
    }

    /// Loads and validates the artifact at `key`, or `None` on a miss.
    /// A present-but-invalid file (torn write survivor, bit rot, stale
    /// format) is quarantined — renamed to `<name>.corrupt` — and counts
    /// as a miss, so the caller rebuilds and write-back heals the store.
    fn load_bytes(&self, key: StoreKey) -> Option<Vec<u8>> {
        let path = self.path_for(key);
        match std::fs::read(&path) {
            Ok(data) => Some(data),
            Err(_) => {
                // ORDERING: Relaxed — stats counter; see counters().
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn quarantine(&self, key: StoreKey) {
        let path = self.path_for(key);
        let mut corrupt = path.as_os_str().to_owned();
        corrupt.push(".corrupt");
        // Best-effort: if the rename fails too, the next load re-detects
        // the corruption and retries; never fail the caller over it.
        let _ = std::fs::rename(&path, PathBuf::from(corrupt));
        // ORDERING: Relaxed — stats counters; see counters().
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Loads a preprocessed iHTL graph, or `None` (miss or quarantined).
    pub fn load_ihtl(&self, dataset_hash: u64, cfg: &IhtlConfig) -> Option<IhtlGraph> {
        let key = ihtl_key(dataset_hash, cfg);
        let _span = ihtl_trace::span("store_load").with_arg(key.config_key);
        let data = self.load_bytes(key)?;
        match ihtl_core::io::load_ihtl_bytes(&data) {
            Ok(ih) => {
                // ORDERING: Relaxed — stats counter; see counters().
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(ih)
            }
            Err(_) => {
                self.quarantine(key);
                None
            }
        }
    }

    /// Write-back of a freshly built iHTL graph (atomic + trailered).
    pub fn save_ihtl(&self, dataset_hash: u64, cfg: &IhtlConfig, ih: &IhtlGraph) -> io::Result<()> {
        let key = ihtl_key(dataset_hash, cfg);
        let _span = ihtl_trace::span("store_write").with_arg(key.config_key);
        let path = self.path_for(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        ihtl_core::io::save_ihtl(ih, &path)?;
        // ORDERING: Relaxed — stats counter; see counters().
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Loads a PB layout built with `parts` partitions, or `None`.
    pub fn load_pb(&self, dataset_hash: u64, cfg: &IhtlConfig, parts: usize) -> Option<PbGraph> {
        let key = pb_key(dataset_hash, cfg, parts);
        let _span = ihtl_trace::span("store_load").with_arg(key.config_key);
        let data = self.load_bytes(key)?;
        match ihtl_traversal::pb::load_pb_bytes(&data) {
            Ok(pb) => {
                // ORDERING: Relaxed — stats counter; see counters().
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(pb)
            }
            Err(_) => {
                self.quarantine(key);
                None
            }
        }
    }

    /// Write-back of a freshly built PB layout (atomic + trailered).
    pub fn save_pb(
        &self,
        dataset_hash: u64,
        cfg: &IhtlConfig,
        parts: usize,
        pb: &PbGraph,
    ) -> io::Result<()> {
        let key = pb_key(dataset_hash, cfg, parts);
        let _span = ihtl_trace::span("store_write").with_arg(key.config_key);
        let path = self.path_for(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        ihtl_traversal::pb::save_pb(pb, &path)?;
        // ORDERING: Relaxed — stats counter; see counters().
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Loads a destination-range shard graph (`sym` selects the shard of
    /// the symmetrized base), or `None` (miss or quarantined). Keyed by
    /// the *base* graph's content hash plus `(index, count, sym)` — the
    /// shard's own hash isn't known until after extraction, which is
    /// exactly the work the store amortises.
    pub fn load_shard_graph(
        &self,
        base_hash: u64,
        index: usize,
        count: usize,
        sym: bool,
    ) -> Option<Graph> {
        let key = shard_key(base_hash, index, count, sym);
        let _span = ihtl_trace::span("store_load").with_arg(key.config_key);
        let data = self.load_bytes(key)?;
        match ihtl_graph::io::load_graph_bytes(&data) {
            Ok(g) => {
                // ORDERING: Relaxed — stats counter; see counters().
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(g)
            }
            Err(_) => {
                self.quarantine(key);
                None
            }
        }
    }

    /// Write-back of a freshly extracted shard (atomic + trailered).
    pub fn save_shard_graph(
        &self,
        base_hash: u64,
        index: usize,
        count: usize,
        sym: bool,
        g: &Graph,
    ) -> io::Result<()> {
        let key = shard_key(base_hash, index, count, sym);
        let _span = ihtl_trace::span("store_write").with_arg(key.config_key);
        let path = self.path_for(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        ihtl_graph::io::save_graph(g, &path)?;
        // ORDERING: Relaxed — stats counter; see counters().
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// FNV-1a-64 over the graph's CSR: vertex count, edge count, offsets,
/// targets. Identical topology ⇒ identical hash, independent of how the
/// graph was produced or named; any permutation or edit changes it.
pub fn dataset_content_hash(g: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.write(&(g.n_vertices() as u64).to_le_bytes());
    h.write(&(g.n_edges() as u64).to_le_bytes());
    for &o in g.csr().offsets() {
        h.write(&o.to_le_bytes());
    }
    for &t in g.csr().targets() {
        h.write(&t.to_le_bytes());
    }
    h.finish()
}

/// Config key for iHTL images: every parameter that changes the blocked
/// structure's bytes. `parts` is deliberately excluded — the per-phase
/// task lists are rebuilt at load time for the loading machine.
pub fn ihtl_config_key(cfg: &IhtlConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"ihtl-cfg-v1");
    h.write(&(cfg.cache_budget_bytes as u64).to_le_bytes());
    h.write(&(cfg.vertex_data_bytes as u64).to_le_bytes());
    h.write(&cfg.acceptance_ratio.to_bits().to_le_bytes());
    match cfg.max_blocks {
        None => h.write(&[0]),
        Some(mb) => {
            h.write(&[1]);
            h.write(&(mb as u64).to_le_bytes());
        }
    }
    h.write(&[cfg.separate_fringe as u8]);
    match cfg.block_count {
        ihtl_core::config::BlockCountMode::Exact => h.write(&[0]),
        ihtl_core::config::BlockCountMode::SinglePass { max_blocks } => {
            h.write(&[1]);
            h.write(&(max_blocks as u64).to_le_bytes());
        }
    }
    h.finish()
}

/// Config key for PB layouts. Unlike iHTL, the partition count is part of
/// the artifact (bin extents are per source range), and the *default*
/// partition count is machine-dependent — so it must be in the key or
/// artifacts would silently alias across machines and thread counts.
pub fn pb_config_key(cfg: &IhtlConfig, parts: usize) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"pb-cfg-v1");
    h.write(&(cfg.cache_budget_bytes as u64).to_le_bytes());
    h.write(&(cfg.vertex_data_bytes as u64).to_le_bytes());
    h.write(&(parts as u64).to_le_bytes());
    h.finish()
}

/// Config key for shard graphs: the partition coordinates and which view
/// (raw or symmetrized base) was sharded. The partition itself is a pure
/// function of the base graph, which the dataset hash already pins.
pub fn shard_config_key(index: usize, count: usize, sym: bool) -> u64 {
    let mut h = Fnv1a::new();
    h.write(b"shard-cfg-v1");
    h.write(&(index as u64).to_le_bytes());
    h.write(&(count as u64).to_le_bytes());
    h.write(&[sym as u8]);
    h.finish()
}

fn shard_key(base_hash: u64, index: usize, count: usize, sym: bool) -> StoreKey {
    StoreKey {
        kind: ArtifactKind::Shard,
        dataset_hash: base_hash,
        config_key: shard_config_key(index, count, sym),
    }
}

fn ihtl_key(dataset_hash: u64, cfg: &IhtlConfig) -> StoreKey {
    StoreKey { kind: ArtifactKind::Ihtl, dataset_hash, config_key: ihtl_config_key(cfg) }
}

fn pb_key(dataset_hash: u64, cfg: &IhtlConfig, parts: usize) -> StoreKey {
    StoreKey { kind: ArtifactKind::Pb, dataset_hash, config_key: pb_config_key(cfg, parts) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ihtl_gen::prng::Pcg64;

    fn temp_store(tag: &str) -> BlockStore {
        let dir = std::env::temp_dir().join(format!("ihtl_store_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        BlockStore::open(dir).unwrap()
    }

    fn random_graph(rng: &mut Pcg64, n: usize, m: usize) -> Graph {
        let edges: Vec<(u32, u32)> =
            (0..m).map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32)).collect();
        Graph::from_edges(n, &edges)
    }

    fn spmv_values(ih: &IhtlGraph) -> Vec<f64> {
        // One SpMV sweep: enough to make any structural difference in the
        // loaded image visible bitwise.
        let n = ih.n_vertices();
        let x: Vec<f64> = (0..n).map(|i| (i + 1) as f64 * 0.37).collect();
        let x_new = ih.to_new_order(&x);
        let mut y_new = vec![0.0; n];
        let mut bufs = ih.new_buffers();
        ih.spmv::<ihtl_traversal::Add>(&x_new, &mut y_new, &mut bufs);
        ih.to_old_order(&y_new)
    }

    #[test]
    fn ihtl_roundtrip_is_bitwise_and_counted() {
        let store = temp_store("ihtl_rt");
        let mut rng = Pcg64::seed_from_u64(0x57_01);
        let cfg = IhtlConfig { cache_budget_bytes: 64, ..IhtlConfig::default() };
        for case in 0..4 {
            let n = 16 + rng.gen_index(80);
            let g = random_graph(&mut rng, n, 6 * n);
            let h = dataset_content_hash(&g);
            assert!(store.load_ihtl(h, &cfg).is_none(), "case {case}: cold load must miss");
            let built = IhtlGraph::build(&g, &cfg);
            store.save_ihtl(h, &cfg, &built).unwrap();
            let loaded = store.load_ihtl(h, &cfg).expect("warm load must hit");
            assert_eq!(loaded.new_to_old(), built.new_to_old());
            let a = spmv_values(&built);
            let b = spmv_values(&loaded);
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "case {case} vertex {i}");
            }
        }
        let c = store.counters();
        assert_eq!((c.hits, c.misses, c.writes, c.quarantined), (4, 4, 4, 0));
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn pb_roundtrip_is_bitwise() {
        let store = temp_store("pb_rt");
        let mut rng = Pcg64::seed_from_u64(0x57_02);
        let cfg = IhtlConfig { cache_budget_bytes: 64, ..IhtlConfig::default() };
        let g = random_graph(&mut rng, 100, 500);
        let h = dataset_content_hash(&g);
        let parts = 3;
        assert!(store.load_pb(h, &cfg, parts).is_none());
        let built = PbGraph::with_parts(&g, cfg.cache_budget_bytes, cfg.vertex_data_bytes, parts);
        store.save_pb(h, &cfg, parts, &built).unwrap();
        let loaded = store.load_pb(h, &cfg, parts).expect("warm load must hit");
        let x: Vec<f64> = (0..100).map(|i| (i * i + 1) as f64 * 0.73).collect();
        let (mut a, mut b) = (vec![f64::NAN; 100], vec![f64::NAN; 100]);
        let (mut s1, mut s2) = (Vec::new(), Vec::new());
        built.spmv::<ihtl_traversal::Add>(&x, &mut a, &mut s1);
        loaded.spmv::<ihtl_traversal::Add>(&x, &mut b, &mut s2);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "vertex {i}");
        }
        // A different partition count is a different artifact.
        assert!(store.load_pb(h, &cfg, parts + 1).is_none());
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn corruption_quarantines_and_rebuild_heals() {
        let store = temp_store("quarantine");
        let mut rng = Pcg64::seed_from_u64(0x57_03);
        let cfg = IhtlConfig { cache_budget_bytes: 64, ..IhtlConfig::default() };
        let g = random_graph(&mut rng, 60, 300);
        let h = dataset_content_hash(&g);
        let built = IhtlGraph::build(&g, &cfg);
        store.save_ihtl(h, &cfg, &built).unwrap();
        let path = store.path_for(ihtl_key(h, &cfg));

        // Corrupt every byte position in turn? Too slow for the full file —
        // flip a prefix sample plus the trailer region, seeded-loop style.
        let pristine = std::fs::read(&path).unwrap();
        let mut positions: Vec<usize> = (0..pristine.len().min(64)).collect();
        positions.extend(pristine.len() - 16..pristine.len());
        for (round, &pos) in positions.iter().enumerate() {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            assert!(
                store.load_ihtl(h, &cfg).is_none(),
                "round {round}: corrupted byte {pos} loaded"
            );
            // The bad file is quarantined, not left in place...
            assert!(!path.exists(), "round {round}: corrupt file not quarantined");
            // ...and rebuild + write-back heals the store.
            store.save_ihtl(h, &cfg, &built).unwrap();
            assert!(store.load_ihtl(h, &cfg).is_some(), "round {round}: heal failed");
        }
        let c = store.counters();
        assert_eq!(c.quarantined as usize, positions.len());
        // Truncations quarantine too (torn writes can't survive rename,
        // but external truncation can).
        for cut in [0, 1, pristine.len() / 2, pristine.len() - 1] {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(store.load_ihtl(h, &cfg).is_none(), "truncation at {cut} loaded");
            store.save_ihtl(h, &cfg, &built).unwrap();
        }
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn shard_roundtrip_is_exact_and_quarantines() {
        let store = temp_store("shard_rt");
        let mut rng = Pcg64::seed_from_u64(0x57_05);
        let g = random_graph(&mut rng, 80, 400);
        let h = dataset_content_hash(&g);
        let ranges = ihtl_graph::shard::shard_ranges(&g, 3);
        for (i, &r) in ranges.iter().enumerate() {
            let shard = ihtl_graph::shard::extract_shard(&g, r);
            assert!(store.load_shard_graph(h, i, 3, false).is_none(), "cold load must miss");
            store.save_shard_graph(h, i, 3, false, &shard).unwrap();
            let loaded = store.load_shard_graph(h, i, 3, false).expect("warm load must hit");
            assert_eq!(loaded.csr(), shard.csr());
            assert_eq!(loaded.csc(), shard.csc());
            // The raw and sym views of the same coordinates are distinct
            // artifacts, as are neighbouring shard indices.
            assert!(store.load_shard_graph(h, i, 3, true).is_none());
        }
        assert_ne!(shard_config_key(0, 3, false), shard_config_key(1, 3, false));
        assert_ne!(shard_config_key(0, 3, false), shard_config_key(0, 4, false));
        assert_ne!(shard_config_key(0, 3, false), shard_config_key(0, 3, true));
        // Corruption quarantines instead of loading.
        let path = store.path_for(shard_key(h, 0, 3, false));
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_shard_graph(h, 0, 3, false).is_none(), "corrupt shard loaded");
        assert!(!path.exists(), "corrupt shard not quarantined");
        std::fs::remove_dir_all(store.root()).ok();
    }

    #[test]
    fn keys_separate_datasets_configs_and_kinds() {
        let mut rng = Pcg64::seed_from_u64(0x57_04);
        let g1 = random_graph(&mut rng, 50, 200);
        let g2 = random_graph(&mut rng, 50, 200);
        assert_ne!(dataset_content_hash(&g1), dataset_content_hash(&g2));
        assert_eq!(dataset_content_hash(&g1), dataset_content_hash(&g1));
        let base = IhtlConfig::default();
        let bigger = IhtlConfig { cache_budget_bytes: base.cache_budget_bytes * 2, ..base.clone() };
        assert_ne!(ihtl_config_key(&base), ihtl_config_key(&bigger));
        assert_ne!(pb_config_key(&base, 4), pb_config_key(&base, 8));
        // Same dataset+config, different kind → different path.
        let store = temp_store("keys");
        let h = dataset_content_hash(&g1);
        let a = store.path_for(ihtl_key(h, &base));
        let b = store.path_for(pb_key(h, &base, 4));
        assert_ne!(a, b);
        std::fs::remove_dir_all(store.root()).ok();
    }
}
