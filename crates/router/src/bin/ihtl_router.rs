//! The `ihtl-router` daemon: fronts a fleet of `ihtl-serve` shard workers,
//! owns dataset placement, and merges per-shard sweep results (DESIGN.md
//! §14). Speaks the same line-delimited JSON protocol as the workers.

use ihtl_router::{Router, RouterConfig};
use ihtl_serve::argv::{parse_or_exit, FlagSpec};

const FLAGS: &[FlagSpec] = &[
    FlagSpec {
        name: "addr",
        value: Some("HOST:PORT"),
        help: "bind address (default 127.0.0.1:7410; port 0 = ephemeral)",
    },
    FlagSpec {
        name: "workers",
        value: Some("HOST:PORT,..."),
        help: "comma-separated worker addresses; one shard per worker, in order (required)",
    },
    FlagSpec {
        name: "worker-timeout-ms",
        value: Some("N"),
        help: "connect/read/write timeout per worker RPC in ms (default 30000)",
    },
    FlagSpec {
        name: "port-file",
        value: Some("PATH"),
        help: "write the bound port number to PATH after binding",
    },
];

fn main() {
    let args =
        parse_or_exit("ihtl-router", "--workers LIST [options]", FLAGS, std::env::args().skip(1));
    let mut cfg = RouterConfig {
        addr: args.get_or("addr", "127.0.0.1:7410").to_string(),
        workers: args
            .get_or("workers", "")
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_string)
            .collect(),
        ..RouterConfig::default()
    };
    let numeric = (|| -> Result<(), String> {
        let default_ms = cfg.worker_timeout.as_millis() as usize;
        let ms = args.get_usize("worker-timeout-ms", default_ms)?;
        cfg.worker_timeout = std::time::Duration::from_millis(ms as u64);
        Ok(())
    })();
    if let Err(msg) = numeric {
        eprintln!("error: {msg}");
        std::process::exit(2);
    }
    let port_file = args.get("port-file").map(str::to_string);

    let router = match Router::bind(cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: binding listener: {e}");
            std::process::exit(1);
        }
    };
    let addr = router.local_addr();
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, format!("{}\n", addr.port())) {
            eprintln!("error: writing port file '{path}': {e}");
            std::process::exit(1);
        }
    }
    println!("ihtl-router listening on {addr}");
    router.run();
    println!("ihtl-router stopped");
}
