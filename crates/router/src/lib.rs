//! Placement router for sharded multi-node serving (DESIGN.md §14).
//!
//! One `ihtl-router` process fronts a fleet of `ihtl-serve` workers. At
//! `register` time the router fans a destination-range shard registration
//! to every worker (shard *k* of *W* over the same base source), records
//! the per-worker vertex ranges the workers report back, and sums their
//! per-shard out-degree contributions into the exact global out-degree
//! vector. At `job` time it runs the ordinary `ihtl-apps` drivers against
//! a [`RouterEngine`] whose per-round edge sweep is a parallel `sweep`
//! fan-out to the owning workers, merged by *ownership selection*.
//!
//! Why selection, not a monoid fold: destination ranges partition the
//! vertices, and a worker holds exactly the monoid identity outside its
//! range, so folding degenerates to picking the owner's entry. Selection
//! also sidesteps the one non-neutral identity case (`+0.0 + -0.0` is
//! `+0.0`, which would destroy a worker-computed `-0.0` bitwise). The
//! merged vector is therefore bitwise-equal to a single-node run for any
//! engine whose row fold matches the full-graph CSC row order
//! (`pull_grind`, `pull_galois`, `pb`), because a shard's owned rows are
//! verbatim slices of the full graph's rows.
//!
//! Locking: the placement table is a leaf `RwLock` and every entry is
//! cloned out before any socket I/O (R6 — no lock is ever held across a
//! `read`/`write` on a worker connection). Worker connections live in
//! per-request [`WorkerLink`]s, never shared across threads.

use std::io::{BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{Shutdown as NetShutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

use ihtl_apps::{run_job, SpmvEngine};
use ihtl_serve::proto::{EngineChoice, GraphSource, GraphView, Monoid, Op, Request, WireJob};
use ihtl_serve::{fnv1a_checksum, Json};

/// Router configuration.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Listen address; `127.0.0.1:0` picks an ephemeral port.
    pub addr: String,
    /// Worker addresses, one shard per worker, shard index = position.
    pub workers: Vec<String>,
    /// Connect/read/write timeout for every worker RPC. A worker that dies
    /// mid-job surfaces as a clean `error` reply within this bound.
    pub worker_timeout: Duration,
    /// Maximum request line length accepted from clients.
    pub max_line_bytes: usize,
    /// Idle client connections are closed after this long.
    pub idle_timeout: Option<Duration>,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: Vec::new(),
            worker_timeout: Duration::from_secs(30),
            max_line_bytes: 64 << 20,
            idle_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// One dataset's placement: which vertex range each worker owns, plus the
/// global metadata the drivers need. Cloned out of the table before any
/// worker I/O, so it is deliberately cheap to clone (the degree vector is
/// shared).
#[derive(Clone, Debug)]
pub struct PlacementEntry {
    /// Dataset name (the same on the router and on every worker).
    pub name: String,
    /// Base source description (duplicate-registration detection).
    pub source_desc: String,
    /// Global vertex count (every shard reports the same one).
    pub n_vertices: usize,
    /// Total edges across shards (= base graph edges).
    pub n_edges: usize,
    /// Per-worker owned `[start, end)` destination ranges; position =
    /// worker index = shard index. The ranges partition `0..n_vertices`.
    pub ranges: Vec<(u32, u32)>,
    /// Sum of per-shard boundary source counts (cross-shard traffic gauge).
    pub boundary_sources: usize,
    /// Exact global out-degree vector: elementwise integer sum of each
    /// shard's kept-edge degrees. PageRank divides by this.
    pub out_degrees: Arc<Vec<u32>>,
    /// Slowest worker's load time (the fan-out runs in parallel).
    pub load_seconds: f64,
}

/// Router-wide counters (`stats` op).
#[derive(Default)]
struct RouterStats {
    datasets_registered: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_failed: AtomicU64,
    sweeps_fanned: AtomicU64,
    worker_retries: AtomicU64,
}

/// Everything the connection handlers share.
struct RouterState {
    cfg: RouterConfig,
    placements: RwLock<Vec<PlacementEntry>>,
    stats: RouterStats,
    shutting_down: AtomicBool,
}

/// One connection to one worker, used by exactly one thread. `rpc` opens
/// lazily, retries a failed exchange once on a fresh connection (every
/// router→worker op is idempotent), and reports errors prefixed with the
/// worker address so multi-worker failures are attributable.
struct WorkerLink {
    addr: String,
    timeout: Duration,
    conn: Option<(TcpStream, BufReader<TcpStream>)>,
    /// Incremented on each reconnect-after-failure, drained by the caller
    /// into the router-wide counter (the link itself has no state access).
    retries: u64,
}

impl WorkerLink {
    fn new(addr: &str, timeout: Duration) -> WorkerLink {
        WorkerLink { addr: addr.to_string(), timeout, conn: None, retries: 0 }
    }

    fn connect(&self) -> Result<(TcpStream, BufReader<TcpStream>), String> {
        let sockaddr: SocketAddr = self
            .addr
            .to_socket_addrs()
            .map_err(|e| format!("worker {}: bad address: {e}", self.addr))?
            .next()
            .ok_or_else(|| format!("worker {}: address resolves to nothing", self.addr))?;
        let stream = TcpStream::connect_timeout(&sockaddr, self.timeout)
            .map_err(|e| format!("worker {}: connect failed: {e}", self.addr))?;
        let _ = stream.set_read_timeout(Some(self.timeout));
        let _ = stream.set_write_timeout(Some(self.timeout));
        let reader = BufReader::new(
            stream.try_clone().map_err(|e| format!("worker {}: clone failed: {e}", self.addr))?,
        );
        Ok((stream, reader))
    }

    fn exchange(
        conn: &mut (TcpStream, BufReader<TcpStream>),
        line: &str,
    ) -> Result<String, std::io::Error> {
        let (writer, reader) = conn;
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut reply = String::new();
        let n = reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(ErrorKind::UnexpectedEof, "worker closed connection"));
        }
        Ok(reply)
    }

    /// Sends one pre-rendered request line and returns the parsed reply.
    /// One retry on a fresh connection: a worker restart between jobs (or
    /// an idle-timeout disconnect) looks like a dead cached socket, and
    /// every op the router sends is safe to repeat.
    fn rpc(&mut self, line: &str) -> Result<Json, String> {
        let mut conn = match self.conn.take() {
            Some(c) => c,
            None => self.connect()?,
        };
        let reply = match Self::exchange(&mut conn, line) {
            Ok(r) => r,
            Err(_) => {
                self.retries += 1;
                let mut fresh = self.connect()?;
                let r = Self::exchange(&mut fresh, line)
                    .map_err(|e| format!("worker {}: {e}", self.addr))?;
                conn = fresh;
                r
            }
        };
        self.conn = Some(conn);
        Json::parse(&reply).map_err(|e| format!("worker {}: bad reply: {e}", self.addr))
    }

    /// `rpc` plus the `ok` check: a worker-side error comes back as `Err`
    /// with the worker's message, prefixed with its address.
    fn call(&mut self, line: &str) -> Result<Json, String> {
        let reply = self.rpc(line)?;
        if reply.get("ok").and_then(Json::as_bool) == Some(true) {
            Ok(reply)
        } else {
            let msg = reply.get("error").and_then(Json::as_str).unwrap_or("unspecified failure");
            Err(format!("worker {}: {msg}", self.addr))
        }
    }
}

/// An [`SpmvEngine`] whose edge sweep is a parallel fan-out of `sweep`
/// RPCs to the shard workers, merged by ownership selection. Identity
/// order conversions: the wire carries original vertex order end to end,
/// so the drivers see the global vertex space directly.
///
/// Failures latch: the first worker error makes every later sweep a no-op
/// (the drivers have no error channel mid-iteration), and the job handler
/// turns the latched message into one clean `error` reply.
struct RouterEngine {
    links: Vec<WorkerLink>,
    ranges: Vec<(u32, u32)>,
    degrees: Arc<Vec<u32>>,
    n: usize,
    /// Fields of the per-round `sweep` request that do not change across
    /// rounds: dataset, forwarded engine choice, view.
    dataset: String,
    engine_wire: &'static str,
    view: GraphView,
    failed: Option<String>,
    sweeps: u64,
}

impl RouterEngine {
    fn sweep(&mut self, monoid: Monoid, x: &[f64], y: &mut [f64]) {
        let identity = match monoid {
            Monoid::Add => 0.0f64,
            Monoid::Min => f64::INFINITY,
        };
        y.iter_mut().for_each(|v| *v = identity);
        if self.failed.is_some() {
            return;
        }
        self.sweeps += 1;
        // Every worker receives the identical request (same dataset name,
        // same full-length vector), so render the line once.
        let line = Json::obj([
            ("op", Json::from("sweep")),
            ("dataset", Json::from(self.dataset.clone())),
            ("engine", Json::from(self.engine_wire)),
            ("monoid", Json::from(monoid.wire_name())),
            ("view", Json::from(self.view.wire_name())),
            ("xbits", Json::Arr(x.iter().map(|v| Json::from(v.to_bits())).collect())),
        ])
        .to_string();
        let n = self.n;
        let results: Vec<Result<Vec<u64>, String>> = std::thread::scope(|s| {
            let handles: Vec<_> = self
                .links
                .iter_mut()
                .map(|link| {
                    let line = &line;
                    s.spawn(move || {
                        let reply = link.call(line)?;
                        let ybits = reply
                            .get("ybits")
                            .and_then(Json::as_arr)
                            .ok_or_else(|| format!("worker {}: reply lacks ybits", link.addr))?;
                        if ybits.len() != n {
                            return Err(format!(
                                "worker {}: ybits has {} entries, expected {n}",
                                link.addr,
                                ybits.len()
                            ));
                        }
                        ybits
                            .iter()
                            .map(|b| {
                                b.as_u64().ok_or_else(|| {
                                    format!("worker {}: non-integer ybits entry", link.addr)
                                })
                            })
                            .collect::<Result<Vec<u64>, String>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|_| Err("worker fan-out thread panicked".to_string()))
                })
                .collect()
        });
        for (k, result) in results.into_iter().enumerate() {
            match result {
                Ok(ybits) => {
                    // Ownership selection: shard k's answer is authoritative
                    // exactly on its destination range; everything outside
                    // is its padding identity and is discarded.
                    let (start, end) = self.ranges[k];
                    for v in start as usize..end as usize {
                        y[v] = f64::from_bits(ybits[v]);
                    }
                }
                Err(e) => {
                    if self.failed.is_none() {
                        self.failed = Some(e);
                    }
                }
            }
        }
        if self.failed.is_some() {
            // Partial merges must not leak: a half-written y would look
            // like a result. Reset to the identity; the handler reports
            // the latched error instead of values.
            y.iter_mut().for_each(|v| *v = identity);
        }
    }
}

impl SpmvEngine for RouterEngine {
    fn n_vertices(&self) -> usize {
        self.n
    }

    fn label(&self) -> &'static str {
        "router"
    }

    fn out_degrees(&self) -> &[u32] {
        &self.degrees
    }

    fn spmv_add(&mut self, x: &[f64], y: &mut [f64]) {
        self.sweep(Monoid::Add, x, y);
    }

    fn spmv_min(&mut self, x: &[f64], y: &mut [f64]) {
        self.sweep(Monoid::Min, x, y);
    }
}

/// A bound (not yet running) router.
pub struct Router {
    listener: TcpListener,
    addr: SocketAddr,
    state: Arc<RouterState>,
}

/// Handle to a router running on a background thread.
pub struct RouterHandle {
    addr: SocketAddr,
    state: Arc<RouterState>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl RouterHandle {
    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins it. Workers are independent
    /// processes and are left running.
    pub fn shutdown(mut self) {
        request_shutdown(&self.state, self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn request_shutdown(state: &RouterState, addr: SocketAddr) {
    // ORDERING: SeqCst — shutdown is a once-per-process edge; the accept
    // loop's SeqCst load must see it in total order with the wake-up
    // connection below.
    if state.shutting_down.swap(true, Ordering::SeqCst) {
        return;
    }
    // Wake the blocking accept() with a throwaway connection.
    let _ = TcpStream::connect(addr);
}

impl Router {
    /// Binds the listening socket. Requires at least one worker: a router
    /// with nobody to route to is a misconfiguration, not a degenerate
    /// deployment.
    pub fn bind(cfg: RouterConfig) -> std::io::Result<Router> {
        if cfg.workers.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "router requires at least one --workers address",
            ));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let state = Arc::new(RouterState {
            cfg,
            placements: RwLock::new(Vec::new()),
            stats: RouterStats::default(),
            shutting_down: AtomicBool::new(false),
        });
        Ok(Router { listener, addr, state })
    }

    /// The bound address (resolved once at bind time).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Runs the accept loop on the current thread until shutdown.
    pub fn run(self) {
        let addr = self.addr;
        for conn in self.listener.incoming() {
            // ORDERING: SeqCst — pairs with request_shutdown's swap.
            if self.state.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let state = Arc::clone(&self.state);
            let _ = std::thread::Builder::new()
                .name("ihtl-router-conn".to_string())
                .spawn(move || handle_connection(stream, &state, addr));
        }
    }

    /// Runs the accept loop on a background thread.
    pub fn spawn(self) -> std::io::Result<RouterHandle> {
        let addr = self.local_addr();
        let state = Arc::clone(&self.state);
        let accept_thread = std::thread::Builder::new()
            .name("ihtl-router-accept".to_string())
            .spawn(move || self.run())?;
        Ok(RouterHandle { addr, state, accept_thread: Some(accept_thread) })
    }
}

fn handle_connection(stream: TcpStream, state: &Arc<RouterState>, addr: SocketAddr) {
    if state.cfg.idle_timeout.is_some() {
        let _ = stream.set_read_timeout(state.cfg.idle_timeout);
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        let mut limited = (&mut reader).take(state.cfg.max_line_bytes as u64);
        match limited.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                let _ = writeln!(writer, "{}", error_reply(None, "idle timeout, closing"));
                return;
            }
            Err(_) => return,
        }
        if !line.ends_with('\n') && line.len() >= state.cfg.max_line_bytes {
            let _ = writeln!(writer, "{}", error_reply(None, "request line too long"));
            return;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let reply = match Request::parse(trimmed) {
            Err(msg) => error_reply(None, &msg),
            Ok(req) => {
                let is_shutdown = req.op == Op::Shutdown;
                let reply = dispatch(state, req);
                if is_shutdown {
                    let _ = writeln!(writer, "{reply}");
                    let _ = writer.flush();
                    let _ = writer.shutdown(NetShutdown::Both);
                    request_shutdown(state, addr);
                    return;
                }
                reply
            }
        };
        if writeln!(writer, "{reply}").is_err() {
            return;
        }
    }
}

fn error_reply(id: Option<Json>, msg: &str) -> Json {
    let mut pairs = Vec::new();
    if let Some(id) = id {
        pairs.push(("id".to_string(), id));
    }
    pairs.push(("ok".to_string(), Json::Bool(false)));
    pairs.push(("error".to_string(), Json::from(msg)));
    Json::Obj(pairs)
}

fn ok_reply(id: Option<Json>, body: Json) -> Json {
    let mut pairs = Vec::new();
    if let Some(id) = id {
        pairs.push(("id".to_string(), id));
    }
    pairs.push(("ok".to_string(), Json::Bool(true)));
    if let Json::Obj(fields) = body {
        pairs.extend(fields);
    }
    Json::Obj(pairs)
}

fn dispatch(state: &Arc<RouterState>, req: Request) -> Json {
    let id = req.id;
    match req.op {
        Op::Ping => ok_reply(
            id,
            Json::obj([
                ("role", Json::from("router")),
                ("workers", Json::from(state.cfg.workers.len())),
            ]),
        ),
        Op::Shutdown => ok_reply(id, Json::obj([("shutting_down", Json::Bool(true))])),
        Op::Register { name, source } => match handle_register(state, &name, &source) {
            Ok(body) => ok_reply(id, body),
            Err(msg) => error_reply(id, &msg),
        },
        Op::Job { dataset, engine, job, timeout_ms, nocache: _, top_k, include_values, trace } => {
            if trace {
                return error_reply(id, "trace is not supported by the router");
            }
            if timeout_ms.is_some() {
                return error_reply(
                    id,
                    "timeout_ms is not supported by the router (set --worker-timeout-ms instead)",
                );
            }
            match handle_job(state, &dataset, engine, &job, top_k, include_values) {
                Ok(body) => ok_reply(id, body),
                Err(msg) => error_reply(id, &msg),
            }
        }
        Op::List => {
            let entries = read_placements(state);
            let datasets: Vec<Json> = entries
                .iter()
                .map(|e| {
                    Json::obj([
                        ("name", Json::from(e.name.clone())),
                        ("source", Json::from(e.source_desc.clone())),
                        ("n_vertices", Json::from(e.n_vertices)),
                        ("n_edges", Json::from(e.n_edges)),
                        ("shards", Json::from(e.ranges.len())),
                        ("boundary_sources", Json::from(e.boundary_sources)),
                        (
                            "ranges",
                            Json::Arr(
                                e.ranges
                                    .iter()
                                    .map(|&(s, en)| Json::Arr(vec![Json::from(s), Json::from(en)]))
                                    .collect(),
                            ),
                        ),
                        ("load_seconds", Json::Num(e.load_seconds)),
                    ])
                })
                .collect();
            ok_reply(id, Json::obj([("datasets", Json::Arr(datasets))]))
        }
        Op::Stats => ok_reply(id, handle_stats(state)),
        Op::Trace { .. } => error_reply(id, "trace is not supported by the router"),
        Op::Sweep { .. } => {
            error_reply(id, "sweep is a worker-side op; send jobs to the router instead")
        }
        Op::Degrees { .. } => {
            error_reply(id, "degrees is a worker-side op; send jobs to the router instead")
        }
    }
}

/// Reads the placement table, recovering from poisoning (a panicking
/// connection thread must not take the whole router down).
fn read_placements(state: &RouterState) -> Vec<PlacementEntry> {
    state.placements.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

fn find_placement(state: &RouterState, dataset: &str) -> Option<PlacementEntry> {
    state
        .placements
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .find(|e| e.name == dataset)
        .cloned()
}

fn fresh_links(state: &RouterState) -> Vec<WorkerLink> {
    state.cfg.workers.iter().map(|addr| WorkerLink::new(addr, state.cfg.worker_timeout)).collect()
}

/// Registers `source` as a sharded dataset: shard `k` of `W` goes to
/// worker `k`. Idempotent by (name, source): re-registering the same pair
/// returns the recorded placement; a different source under a taken name
/// is an error.
fn handle_register(
    state: &Arc<RouterState>,
    name: &str,
    source: &GraphSource,
) -> Result<Json, String> {
    if matches!(source, GraphSource::Shard { .. }) {
        return Err("the router assigns shards itself; register a plain source".to_string());
    }
    let source_desc = source.describe();
    if let Some(existing) = find_placement(state, name) {
        return if existing.source_desc == source_desc {
            Ok(register_body(&existing))
        } else {
            Err(format!("dataset '{name}' already registered with source {}", existing.source_desc))
        };
    }
    let count = state.cfg.workers.len();
    let base_json = source.to_json();
    let mut links = fresh_links(state);
    let _span = ihtl_trace::span("router_register").with_arg(count as u64);
    // Fan the shard registrations out in parallel: each worker loads (or
    // generates) the base graph and extracts its own shard, so the wall
    // clock is one load, not W of them.
    let replies: Vec<Result<Json, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = links
            .iter_mut()
            .enumerate()
            .map(|(k, link)| {
                let req = Json::obj([
                    ("op", Json::from("register")),
                    ("name", Json::from(name)),
                    (
                        "source",
                        Json::obj([
                            ("type", Json::from("shard")),
                            ("index", Json::from(k)),
                            ("count", Json::from(count)),
                            ("base", base_json.clone()),
                        ]),
                    ),
                ])
                .to_string();
                s.spawn(move || link.call(&req))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker fan-out thread panicked".to_string())))
            .collect()
    });
    drain_retries(state, &links);
    let mut ranges = vec![(0u32, 0u32); count];
    let mut n_vertices = 0usize;
    let mut n_edges = 0usize;
    let mut boundary_sources = 0usize;
    let mut load_seconds = 0.0f64;
    for (k, reply) in replies.iter().enumerate() {
        let reply = reply.as_ref().map_err(Clone::clone)?;
        let field = |key: &str| {
            reply
                .get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("worker {}: register reply lacks {key}", links[k].addr))
        };
        let nv = field("n_vertices")? as usize;
        if k == 0 {
            n_vertices = nv;
        } else if nv != n_vertices {
            return Err(format!(
                "worker {}: shard reports {nv} vertices, shard 0 reported {n_vertices} \
                 (inconsistent base graphs?)",
                links[k].addr
            ));
        }
        ranges[k] = (field("range_start")? as u32, field("range_end")? as u32);
        n_edges += field("shard_edges")? as usize;
        boundary_sources += field("boundary_sources")? as usize;
        if let Some(s) = reply.get("load_seconds").and_then(Json::as_f64) {
            load_seconds = load_seconds.max(s);
        }
    }
    // Fetch and sum the per-shard out-degree contributions. Integer
    // addition, so the sum is the base graph's exact out-degree vector.
    let degree_req = Json::obj([
        ("op", Json::from("degrees")),
        ("dataset", Json::from(name)),
        ("view", Json::from("raw")),
    ])
    .to_string();
    let degree_replies: Vec<Result<Json, String>> = std::thread::scope(|s| {
        let handles: Vec<_> = links
            .iter_mut()
            .map(|link| {
                let req = &degree_req;
                s.spawn(move || link.call(req))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Err("worker fan-out thread panicked".to_string())))
            .collect()
    });
    drain_retries(state, &links);
    let mut degrees = vec![0u64; n_vertices];
    for (k, reply) in degree_replies.iter().enumerate() {
        let reply = reply.as_ref().map_err(Clone::clone)?;
        let shard_degrees = reply
            .get("degrees")
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("worker {}: degrees reply lacks degrees", links[k].addr))?;
        if shard_degrees.len() != n_vertices {
            return Err(format!(
                "worker {}: degrees has {} entries, expected {n_vertices}",
                links[k].addr,
                shard_degrees.len()
            ));
        }
        for (acc, d) in degrees.iter_mut().zip(shard_degrees) {
            *acc += d
                .as_u64()
                .ok_or_else(|| format!("worker {}: non-integer degree entry", links[k].addr))?;
        }
    }
    let out_degrees: Vec<u32> = degrees
        .into_iter()
        .map(|d| u32::try_from(d).map_err(|_| "summed out-degree exceeds u32".to_string()))
        .collect::<Result<_, _>>()?;
    let entry = PlacementEntry {
        name: name.to_string(),
        source_desc,
        n_vertices,
        n_edges,
        ranges,
        boundary_sources,
        out_degrees: Arc::new(out_degrees),
        load_seconds,
    };
    // Two clients racing to register the same name: first writer wins, and
    // a same-source loser adopts the winner's entry (idempotent), exactly
    // like the re-registration path above.
    let mut table = state.placements.write().unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(existing) = table.iter().find(|e| e.name == name) {
        return if existing.source_desc == entry.source_desc {
            Ok(register_body(existing))
        } else {
            Err(format!("dataset '{name}' already registered with source {}", existing.source_desc))
        };
    }
    let body = register_body(&entry);
    table.push(entry);
    drop(table);
    // ORDERING: Relaxed — stats counter only.
    state.stats.datasets_registered.fetch_add(1, Ordering::Relaxed);
    Ok(body)
}

fn register_body(entry: &PlacementEntry) -> Json {
    Json::obj([
        ("name", Json::from(entry.name.clone())),
        ("n_vertices", Json::from(entry.n_vertices)),
        ("n_edges", Json::from(entry.n_edges)),
        ("shards", Json::from(entry.ranges.len())),
        ("boundary_sources", Json::from(entry.boundary_sources)),
        ("load_seconds", Json::Num(entry.load_seconds)),
    ])
}

fn handle_job(
    state: &Arc<RouterState>,
    dataset: &str,
    engine: EngineChoice,
    job: &WireJob,
    top_k: usize,
    include_values: bool,
) -> Result<Json, String> {
    let entry = find_placement(state, dataset)
        .ok_or_else(|| format!("unknown dataset '{dataset}' (register it first)"))?;
    let spec = match job {
        WireJob::Analytic(spec) => spec,
        WireJob::Compare { .. } | WireJob::Sleep { .. } => {
            return Err(format!(
                "{} jobs are not supported by the router",
                if matches!(job, WireJob::Compare { .. }) { "compare" } else { "sleep" }
            ));
        }
    };
    if spec.needs_raw_graph() {
        return Err("bfs needs the raw graph; the router serves sweep-based analytics \
                    (pagerank, spmv, sssp, cc)"
            .to_string());
    }
    // Admission validation, same contract as a worker: rejected jobs report
    // no compute seconds, touch no worker, and still count as failed.
    spec.validate(entry.n_vertices, None).inspect_err(|_| {
        // ORDERING: Relaxed — stats counter only.
        state.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
    })?;
    let view = if spec.needs_symmetrized() { GraphView::Sym } else { GraphView::Raw };
    let mut eng = RouterEngine {
        links: fresh_links(state),
        ranges: entry.ranges.clone(),
        degrees: Arc::clone(&entry.out_degrees),
        n: entry.n_vertices,
        dataset: dataset.to_string(),
        engine_wire: engine.wire_name(),
        view,
        failed: None,
        sweeps: 0,
    };
    let _span = ihtl_trace::span("router_job").with_arg(eng.links.len() as u64);
    let result = run_job(&mut eng, None, spec);
    drain_retries(state, &eng.links);
    // ORDERING: Relaxed — stats counter only.
    state.stats.sweeps_fanned.fetch_add(eng.sweeps, Ordering::Relaxed);
    if let Some(msg) = eng.failed {
        // ORDERING: Relaxed — stats counter only.
        state.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
        return Err(msg);
    }
    let out = result.inspect_err(|_| {
        // ORDERING: Relaxed — stats counter only.
        state.stats.jobs_failed.fetch_add(1, Ordering::Relaxed);
    })?;
    // ORDERING: Relaxed — stats counter only.
    state.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
    let mut pairs = vec![
        ("dataset".to_string(), Json::from(dataset)),
        ("engine".to_string(), Json::from(engine.wire_name())),
        // What each worker resolved the forwarded choice to; the merge is
        // engine-independent, so the router reports its own label.
        ("engine_selected".to_string(), Json::from("router")),
        ("job".to_string(), Json::from(spec.canonical())),
        ("n_vertices".to_string(), Json::from(out.values.len())),
        ("rounds".to_string(), Json::from(out.rounds)),
        ("compute_seconds".to_string(), Json::Num(out.seconds)),
        ("checksum".to_string(), Json::from(fnv1a_checksum(&out.values))),
        ("shards".to_string(), Json::from(entry.ranges.len())),
    ];
    if top_k > 0 {
        let mut idx: Vec<usize> = (0..out.values.len()).collect();
        idx.sort_by(|&a, &b| {
            out.values[b]
                .partial_cmp(&out.values[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let top: Vec<Json> = idx
            .into_iter()
            .take(top_k)
            .map(|i| Json::obj([("vertex", Json::from(i)), ("value", Json::Num(out.values[i]))]))
            .collect();
        pairs.push(("top".to_string(), Json::Arr(top)));
    }
    if include_values {
        pairs.push((
            "values".to_string(),
            Json::Arr(out.values.iter().map(|&v| Json::Num(v)).collect()),
        ));
    }
    Ok(Json::Obj(pairs))
}

/// Folds each link's retry count into the router-wide counter.
fn drain_retries(state: &RouterState, links: &[WorkerLink]) {
    let total: u64 = links.iter().map(|l| l.retries).sum();
    if total > 0 {
        // ORDERING: Relaxed — stats counter only.
        state.stats.worker_retries.fetch_add(total, Ordering::Relaxed);
    }
}

fn handle_stats(state: &Arc<RouterState>) -> Json {
    // Ping every worker so `stats` doubles as a fleet health check. Done
    // on fresh links so a wedged worker costs one timeout, not a hang.
    let mut links = fresh_links(state);
    let ping = Json::obj([("op", Json::from("ping"))]).to_string();
    let health: Vec<Json> = std::thread::scope(|s| {
        let handles: Vec<_> = links
            .iter_mut()
            .map(|link| {
                let ping = &ping;
                s.spawn(move || {
                    let reachable = link.call(ping).is_ok();
                    Json::obj([
                        ("addr", Json::from(link.addr.clone())),
                        ("reachable", Json::Bool(reachable)),
                    ])
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| Json::obj([("reachable", Json::Bool(false))])))
            .collect()
    });
    let stats = &state.stats;
    // ORDERING: Relaxed — stats reads; a momentarily torn view across
    // counters is fine for a monitoring endpoint.
    let load = |a: &AtomicU64| Json::from(a.load(Ordering::Relaxed));
    Json::obj([
        ("role", Json::from("router")),
        ("datasets", Json::from(read_placements(state).len())),
        ("datasets_registered", load(&stats.datasets_registered)),
        ("jobs_completed", load(&stats.jobs_completed)),
        ("jobs_failed", load(&stats.jobs_failed)),
        ("sweeps_fanned", load(&stats.sweeps_fanned)),
        ("worker_retries", load(&stats.worker_retries)),
        ("workers", Json::Arr(health)),
    ])
}
