//! Self-lint: the workspace itself must be clean, and the honoured
//! suppressions must match the committed per-file/per-rule baseline
//! (`lint.baseline`) so any new `lint:allow` comment is a visible diff,
//! not a silent drift. Regenerate with `scripts/lint.sh --bless`.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = ihtl_lint::lint_workspace(&root).expect("lint walk");
    assert!(report.files_checked > 50, "walker found only {} files", report.files_checked);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(rendered.is_empty(), "workspace has lint findings:\n{}", rendered.join("\n"));
}

#[test]
fn suppression_table_matches_baseline() {
    let root = workspace_root();
    let report = ihtl_lint::lint_workspace(&root).expect("lint walk");
    let live = report.suppression_table();
    let baseline = read_baseline(&root.join("crates/lint/lint.baseline"));

    // Readable diff: report each divergent (file, rule) entry, not just a
    // giant Vec inequality dump.
    let mut diff = Vec::new();
    for (f, r, n) in &baseline {
        match live.iter().find(|(f2, r2, _)| f2 == f && r2 == r) {
            None => diff.push(format!("- {f} {r} {n} (suppressions removed)")),
            Some((_, _, n2)) if n2 != n => diff.push(format!("~ {f} {r} {n} -> {n2}")),
            _ => {}
        }
    }
    for (f, r, n) in &live {
        if !baseline.iter().any(|(f2, r2, _)| f2 == f && r2 == r) {
            diff.push(format!("+ {f} {r} {n} (new suppressions)"));
        }
    }
    assert!(
        diff.is_empty(),
        "honoured suppressions diverge from crates/lint/lint.baseline — if the \
         change is justified, run `scripts/lint.sh --bless` in the same change:\n{}",
        diff.join("\n")
    );

    // Every honoured suppression must carry a non-empty reason (the parser
    // enforces this; double-check the invariant end to end).
    for s in &report.suppressions {
        assert!(!s.reason.trim().is_empty(), "reason-less suppression at {}:{}", s.file, s.line);
    }
}

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

fn read_baseline(path: &Path) -> Vec<(String, String, usize)> {
    let text = std::fs::read_to_string(path).expect("read lint.baseline");
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(file), Some(rule), Some(count)) = (it.next(), it.next(), it.next()) else {
            panic!("malformed baseline line (want `<file> <rule> <count>`): {line}");
        };
        out.push((file.to_string(), rule.to_string(), count.parse().expect("baseline count")));
    }
    out.sort();
    out
}
