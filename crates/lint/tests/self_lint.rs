//! Self-lint: the workspace itself must be clean, and the honoured
//! suppressions must match the committed baseline (`lint.baseline`) so any
//! new `lint:allow` comment is a visible diff, not a silent drift.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = workspace_root();
    let report = ihtl_lint::lint_workspace(&root).expect("lint walk");
    assert!(report.files_checked > 50, "walker found only {} files", report.files_checked);
    let rendered: Vec<String> = report.findings.iter().map(|f| f.render()).collect();
    assert!(rendered.is_empty(), "workspace has lint findings:\n{}", rendered.join("\n"));
}

#[test]
fn suppression_counts_match_baseline() {
    let root = workspace_root();
    let report = ihtl_lint::lint_workspace(&root).expect("lint walk");
    let live = report.suppression_counts();
    let baseline = read_baseline(&root.join("crates/lint/lint.baseline"));
    assert_eq!(
        live, baseline,
        "honoured suppressions diverge from crates/lint/lint.baseline — if the new \
         suppression is justified, update the baseline in the same change"
    );
    // Every honoured suppression must carry a non-empty reason (the parser
    // enforces this; double-check the invariant end to end).
    for s in &report.suppressions {
        assert!(!s.reason.trim().is_empty(), "reason-less suppression at {}:{}", s.file, s.line);
    }
}

fn workspace_root() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

fn read_baseline(path: &Path) -> Vec<(String, usize)> {
    let text = std::fs::read_to_string(path).expect("read lint.baseline");
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(rule), Some(count)) = (it.next(), it.next()) else {
            panic!("malformed baseline line: {line}");
        };
        out.push((rule.to_string(), count.parse().expect("baseline count")));
    }
    out.sort();
    out
}
