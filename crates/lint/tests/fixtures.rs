//! Fixture tests: every rule must catch its deliberately-broken snippet
//! (positive), stay quiet on the compliant variant (negative), and honour a
//! reasoned suppression (suppressed). Paths are faked to exercise the
//! path-scoped rules; the engine never touches the filesystem here.

use ihtl_lint::check_file;

/// Rules triggered on `src` when linted under `path`.
fn rules_at(path: &str, src: &str) -> Vec<&'static str> {
    check_file(path, src).findings.iter().map(|f| f.rule).collect()
}

/// (rules, honoured-suppression count).
fn rules_and_sups(path: &str, src: &str) -> (Vec<&'static str>, usize) {
    let r = check_file(path, src);
    (r.findings.iter().map(|f| f.rule).collect(), r.suppressions.len())
}

const ANY: &str = "crates/graph/src/fixture.rs";

// ---------------------------------------------------------------------- R1

#[test]
fn r1_unsafe_without_safety_comment() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_at(ANY, src), vec!["R1"]);
}

#[test]
fn r1_safety_comment_directly_above_passes() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_safety_doc_section_on_unsafe_fn_passes() {
    let src = "/// Reads raw.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u32) -> u32 {\n    // SAFETY: contract forwarded from the fn's # Safety section.\n    unsafe { *p }\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_comment_survives_attributes_and_binding_head() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: p valid for reads.\n    #[allow(clippy::let_and_return)]\n    let v =\n        unsafe { *p };\n    v\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_fn_pointer_type_is_not_a_site() {
    let src = "struct Job {\n    run: unsafe fn(*const ()),\n}\ntype F = unsafe fn(u32) -> u32;\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_unsafe_in_string_or_comment_is_not_a_site() {
    let src =
        "// this mentions unsafe code\npub fn f() -> &'static str {\n    \"unsafe { nope }\"\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_blank_line_detaches_the_comment() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: stale, detached comment.\n\n    unsafe { *p }\n}\n";
    assert_eq!(rules_at(ANY, src), vec!["R1"]);
}

#[test]
fn r1_suppression_with_reason_is_honoured() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // lint:allow(R1): audited in review, comment pending\n    unsafe { *p }\n}\n";
    let (rules, sups) = rules_and_sups(ANY, src);
    assert!(rules.is_empty());
    assert_eq!(sups, 1);
}

// ---------------------------------------------------------------------- R2

#[test]
fn r2_get_unchecked_far_from_justification() {
    // The SAFETY comment is more than two code lines above the call and
    // the function has no assert: both justification paths fail.
    let src = "pub fn f(xs: &[f64], i: usize) -> f64 {\n    // SAFETY: block established elsewhere.\n    unsafe {\n        let a = i + 1;\n        let b = a * 2;\n        let c = b - 1;\n        *xs.get_unchecked(c)\n    }\n}\n";
    assert_eq!(rules_at(ANY, src), vec!["R2"]);
}

#[test]
fn r2_debug_assert_in_enclosing_fn_passes() {
    let src = "pub fn f(xs: &[f64], i: usize) -> f64 {\n    debug_assert!(i + 1 < xs.len());\n    // SAFETY: bounds checked by the debug_assert above.\n    unsafe {\n        let a = i + 1;\n        let b = a;\n        let c = b;\n        *xs.get_unchecked(c)\n    }\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r2_adjacent_safety_comment_passes() {
    let src = "pub fn f(xs: &[f64], i: usize) -> f64 {\n    // SAFETY: i < xs.len() validated at IHTLBLK2 load time.\n    unsafe { *xs.get_unchecked(i) }\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r2_assert_in_another_fn_does_not_count() {
    let src = "pub fn g(xs: &[f64]) {\n    assert!(!xs.is_empty());\n}\npub fn f(xs: &[f64], i: usize) -> f64 {\n    unsafe {\n        let a = i;\n        let b = a;\n        let c = b;\n        *xs.get_unchecked(c)\n    }\n}\n";
    assert!(rules_at(ANY, src).contains(&"R2"));
}

// ---------------------------------------------------------------------- R3

const SERVE: &str = "crates/serve/src/handler.rs";

#[test]
fn r3_unwrap_expect_panic_and_literal_index_in_serve() {
    let src = "pub fn handle(v: &[u8], m: std::sync::Mutex<u32>) -> u8 {\n    let g = m.lock().unwrap();\n    let h = m.lock().expect(\"lock\");\n    if v.is_empty() {\n        panic!(\"empty\");\n    }\n    v[0]\n}\n";
    assert_eq!(rules_at(SERVE, src), vec!["R3", "R3", "R3", "R3"]);
}

#[test]
fn r3_does_not_apply_outside_serve_and_traversal() {
    let src = "pub fn f(v: &[u8]) -> u8 {\n    v.first().copied().unwrap()\n}\n";
    assert!(rules_at("crates/gen/src/fixture.rs", src).is_empty());
}

#[test]
fn r3_cfg_test_module_is_exempt() {
    let src = "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v = vec![1u8];\n        assert_eq!(v[0], 1);\n        Some(3).unwrap();\n    }\n}\n";
    assert!(rules_at(SERVE, src).is_empty());
}

#[test]
fn r3_unwrap_or_and_expect_byte_are_fine() {
    let src = "pub fn f(v: Option<u8>, p: &mut Parser) -> Result<u8, ()> {\n    p.expect_byte(b':')?;\n    Ok(v.unwrap_or(0))\n}\n";
    assert!(rules_at(SERVE, src).is_empty());
}

#[test]
fn r3_unreachable_in_traversal_kernel() {
    let src = "pub fn kernel(sel: u8) -> u8 {\n    match sel {\n        0 => 1,\n        _ => unreachable!(\"bad selector\"),\n    }\n}\n";
    assert_eq!(rules_at("crates/traversal/src/kernel.rs", src), vec!["R3"]);
}

#[test]
fn r3_suppression_requires_reason() {
    let with_reason = "pub fn f(v: Option<u8>) -> u8 {\n    // lint:allow(R3): startup path, cannot be reached with a live socket\n    v.unwrap()\n}\n";
    let (rules, sups) = rules_and_sups(SERVE, with_reason);
    assert!(rules.is_empty());
    assert_eq!(sups, 1);

    let without_reason =
        "pub fn f(v: Option<u8>) -> u8 {\n    // lint:allow(R3)\n    v.unwrap()\n}\n";
    let got = rules_at(SERVE, without_reason);
    // The reason-less comment is itself a finding and suppresses nothing.
    assert!(got.contains(&"S1") && got.contains(&"R3"), "{got:?}");
}

// ---------------------------------------------------------------------- R4

#[test]
fn r4_hashmap_in_wire_file() {
    let src = "use std::collections::HashMap;\npub fn render(m: &HashMap<String, u32>) -> String {\n    format!(\"{}\", m.len())\n}\n";
    let got = rules_at("crates/serve/src/json.rs", src);
    assert_eq!(got, vec!["R4", "R4"]);
    // The same code is fine in a non-wire serve file (order never leaks).
    assert!(rules_at("crates/serve/src/registry.rs", src).is_empty());
}

#[test]
fn r4_instant_now_outside_stats_or_bench() {
    let src = "use std::time::Instant;\npub fn f() -> f64 {\n    let t = Instant::now();\n    t.elapsed().as_secs_f64()\n}\n";
    assert_eq!(rules_at("crates/core/src/fixture.rs", src), vec!["R4"]);
    assert!(rules_at("crates/bench/src/fixture.rs", src).is_empty());
    assert!(rules_at("crates/core/src/stats.rs", src).is_empty());
    assert!(rules_at("crates/core/benches/fixture.rs", src).is_empty());
    // The tracing layer owns the workspace's monotonic clock.
    assert!(rules_at("crates/trace/src/lib.rs", src).is_empty());
}

#[test]
fn r4_systemtime_now_flagged_and_suppressible() {
    let src = "pub fn f() {\n    // lint:allow(R4): logged timestamp only, never fed to a checksum\n    let _ = std::time::SystemTime::now();\n}\n";
    let (rules, sups) = rules_and_sups("crates/core/src/fixture.rs", src);
    assert!(rules.is_empty());
    assert_eq!(sups, 1);
}

// ---------------------------------------------------------------------- R5

#[test]
fn r5_thread_spawn_outside_runtime_crates() {
    let src = "pub fn f() {\n    std::thread::spawn(|| {});\n    let b = std::thread::Builder::new();\n    let _ = b;\n}\n";
    assert_eq!(rules_at("crates/apps/src/fixture.rs", src), vec!["R5", "R5"]);
    assert!(rules_at("crates/parallel/src/fixture.rs", src).is_empty());
    assert!(rules_at("crates/serve/src/bin/daemon.rs", src).is_empty());
}

#[test]
fn r5_thread_sleep_is_fine_anywhere() {
    let src = "pub fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(rules_at("crates/apps/src/fixture.rs", src).is_empty());
}

// -------------------------------------------------------------- suppressions

#[test]
fn unused_suppression_is_reported() {
    let src = "// lint:allow(R3): nothing here actually violates R3\npub fn f() {}\n";
    assert_eq!(rules_at(SERVE, src), vec!["S2"]);
}

#[test]
fn unknown_rule_in_suppression_is_reported() {
    let src = "// lint:allow(R9): no such rule\npub fn f() {}\n";
    assert_eq!(rules_at(ANY, src), vec!["S1"]);
}

#[test]
fn prose_mentioning_the_syntax_is_not_a_suppression() {
    let src = "/// Silence a finding with a `lint:allow(R4): reason` comment.\npub fn f() {}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn one_comment_may_cover_multiple_rules() {
    let src = "pub fn f(v: Option<u8>) -> u64 {\n    // lint:allow(R3, R4): fixture exercising multi-rule suppressions\n    v.unwrap() as u64 + std::time::Instant::now().elapsed().as_secs()\n}\n";
    let (rules, sups) = rules_and_sups(SERVE, src);
    assert!(rules.is_empty(), "{rules:?}");
    assert_eq!(sups, 2);
}

// ------------------------------------------------------------------- output

#[test]
fn findings_render_as_file_line_rule() {
    let report = check_file(SERVE, "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n");
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!((f.line, f.rule), (2, "R3"));
}
