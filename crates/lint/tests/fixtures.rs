//! Fixture tests: every rule must catch its deliberately-broken snippet
//! (positive), stay quiet on the compliant variant (negative), and honour a
//! reasoned suppression (suppressed). Paths are faked to exercise the
//! path-scoped rules; the engine never touches the filesystem here.

use ihtl_lint::check_file;

/// Rules triggered on `src` when linted under `path`.
fn rules_at(path: &str, src: &str) -> Vec<&'static str> {
    check_file(path, src).findings.iter().map(|f| f.rule).collect()
}

/// (rules, honoured-suppression count).
fn rules_and_sups(path: &str, src: &str) -> (Vec<&'static str>, usize) {
    let r = check_file(path, src);
    (r.findings.iter().map(|f| f.rule).collect(), r.suppressions.len())
}

const ANY: &str = "crates/graph/src/fixture.rs";

// ---------------------------------------------------------------------- R1

#[test]
fn r1_unsafe_without_safety_comment() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    unsafe { *p }\n}\n";
    assert_eq!(rules_at(ANY, src), vec!["R1"]);
}

#[test]
fn r1_safety_comment_directly_above_passes() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_safety_doc_section_on_unsafe_fn_passes() {
    let src = "/// Reads raw.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *const u32) -> u32 {\n    // SAFETY: contract forwarded from the fn's # Safety section.\n    unsafe { *p }\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_comment_survives_attributes_and_binding_head() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: p valid for reads.\n    #[allow(clippy::let_and_return)]\n    let v =\n        unsafe { *p };\n    v\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_fn_pointer_type_is_not_a_site() {
    let src = "struct Job {\n    run: unsafe fn(*const ()),\n}\ntype F = unsafe fn(u32) -> u32;\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_unsafe_in_string_or_comment_is_not_a_site() {
    let src =
        "// this mentions unsafe code\npub fn f() -> &'static str {\n    \"unsafe { nope }\"\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r1_blank_line_detaches_the_comment() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // SAFETY: stale, detached comment.\n\n    unsafe { *p }\n}\n";
    assert_eq!(rules_at(ANY, src), vec!["R1"]);
}

#[test]
fn r1_suppression_with_reason_is_honoured() {
    let src = "pub fn f(p: *const u32) -> u32 {\n    // lint:allow(R1): audited in review, comment pending\n    unsafe { *p }\n}\n";
    let (rules, sups) = rules_and_sups(ANY, src);
    assert!(rules.is_empty());
    assert_eq!(sups, 1);
}

// ---------------------------------------------------------------------- R2

#[test]
fn r2_get_unchecked_far_from_justification() {
    // The SAFETY comment is more than two code lines above the call and
    // the function has no assert: both justification paths fail.
    let src = "pub fn f(xs: &[f64], i: usize) -> f64 {\n    // SAFETY: block established elsewhere.\n    unsafe {\n        let a = i + 1;\n        let b = a * 2;\n        let c = b - 1;\n        *xs.get_unchecked(c)\n    }\n}\n";
    assert_eq!(rules_at(ANY, src), vec!["R2"]);
}

#[test]
fn r2_debug_assert_in_enclosing_fn_passes() {
    let src = "pub fn f(xs: &[f64], i: usize) -> f64 {\n    debug_assert!(i + 1 < xs.len());\n    // SAFETY: bounds checked by the debug_assert above.\n    unsafe {\n        let a = i + 1;\n        let b = a;\n        let c = b;\n        *xs.get_unchecked(c)\n    }\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r2_adjacent_safety_comment_passes() {
    let src = "pub fn f(xs: &[f64], i: usize) -> f64 {\n    // SAFETY: i < xs.len() validated at IHTLBLK2 load time.\n    unsafe { *xs.get_unchecked(i) }\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r2_assert_in_another_fn_does_not_count() {
    let src = "pub fn g(xs: &[f64]) {\n    assert!(!xs.is_empty());\n}\npub fn f(xs: &[f64], i: usize) -> f64 {\n    unsafe {\n        let a = i;\n        let b = a;\n        let c = b;\n        *xs.get_unchecked(c)\n    }\n}\n";
    assert!(rules_at(ANY, src).contains(&"R2"));
}

// ---------------------------------------------------------------------- R3

const SERVE: &str = "crates/serve/src/handler.rs";

#[test]
fn r3_unwrap_expect_panic_and_literal_index_in_serve() {
    let src = "pub fn handle(v: &[u8], m: std::sync::Mutex<u32>) -> u8 {\n    let g = m.lock().unwrap();\n    let h = m.lock().expect(\"lock\");\n    if v.is_empty() {\n        panic!(\"empty\");\n    }\n    v[0]\n}\n";
    assert_eq!(rules_at(SERVE, src), vec!["R3", "R3", "R3", "R3"]);
}

#[test]
fn r3_does_not_apply_outside_serve_and_traversal() {
    let src = "pub fn f(v: &[u8]) -> u8 {\n    v.first().copied().unwrap()\n}\n";
    assert!(rules_at("crates/gen/src/fixture.rs", src).is_empty());
}

#[test]
fn r3_cfg_test_module_is_exempt() {
    let src = "pub fn ok() {}\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {\n        let v = vec![1u8];\n        assert_eq!(v[0], 1);\n        Some(3).unwrap();\n    }\n}\n";
    assert!(rules_at(SERVE, src).is_empty());
}

#[test]
fn r3_unwrap_or_and_expect_byte_are_fine() {
    let src = "pub fn f(v: Option<u8>, p: &mut Parser) -> Result<u8, ()> {\n    p.expect_byte(b':')?;\n    Ok(v.unwrap_or(0))\n}\n";
    assert!(rules_at(SERVE, src).is_empty());
}

#[test]
fn r3_unreachable_in_traversal_kernel() {
    let src = "pub fn kernel(sel: u8) -> u8 {\n    match sel {\n        0 => 1,\n        _ => unreachable!(\"bad selector\"),\n    }\n}\n";
    assert_eq!(rules_at("crates/traversal/src/kernel.rs", src), vec!["R3"]);
}

#[test]
fn r3_suppression_requires_reason() {
    let with_reason = "pub fn f(v: Option<u8>) -> u8 {\n    // lint:allow(R3): startup path, cannot be reached with a live socket\n    v.unwrap()\n}\n";
    let (rules, sups) = rules_and_sups(SERVE, with_reason);
    assert!(rules.is_empty());
    assert_eq!(sups, 1);

    let without_reason =
        "pub fn f(v: Option<u8>) -> u8 {\n    // lint:allow(R3)\n    v.unwrap()\n}\n";
    let got = rules_at(SERVE, without_reason);
    // The reason-less comment is itself a finding and suppresses nothing.
    assert!(got.contains(&"S1") && got.contains(&"R3"), "{got:?}");
}

// ---------------------------------------------------------------------- R4

#[test]
fn r4_hashmap_in_wire_file() {
    let src = "use std::collections::HashMap;\npub fn render(m: &HashMap<String, u32>) -> String {\n    format!(\"{}\", m.len())\n}\n";
    let got = rules_at("crates/serve/src/json.rs", src);
    assert_eq!(got, vec!["R4", "R4"]);
    // The same code is fine in a non-wire serve file (order never leaks).
    assert!(rules_at("crates/serve/src/registry.rs", src).is_empty());
}

#[test]
fn r4_instant_now_outside_stats_or_bench() {
    let src = "use std::time::Instant;\npub fn f() -> f64 {\n    let t = Instant::now();\n    t.elapsed().as_secs_f64()\n}\n";
    assert_eq!(rules_at("crates/core/src/fixture.rs", src), vec!["R4"]);
    assert!(rules_at("crates/bench/src/fixture.rs", src).is_empty());
    assert!(rules_at("crates/core/src/stats.rs", src).is_empty());
    assert!(rules_at("crates/core/benches/fixture.rs", src).is_empty());
    // The tracing layer owns the workspace's monotonic clock.
    assert!(rules_at("crates/trace/src/lib.rs", src).is_empty());
}

#[test]
fn r4_systemtime_now_flagged_and_suppressible() {
    let src = "pub fn f() {\n    // lint:allow(R4): logged timestamp only, never fed to a checksum\n    let _ = std::time::SystemTime::now();\n}\n";
    let (rules, sups) = rules_and_sups("crates/core/src/fixture.rs", src);
    assert!(rules.is_empty());
    assert_eq!(sups, 1);
}

// ---------------------------------------------------------------------- R5

#[test]
fn r5_thread_spawn_outside_runtime_crates() {
    let src = "pub fn f() {\n    std::thread::spawn(|| {});\n    let b = std::thread::Builder::new();\n    let _ = b;\n}\n";
    assert_eq!(rules_at("crates/apps/src/fixture.rs", src), vec!["R5", "R5"]);
    assert!(rules_at("crates/parallel/src/fixture.rs", src).is_empty());
    assert!(rules_at("crates/serve/src/bin/daemon.rs", src).is_empty());
    assert!(rules_at("crates/router/src/lib.rs", src).is_empty());
}

#[test]
fn r5_thread_sleep_is_fine_anywhere() {
    let src = "pub fn f() {\n    std::thread::sleep(std::time::Duration::from_millis(1));\n}\n";
    assert!(rules_at("crates/apps/src/fixture.rs", src).is_empty());
}

// -------------------------------------------------------------- suppressions

#[test]
fn unused_suppression_is_reported() {
    let src = "// lint:allow(R3): nothing here actually violates R3\npub fn f() {}\n";
    assert_eq!(rules_at(SERVE, src), vec!["S2"]);
}

#[test]
fn unknown_rule_in_suppression_is_reported() {
    let src = "// lint:allow(R9): no such rule\npub fn f() {}\n";
    assert_eq!(rules_at(ANY, src), vec!["S1"]);
}

#[test]
fn prose_mentioning_the_syntax_is_not_a_suppression() {
    let src = "/// Silence a finding with a `lint:allow(R4): reason` comment.\npub fn f() {}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn one_comment_may_cover_multiple_rules() {
    let src = "pub fn f(v: Option<u8>) -> u64 {\n    // lint:allow(R3, R4): fixture exercising multi-rule suppressions\n    v.unwrap() as u64 + std::time::Instant::now().elapsed().as_secs()\n}\n";
    let (rules, sups) = rules_and_sups(SERVE, src);
    assert!(rules.is_empty(), "{rules:?}");
    assert_eq!(sups, 2);
}

// ------------------------------------------------------------------- output

#[test]
fn findings_render_as_file_line_rule() {
    let report = check_file(SERVE, "pub fn f(v: Option<u8>) -> u8 {\n    v.unwrap()\n}\n");
    assert_eq!(report.findings.len(), 1);
    let f = &report.findings[0];
    assert_eq!((f.line, f.rule), (2, "R3"));
}

// ---------------------------------------------------------------------- R7

#[test]
fn r7_ordering_without_justification() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n}\n";
    assert_eq!(rules_at(ANY, src), vec!["R7"]);
}

#[test]
fn r7_ordering_comment_directly_above_passes() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) {\n    // ORDERING: Relaxed — stats counter, no data published through it.\n    a.store(1, Ordering::Relaxed);\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r7_one_comment_per_line_multiple_orderings_on_one_line() {
    // A CAS carries two orderings on one line; one comment covers the line.
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) {\n    // ORDERING: AcqRel success / Acquire failure — publishes the slot.\n    let _ = a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire);\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r7_trace_ring_seqlock_is_exempt() {
    // The seqlock module documents its protocol once at module level.
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Release);\n}\n";
    assert!(rules_at("crates/trace/src/ring.rs", src).is_empty());
    assert_eq!(rules_at("crates/trace/src/lib.rs", src), vec!["R7"]);
}

#[test]
fn r7_tests_and_driver_files_are_exempt() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) {\n    a.store(1, Ordering::Relaxed);\n}\n";
    assert!(rules_at("tests/integration.rs", src).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    use std::sync::atomic::{AtomicU64, Ordering};\n    fn f(a: &AtomicU64) {\n        a.store(1, Ordering::Relaxed);\n    }\n}\n";
    assert!(rules_at(ANY, in_test).is_empty());
}

#[test]
fn r7_import_and_cmp_ordering_are_not_sites() {
    let src = "use std::sync::atomic::Ordering;\nuse std::cmp::Ordering as CmpOrd;\npub fn f(a: u32, b: u32) -> CmpOrd {\n    let _ = std::cmp::Ordering::Less;\n    a.cmp(&b)\n}\n";
    assert!(rules_at(ANY, src).is_empty());
}

#[test]
fn r7_suppression_is_honoured() {
    let src = "use std::sync::atomic::{AtomicU64, Ordering};\npub fn f(a: &AtomicU64) {\n    // lint:allow(R7): ordering audit pending for this migration shim\n    a.store(1, Ordering::SeqCst);\n}\n";
    let (rules, sups) = rules_and_sups(ANY, src);
    assert!(rules.is_empty());
    assert_eq!(sups, 1);
}

// ---------------------------------------------------------------------- R6

use ihtl_lint::{check_sources, Hierarchy};

/// Renders the R6 findings for a multi-file fixture workspace.
fn r6_findings(files: &[(&str, &str)], h: &Hierarchy) -> Vec<String> {
    check_sources(files, h).findings.iter().filter(|f| f.rule == "R6").map(|f| f.render()).collect()
}

const FIX_A: &str = "crates/serve/src/fixture_a.rs";
const FIX_B: &str = "crates/serve/src/fixture_b.rs";

#[test]
fn r6_detects_two_lock_cycle() {
    // Classic AB/BA deadlock: one function takes alpha then beta, another
    // takes beta then alpha.
    let src = "pub fn ab(s: &S) {\n    let a = crate::lock_ok(&s.alpha);\n    let b = crate::lock_ok(&s.beta);\n}\npub fn ba(s: &S) {\n    let b = crate::lock_ok(&s.beta);\n    let a = crate::lock_ok(&s.alpha);\n}\n";
    let h = Hierarchy::empty().with_edge("serve", "alpha", "beta");
    let got = r6_findings(&[(FIX_A, src)], &h);
    // The beta -> alpha edge is undeclared AND closes a cycle.
    assert!(got.iter().any(|f| f.contains("beta` -> `alpha")), "{got:?}");
    assert!(got.iter().any(|f| f.contains("cycle")), "{got:?}");
}

#[test]
fn r6_declared_order_is_clean() {
    let src = "pub fn ab(s: &S) {\n    let a = crate::lock_ok(&s.alpha);\n    let b = crate::lock_ok(&s.beta);\n}\n";
    let h = Hierarchy::empty().with_edge("serve", "alpha", "beta");
    assert!(r6_findings(&[(FIX_A, src)], &h).is_empty());
    // The same nesting with an empty hierarchy is an undeclared edge.
    let got = r6_findings(&[(FIX_A, src)], &Hierarchy::empty());
    assert!(got.iter().any(|f| f.contains("alpha` -> `beta")), "{got:?}");
}

#[test]
fn r6_transitive_closure_of_declared_edges_allows_skips() {
    // Declared a -> b -> c allows observing a -> c directly.
    let src = "pub fn ac(s: &S) {\n    let a = crate::lock_ok(&s.alpha);\n    let c = crate::lock_ok(&s.gamma);\n}\n";
    let h =
        Hierarchy::empty().with_edge("serve", "alpha", "beta").with_edge("serve", "beta", "gamma");
    assert!(r6_findings(&[(FIX_A, src)], &h).is_empty());
}

#[test]
fn r6_lock_held_across_condvar_wait() {
    // `outer` stays held while the condvar consumes (and re-acquires) only
    // the `inner` guard — the classic lock-across-wait deadlock shape.
    let src = "pub fn f(s: &S) {\n    let g = crate::lock_ok(&s.outer);\n    let mut st = crate::lock_ok(&s.inner);\n    st = s.cv.wait(st).unwrap_or_else(|e| e.into_inner());\n}\n";
    let h = Hierarchy::empty().with_edge("serve", "outer", "inner");
    let got = r6_findings(&[(FIX_A, src)], &h);
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].contains("outer` held across blocking operation `Condvar::wait"), "{got:?}");
}

#[test]
fn r6_wait_consuming_the_only_guard_is_clean() {
    let src = "pub fn f(s: &S) {\n    let mut st = crate::lock_ok(&s.inner);\n    while st.busy {\n        st = s.cv.wait(st).unwrap_or_else(|e| e.into_inner());\n    }\n}\n";
    assert!(r6_findings(&[(FIX_A, src)], &Hierarchy::empty()).is_empty());
}

#[test]
fn r6_lock_held_across_store_io() {
    let src = "pub fn f(s: &S, store: &Store, h: u64) {\n    let mut slot = crate::lock_ok(&s.slot);\n    let _ = store.load_ihtl(h, &s.cfg);\n}\n";
    let got = r6_findings(&[(FIX_A, src)], &Hierarchy::empty());
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].contains("slot` held across blocking operation `load_ihtl"), "{got:?}");
}

#[test]
fn r6_suppression_with_reason_is_honoured() {
    let src = "pub fn f(s: &S, store: &Store, h: u64) {\n    let mut slot = crate::lock_ok(&s.slot);\n    // lint:allow(R6): build-once slot guard, held across I/O by design\n    let _ = store.load_ihtl(h, &s.cfg);\n}\n";
    let report = check_sources(&[(FIX_A, src)], &Hierarchy::empty());
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert_eq!(report.suppressions.len(), 1);
}

#[test]
fn r6_dropped_and_statement_scoped_guards_do_not_leak_edges() {
    // drop(g) ends liveness; a chained temporary dies at its statement.
    let src = "pub fn f(s: &S) {\n    let g = crate::lock_ok(&s.alpha);\n    drop(g);\n    let h = crate::lock_ok(&s.beta);\n}\npub fn t(s: &S) {\n    crate::lock_ok(&s.alpha).clear();\n    let h = crate::lock_ok(&s.beta);\n}\n";
    assert!(r6_findings(&[(FIX_A, src)], &Hierarchy::empty()).is_empty());
}

#[test]
fn r6_resolves_through_same_crate_callees() {
    // File A holds a lock while calling a helper in file B that acquires
    // another lock; the edge is attributed to the call site in A.
    let a = "pub fn caller(s: &S) {\n    let g = crate::lock_ok(&s.alpha);\n    helper(s);\n}\n";
    let b = "pub fn helper(s: &S) {\n    let h = crate::lock_ok(&s.beta);\n}\n";
    let got = r6_findings(&[(FIX_A, a), (FIX_B, b)], &Hierarchy::empty());
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].starts_with(FIX_A), "{got:?}");
    assert!(got[0].contains("alpha` -> `beta"), "{got:?}");
}

#[test]
fn r6_guard_returning_helper_acts_as_acquisition() {
    // `lock_names()`-style helpers: the caller acquires what the helper
    // locks, so holding another guard across the call is an edge.
    let src = "fn lock_names() -> std::sync::MutexGuard<'static, Vec<u32>> {\n    NAMES.lock().unwrap_or_else(|e| e.into_inner())\n}\npub fn f(s: &S) {\n    let g = crate::lock_ok(&s.alpha);\n    let names = lock_names();\n}\n";
    let got = r6_findings(&[(FIX_A, src)], &Hierarchy::empty());
    assert_eq!(got.len(), 1, "{got:?}");
    assert!(got[0].contains("alpha` -> `NAMES"), "{got:?}");
}

#[test]
fn r6_self_deadlock_is_reported() {
    let src = "pub fn f(s: &S) {\n    let a = crate::lock_ok(&s.alpha);\n    let b = crate::lock_ok(&s.alpha);\n}\n";
    let got = r6_findings(&[(FIX_A, src)], &Hierarchy::empty());
    assert!(got.iter().any(|f| f.contains("self-deadlock")), "{got:?}");
}

#[test]
fn r6_skips_test_functions_and_driver_files() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(s: &super::S) {\n        let b = crate::lock_ok(&s.beta);\n        let a = crate::lock_ok(&s.alpha);\n    }\n}\n";
    assert!(r6_findings(&[(FIX_A, src)], &Hierarchy::empty()).is_empty());
    let driver = "pub fn f(s: &S) {\n    let b = crate::lock_ok(&s.beta);\n    let a = crate::lock_ok(&s.alpha);\n}\n";
    assert!(r6_findings(&[("tests/fixture.rs", driver)], &Hierarchy::empty()).is_empty());
}

#[test]
fn r6_locks_are_scoped_per_crate() {
    // The same field names in different crates are different locks: each
    // crate's AB nesting is a (distinct) undeclared edge, not a cycle.
    let a = "pub fn f(s: &S) {\n    let g = crate::lock_ok(&s.alpha);\n    let h = crate::lock_ok(&s.beta);\n}\n";
    let b = "pub fn f(s: &S) {\n    let g = crate::lock_ok(&s.beta);\n    let h = crate::lock_ok(&s.alpha);\n}\n";
    let got = r6_findings(&[(FIX_A, a), ("crates/store/src/fixture.rs", b)], &Hierarchy::empty());
    assert_eq!(got.len(), 2, "{got:?}");
    assert!(!got.iter().any(|f| f.contains("cycle")), "{got:?}");
}

#[test]
fn r6_hierarchy_parses_locks_md_bullets() {
    let text = "# Lock hierarchy\n\nProse is ignored.\n\n- serve: queue -> result\n- trace: REGISTRY -> NAMES\n- not an edge line\n";
    let h = Hierarchy::parse(text);
    let src = "pub fn f(s: &S) {\n    let q = crate::lock_ok(&s.queue);\n    let r = crate::lock_ok(&s.result);\n}\n";
    assert!(r6_findings(&[(FIX_A, src)], &h).is_empty());
    let rev = "pub fn f(s: &S) {\n    let r = crate::lock_ok(&s.result);\n    let q = crate::lock_ok(&s.queue);\n}\n";
    assert!(!r6_findings(&[(FIX_A, rev)], &h).is_empty());
}
