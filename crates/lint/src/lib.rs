//! ihtl-lint: hermetic workspace static analysis.
//!
//! The workspace's correctness rests on hand-written invariants — unchecked
//! CSR iteration in the flipped-block kernels, a custom parked-worker pool,
//! a byte-stable wire protocol, and a serve tier full of locks. Under the
//! zero-external-deps policy there is no off-the-shelf linter to
//! machine-check them, so this crate is one: a std-only lexer ([`lexer`])
//! plus a per-file rule engine ([`rules`]) and a cross-file concurrency
//! pass ([`concurrency`]) walking every `.rs` file under `crates/`, `src/`,
//! `tests/`, and `examples/`.
//!
//! Run it with `cargo run -p ihtl-lint` (or `scripts/lint.sh`). Findings
//! print as `file:line:rule: message` and the process exits nonzero. A
//! finding is silenced only by a reasoned suppression comment placed on or
//! directly above the offending line (see DESIGN.md §8 for the policy):
//!
//! ```text
//! // lint:allow(R4): wall-clock feeds the reported phase stats, not values
//! let t0 = Instant::now();
//! ```
//!
//! The reason is mandatory; suppressions are counted per file and rule, and
//! checked against `crates/lint/lint.baseline` (regenerate with `--bless`)
//! so every new suppression shows up in review as a baseline diff.

#![forbid(unsafe_code)]

pub mod concurrency;
pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

pub use concurrency::Hierarchy;
pub use rules::{check_file, FileReport, Finding, UsedSuppression, KNOWN_RULES};

/// One finding tagged with its workspace-relative file path.
#[derive(Debug, Clone)]
pub struct WorkspaceFinding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl WorkspaceFinding {
    /// The `file:line:rule: message` diagnostic line.
    pub fn render(&self) -> String {
        format!("{}:{}:{}: {}", self.file, self.line, self.rule, self.msg)
    }
}

/// One honoured suppression tagged with its file.
#[derive(Debug, Clone)]
pub struct WorkspaceSuppression {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub reason: String,
}

/// Aggregate result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub files_checked: usize,
    pub findings: Vec<WorkspaceFinding>,
    /// Findings silenced by an honoured suppression — still carried so the
    /// JSON export and baseline can account for them.
    pub suppressed: Vec<WorkspaceFinding>,
    pub suppressions: Vec<WorkspaceSuppression>,
}

impl WorkspaceReport {
    /// Honoured-suppression counts per rule, sorted by rule id.
    pub fn suppression_counts(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for s in &self.suppressions {
            match counts.iter_mut().find(|(r, _)| r == s.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((s.rule.to_string(), 1)),
            }
        }
        counts.sort();
        counts
    }

    /// Honoured-suppression counts per `(file, rule)`, sorted — the shape
    /// committed to `crates/lint/lint.baseline`.
    pub fn suppression_table(&self) -> Vec<(String, String, usize)> {
        let mut counts: BTreeMap<(String, String), usize> = BTreeMap::new();
        for s in &self.suppressions {
            *counts.entry((s.file.clone(), s.rule.to_string())).or_insert(0) += 1;
        }
        counts.into_iter().map(|((f, r), n)| (f, r, n)).collect()
    }

    /// Serializes [`Self::suppression_table`] as the baseline file format:
    /// a comment header, then one `<file> <rule> <count>` line per entry.
    pub fn baseline_text(&self) -> String {
        let mut out = String::from(
            "# ihtl-lint suppression baseline: <file> <rule> <count>\n\
             # Regenerate with `scripts/lint.sh --bless` after reviewing new\n\
             # suppressions; the lint run fails with a diff on any drift.\n",
        );
        for (file, rule, n) in self.suppression_table() {
            out.push_str(&format!("{file} {rule} {n}\n"));
        }
        out
    }
}

/// Lints a set of in-memory sources `(rel_path, src)` as one workspace:
/// per-file rules plus the cross-file R6 pass against `hierarchy`. This is
/// the core of [`lint_workspace`] and the entry point fixture tests use to
/// exercise R6 on seeded multi-file inputs.
pub fn check_sources(files: &[(&str, &str)], hierarchy: &Hierarchy) -> WorkspaceReport {
    let lexed: Vec<lexer::Lexed> = files.iter().map(|(_, src)| lexer::lex(src)).collect();
    let mut raw: Vec<Vec<Finding>> =
        files.iter().zip(&lexed).map(|((rel, _), lx)| rules::raw_findings(rel, lx)).collect();

    // Cross-file pass: group non-driver files by crate and merge the R6
    // findings into each file's raw list so `lint:allow(R6)` applies.
    let mut by_crate: BTreeMap<String, Vec<(usize, &lexer::Lexed)>> = BTreeMap::new();
    for (i, (rel, _)) in files.iter().enumerate() {
        if !rules::is_driver_path(rel) {
            by_crate.entry(concurrency::crate_of(rel)).or_default().push((i, &lexed[i]));
        }
    }
    for (krate, group) in &by_crate {
        for (idx, f) in concurrency::analyze_crate(krate, group, hierarchy) {
            raw[idx].push(f);
        }
    }

    let mut report = WorkspaceReport::default();
    for (((rel, _), lx), raw) in files.iter().zip(&lexed).zip(raw) {
        let fr = rules::finalize(lx, raw);
        report.files_checked += 1;
        let tag = |f: Finding| WorkspaceFinding {
            file: (*rel).to_string(),
            line: f.line,
            rule: f.rule,
            msg: f.msg,
        };
        report.findings.extend(fr.findings.into_iter().map(tag));
        report.suppressed.extend(fr.suppressed.into_iter().map(tag));
        for s in fr.suppressions {
            report.suppressions.push(WorkspaceSuppression {
                file: (*rel).to_string(),
                line: s.line,
                rule: s.rule,
                reason: s.reason,
            });
        }
    }
    report.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    report
}

/// Lints every `.rs` file reachable from `root` (the workspace root),
/// reading the declared lock hierarchy from `<root>/LOCKS.md` (an absent
/// file means an empty hierarchy: every observed lock-order edge fails).
pub fn lint_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(path)
            .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
        sources.push((rel, src));
    }
    let hierarchy = match fs::read_to_string(root.join("LOCKS.md")) {
        Ok(text) => Hierarchy::parse(&text),
        Err(_) => Hierarchy::empty(),
    };
    let refs: Vec<(&str, &str)> = sources.iter().map(|(r, s)| (r.as_str(), s.as_str())).collect();
    Ok(check_sources(&refs, &hierarchy))
}

/// Recursively collects `.rs` files, skipping build output and VCS state.
/// Entries are visited in sorted order so reports are deterministic.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
