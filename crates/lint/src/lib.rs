//! ihtl-lint: hermetic workspace static analysis.
//!
//! The workspace's correctness rests on hand-written invariants — unchecked
//! CSR iteration in the flipped-block kernels, a custom parked-worker pool,
//! a byte-stable wire protocol. Under the zero-external-deps policy there is
//! no off-the-shelf linter to machine-check them, so this crate is one: a
//! std-only lexer ([`lexer`]) plus a rule engine ([`rules`]) walking every
//! `.rs` file under `crates/`, `src/`, `tests/`, and `examples/`.
//!
//! Run it with `cargo run -p ihtl-lint` (or `scripts/lint.sh`). Findings
//! print as `file:line:rule: message` and the process exits nonzero. A
//! finding is silenced only by a reasoned suppression comment placed on or
//! directly above the offending line (see DESIGN.md §8 for the policy):
//!
//! ```text
//! // lint:allow(R4): wall-clock feeds the reported phase stats, not values
//! let t0 = Instant::now();
//! ```
//!
//! The reason is mandatory; suppressions are counted, reported, and checked
//! against a baseline by `tests/self_lint.rs` so new ones show up in review.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;

use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{check_file, FileReport, Finding, UsedSuppression, KNOWN_RULES};

/// One finding tagged with its workspace-relative file path.
#[derive(Debug, Clone)]
pub struct WorkspaceFinding {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

impl WorkspaceFinding {
    /// The `file:line:rule: message` diagnostic line.
    pub fn render(&self) -> String {
        format!("{}:{}:{}: {}", self.file, self.line, self.rule, self.msg)
    }
}

/// One honoured suppression tagged with its file.
#[derive(Debug, Clone)]
pub struct WorkspaceSuppression {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub reason: String,
}

/// Aggregate result of linting the whole workspace.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub files_checked: usize,
    pub findings: Vec<WorkspaceFinding>,
    pub suppressions: Vec<WorkspaceSuppression>,
}

impl WorkspaceReport {
    /// Honoured-suppression counts per rule, sorted by rule id — the shape
    /// checked against the committed baseline.
    pub fn suppression_counts(&self) -> Vec<(String, usize)> {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for s in &self.suppressions {
            match counts.iter_mut().find(|(r, _)| r == s.rule) {
                Some((_, n)) => *n += 1,
                None => counts.push((s.rule.to_string(), 1)),
            }
        }
        counts.sort();
        counts
    }
}

/// Lints every `.rs` file reachable from `root` (the workspace root).
pub fn lint_workspace(root: &Path) -> Result<WorkspaceReport, String> {
    let mut files: Vec<PathBuf> = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            collect_rs(&dir, &mut files)?;
        }
    }
    files.sort();
    let mut report = WorkspaceReport::default();
    for path in &files {
        let rel = path.strip_prefix(root).unwrap_or(path).to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(path)
            .map_err(|e| format!("{}: read failed: {e}", path.display()))?;
        let fr = check_file(&rel, &src);
        report.files_checked += 1;
        for f in fr.findings {
            report.findings.push(WorkspaceFinding {
                file: rel.clone(),
                line: f.line,
                rule: f.rule,
                msg: f.msg,
            });
        }
        for s in fr.suppressions {
            report.suppressions.push(WorkspaceSuppression {
                file: rel.clone(),
                line: s.line,
                rule: s.rule,
                reason: s.reason,
            });
        }
    }
    Ok(report)
}

/// Recursively collects `.rs` files, skipping build output and VCS state.
/// Entries are visited in sorted order so reports are deterministic.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    entries.sort();
    for path in entries {
        let name = path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default();
        if name.starts_with('.') || name == "target" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}
