//! A minimal, comment- and string-aware Rust lexer.
//!
//! The rule engine only needs a faithful *token stream* — identifiers,
//! punctuation, literals — plus the comments (with their line spans) and the
//! raw source lines. It does not need a parse tree: every rule in
//! [`crate::rules`] is expressible over tokens + brace scopes. The lexer
//! therefore handles exactly the lexical features that would otherwise cause
//! false positives: line and (nested) block comments, string/char literals
//! with escapes, raw strings with arbitrary `#` fences, byte literals, and
//! the char-vs-lifetime ambiguity of `'`.
//!
//! All line numbers are 1-based to match `file:line` diagnostics.

/// One code token (comments are collected separately).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`unsafe`, `fn`, `get_unchecked`, ...).
    Ident(String),
    /// Integer literal (`0`, `0x1f`, `12_u32`).
    Int,
    /// Float literal (`1.0`, `2.5e3`).
    Float,
    /// String, byte-string, or raw-string literal (contents discarded).
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`, `'_`, `'static`).
    Life,
    /// Single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
}

/// A token with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: Tok,
    pub line: usize,
}

/// A comment with its 1-based line span (block comments may span lines).
#[derive(Debug, Clone)]
pub struct Comment {
    /// Full comment text including the `//` / `/*` markers.
    pub text: String,
    pub first_line: usize,
    pub last_line: usize,
}

/// Lexer output: tokens, comments, and the raw source split into lines.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
    /// Raw source lines; `lines[i]` is line `i + 1`.
    pub lines: Vec<String>,
}

/// Tokenizes `src`. Never fails: unterminated literals simply consume the
/// rest of the file, which is the right degradation for a lint pass.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed { lines: src.lines().map(String::from).collect(), ..Lexed::default() };
    let mut i = 0usize;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if peek(b, i + 1) == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    first_line: line,
                    last_line: line,
                });
            }
            b'/' if peek(b, i + 1) == b'*' => {
                let (start, first) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && peek(b, i + 1) == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && peek(b, i + 1) == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    first_line: first,
                    last_line: line,
                });
            }
            b'"' => {
                out.tokens.push(Token { kind: Tok::Str, line });
                let (ni, nl) = scan_string(b, i, line);
                i = ni;
                line = nl;
            }
            b'\'' => {
                let next = peek(b, i + 1);
                let is_lifetime = (next == b'_' || next.is_ascii_alphabetic())
                    && peek(b, i + 2) != b'\''
                    && next != b'\\';
                if is_lifetime {
                    out.tokens.push(Token { kind: Tok::Life, line });
                    i += 2;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                } else {
                    out.tokens.push(Token { kind: Tok::Char, line });
                    let (ni, nl) = scan_char(b, i, line);
                    i = ni;
                    line = nl;
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                let nb = peek(b, i);
                if matches!(word, "r" | "br" | "rb") && (nb == b'"' || nb == b'#') {
                    if let Some((ni, nl)) = scan_raw_string(b, i, line) {
                        out.tokens.push(Token { kind: Tok::Str, line });
                        i = ni;
                        line = nl;
                        continue;
                    }
                    // `r#ident` (raw identifier): fall through, emitting `r`;
                    // the `#` and the identifier lex as ordinary tokens.
                } else if word == "b" && nb == b'"' {
                    out.tokens.push(Token { kind: Tok::Str, line });
                    let (ni, nl) = scan_string(b, i, line);
                    i = ni;
                    line = nl;
                    continue;
                } else if word == "b" && nb == b'\'' {
                    out.tokens.push(Token { kind: Tok::Char, line });
                    let (ni, nl) = scan_char(b, i, line);
                    i = ni;
                    line = nl;
                    continue;
                }
                out.tokens.push(Token { kind: Tok::Ident(word.to_string()), line });
            }
            _ if c.is_ascii_digit() => {
                let mut is_float = false;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && !is_float && peek(b, i + 1).is_ascii_digit() {
                        is_float = true;
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token { kind: if is_float { Tok::Float } else { Tok::Int }, line });
            }
            _ => {
                out.tokens.push(Token { kind: Tok::Punct(c as char), line });
                i += 1;
            }
        }
    }
    out
}

/// Byte at `i`, or NUL past the end (NUL never occurs in valid source).
fn peek(b: &[u8], i: usize) -> u8 {
    if i < b.len() {
        b[i]
    } else {
        0
    }
}

fn is_ident_start(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphabetic() || c >= 0x80
}

fn is_ident_continue(c: u8) -> bool {
    c == b'_' || c.is_ascii_alphanumeric() || c >= 0x80
}

/// From the opening `"` (index `i`), consumes through the closing quote.
fn scan_string(b: &[u8], mut i: usize, mut line: usize) -> (usize, usize) {
    // `i` may sit on a `b` prefix's quote already; advance past the quote.
    debug_assert!(b[i] == b'"');
    i += 1;
    while i < b.len() {
        match b[i] {
            b'\\' => {
                // An escaped newline (line-continuation) still ends a source
                // line; skipping it without counting would shift every
                // diagnostic below it.
                if peek(b, i + 1) == b'\n' {
                    line += 1;
                }
                i += 2;
            }
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

/// From the opening `'` (index `i`), consumes through the closing quote.
fn scan_char(b: &[u8], mut i: usize, mut line: usize) -> (usize, usize) {
    debug_assert!(b[i] == b'\'');
    i += 1;
    while i < b.len() && b[i] != b'\'' {
        if b[i] == b'\\' {
            if peek(b, i + 1) == b'\n' {
                line += 1;
            }
            i += 2;
        } else {
            if b[i] == b'\n' {
                // Only malformed source puts a raw newline in a char
                // literal; keep the line count right anyway so every
                // diagnostic after the error stays addressable.
                line += 1;
            }
            i += 1;
        }
    }
    if i < b.len() {
        i += 1; // consume the closing quote
    }
    (i, line)
}

/// From the first `#` or `"` after an `r`/`br` prefix. Returns `None` when
/// this is a raw *identifier* (`r#ident`), not a raw string.
fn scan_raw_string(b: &[u8], mut i: usize, mut line: usize) -> Option<(usize, usize)> {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if peek(b, i) != b'"' {
        return None;
    }
    i += 1;
    while i < b.len() {
        if b[i] == b'\n' {
            line += 1;
            i += 1;
        } else if b[i] == b'"' {
            let mut k = 0usize;
            while k < hashes && peek(b, i + 1 + k) == b'#' {
                k += 1;
            }
            i += 1 + k;
            if k == hashes {
                return Some((i, line));
            }
        } else {
            i += 1;
        }
    }
    Some((i, line))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_keywords() {
        let src = "let a = \"unsafe\"; // unsafe here too\n/* unsafe */ let b = 1;";
        assert_eq!(idents(src), vec!["let", "a", "let", "b"]);
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn raw_strings_with_fences() {
        let src = "let s = r#\"unsafe \"x\" panic!\"#; call();";
        assert_eq!(idents(src), vec!["let", "s", "call"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c: char = 'a'; fn f<'a>(x: &'a str) {} let q = '\\'';";
        let l = lex(src);
        let lifetimes = l.tokens.iter().filter(|t| t.kind == Tok::Life).count();
        let chars = l.tokens.iter().filter(|t| t.kind == Tok::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn nested_block_comment() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn line_numbers_track_multiline_literals() {
        let src = "let s = \"a\nb\";\nfn g() {}";
        let l = lex(src);
        let g =
            l.tokens.iter().find(|t| t.kind == Tok::Ident("g".into())).map(|t| t.line).unwrap_or(0);
        assert_eq!(g, 3);
    }

    #[test]
    fn raw_strings_hide_comment_markers_and_quotes() {
        // `//` and `/*` inside a raw string are content, not comments; the
        // `"#` sequence inside an `r##"…"##` body must not terminate it.
        let src = "let s = r##\"// not a comment /* nor this */ \"# still\"##; done();";
        let l = lex(src);
        assert_eq!(idents(src), vec!["let", "s", "done"]);
        assert!(l.comments.is_empty());
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Str).count(), 1);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = "let a = b\"unsafe\"; let b2 = br#\"panic! \" fence\"#; end();";
        assert_eq!(idents(src), vec!["let", "a", "let", "b2", "end"]);
    }

    #[test]
    fn char_literals_containing_quote_and_slashes() {
        // '"' must not open a string; '/' twice must not open a comment.
        let src = "let q = '\"'; let s1 = '/'; let s2 = '/'; let x = \"tail\"; // real";
        let l = lex(src);
        assert_eq!(idents(src), vec!["let", "q", "let", "s1", "let", "s2", "let", "x"]);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Char).count(), 3);
        assert_eq!(l.tokens.iter().filter(|t| t.kind == Tok::Str).count(), 1);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn nested_block_comment_with_string_inside() {
        let src = "/* a /* \"nested \\\" quote\" */ b */ fn tail() {}";
        let l = lex(src);
        assert_eq!(idents(src), vec!["fn", "tail"]);
        assert_eq!(l.comments.len(), 1);
    }

    #[test]
    fn escaped_newline_in_string_keeps_line_numbers() {
        // A `\` line-continuation consumes the newline inside the literal;
        // the token after the string must still land on line 3.
        let src = "let s = \"a\\\nb\";\nfn g() {}";
        let l = lex(src);
        let g =
            l.tokens.iter().find(|t| t.kind == Tok::Ident("g".into())).map(|t| t.line).unwrap_or(0);
        assert_eq!(g, 3);
    }

    #[test]
    fn raw_string_line_spans() {
        let src = "let s = r#\"x\ny\nz\"#;\nfn h() {}";
        let l = lex(src);
        let h =
            l.tokens.iter().find(|t| t.kind == Tok::Ident("h".into())).map(|t| t.line).unwrap_or(0);
        assert_eq!(h, 4);
    }

    #[test]
    fn int_vs_float_vs_range() {
        let src = "a[0]; let x = 1.5; for i in 0..n {}";
        let l = lex(src);
        let ints = l.tokens.iter().filter(|t| t.kind == Tok::Int).count();
        let floats = l.tokens.iter().filter(|t| t.kind == Tok::Float).count();
        assert_eq!(ints, 2); // `0` (index) and `0` (range start)
        assert_eq!(floats, 1);
    }
}
