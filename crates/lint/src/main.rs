//! `ihtl-lint` binary: lint the workspace, print findings, check the
//! suppression baseline, exit nonzero on drift or findings. See `ihtl_lint`
//! (lib) for the rule catalogue and DESIGN.md §8/§13 for the policy.

#![forbid(unsafe_code)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: ihtl-lint [--root <dir>] [--list-suppressions] [--bless] [--json <path>]\n\
         \n\
         Lints every .rs file under <dir> (default: the workspace root\n\
         inferred from this binary's manifest, else the current directory)\n\
         against the R1-R7 invariants, then checks the per-file/per-rule\n\
         suppression counts against crates/lint/lint.baseline.\n\
         \n\
         --bless        rewrite the baseline from the current run instead\n\
         \u{20}               of failing on drift\n\
         --json <path>  also write findings (active and suppressed) as a\n\
         \u{20}               JSON array of {{rule, file, line, suppressed}}\n\
         \n\
         Exits 1 on findings or baseline drift, 2 on usage or I/O errors."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_suppressions = false;
    let mut bless = false;
    let mut json_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--json" => match args.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => usage(),
            },
            "--list-suppressions" => list_suppressions = true,
            "--bless" => bless = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // When run via `cargo run -p ihtl-lint`, the manifest dir is
    // `<workspace>/crates/lint`; its grandparent is the workspace root.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match ihtl_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ihtl-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{}", f.render());
    }
    if list_suppressions {
        for s in &report.suppressions {
            println!("suppressed {} at {}:{}: {}", s.rule, s.file, s.line, s.reason);
        }
    }
    if let Some(p) = &json_path {
        if let Err(e) = write_json(p, &report) {
            eprintln!("ihtl-lint: {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }

    let baseline_path = root.join("crates/lint/lint.baseline");
    let mut drift = false;
    if bless {
        if let Err(e) = fs::write(&baseline_path, report.baseline_text()) {
            eprintln!("ihtl-lint: {}: write failed: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        eprintln!("ihtl-lint: baseline blessed ({})", baseline_path.display());
    } else {
        let committed = fs::read_to_string(&baseline_path).unwrap_or_default();
        drift = !baseline_diff(&committed, &report.baseline_text());
    }

    let counts = report
        .suppression_counts()
        .into_iter()
        .map(|(r, n)| format!("{r}={n}"))
        .collect::<Vec<_>>()
        .join(" ");
    let suffix = if counts.is_empty() { String::new() } else { format!(" ({counts})") };
    eprintln!(
        "ihtl-lint: {} files, {} findings, {} suppressions honoured{suffix}",
        report.files_checked,
        report.findings.len(),
        report.suppressions.len(),
    );
    if report.findings.is_empty() && !drift {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

/// Compares baseline texts entry-by-entry, printing a readable diff of
/// added/removed/changed suppression counts. Returns `true` when equal.
fn baseline_diff(committed: &str, current: &str) -> bool {
    let parse = |text: &str| -> Vec<(String, String, String)> {
        text.lines()
            .filter(|l| !l.trim_start().starts_with('#') && !l.trim().is_empty())
            .filter_map(|l| {
                let mut it = l.split_whitespace();
                Some((it.next()?.to_string(), it.next()?.to_string(), it.next()?.to_string()))
            })
            .collect()
    };
    let old = parse(committed);
    let new = parse(current);
    if old == new {
        return true;
    }
    eprintln!("ihtl-lint: suppression baseline drift (crates/lint/lint.baseline):");
    for (f, r, n) in &old {
        match new.iter().find(|(f2, r2, _)| f2 == f && r2 == r) {
            None => eprintln!("  - {f} {r} {n}  (suppressions removed)"),
            Some((_, _, n2)) if n2 != n => eprintln!("  ~ {f} {r} {n} -> {n2}"),
            _ => {}
        }
    }
    for (f, r, n) in &new {
        if !old.iter().any(|(f2, r2, _)| f2 == f && r2 == r) {
            eprintln!("  + {f} {r} {n}  (new suppressions)");
        }
    }
    eprintln!("  review the change, then run `scripts/lint.sh --bless` to accept it");
    false
}

/// Writes findings (active and suppressed) as a JSON array, creating the
/// parent directory if needed. Hand-rolled serializer — the workspace has
/// no JSON dependency by policy.
fn write_json(path: &Path, report: &ihtl_lint::WorkspaceReport) -> Result<(), String> {
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    let mut out = String::from("[\n");
    let mut first = true;
    let mut entry = |rule: &str, file: &str, line: usize, suppressed: bool| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"suppressed\": {}}}",
            escape(rule),
            escape(file),
            line,
            suppressed
        ));
    };
    for f in &report.findings {
        entry(f.rule, &f.file, f.line, false);
    }
    for f in &report.suppressed {
        entry(f.rule, &f.file, f.line, true);
    }
    out.push_str("\n]\n");
    fs::write(path, out).map_err(|e| e.to_string())
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
