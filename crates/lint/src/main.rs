//! `ihtl-lint` binary: lint the workspace, print findings, exit nonzero on
//! any. See `ihtl_lint` (lib) for the rule catalogue and DESIGN.md §8 for
//! the policy.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: ihtl-lint [--root <dir>] [--list-suppressions]\n\
         \n\
         Lints every .rs file under <dir> (default: the workspace root\n\
         inferred from this binary's manifest, else the current directory)\n\
         against the R1-R5 invariants. Exits 1 on findings, 2 on usage or\n\
         I/O errors."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut list_suppressions = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => usage(),
            },
            "--list-suppressions" => list_suppressions = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // When run via `cargo run -p ihtl-lint`, the manifest dir is
    // `<workspace>/crates/lint`; its grandparent is the workspace root.
    let root = root.unwrap_or_else(|| {
        let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        manifest
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let report = match ihtl_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ihtl-lint: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &report.findings {
        println!("{}", f.render());
    }
    if list_suppressions {
        for s in &report.suppressions {
            println!("suppressed {} at {}:{}: {}", s.rule, s.file, s.line, s.reason);
        }
    }
    let counts = report
        .suppression_counts()
        .into_iter()
        .map(|(r, n)| format!("{r}={n}"))
        .collect::<Vec<_>>()
        .join(" ");
    let suffix = if counts.is_empty() { String::new() } else { format!(" ({counts})") };
    eprintln!(
        "ihtl-lint: {} files, {} findings, {} suppressions honoured{suffix}",
        report.files_checked,
        report.findings.len(),
        report.suppressions.len(),
    );
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
