//! The rule engine: R1–R5 over the token stream of one file.
//!
//! Rule catalogue (see DESIGN.md §8 for rationale):
//!
//! * **R1** — every `unsafe` keyword (block, fn, impl) must be immediately
//!   preceded by a comment containing `SAFETY` or a `# Safety` doc section.
//!   `unsafe` appearing inside a function-pointer *type* (`unsafe fn(...)`
//!   after `:`, `=`, `(`, `,`, `<`, `&`, `|`, `>`) is not a site.
//! * **R2** — every `get_unchecked` / `get_unchecked_mut` call needs a
//!   bounds justification: an `assert!`/`debug_assert!` family macro inside
//!   the enclosing function body, or a nearby `SAFETY` comment.
//! * **R3** — panic-freedom on the service tier: no `.unwrap()`,
//!   `.expect()`, `panic!`-family macros, or indexing by integer literal in
//!   `crates/serve/src` or `crates/traversal/src` (tests exempt).
//! * **R4** — determinism: no `HashMap`/`HashSet` in wire-output files
//!   (`json.rs`, `proto.rs`, `server.rs`, `stats.rs` under serve); no
//!   `Instant::now`/`SystemTime::now` outside `stats.rs`, bench code, and
//!   `crates/trace` (the tracing layer owns the workspace's monotonic
//!   clock; everything else should take timestamps through it).
//! * **R5** — no raw `thread::spawn`/`thread::Builder` outside
//!   `crates/parallel` and the serve tier (`crates/serve`,
//!   `crates/router`): parallelism goes through the `ihtl-parallel`
//!   runtime so worker indices stay stable.
//! * **R6** — lock-order discipline (cross-file; implemented in
//!   [`crate::concurrency`], findings merged here before suppression):
//!   every observed lock-acquisition edge must be declared in `LOCKS.md`,
//!   the observed graph must be acyclic, and no lock may be held across a
//!   blocking operation (`Condvar::wait`, channel `recv`, socket I/O,
//!   `BlockStore` I/O) without a reasoned suppression.
//! * **R7** — atomic-ordering audit: every `Ordering::Relaxed`/`Acquire`/
//!   `Release`/`AcqRel`/`SeqCst` site must carry an `// ORDERING:`
//!   justification comment, symmetric to R1's SAFETY audit. The documented
//!   seqlock in `crates/trace/src/ring.rs` is exempt as a module, as are
//!   tests/driver files.
//!
//! Suppression findings: **S1** (malformed or reason-less suppression
//! comment) and **S2** (suppression that matched nothing). Neither is
//! itself suppressible.

use crate::lexer::{lex, Comment, Lexed, Tok, Token};

/// Rule identifiers accepted inside a suppression comment.
pub const KNOWN_RULES: [&str; 7] = ["R1", "R2", "R3", "R4", "R5", "R6", "R7"];

/// One diagnostic, reported as `file:line:rule: message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub line: usize,
    pub rule: &'static str,
    pub msg: String,
}

/// A suppression that was matched by at least one finding.
#[derive(Debug, Clone)]
pub struct UsedSuppression {
    pub line: usize,
    pub rule: &'static str,
    pub reason: String,
}

/// Result of linting one file.
#[derive(Debug, Default)]
pub struct FileReport {
    pub findings: Vec<Finding>,
    /// Findings silenced by a reasoned `lint:allow` (kept for lint.json:
    /// suppressed findings are data, not noise).
    pub suppressed: Vec<Finding>,
    pub suppressions: Vec<UsedSuppression>,
}

/// What the file's path says about which rules apply. Derived once per file
/// by [`classify`]; fixtures exercise rules by faking the path.
#[derive(Debug, Clone, Copy)]
struct Class {
    /// R3 scope: serve or traversal non-test sources.
    panic_free: bool,
    /// R4a scope: serve files feeding wire output or checksums.
    wire: bool,
    /// R4b exemption: bench crate, `stats.rs`, driver code.
    timers_ok: bool,
    /// R5 exemption: the runtime itself, the serve tier, driver code.
    spawn_ok: bool,
    /// R7 exemption: driver code and the documented trace seqlock module.
    ordering_exempt: bool,
}

/// Driver code (tests, benches, examples, fixtures) is exempt from the
/// scoped rules and from the R6 concurrency pass: lock discipline there is
/// the test's business, not the service tier's.
pub(crate) fn is_driver_path(rel_path: &str) -> bool {
    rel_path
        .replace('\\', "/")
        .split('/')
        .any(|part| matches!(part, "tests" | "benches" | "examples" | "fixtures"))
}

fn classify(rel_path: &str) -> Class {
    let p = rel_path.replace('\\', "/");
    let driver = is_driver_path(&p);
    let file = p.rsplit('/').next().unwrap_or("");
    let serve_src = p.starts_with("crates/serve/src/");
    let traversal_src = p.starts_with("crates/traversal/src/");
    Class {
        panic_free: (serve_src || traversal_src) && !driver,
        wire: serve_src && matches!(file, "json.rs" | "proto.rs" | "server.rs" | "stats.rs"),
        timers_ok: driver
            || p.starts_with("crates/bench/")
            || p.starts_with("crates/trace/")
            || file == "stats.rs",
        spawn_ok: driver
            || p.starts_with("crates/parallel/")
            || p.starts_with("crates/serve/")
            || p.starts_with("crates/router/"),
        // ring.rs is the one module whose orderings are documented as a
        // system (the per-slot seqlock protocol) rather than site by site.
        ordering_exempt: driver || p == "crates/trace/src/ring.rs",
    }
}

/// A parsed `lint:allow(<rules>): <reason>` comment.
struct Suppression {
    rules: Vec<String>,
    /// Inclusive line range the suppression covers: its own comment span
    /// plus the next line (so it can sit above the flagged statement or
    /// trail it on the same line).
    first_line: usize,
    last_line: usize,
    reason: String,
    used: bool,
}

/// Lints one file given its workspace-relative path and source text.
/// Single-file entry point: runs every per-file rule (R1–R5, R7) and the
/// suppression pass, but not the cross-file R6 analysis (that needs the
/// whole workspace; see [`crate::lint_workspace`] / [`crate::check_sources`]).
pub fn check_file(rel_path: &str, src: &str) -> FileReport {
    let lx = lex(src);
    let raw = raw_findings(rel_path, &lx);
    finalize(&lx, raw)
}

/// All per-file raw findings (before suppression). Cross-file passes append
/// their findings to this list so one suppression mechanism covers every
/// rule.
pub fn raw_findings(rel_path: &str, lx: &Lexed) -> Vec<Finding> {
    let class = classify(rel_path);
    let n_lines = lx.lines.len();

    // Per-line indexes used by the marker-proximity scans (R1/R2/R7).
    let mut has_code = vec![false; n_lines + 2];
    for t in &lx.tokens {
        if t.line < has_code.len() {
            has_code[t.line] = true;
        }
    }
    let mut comment_on_line: Vec<Option<usize>> = vec![None; n_lines + 2];
    for (ci, c) in lx.comments.iter().enumerate() {
        let span = c.first_line..=c.last_line.min(n_lines + 1);
        for slot in &mut comment_on_line[span] {
            *slot = Some(ci);
        }
    }

    let scopes = brace_scopes(&lx.tokens);
    let test_ranges = cfg_test_ranges(&lx.tokens);
    let in_test = |line: usize| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);

    let mut raw: Vec<Finding> = Vec::new();
    run_unsafe_rules(lx, &scopes, &comment_on_line, &has_code, &mut raw);
    run_scoped_rules(lx, class, &in_test, &mut raw);
    run_ordering_rule(lx, class, &in_test, &comment_on_line, &has_code, &mut raw);
    raw
}

/// Applies this file's suppressions to `raw` (which may include cross-file
/// findings attributed to this file) and reports suppression misuse.
pub fn finalize(lx: &Lexed, raw: Vec<Finding>) -> FileReport {
    let mut findings: Vec<Finding> = Vec::new();
    let mut sups: Vec<Suppression> = Vec::new();
    for c in &lx.comments {
        parse_suppression(c, &mut sups, &mut findings);
    }
    let mut report = FileReport::default();
    for f in raw {
        let mut suppressed = false;
        for s in sups.iter_mut() {
            if f.line >= s.first_line
                && f.line <= s.last_line
                && s.rules.iter().any(|r| r == f.rule)
            {
                s.used = true;
                report.suppressions.push(UsedSuppression {
                    line: f.line,
                    rule: f.rule,
                    reason: s.reason.clone(),
                });
                report.suppressed.push(f.clone());
                suppressed = true;
                break;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }
    for s in &sups {
        if !s.used {
            findings.push(Finding {
                line: s.first_line,
                rule: "S2",
                msg: format!("unused suppression for {}", s.rules.join(", ")),
            });
        }
    }
    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    report.findings = findings;
    report
}

// ---------------------------------------------------------------------------
// R1 + R2: the unsafe audit
// ---------------------------------------------------------------------------

fn run_unsafe_rules(
    lx: &Lexed,
    scopes: &[Scope],
    comment_on_line: &[Option<usize>],
    has_code: &[bool],
    out: &mut Vec<Finding>,
) {
    let toks = &lx.tokens;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.kind else { continue };
        match name.as_str() {
            "unsafe" => {
                if is_fn_pointer_type(toks, i) {
                    continue;
                }
                if !has_marker_near(lx, comment_on_line, has_code, t.line, &["SAFETY", "# Safety"])
                {
                    out.push(Finding {
                        line: t.line,
                        rule: "R1",
                        msg: "`unsafe` without an immediately-preceding `// SAFETY:` comment \
                              stating the invariant and where it is established"
                            .to_string(),
                    });
                }
            }
            "get_unchecked" | "get_unchecked_mut" => {
                let justified =
                    has_marker_near(lx, comment_on_line, has_code, t.line, &["SAFETY", "# Safety"])
                        || fn_scope_has_assert(toks, scopes, i);
                if !justified {
                    out.push(Finding {
                        line: t.line,
                        rule: "R2",
                        msg: format!(
                            "`{name}` without a `debug_assert!` in the enclosing function \
                             or a nearby `// SAFETY:` comment naming the validated invariant"
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// `unsafe` in type position: `unsafe fn(...)` after a token that can only
/// start a type, not an item (`: = ( , < & | >`).
fn is_fn_pointer_type(toks: &[Token], i: usize) -> bool {
    let next_is_fn = matches!(toks.get(i + 1), Some(t) if t.kind == Tok::Ident("fn".into()));
    if !next_is_fn || i == 0 {
        return false;
    }
    matches!(
        toks[i - 1].kind,
        Tok::Punct(':')
            | Tok::Punct('=')
            | Tok::Punct('(')
            | Tok::Punct(',')
            | Tok::Punct('<')
            | Tok::Punct('&')
            | Tok::Punct('|')
            | Tok::Punct('>')
    )
}

/// Walks upward from `line` looking for a comment containing one of the
/// `markers` (`SAFETY`/`# Safety` for R1/R2, `ORDERING:` for R7).
/// Attribute lines are skipped freely; up to two plain code lines are
/// tolerated (e.g. the `let x =` head of a binding and the `fn` signature
/// under a doc comment); a blank line ends the search.
fn has_marker_near(
    lx: &Lexed,
    comment_on_line: &[Option<usize>],
    has_code: &[bool],
    line: usize,
    markers: &[&str],
) -> bool {
    let comment_has_marker = |l: usize| -> bool {
        comment_on_line
            .get(l)
            .copied()
            .flatten()
            .map(|ci| {
                let text = &lx.comments[ci].text;
                markers.iter().any(|m| text.contains(m))
            })
            .unwrap_or(false)
    };
    if comment_has_marker(line) {
        return true; // trailing comment on the same line
    }
    let mut budget = 2usize;
    let mut l = line;
    while l > 1 {
        l -= 1;
        if comment_has_marker(l) {
            return true;
        }
        let raw = lx.lines.get(l - 1).map(String::as_str).unwrap_or("");
        let trimmed = raw.trim();
        if comment_on_line.get(l).copied().flatten().is_some()
            && !has_code.get(l).copied().unwrap_or(false)
        {
            continue; // pure comment line without SAFETY: keep scanning
        }
        if trimmed.is_empty() {
            return false;
        }
        if trimmed.starts_with("#[") || trimmed.starts_with("#!") {
            continue; // attributes sit between docs and items
        }
        if budget == 0 {
            return false;
        }
        budget -= 1;
    }
    false
}

/// A matched brace pair over token indices.
struct Scope {
    open: usize,
    close: usize,
    fn_body: bool,
}

fn brace_scopes(toks: &[Token]) -> Vec<Scope> {
    let mut stack: Vec<usize> = Vec::new();
    let mut scopes: Vec<Scope> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            Tok::Punct('{') => stack.push(i),
            Tok::Punct('}') => {
                if let Some(open) = stack.pop() {
                    scopes.push(Scope { open, close: i, fn_body: opens_fn_body(toks, open) });
                }
            }
            _ => {}
        }
    }
    scopes
}

/// Does the `{` at token index `open` start a function body? Scan backwards
/// through the signature (stopping at the previous `;`/`{`/`}`) for `fn`.
fn opens_fn_body(toks: &[Token], open: usize) -> bool {
    let lo = open.saturating_sub(200);
    for j in (lo..open).rev() {
        match &toks[j].kind {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return false,
            Tok::Ident(s) if s == "fn" => return true,
            _ => {}
        }
    }
    false
}

/// Is there an `assert!`-family macro inside the innermost *function body*
/// enclosing token `i`?
fn fn_scope_has_assert(toks: &[Token], scopes: &[Scope], i: usize) -> bool {
    let mut best: Option<&Scope> = None;
    for s in scopes {
        if s.fn_body && s.open < i && i < s.close {
            match best {
                Some(b) if b.open >= s.open => {}
                _ => best = Some(s),
            }
        }
    }
    let Some(s) = best else { return false };
    toks[s.open..s.close].windows(2).any(|w| {
        matches!(
            (&w[0].kind, &w[1].kind),
            (Tok::Ident(name), Tok::Punct('!'))
                if name == "assert"
                    || name.starts_with("assert_")
                    || name.starts_with("debug_assert")
        )
    })
}

// ---------------------------------------------------------------------------
// R3–R5: path-scoped token patterns
// ---------------------------------------------------------------------------

fn run_scoped_rules(
    lx: &Lexed,
    class: Class,
    in_test: &dyn Fn(usize) -> bool,
    out: &mut Vec<Finding>,
) {
    let toks = &lx.tokens;
    let ident = |i: usize| -> Option<&str> {
        match toks.get(i).map(|t| &t.kind) {
            Some(Tok::Ident(s)) => Some(s.as_str()),
            _ => None,
        }
    };
    let punct =
        |i: usize, c: char| matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c);

    for (i, t) in toks.iter().enumerate() {
        if in_test(t.line) {
            continue;
        }
        // R3: panic-freedom on the service tier.
        if class.panic_free {
            if let Some(name @ ("unwrap" | "expect")) = ident(i) {
                if i > 0 && punct(i - 1, '.') && punct(i + 1, '(') {
                    out.push(Finding {
                        line: t.line,
                        rule: "R3",
                        msg: format!(
                            "`.{name}()` on the panic-free service path — return a protocol \
                             error (or recover the poisoned lock) instead"
                        ),
                    });
                }
            }
            if let Some(name @ ("panic" | "unreachable" | "todo" | "unimplemented")) = ident(i) {
                if punct(i + 1, '!') {
                    out.push(Finding {
                        line: t.line,
                        rule: "R3",
                        msg: format!(
                            "`{name}!` on the panic-free service path — make the state \
                             unrepresentable or return an error"
                        ),
                    });
                }
            }
            if punct(i, '[')
                && matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Int))
                && punct(i + 2, ']')
                && i > 0
                && matches!(toks[i - 1].kind, Tok::Ident(_) | Tok::Punct(')') | Tok::Punct(']'))
            {
                out.push(Finding {
                    line: t.line,
                    rule: "R3",
                    msg: "indexing with an integer literal can panic — pattern-match or use \
                          `.get()`"
                        .to_string(),
                });
            }
        }
        // R4a: unordered collections in wire-output files.
        if class.wire {
            if let Some(name @ ("HashMap" | "HashSet")) = ident(i) {
                out.push(Finding {
                    line: t.line,
                    rule: "R4",
                    msg: format!(
                        "`{name}` in a wire-output file — iteration order would leak into \
                         responses/checksums; use an ordered structure"
                    ),
                });
            }
        }
        // R4b: wall-clock reads outside stats/bench code.
        if !class.timers_ok {
            if let Some(name @ ("Instant" | "SystemTime")) = ident(i) {
                if punct(i + 1, ':') && punct(i + 2, ':') && ident(i + 3) == Some("now") {
                    out.push(Finding {
                        line: t.line,
                        rule: "R4",
                        msg: format!(
                            "`{name}::now()` outside stats.rs/bench code — wall-clock reads \
                             in kernels break run-to-run determinism"
                        ),
                    });
                }
            }
        }
        // R5: thread spawning outside the runtime and the serve tier.
        if !class.spawn_ok
            && ident(i) == Some("thread")
            && punct(i + 1, ':')
            && punct(i + 2, ':')
            && matches!(ident(i + 3), Some("spawn" | "Builder"))
        {
            out.push(Finding {
                line: t.line,
                rule: "R5",
                msg: "raw thread spawn outside crates/parallel and the serve tier \
                      (crates/serve, crates/router) — use the ihtl-parallel runtime so \
                      worker indices stay stable"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// R7: atomic-ordering audit
// ---------------------------------------------------------------------------

/// The five memory orderings; `cmp::Ordering`'s variants never collide.
const MEMORY_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Flags every `Ordering::<memory ordering>` token sequence that has no
/// `ORDERING:` comment in marker proximity. One finding per line: clustered
/// counter updates justify themselves with one shared comment.
fn run_ordering_rule(
    lx: &Lexed,
    class: Class,
    in_test: &dyn Fn(usize) -> bool,
    comment_on_line: &[Option<usize>],
    has_code: &[bool],
    out: &mut Vec<Finding>,
) {
    if class.ordering_exempt {
        return;
    }
    let toks = &lx.tokens;
    let mut last_flagged_line = 0usize;
    for (i, t) in toks.iter().enumerate() {
        let Tok::Ident(name) = &t.kind else { continue };
        if name != "Ordering" || in_test(t.line) || t.line == last_flagged_line {
            continue;
        }
        let is_site = matches!(toks.get(i + 1).map(|t| &t.kind), Some(Tok::Punct(':')))
            && matches!(toks.get(i + 2).map(|t| &t.kind), Some(Tok::Punct(':')))
            && matches!(toks.get(i + 3).map(|t| &t.kind),
                        Some(Tok::Ident(ord)) if MEMORY_ORDERINGS.contains(&ord.as_str()));
        if !is_site {
            continue;
        }
        let ord = match &toks[i + 3].kind {
            Tok::Ident(s) => s.clone(),
            _ => continue,
        };
        if !has_marker_near(lx, comment_on_line, has_code, t.line, &["ORDERING:"]) {
            last_flagged_line = t.line;
            out.push(Finding {
                line: t.line,
                rule: "R7",
                msg: format!(
                    "`Ordering::{ord}` without an `// ORDERING:` comment justifying the \
                     memory ordering (what it synchronizes with, or why none is needed)"
                ),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

/// Recognises a suppression only when the comment *starts* with the marker
/// (after its `//`/`/*` prefix), so prose that merely mentions the syntax —
/// like this sentence — is not parsed as one.
fn parse_suppression(c: &Comment, sups: &mut Vec<Suppression>, findings: &mut Vec<Finding>) {
    let body =
        c.text.trim_start_matches('/').trim_start_matches('*').trim_start_matches('!').trim_start();
    let Some(rest) = body.strip_prefix("lint:allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        findings.push(Finding {
            line: c.first_line,
            rule: "S1",
            msg: "malformed suppression: missing `)`".to_string(),
        });
        return;
    };
    let rules: Vec<String> =
        rest[..close].split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect();
    let bad: Vec<&String> = rules.iter().filter(|r| !KNOWN_RULES.contains(&r.as_str())).collect();
    if rules.is_empty() || !bad.is_empty() {
        findings.push(Finding {
            line: c.first_line,
            rule: "S1",
            msg: format!(
                "suppression names unknown rule(s); known rules are {}",
                KNOWN_RULES.join(", ")
            ),
        });
        return;
    }
    let after = &rest[close + 1..];
    let reason = after.strip_prefix(':').map(str::trim).unwrap_or("");
    if reason.is_empty() {
        findings.push(Finding {
            line: c.first_line,
            rule: "S1",
            msg: "suppression must carry a reason: `// lint:allow(R4): <why>`".to_string(),
        });
        return;
    }
    sups.push(Suppression {
        rules,
        first_line: c.first_line,
        last_line: c.last_line + 1,
        reason: reason.to_string(),
        used: false,
    });
}

// ---------------------------------------------------------------------------
// cfg(test) ranges
// ---------------------------------------------------------------------------

/// Line ranges covered by `#[cfg(test)]` items (modules or functions).
/// R3–R5/R7 do not apply inside them, and the R6 concurrency pass skips
/// functions defined there; test code may lock and unwrap freely.
pub(crate) fn cfg_test_ranges(toks: &[Token]) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_attr = matches!(&toks[i].kind, Tok::Punct('#'))
            && matches!(&toks[i + 1].kind, Tok::Punct('['))
            && matches!(&toks[i + 2].kind, Tok::Ident(s) if s == "cfg")
            && matches!(&toks[i + 3].kind, Tok::Punct('('))
            && matches!(&toks[i + 4].kind, Tok::Ident(s) if s == "test")
            && matches!(&toks[i + 5].kind, Tok::Punct(')'))
            && matches!(&toks[i + 6].kind, Tok::Punct(']'));
        if !is_attr {
            i += 1;
            continue;
        }
        // Find the item's opening brace; a `;` first means no body (a
        // `use`/`extern` item) — nothing to exempt.
        let mut j = i + 7;
        let mut open = None;
        while j < toks.len() {
            match toks[j].kind {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => j += 1,
            }
        }
        if let Some(o) = open {
            let mut depth = 0usize;
            let mut k = o;
            while k < toks.len() {
                match toks[k].kind {
                    Tok::Punct('{') => depth += 1,
                    Tok::Punct('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end = toks.get(k).map(|t| t.line).unwrap_or(usize::MAX);
            ranges.push((toks[i].line, end));
            i = k.max(i + 7);
        } else {
            i = j;
        }
    }
    ranges
}
