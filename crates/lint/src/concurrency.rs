//! R6: cross-file lock-order analysis over the lexed token streams.
//!
//! The pass works per crate (lock names are field names, scoped by crate;
//! call resolution never crosses a crate boundary):
//!
//! 1. **Extract functions** from each non-driver file (functions defined
//!    under `#[cfg(test)]` are skipped, like R3–R5 skip test lines).
//! 2. **Summarize** each function: which locks its body may acquire
//!    (directly or through same-crate callees, to a fixpoint), whether it
//!    may block (`Condvar::wait`, channel `recv`, socket/file I/O,
//!    `BlockStore` I/O), and whether its signature returns a guard
//!    (`MutexGuard`/`RwLockReadGuard`/`RwLockWriteGuard`) — guard-returning
//!    helpers like `lock_traces` act as acquisition sites for callers.
//! 3. **Simulate guard liveness** through each body: `let g = lock_ok(..);`
//!    binds a guard until its block closes or `drop(g)`; a chained call
//!    (`lock_ok(..).get_mut(..)`) is a statement-scoped temporary;
//!    `cv.wait(g)` / `cv.wait_timeout(g, ..)` atomically releases exactly
//!    the guard it consumes (and re-acquires it — the binding stays live).
//!    Every acquisition performed while other guards are live contributes a
//!    **lock-order edge** (held → acquired); every blocking operation
//!    reached while guards are live is a **held-across-blocking** finding.
//! 4. **Check**: every observed edge must lie in the transitive closure of
//!    the hierarchy declared in `LOCKS.md`, and the observed edge graph
//!    must be acyclic.
//!
//! Known approximations (see DESIGN.md §13): liveness is token-scoped, so
//! a temporary in an `if let` head is considered live slightly past the
//! statement (over-approximation — may report an edge Rust's drop order
//! avoids by one line, never misses one the code has); closure bodies are
//! analyzed inline in their defining function (a closure *defined* under a
//! guard is treated as *run* under it); call resolution is by bare name
//! within the crate, with a skip-list of ubiquitous std method names so
//! `map.get(..)` under the registry guard does not resolve to
//! `Registry::get`.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Lexed, Tok, Token};
use crate::rules::{cfg_test_ranges, Finding};

/// Call-site acquisition primitives: the poison-recovering helpers every
/// crate funnels acquisitions through. Their *bodies* are skipped (the
/// parameter name would be meaningless as a lock identity); their *call
/// sites* name the lock via the argument's final path segment.
const PRIMITIVES: [&str; 3] = ["lock_ok", "read_ok", "write_ok"];

/// Method names never resolved to same-crate functions: ubiquitous std
/// methods whose accidental name collision with a workspace function would
/// inject phantom edges (`HashMap::get` vs `Registry::get`, `VecDeque::drain`
/// vs `BatchTicket::drain`, `drop` vs `Drop::drop`, ...).
const CALL_SKIP: [&str; 48] = [
    "new",
    "default",
    "clone",
    "from",
    "into",
    "take",
    "replace",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "push_back",
    "pop",
    "pop_front",
    "drain",
    "clear",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "collect",
    "extend",
    "entry",
    "or_default",
    "or_insert_with",
    "contains_key",
    "values",
    "keys",
    "find",
    "position",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
    "sort_by",
    "map",
    "filter",
    "and_then",
    "unwrap_or_else",
    "retain",
    "join",
    "send",
    "recv",
    "wait",
    "lock",
    "drop",
    "spawn",
];

/// Method calls that block the calling thread. `wait`/`wait_timeout` are
/// handled separately (condvar semantics); `join` only with zero arguments
/// (`slice::join(sep)` takes one).
const BLOCKING_METHODS: [&str; 14] = [
    "recv",
    "recv_timeout",
    "read_line",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "write_all",
    "flush",
    "accept",
    "load_ihtl",
    "save_ihtl",
    "load_pb",
    "save_pb",
    "load_bytes",
];

/// Additional blocking free/path calls resolved by their last segment.
const BLOCKING_PATH_CALLS: [&str; 3] = ["save_atomic", "load_graph", "save_graph"];

// ---------------------------------------------------------------------------
// Declared hierarchy (LOCKS.md)
// ---------------------------------------------------------------------------

/// The declared lock order: directed edges `(crate, held, acquired)`.
#[derive(Debug, Default)]
pub struct Hierarchy {
    edges: Vec<(String, String, String)>,
}

impl Hierarchy {
    /// An empty hierarchy: every observed edge becomes a finding. Useful
    /// for fixtures.
    pub fn empty() -> Hierarchy {
        Hierarchy::default()
    }

    /// Parses `LOCKS.md`: bullet lines of the form `- <crate>: <a> -> <b>`
    /// declare an edge; every other line is prose and ignored.
    pub fn parse(text: &str) -> Hierarchy {
        let mut edges = Vec::new();
        for line in text.lines() {
            let Some(rest) = line.trim().strip_prefix("- ") else { continue };
            let Some((krate, order)) = rest.split_once(':') else { continue };
            let Some((a, b)) = order.split_once("->") else { continue };
            let (krate, a, b) = (krate.trim(), a.trim(), b.trim());
            if !krate.is_empty() && !a.is_empty() && !b.is_empty() {
                edges.push((krate.to_string(), a.to_string(), b.to_string()));
            }
        }
        Hierarchy { edges }
    }

    /// Declares one edge (fixtures build hierarchies programmatically).
    pub fn with_edge(mut self, krate: &str, held: &str, acquired: &str) -> Hierarchy {
        self.edges.push((krate.to_string(), held.to_string(), acquired.to_string()));
        self
    }

    /// Is `held -> acquired` within the transitive closure of the declared
    /// edges for `krate`?
    fn allows(&self, krate: &str, held: &str, acquired: &str) -> bool {
        let mut frontier = vec![held];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(cur) = frontier.pop() {
            if !seen.insert(cur) {
                continue;
            }
            for (k, a, b) in &self.edges {
                if k == krate && a == cur {
                    if b == acquired {
                        return true;
                    }
                    frontier.push(b);
                }
            }
        }
        false
    }
}

// ---------------------------------------------------------------------------
// Function extraction
// ---------------------------------------------------------------------------

struct FnItem {
    name: String,
    file: usize,
    /// Token range of the signature (`fn` keyword through the token before
    /// the body `{`) — scanned for guard-returning types.
    sig: (usize, usize),
    /// Token range of the body, inclusive of its braces.
    body: (usize, usize),
}

/// Finds every `fn` item in a token stream. Functions whose `fn` keyword
/// lies in a `#[cfg(test)]` range are dropped.
fn extract_fns(file: usize, toks: &[Token], test_ranges: &[(usize, usize)]) -> Vec<FnItem> {
    let in_test = |line: usize| test_ranges.iter().any(|&(a, b)| line >= a && line <= b);
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < toks.len() {
        let is_fn = matches!(&toks[i].kind, Tok::Ident(s) if s == "fn");
        let name = match (&is_fn, toks.get(i + 1).map(|t| &t.kind)) {
            (true, Some(Tok::Ident(n))) => n.clone(),
            _ => {
                i += 1;
                continue;
            }
        };
        if in_test(toks[i].line) {
            i += 2;
            continue;
        }
        // Find the body's opening brace; a `;` first means a bodyless
        // declaration (trait method signature).
        let mut j = i + 2;
        let mut open = None;
        while j < toks.len() {
            match toks[j].kind {
                Tok::Punct('{') => {
                    open = Some(j);
                    break;
                }
                Tok::Punct(';') => break,
                _ => j += 1,
            }
        }
        let Some(o) = open else {
            i = j.max(i + 2);
            continue;
        };
        let mut depth = 0usize;
        let mut k = o;
        while k < toks.len() {
            match toks[k].kind {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        out.push(FnItem { name, file, sig: (i, o), body: (o, k.min(toks.len() - 1)) });
        // Continue *inside* the body so nested `fn` items are extracted as
        // their own entries (the walk skips their ranges in the parent).
        i = o + 1;
    }
    out
}

// ---------------------------------------------------------------------------
// Per-function facts and crate-wide summaries
// ---------------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct Facts {
    acquires: BTreeSet<String>,
    blocking: BTreeSet<String>,
    calls: BTreeSet<String>,
    returns_guard: bool,
}

/// A guard known to be live at some point of the walk.
#[derive(Debug, Clone)]
struct Guard {
    locks: Vec<String>,
    /// `Some` for `let`-bound guards (killable by `drop(name)` and block
    /// close); `None` for statement-scoped temporaries.
    name: Option<String>,
    /// Brace depth at the binding (`let`) or at the statement (temporary).
    depth: usize,
}

/// The last identifier in a call's argument list that is not `self` — the
/// lock's field name in `lock_ok(&self.done.result)`.
fn arg_lock_name(toks: &[Token], open_paren: usize) -> Option<(String, usize)> {
    let mut depth = 0usize;
    let mut j = open_paren;
    let mut last: Option<String> = None;
    while j < toks.len() {
        match &toks[j].kind {
            Tok::Punct('(') => depth += 1,
            Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    return last.map(|l| (l, j));
                }
            }
            Tok::Ident(s) if s != "self" && s != "crate" && s != "mut" => last = Some(s.clone()),
            _ => {}
        }
        j += 1;
    }
    None
}

/// Is token `i` the start of a `let [mut] NAME =` statement head whose
/// initializer begins at `expr_start`? Returns the bound name.
fn binding_name(toks: &[Token], expr_start: usize) -> Option<String> {
    // Walk back over an optional `crate ::` / `self .` path prefix.
    let mut j = expr_start;
    while j > 0 {
        match &toks[j - 1].kind {
            Tok::Punct(':') | Tok::Punct('.') => j -= 1,
            Tok::Ident(s) if s == "crate" || s == "self" => j -= 1,
            _ => break,
        }
    }
    if j == 0 || !matches!(toks[j - 1].kind, Tok::Punct('=')) {
        return None;
    }
    let mut k = j - 1; // on `=`
    let name = match toks.get(k.checked_sub(1)?).map(|t| &t.kind) {
        Some(Tok::Ident(n)) => n.clone(),
        _ => return None,
    };
    k -= 1; // on the name
    let before = k.checked_sub(1).map(|x| &toks[x].kind);
    match before {
        Some(Tok::Ident(s)) if s == "let" => Some(name),
        Some(Tok::Ident(s)) if s == "mut" => match k.checked_sub(2).map(|x| &toks[x].kind) {
            Some(Tok::Ident(s2)) if s2 == "let" => Some(name),
            _ => None,
        },
        _ => None,
    }
}

fn ident_at(toks: &[Token], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.kind) {
        Some(Tok::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[Token], i: usize, c: char) -> bool {
    matches!(toks.get(i).map(|t| &t.kind), Some(Tok::Punct(p)) if *p == c)
}

/// One acquisition detected at token `i`.
struct Acq {
    locks: Vec<String>,
    /// Index of the call's closing paren.
    end: usize,
    /// Token index where the acquiring expression starts (for `let` head
    /// detection).
    expr_start: usize,
}

/// Detects an acquisition starting at token `i` (primitive call, `.lock()`,
/// or guard-returning same-crate call).
fn acquisition_at(
    toks: &[Token],
    i: usize,
    fn_name: &str,
    guard_returners: &BTreeMap<String, Vec<String>>,
) -> Option<Acq> {
    let name = ident_at(toks, i)?;
    let prev_is_fn = i > 0 && matches!(&toks[i - 1].kind, Tok::Ident(s) if s == "fn");
    if prev_is_fn {
        return None;
    }
    if PRIMITIVES.contains(&name) && punct_at(toks, i + 1, '(') {
        let (lock, end) = arg_lock_name(toks, i + 1)?;
        return Some(Acq { locks: vec![lock], end, expr_start: i });
    }
    if name == "lock"
        && i > 0
        && punct_at(toks, i - 1, '.')
        && punct_at(toks, i + 1, '(')
        && punct_at(toks, i + 2, ')')
        && !PRIMITIVES.contains(&fn_name)
    {
        // Receiver: the identifier just before the dot (`NAMES.lock()`,
        // `state.traces.lock()` — the *last* path segment names the lock).
        let recv = i.checked_sub(2).and_then(|r| ident_at(toks, r))?;
        // Walk the receiver chain back to its first token for `let` heads.
        let mut s = i - 2;
        while s > 0 {
            match &toks[s - 1].kind {
                Tok::Punct('.') | Tok::Punct(':') => s -= 1,
                Tok::Ident(_) => s -= 1,
                _ => break,
            }
        }
        return Some(Acq { locks: vec![recv.to_string()], end: i + 2, expr_start: s });
    }
    if let Some(locks) = guard_returners.get(name) {
        if punct_at(toks, i + 1, '(') && !locks.is_empty() {
            let mut depth = 0usize;
            let mut j = i + 1;
            while j < toks.len() {
                match toks[j].kind {
                    Tok::Punct('(') => depth += 1,
                    Tok::Punct(')') => {
                        depth -= 1;
                        if depth == 0 {
                            return Some(Acq { locks: locks.clone(), end: j, expr_start: i });
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
    }
    None
}

/// Is `name` at token `i` a plain (non-macro) call or a `Path::name`
/// function reference eligible for same-crate resolution?
fn resolvable_reference(toks: &[Token], i: usize, name: &str) -> bool {
    if CALL_SKIP.contains(&name) || PRIMITIVES.contains(&name) {
        return false;
    }
    if i > 0 && matches!(&toks[i - 1].kind, Tok::Ident(s) if s == "fn") {
        return false;
    }
    if punct_at(toks, i + 1, '!') {
        return false; // macro
    }
    if punct_at(toks, i + 1, '(') {
        return true; // free or method call
    }
    // `Type::name` used as a function value (e.g. `.map(SpanInfo::from_rec)`).
    i >= 2 && punct_at(toks, i - 1, ':') && punct_at(toks, i - 2, ':')
}

/// Collects a function's direct facts (pass 1).
fn direct_facts(toks: &[Token], item: &FnItem, inner: &[(usize, usize)]) -> Facts {
    let mut f = Facts::default();
    for j in item.sig.0..item.sig.1 {
        if let Some(t) = ident_at(toks, j) {
            if matches!(t, "MutexGuard" | "RwLockReadGuard" | "RwLockWriteGuard") {
                f.returns_guard = true;
            }
        }
    }
    let mut i = item.body.0;
    while i <= item.body.1 {
        if let Some(&(_, end)) = inner.iter().find(|&&(s, _)| s == i) {
            i = end + 1; // nested fn item: analyzed separately
            continue;
        }
        if let Some(acq) = acquisition_at(toks, i, &item.name, &BTreeMap::new()) {
            f.acquires.extend(acq.locks.iter().cloned());
            i += 1;
            continue;
        }
        if let Some(name) = ident_at(toks, i) {
            let after_dot = i > 0 && punct_at(toks, i - 1, '.');
            if after_dot && (name == "wait" || name == "wait_timeout") && punct_at(toks, i + 1, '(')
            {
                f.blocking.insert("Condvar::wait".to_string());
            } else if after_dot
                && name == "join"
                && punct_at(toks, i + 1, '(')
                && punct_at(toks, i + 2, ')')
            {
                f.blocking.insert("thread join".to_string());
            } else if after_dot && BLOCKING_METHODS.contains(&name) && punct_at(toks, i + 1, '(') {
                f.blocking.insert(name.to_string());
            } else if name == "fs" && punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') {
                if let Some(op) = ident_at(toks, i + 3) {
                    if punct_at(toks, i + 4, '(') {
                        f.blocking.insert(format!("fs::{op}"));
                    }
                }
            } else if BLOCKING_PATH_CALLS.contains(&name) && punct_at(toks, i + 1, '(') {
                f.blocking.insert(name.to_string());
            } else if resolvable_reference(toks, i, name) {
                f.calls.insert(name.to_string());
            }
        }
        i += 1;
    }
    f
}

// ---------------------------------------------------------------------------
// Pass 2: guard-liveness simulation
// ---------------------------------------------------------------------------

/// An observed lock-order edge with its first witness site.
struct Edge {
    held: String,
    acquired: String,
    file: usize,
    line: usize,
}

struct Walker {
    live: Vec<Guard>,
    depth: usize,
}

impl Walker {
    fn kill_scopes(&mut self) {
        let d = self.depth;
        self.live.retain(|g| g.depth <= d);
    }

    fn live_lock_names(&self) -> Vec<String> {
        self.live.iter().flat_map(|g| g.locks.iter().cloned()).collect()
    }
}

#[allow(clippy::too_many_arguments)]
fn walk_fn(
    toks: &[Token],
    item: &FnItem,
    inner: &[(usize, usize)],
    summaries: &BTreeMap<String, Facts>,
    guard_returners: &BTreeMap<String, Vec<String>>,
    edges: &mut Vec<Edge>,
    blocking_out: &mut Vec<(usize, usize, String, String)>, // (file, line, lock, op)
) {
    let mut w = Walker { live: Vec::new(), depth: 0 };
    let mut i = item.body.0;
    while i <= item.body.1 {
        if let Some(&(_, end)) = inner.iter().find(|&&(s, _)| s == i) {
            i = end + 1;
            continue;
        }
        match &toks[i].kind {
            Tok::Punct('{') => w.depth += 1,
            Tok::Punct('}') => {
                w.depth = w.depth.saturating_sub(1);
                w.kill_scopes();
            }
            Tok::Punct(';') => {
                let d = w.depth;
                w.live.retain(|g| g.name.is_some() || g.depth < d);
            }
            Tok::Ident(name) => {
                // `drop(g)` ends a binding's liveness.
                if name == "drop" && punct_at(toks, i + 1, '(') {
                    if let Some(victim) = ident_at(toks, i + 2) {
                        if punct_at(toks, i + 3, ')') {
                            w.live.retain(|g| g.name.as_deref() != Some(victim));
                            i += 4;
                            continue;
                        }
                    }
                }
                let after_dot = i > 0 && punct_at(toks, i - 1, '.');
                // Condvar wait: `.wait(g)` / `.wait_timeout(g, ..)` where
                // `g` is a live guard — releases exactly that guard for the
                // duration; every *other* live lock is held across a block.
                if after_dot
                    && (name == "wait" || name == "wait_timeout")
                    && punct_at(toks, i + 1, '(')
                {
                    let arg = ident_at(toks, i + 2);
                    let arg_is_guard = arg
                        .map(|a| w.live.iter().any(|g| g.name.as_deref() == Some(a)))
                        .unwrap_or(false);
                    let consumed = if arg_is_guard { arg } else { None };
                    for g in &w.live {
                        if g.name.as_deref() == consumed && consumed.is_some() {
                            continue;
                        }
                        for l in &g.locks {
                            blocking_out.push((
                                item.file,
                                toks[i].line,
                                l.clone(),
                                "Condvar::wait".to_string(),
                            ));
                        }
                    }
                    i += 1;
                    continue;
                }
                // Other direct blocking operations.
                let direct_block: Option<String> = if after_dot
                    && name == "join"
                    && punct_at(toks, i + 1, '(')
                    && punct_at(toks, i + 2, ')')
                {
                    Some("thread join".to_string())
                } else if after_dot
                    && BLOCKING_METHODS.contains(&name.as_str())
                    && punct_at(toks, i + 1, '(')
                {
                    Some(name.clone())
                } else if name == "fs" && punct_at(toks, i + 1, ':') && punct_at(toks, i + 2, ':') {
                    ident_at(toks, i + 3)
                        .filter(|_| punct_at(toks, i + 4, '('))
                        .map(|op| format!("fs::{op}"))
                } else if BLOCKING_PATH_CALLS.contains(&name.as_str()) && punct_at(toks, i + 1, '(')
                {
                    Some(name.clone())
                } else {
                    None
                };
                if let Some(op) = direct_block {
                    for l in w.live_lock_names() {
                        blocking_out.push((item.file, toks[i].line, l, op.clone()));
                    }
                    i += 1;
                    continue;
                }
                // Acquisition (primitive, `.lock()`, or guard returner).
                if let Some(acq) = acquisition_at(toks, i, &item.name, guard_returners) {
                    for held in w.live_lock_names() {
                        for l in &acq.locks {
                            edges.push(Edge {
                                held: held.clone(),
                                acquired: l.clone(),
                                file: item.file,
                                line: toks[i].line,
                            });
                        }
                    }
                    let bound = if punct_at(toks, acq.end + 1, ';') {
                        binding_name(toks, acq.expr_start)
                    } else {
                        None
                    };
                    if let Some(b) = &bound {
                        // Shadowing: a rebound name replaces the old guard.
                        w.live.retain(|g| g.name.as_deref() != Some(b.as_str()));
                    }
                    let depth = w.depth;
                    w.live.push(Guard { locks: acq.locks, name: bound, depth });
                    i = acq.end + 1;
                    continue;
                }
                // Same-crate call: inherit the callee's transitive effects.
                if !w.live.is_empty() && resolvable_reference(toks, i, name) {
                    if let Some(facts) = summaries.get(name.as_str()) {
                        for held in w.live_lock_names() {
                            for l in &facts.acquires {
                                if !w.live.iter().any(|g| g.locks.contains(l)) {
                                    edges.push(Edge {
                                        held: held.clone(),
                                        acquired: l.clone(),
                                        file: item.file,
                                        line: toks[i].line,
                                    });
                                }
                            }
                        }
                        if let Some(op) = facts.blocking.iter().next() {
                            for l in w.live_lock_names() {
                                blocking_out.push((
                                    item.file,
                                    toks[i].line,
                                    l,
                                    format!("{op} (via `{name}`)"),
                                ));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// Crate analysis driver
// ---------------------------------------------------------------------------

/// The crate a workspace-relative path belongs to (`crates/<name>/…`), or
/// `"root"` for top-level `src/`.
pub fn crate_of(rel_path: &str) -> String {
    let p = rel_path.replace('\\', "/");
    let mut parts = p.split('/');
    if parts.next() == Some("crates") {
        if let Some(name) = parts.next() {
            return name.to_string();
        }
    }
    "root".to_string()
}

/// Runs the R6 analysis over one crate's files. `files` pairs an opaque
/// caller-side index with the lexed source; findings come back attributed
/// to those indices.
pub fn analyze_crate(
    krate: &str,
    files: &[(usize, &Lexed)],
    hierarchy: &Hierarchy,
) -> Vec<(usize, Finding)> {
    // 1. Extract functions.
    let mut items: Vec<FnItem> = Vec::new();
    for (fi, lx) in files {
        let ranges = cfg_test_ranges(&lx.tokens);
        items.extend(extract_fns(*fi, &lx.tokens, &ranges));
    }
    // Nested-fn ranges per file, for skipping during walks.
    let inner_of = |item: &FnItem| -> Vec<(usize, usize)> {
        items
            .iter()
            .filter(|o| o.file == item.file && o.body.0 > item.body.0 && o.body.1 < item.body.1)
            .map(|o| (o.sig.0, o.body.1))
            .collect()
    };
    let toks_of = |file: usize| -> &[Token] {
        files.iter().find(|(fi, _)| *fi == file).map(|(_, lx)| lx.tokens.as_slice()).unwrap_or(&[])
    };

    // 2. Direct facts, merged by name, then transitive fixpoint.
    let mut merged: BTreeMap<String, Facts> = BTreeMap::new();
    for item in &items {
        let facts = direct_facts(toks_of(item.file), item, &inner_of(item));
        let slot = merged.entry(item.name.clone()).or_default();
        slot.acquires.extend(facts.acquires);
        slot.blocking.extend(facts.blocking);
        slot.calls.extend(facts.calls);
        slot.returns_guard |= facts.returns_guard;
    }
    let guard_returners: BTreeMap<String, Vec<String>> = merged
        .iter()
        .filter(|(name, f)| f.returns_guard && !PRIMITIVES.contains(&name.as_str()))
        .map(|(name, f)| (name.clone(), f.acquires.iter().cloned().collect()))
        .collect();
    loop {
        let mut changed = false;
        let names: Vec<String> = merged.keys().cloned().collect();
        for name in &names {
            let callees: Vec<String> = merged[name].calls.iter().cloned().collect();
            let mut add_acq: BTreeSet<String> = BTreeSet::new();
            let mut add_blk: BTreeSet<String> = BTreeSet::new();
            for c in &callees {
                if let Some(cf) = merged.get(c) {
                    add_acq.extend(cf.acquires.iter().cloned());
                    add_blk.extend(cf.blocking.iter().cloned());
                }
            }
            let f = merged.get_mut(name).expect("name from keys");
            let before = (f.acquires.len(), f.blocking.len());
            f.acquires.extend(add_acq);
            f.blocking.extend(add_blk);
            if (f.acquires.len(), f.blocking.len()) != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // 3. Liveness walks.
    let mut edges: Vec<Edge> = Vec::new();
    let mut blocking: Vec<(usize, usize, String, String)> = Vec::new();
    for item in &items {
        walk_fn(
            toks_of(item.file),
            item,
            &inner_of(item),
            &merged,
            &guard_returners,
            &mut edges,
            &mut blocking,
        );
    }

    // 4. Findings.
    let mut out: Vec<(usize, Finding)> = Vec::new();
    let mut first_witness: BTreeMap<(String, String), (usize, usize)> = BTreeMap::new();
    for e in &edges {
        first_witness.entry((e.held.clone(), e.acquired.clone())).or_insert((e.file, e.line));
    }
    for ((held, acquired), (file, line)) in &first_witness {
        if held == acquired {
            out.push((
                *file,
                Finding {
                    line: *line,
                    rule: "R6",
                    msg: format!(
                        "lock `{held}` acquired while a guard of `{held}` is already live \
                         (self-deadlock)"
                    ),
                },
            ));
        } else if !hierarchy.allows(krate, held, acquired) {
            out.push((
                *file,
                Finding {
                    line: *line,
                    rule: "R6",
                    msg: format!(
                        "lock-order edge `{held}` -> `{acquired}` (crate {krate}) is not \
                         declared in LOCKS.md — declare it or restructure the locking"
                    ),
                },
            ));
        }
    }
    if let Some(cycle) = find_cycle(first_witness.keys()) {
        let key = (cycle[0].clone(), cycle[1].clone());
        let (file, line) = first_witness.get(&key).copied().unwrap_or((0, 1));
        out.push((
            file,
            Finding {
                line,
                rule: "R6",
                msg: format!("lock-acquisition cycle: {} (potential deadlock)", cycle.join(" -> ")),
            },
        ));
    }
    let mut seen_block: BTreeSet<(usize, usize, String, String)> = BTreeSet::new();
    for (file, line, lock, op) in blocking {
        if seen_block.insert((file, line, lock.clone(), op.clone())) {
            out.push((
                file,
                Finding {
                    line,
                    rule: "R6",
                    msg: format!("lock `{lock}` held across blocking operation `{op}`"),
                },
            ));
        }
    }
    out
}

/// Finds one cycle in the observed edge set, returned as a node path
/// `a -> b -> … -> a` (first node repeated at the end).
fn find_cycle<'a>(edges: impl Iterator<Item = &'a (String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    let edge_list: Vec<&(String, String)> = edges.collect();
    for (a, b) in edge_list.iter().map(|e| (&e.0, &e.1)) {
        adj.entry(a).or_default().push(b);
        nodes.insert(a);
        nodes.insert(b);
    }
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state: BTreeMap<&str, u8> = nodes.iter().map(|&n| (n, 0u8)).collect();
    for &start in &nodes {
        if state[start] != 0 {
            continue;
        }
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        state.insert(start, 1);
        while let Some(&(node, idx)) = stack.last() {
            let next = adj.get(node).and_then(|v| v.get(idx)).copied();
            match next {
                Some(n) => {
                    if let Some(e) = stack.last_mut() {
                        e.1 += 1;
                    }
                    match state.get(n).copied().unwrap_or(0) {
                        0 => {
                            state.insert(n, 1);
                            stack.push((n, 0));
                        }
                        1 => {
                            // Reconstruct the cycle from the stack.
                            let pos = stack.iter().position(|&(s, _)| s == n).unwrap_or(0);
                            let mut path: Vec<String> =
                                stack[pos..].iter().map(|&(s, _)| s.to_string()).collect();
                            path.push(n.to_string());
                            return Some(path);
                        }
                        _ => {}
                    }
                }
                None => {
                    state.insert(node, 2);
                    stack.pop();
                }
            }
        }
    }
    None
}
