//! Commutative monoids over `f64` vertex data.
//!
//! The paper fixes vertex data at 8 bytes (§4.1); every analytic in the
//! evaluation reduces incoming values with a commutative, associative
//! operator — `+` for SpMV/PageRank, `min` for components and shortest
//! paths. Abstracting the operator lets one traversal implementation serve
//! all of them (including iHTL's flipped-block buffers, whose merge step
//! relies on the same associativity).

use std::sync::atomic::{AtomicU64, Ordering};

use ihtl_graph::VertexId;

/// A commutative monoid over `f64`.
///
/// Implementations must satisfy, for all `a`, `b`, `c`:
/// * `combine(a, b) == combine(b, a)`;
/// * `combine(a, combine(b, c)) == combine(combine(a, b), c)` (up to fp
///   rounding for [`Add`]);
/// * `combine(a, identity()) == a`.
pub trait Monoid: Copy + Send + Sync + 'static {
    /// The neutral element.
    fn identity() -> f64;

    /// The reduction operator.
    fn combine(a: f64, b: f64) -> f64;

    /// Folds `x[u]` over every `u` in `ns` into `acc`, in list order — the
    /// inner loop of every pull-shaped kernel, hoisted into the trait so
    /// [`Add`] can override it with an unrolled multi-accumulator version.
    ///
    /// # Safety
    /// Every id in `ns` must be `< x.len()`. Kernels obtain this from the
    /// CSR construction invariant (`target < n_cols`) plus an entry assert
    /// that `x` spans the column universe; debug builds re-check per access.
    #[inline]
    unsafe fn fold_neighbours(acc: f64, ns: &[VertexId], x: &[f64]) -> f64 {
        let mut acc = acc;
        for &u in ns {
            debug_assert!((u as usize) < x.len());
            acc = Self::combine(acc, *x.get_unchecked(u as usize));
        }
        acc
    }

    /// Atomically folds `val` into the `f64` stored (bitwise) in `slot`.
    /// Used by the atomic push baseline; a CAS loop over the bit pattern.
    #[inline]
    fn combine_atomic(slot: &AtomicU64, val: f64) {
        // ORDERING: Relaxed — the CAS loop only needs atomicity of each
        // combine; cross-thread visibility of the final values is
        // published by the parallel-region join, not by these ops.
        let mut cur = slot.load(Ordering::Relaxed);
        loop {
            let new = Self::combine(f64::from_bits(cur), val).to_bits();
            if new == cur {
                return; // no-op update; avoid a write
            }
            // ORDERING: Relaxed — see the load above.
            match slot.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// Addition with identity `0.0` — SpMV and PageRank.
#[derive(Clone, Copy, Debug, Default)]
pub struct Add;

impl Monoid for Add {
    #[inline]
    fn identity() -> f64 {
        0.0
    }
    #[inline]
    fn combine(a: f64, b: f64) -> f64 {
        a + b
    }

    // The default in-order `fold_neighbours` is kept deliberately: adjacency
    // lists average only a handful of edges on the benchmarked graphs, so
    // multi-accumulator unrolling (tried, measured) loses more to remainder
    // handling and extra combines than it gains in add-latency overlap, and
    // the loads — the real bottleneck — already overlap out of order.
}

/// Minimum with identity `+∞` — connected components, SSSP.
#[derive(Clone, Copy, Debug, Default)]
pub struct Min;

impl Monoid for Min {
    #[inline]
    fn identity() -> f64 {
        f64::INFINITY
    }
    #[inline]
    fn combine(a: f64, b: f64) -> f64 {
        a.min(b)
    }
}

/// Maximum with identity `-∞` — widest-label propagation.
#[derive(Clone, Copy, Debug, Default)]
pub struct Max;

impl Monoid for Max {
    #[inline]
    fn identity() -> f64 {
        f64::NEG_INFINITY
    }
    #[inline]
    fn combine(a: f64, b: f64) -> f64 {
        a.max(b)
    }
}

/// Reinterprets a mutable `f64` slice as atomic 64-bit slots.
///
/// # Safety rationale
/// `AtomicU64` has the same size and alignment as `u64`/`f64`; the caller
/// holds the unique `&mut`, so constructing a shared atomic view cannot race
/// with non-atomic accesses for the lifetime of the borrow.
pub fn as_atomic_slice(data: &mut [f64]) -> &[AtomicU64] {
    unsafe { &*(data as *mut [f64] as *const [AtomicU64]) }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        assert_eq!(Add::combine(3.5, Add::identity()), 3.5);
        assert_eq!(Min::combine(3.5, Min::identity()), 3.5);
        assert_eq!(Max::combine(3.5, Max::identity()), 3.5);
    }

    #[test]
    fn combine_semantics() {
        assert_eq!(Add::combine(2.0, 3.0), 5.0);
        assert_eq!(Min::combine(2.0, 3.0), 2.0);
        assert_eq!(Max::combine(2.0, 3.0), 3.0);
    }

    #[test]
    fn atomic_combine_add() {
        let mut data = vec![0.0f64; 1];
        let atomics = as_atomic_slice(&mut data);
        for _ in 0..100 {
            Add::combine_atomic(&atomics[0], 1.0);
        }
        assert_eq!(data[0], 100.0);
    }

    #[test]
    fn atomic_combine_min_no_op_short_circuits() {
        let mut data = vec![5.0f64; 1];
        let atomics = as_atomic_slice(&mut data);
        Min::combine_atomic(&atomics[0], 7.0); // no-op branch
        Min::combine_atomic(&atomics[0], 3.0);
        assert_eq!(data[0], 3.0);
    }

    #[test]
    fn atomic_combine_parallel_sum() {
        let mut data = vec![0.0f64; 4];
        {
            let atomics = as_atomic_slice(&mut data);
            ihtl_parallel::par_for_chunks(0..10_000, 64, |r| {
                for i in r {
                    Add::combine_atomic(&atomics[i % 4], 1.0);
                }
            });
        }
        assert_eq!(data.iter().sum::<f64>(), 10_000.0);
    }
}
