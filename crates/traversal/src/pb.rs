//! Propagation-blocking push SpMV (PAPERS.md: Balaji & Lucia,
//! arXiv:2011.08451).
//!
//! Push traversals scatter tiny read-modify-writes across the whole
//! destination vector; once vertex data outgrows the cache those writes
//! miss constantly. Propagation blocking splits the traversal into two
//! streaming phases:
//!
//! 1. **bin** — sweep the out-edges in source order and append each
//!    contribution `x[src]` to the bin of its destination *segment* (a
//!    cache-budget-sized contiguous id range). Every write is a sequential
//!    append into a bin, so the random-access footprint shrinks from the
//!    whole output vector to one cache line per open bin.
//! 2. **merge** — per segment, replay the bins that target it and reduce
//!    into the output slice, which is cache-resident by construction.
//!
//! Determinism: bins are keyed by `(source range, segment)` with ranges
//! ascending in source id, sources swept ascending within a range, and a
//! destination's contributions replayed range-by-range in ascending range
//! order. That visits each destination's in-edges in exactly
//! ascending-source order — the same order [`crate::pull`] folds them (CSC
//! rows come from a stable transpose) — so PB results are **bitwise
//! identical to pull for any monoid, any thread count and any partition
//! count**. The slot each edge writes is fixed at build time
//! ([`PbGraph::edge_pos`]), making the bin phase itself
//! schedule-independent: no matter which worker runs a range, the bytes
//! land in the same places.

use ihtl_graph::partition::{edge_balanced_ranges, VertexRange};
use ihtl_graph::{EdgeIndex, Graph, VertexId};

use crate::monoid::{as_atomic_slice, Monoid};
use crate::split_by_ranges;

/// The prepared propagation-blocking layout: edge-balanced source ranges,
/// per-`(range, segment)` bin extents, and the precomputed (topology-only)
/// bin slot + binned destination of every edge. Only the contribution
/// values are (re)written per traversal.
pub struct PbGraph {
    n: usize,
    m: usize,
    /// log2 of the segment length in vertices.
    seg_shift: u32,
    n_segments: usize,
    /// Edge-balanced contiguous source ranges (ascending), the bin-phase
    /// parallel work units.
    ranges: Vec<VertexRange>,
    /// Copy of the CSR offsets, so a traversal needs no `Graph` borrow.
    src_offsets: Vec<EdgeIndex>,
    /// Prefix sums of per-`(range, segment)` edge counts, range-major:
    /// bin `(r, s)` spans `bin_offsets[r * n_segments + s] ..
    /// bin_offsets[r * n_segments + s + 1]` of the value/destination
    /// arrays. Range `r`'s bins are therefore contiguous.
    bin_offsets: Vec<EdgeIndex>,
    /// `binned_dst[p]` = destination vertex of the edge binned at slot `p`.
    binned_dst: Vec<VertexId>,
    /// `edge_pos[e]` = bin slot of CSR edge `e` (edges in CSR order).
    edge_pos: Vec<u32>,
}

impl PbGraph {
    /// Prepares the layout with segments sized so `segment_len *
    /// vertex_data_bytes <= cache_budget_bytes` (rounded up to a power of
    /// two so the segment of a destination is a shift) and the default
    /// partition count.
    pub fn new(g: &Graph, cache_budget_bytes: usize, vertex_data_bytes: usize) -> Self {
        Self::with_parts(g, cache_budget_bytes, vertex_data_bytes, crate::pull::default_parts())
    }

    /// [`PbGraph::new`] with an explicit source partition count.
    pub fn with_parts(
        g: &Graph,
        cache_budget_bytes: usize,
        vertex_data_bytes: usize,
        parts: usize,
    ) -> Self {
        let n = g.n_vertices();
        let m = g.n_edges();
        assert!(vertex_data_bytes > 0);
        assert!(m <= u32::MAX as usize, "edge slots must fit u32");
        let seg_len = (cache_budget_bytes / vertex_data_bytes).max(1).next_power_of_two();
        let seg_shift = seg_len.trailing_zeros();
        let n_segments = n.div_ceil(seg_len).max(1);
        let ranges = edge_balanced_ranges(g.csr(), parts);
        let src_offsets = g.csr().offsets().to_vec();
        let targets = g.csr().targets();

        // Count edges per (range, segment), then prefix-sum into extents.
        let mut bin_offsets = vec![0 as EdgeIndex; ranges.len() * n_segments + 1];
        for (r, range) in ranges.iter().enumerate() {
            let base = r * n_segments;
            let s = src_offsets[range.start as usize] as usize;
            let e = src_offsets[range.end as usize] as usize;
            for &dst in &targets[s..e] {
                bin_offsets[base + (dst >> seg_shift) as usize + 1] += 1;
            }
        }
        for i in 1..bin_offsets.len() {
            bin_offsets[i] += bin_offsets[i - 1];
        }

        // Fix every edge's bin slot: sweep ranges ascending, sources
        // ascending within a range, CSR list order within a source — the
        // replay order that reproduces pull's fold order per destination.
        let mut cursors = bin_offsets[..bin_offsets.len() - 1].to_vec();
        let mut binned_dst = vec![0 as VertexId; m];
        let mut edge_pos = vec![0u32; m];
        for (r, range) in ranges.iter().enumerate() {
            let base = r * n_segments;
            let s = src_offsets[range.start as usize] as usize;
            let e = src_offsets[range.end as usize] as usize;
            for (i, &dst) in targets[s..e].iter().enumerate() {
                let cur = &mut cursors[base + (dst >> seg_shift) as usize];
                let p = *cur as usize;
                *cur += 1;
                binned_dst[p] = dst;
                edge_pos[s + i] = p as u32;
            }
        }

        Self { n, m, seg_shift, n_segments, ranges, src_offsets, bin_offsets, binned_dst, edge_pos }
    }

    /// Number of vertices.
    pub fn n_vertices(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.m
    }

    /// Number of destination segments.
    pub fn n_segments(&self) -> usize {
        self.n_segments
    }

    /// Destination vertices per segment (a power of two).
    pub fn segment_len(&self) -> usize {
        1usize << self.seg_shift
    }

    /// Topology bytes of the PB layout beyond the CSR it was built from:
    /// the bin slot and binned destination of every edge plus the bin
    /// extents — the "propagation blocking duplicates the edge stream"
    /// cost.
    pub fn topology_bytes(&self) -> u64 {
        (self.binned_dst.len() * 4
            + self.edge_pos.len() * 4
            + self.bin_offsets.len() * 8
            + self.src_offsets.len() * 8) as u64
    }

    /// The contiguous destination ranges of the segments, tiling `0..n`.
    fn segment_ranges(&self) -> Vec<VertexRange> {
        let seg_len = self.segment_len();
        (0..self.n_segments)
            .map(|s| VertexRange {
                start: (s * seg_len) as VertexId,
                end: ((s + 1) * seg_len).min(self.n) as VertexId,
            })
            .collect()
    }

    /// Two-phase PB SpMV: `y[v] = ⊕_{u ∈ N⁻(v)} x[u]`. `values` is the
    /// caller-owned contribution scratch (resized to one slot per edge) so
    /// iterated traversals allocate nothing.
    pub fn spmv<M: Monoid>(&self, x: &[f64], y: &mut [f64], values: &mut Vec<f64>) {
        self.spmm::<M>(x, y, 1, values);
    }

    /// K-column PB SpMM over interleaved columns (`x[u * k + j]` = vertex
    /// `u`, column `j`). Column `j` is bitwise identical to a solo
    /// [`PbGraph::spmv`] over column `j`: every edge's slot is fixed, and
    /// the merge replays each column in the same order.
    pub fn spmm<M: Monoid>(&self, x: &[f64], y: &mut [f64], k: usize, values: &mut Vec<f64>) {
        assert!(k >= 1);
        assert_eq!(x.len(), self.n * k);
        assert_eq!(y.len(), self.n * k);
        let _span = ihtl_trace::span("pb_spmv").with_arg(k as u64);
        // The bin phase overwrites every slot, so reuse needs no reset —
        // resizing only when `k` changes avoids an O(m·k) memset per call.
        if values.len() != self.m * k {
            values.clear();
            values.resize(self.m * k, 0.0);
        }

        // --- Bin phase: stream the out-edges, appending contributions. ---
        {
            let _bin = ihtl_trace::span("pb_bin");
            // Each edge owns the distinct slot range `edge_pos[e] * k ..+k`,
            // so the scattered stores are race-free; the atomic view only
            // provides the unsynchronised shared mutability (plain relaxed
            // stores, no CAS), exactly as in `pull::spmv_pull_segmented`.
            let slots = as_atomic_slice(values);
            let offsets = &self.src_offsets;
            let edge_pos = &self.edge_pos;
            ihtl_parallel::par_for_each(&self.ranges, 1, |_, range| {
                let _t = ihtl_trace::span("bin_task");
                let mut s = offsets[range.start as usize] as usize;
                for u in range.iter() {
                    // SAFETY: `u + 1 <= range.end <= n` and offsets are
                    // monotone ending at `m`; `x` spans `n * k` (asserted
                    // above); `edge_pos[e] < m` by construction, so the
                    // slot index is `< m * k == slots.len()`.
                    unsafe {
                        let e = *offsets.get_unchecked(u as usize + 1) as usize;
                        let xr = x.get_unchecked(u as usize * k..u as usize * k + k);
                        for &p in edge_pos.get_unchecked(s..e) {
                            let base = p as usize * k;
                            for (j, &xv) in xr.iter().enumerate() {
                                slots
                                    .get_unchecked(base + j)
                                    .store(xv.to_bits(), std::sync::atomic::Ordering::Relaxed);
                            }
                        }
                        s = e;
                    }
                }
            });
        }

        // --- Merge phase: per segment, replay bins in range order. ---
        let _merge = ihtl_trace::span("pb_merge");
        let seg_ranges = self.segment_ranges();
        let scaled: Vec<VertexRange> = seg_ranges
            .iter()
            .map(|r| VertexRange { start: r.start * k as u32, end: r.end * k as u32 })
            .collect();
        let mut out_slices = split_by_ranges(y, &scaled);
        let values = &values[..];
        ihtl_parallel::par_for_each_mut(&mut out_slices, 1, |si, out| {
            let _t = ihtl_trace::span("merge_task");
            for slot in out.iter_mut() {
                *slot = M::identity();
            }
            let seg_base = seg_ranges[si].start as usize * k;
            for r in 0..self.ranges.len() {
                let lo = self.bin_offsets[r * self.n_segments + si] as usize;
                let hi = self.bin_offsets[r * self.n_segments + si + 1] as usize;
                // SAFETY: bin `(r, si)` holds only destinations of segment
                // `si`, so `dst * k - seg_base + j < out.len()`; slot
                // indices are `< m * k == values.len()` (construction).
                unsafe {
                    for (p, &dst) in self.binned_dst.get_unchecked(lo..hi).iter().enumerate() {
                        let ob = dst as usize * k - seg_base;
                        let vb = (lo + p) * k;
                        for j in 0..k {
                            let slot = out.get_unchecked_mut(ob + j);
                            *slot = M::combine(*slot, *values.get_unchecked(vb + j));
                        }
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::{Add, Max, Min};
    use crate::pull::{spmv_pull, spmv_pull_serial};
    use ihtl_gen::prng::Pcg64;

    fn x_for(n: usize) -> Vec<f64> {
        // Non-integer values: PB must match pull bitwise on arbitrary
        // floats, not just where addition is exact.
        (0..n).map(|i| (i * i + 1) as f64 * 0.73 + 0.11).collect()
    }

    fn random_graph(rng: &mut Pcg64, n: usize, m: usize) -> Graph {
        let edges: Vec<(u32, u32)> =
            (0..m).map(|_| (rng.gen_index(n) as u32, rng.gen_index(n) as u32)).collect();
        Graph::from_edges(n, &edges)
    }

    fn assert_bitwise(a: &[f64], b: &[f64], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{label}: index {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_pull_bitwise_on_paper_example() {
        let g = ihtl_graph::graph::paper_example_graph();
        let x = x_for(8);
        let mut reference = vec![0.0; 8];
        spmv_pull_serial::<Add>(&g, &x, &mut reference);
        for (budget, parts) in [(8, 1), (8, 3), (16, 2), (1024, 5)] {
            let pb = PbGraph::with_parts(&g, budget, 8, parts);
            assert_eq!(pb.n_edges(), g.n_edges());
            let mut y = vec![f64::NAN; 8];
            let mut scratch = Vec::new();
            pb.spmv::<Add>(&x, &mut y, &mut scratch);
            assert_bitwise(&y, &reference, &format!("budget {budget} parts {parts}"));
        }
    }

    #[test]
    fn matches_pull_bitwise_on_random_graphs_every_monoid() {
        let mut rng = Pcg64::seed_from_u64(0x7b_2026);
        for case in 0..24 {
            let n = 2 + rng.gen_index(120);
            let m = rng.gen_index(4 * n + 1);
            let g = random_graph(&mut rng, n, m);
            let x = x_for(n);
            let budget = 8 << rng.gen_index(5); // 1..16 vertices per segment
            let parts = 1 + rng.gen_index(7);
            let pb = PbGraph::with_parts(&g, budget, 8, parts);
            let mut reference = vec![0.0; n];
            let mut y = vec![f64::NAN; n];
            let mut scratch = Vec::new();
            spmv_pull::<Add>(&g, &x, &mut reference);
            pb.spmv::<Add>(&x, &mut y, &mut scratch);
            assert_bitwise(&y, &reference, &format!("case {case} add"));
            spmv_pull::<Min>(&g, &x, &mut reference);
            pb.spmv::<Min>(&x, &mut y, &mut scratch);
            assert_bitwise(&y, &reference, &format!("case {case} min"));
            spmv_pull::<Max>(&g, &x, &mut reference);
            pb.spmv::<Max>(&x, &mut y, &mut scratch);
            assert_bitwise(&y, &reference, &format!("case {case} max"));
        }
    }

    #[test]
    fn spmm_columns_match_solo_bitwise() {
        let mut rng = Pcg64::seed_from_u64(0x7b_51);
        let g = random_graph(&mut rng, 64, 300);
        let n = g.n_vertices();
        let pb = PbGraph::with_parts(&g, 64, 8, 3);
        for k in [1usize, 3, 4, 8] {
            let cols: Vec<Vec<f64>> = (0..k)
                .map(|j| (0..n).map(|i| (i * (j + 2)) as f64 * 0.37 + 0.1).collect())
                .collect();
            let mut x_m = vec![0.0; n * k];
            for (j, col) in cols.iter().enumerate() {
                for (i, &v) in col.iter().enumerate() {
                    x_m[i * k + j] = v;
                }
            }
            let mut y_m = vec![f64::NAN; n * k];
            let mut scratch = Vec::new();
            pb.spmm::<Add>(&x_m, &mut y_m, k, &mut scratch);
            for (j, col) in cols.iter().enumerate() {
                let mut solo = vec![f64::NAN; n];
                pb.spmv::<Add>(col, &mut solo, &mut scratch);
                for i in 0..n {
                    assert_eq!(y_m[i * k + j].to_bits(), solo[i].to_bits(), "k={k} col {j} v {i}");
                }
            }
        }
    }

    #[test]
    fn vertices_without_in_edges_hold_identity() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 1)]);
        let pb = PbGraph::new(&g, 32, 8);
        let mut y = vec![0.0; 4];
        let mut scratch = Vec::new();
        pb.spmv::<Min>(&[1.0, 2.0, 3.0, 4.0], &mut y, &mut scratch);
        assert_eq!(y[0], f64::INFINITY);
        assert_eq!(y[3], f64::INFINITY);
        assert_eq!(y[1], 1.0);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = Graph::from_edges(3, &[]);
        let pb = PbGraph::new(&g, 32, 8);
        let mut y = vec![1.0; 3];
        let mut scratch = Vec::new();
        pb.spmv::<Add>(&[0.0; 3], &mut y, &mut scratch);
        assert_eq!(y, vec![0.0; 3]);
    }

    #[test]
    fn layout_accounting_is_consistent() {
        let mut rng = Pcg64::seed_from_u64(0x7b_52);
        let g = random_graph(&mut rng, 100, 400);
        let pb = PbGraph::with_parts(&g, 64, 8, 4);
        assert_eq!(pb.segment_len(), 8);
        assert_eq!(pb.n_segments(), 100usize.div_ceil(8));
        // Bin extents must tile the edge slots exactly.
        assert_eq!(*pb.bin_offsets.last().unwrap() as usize, pb.n_edges());
        assert!(pb.topology_bytes() > 0);
    }
}
